#include "integration/schema_mapping.h"

#include <gtest/gtest.h>

#include "integration/running_example.h"

namespace amalur {
namespace integration {
namespace {

TEST(SchemaMappingTest, RunningExampleGeneratesTableOneTgds) {
  RunningExample ex = MakeRunningExample();
  const auto& tgds = ex.mapping.tgds();
  ASSERT_EQ(tgds.size(), 3u);  // full outer join: m1, m2, m3
  EXPECT_EQ(tgds[0].ToString(),
            "∀ m, n, a, hr, o, dd (S1(m, n, a, hr) ∧ S2(m, n, a, o, dd) → "
            "T(m, a, hr, o))");
  EXPECT_EQ(tgds[1].ToString(),
            "∀ m, n, a, hr (S1(m, n, a, hr) → ∃ o T(m, a, hr, o))");
  EXPECT_EQ(tgds[2].ToString(),
            "∀ m, n, a, o, dd (S2(m, n, a, o, dd) → ∃ hr T(m, a, hr, o))");
}

TEST(SchemaMappingTest, TargetToSourceColumnsMatchesFigure4a) {
  RunningExample ex = MakeRunningExample();
  // CM1 = [0, 1, 2, -1] over S1 schema (m=0, a=2? no: these are raw schema
  // indices: S1(m, n, a, hr) -> m=0, a=2, hr=3).
  EXPECT_EQ(ex.mapping.TargetToSourceColumns(0),
            (std::vector<int64_t>{0, 2, 3, -1}));
  EXPECT_EQ(ex.mapping.TargetToSourceColumns(1),
            (std::vector<int64_t>{0, 2, -1, 3}));
}

TEST(SchemaMappingTest, MappedColumnsGiveDkLayout) {
  RunningExample ex = MakeRunningExample();
  EXPECT_EQ(ex.mapping.MappedColumns(0),
            (std::vector<std::string>{"m", "a", "hr"}));
  EXPECT_EQ(ex.mapping.MappedColumns(1),
            (std::vector<std::string>{"m", "a", "o"}));
}

TEST(SchemaMappingTest, JoinColumnsIncludeNonTargetMatches) {
  RunningExample ex = MakeRunningExample();
  // Join variables are m, n, a — n via the explicit source match.
  EXPECT_EQ(ex.mapping.JoinColumns(0), (std::vector<std::string>{"m", "n", "a"}));
  EXPECT_EQ(ex.mapping.JoinColumns(1), (std::vector<std::string>{"m", "n", "a"}));
}

TEST(SchemaMappingTest, FullTgdAnalysis) {
  RunningExample ex = MakeRunningExample();
  EXPECT_FALSE(ex.mapping.AllTgdsFull());  // m2, m3 are not full

  // Example 2 of Table I (inner join) has only the full tgd m1.
  auto inner = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{
           "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}, {"hr", "hr"}}},
       SchemaMapping::SourceSpec{
           "S2", ex.s2.schema(), {{"m", "m"}, {"a", "a"}, {"o", "o"}}}},
      ex.target_schema, {{0, "n", 1, "n"}});
  ASSERT_TRUE(inner.ok());
  ASSERT_EQ(inner->tgds().size(), 1u);
  EXPECT_TRUE(inner->AllTgdsFull());
}

TEST(SchemaMappingTest, ClassifyRoundTripsAllKinds) {
  RunningExample ex = MakeRunningExample();
  for (rel::JoinKind kind :
       {rel::JoinKind::kInnerJoin, rel::JoinKind::kLeftJoin,
        rel::JoinKind::kFullOuterJoin, rel::JoinKind::kUnion}) {
    auto mapping = SchemaMapping::Create(
        kind,
        {SchemaMapping::SourceSpec{
             "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}, {"hr", "hr"}}},
         SchemaMapping::SourceSpec{
             "S2", ex.s2.schema(), {{"m", "m"}, {"a", "a"}, {"o", "o"}}}},
        ex.target_schema, {{0, "n", 1, "n"}});
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    auto classified = SchemaMapping::ClassifyTgds(mapping->tgds());
    ASSERT_TRUE(classified.ok()) << classified.status();
    EXPECT_EQ(*classified, kind) << rel::JoinKindToString(kind);
  }
}

TEST(SchemaMappingTest, UnionTgdsPerSource) {
  // Example 4: S1(m,n,a,hr,o), S2(m,n,a,hr,o,dd) → T(m,a,hr,o) by union.
  rel::Schema s1 = rel::Schema::AllDouble({"m", "n", "a", "hr", "o"});
  rel::Schema s2 = rel::Schema::AllDouble({"m", "n", "a", "hr", "o", "dd"});
  rel::Schema target = rel::Schema::AllDouble({"m", "a", "hr", "o"});
  auto mapping = SchemaMapping::Create(
      rel::JoinKind::kUnion,
      {SchemaMapping::SourceSpec{
           "S1", s1, {{"m", "m"}, {"a", "a"}, {"hr", "hr"}, {"o", "o"}}},
       SchemaMapping::SourceSpec{
           "S2", s2, {{"m", "m"}, {"a", "a"}, {"hr", "hr"}, {"o", "o"}}}},
      target);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  ASSERT_EQ(mapping->tgds().size(), 2u);
  EXPECT_FALSE(mapping->tgds()[0].IsJoint());
  EXPECT_TRUE(mapping->tgds()[0].IsFull());  // all target cols mapped
  EXPECT_TRUE(mapping->JoinColumns(0).empty());
}

TEST(SchemaMappingTest, RejectsUnknownColumns) {
  RunningExample ex = MakeRunningExample();
  auto bad_source = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{"S1", ex.s1.schema(), {{"zz", "m"}}},
       SchemaMapping::SourceSpec{"S2", ex.s2.schema(), {{"m", "m"}}}},
      ex.target_schema);
  EXPECT_TRUE(bad_source.status().IsNotFound());

  auto bad_target = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{"S1", ex.s1.schema(), {{"m", "zz"}}},
       SchemaMapping::SourceSpec{"S2", ex.s2.schema(), {{"m", "m"}}}},
      ex.target_schema);
  EXPECT_TRUE(bad_target.status().IsNotFound());
}

TEST(SchemaMappingTest, RejectsJoinWithoutSharedVariables) {
  rel::Schema s1 = rel::Schema::AllDouble({"a"});
  rel::Schema s2 = rel::Schema::AllDouble({"b"});
  rel::Schema target = rel::Schema::AllDouble({"a", "b"});
  auto mapping = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{"S1", s1, {{"a", "a"}}},
       SchemaMapping::SourceSpec{"S2", s2, {{"b", "b"}}}},
      target);
  EXPECT_TRUE(mapping.status().IsInvalidArgument());
}

TEST(SchemaMappingTest, RejectsSingleSource) {
  rel::Schema s1 = rel::Schema::AllDouble({"a"});
  auto mapping = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{"S1", s1, {{"a", "a"}}}},
      rel::Schema::AllDouble({"a"}));
  EXPECT_TRUE(mapping.status().IsInvalidArgument());
}

TEST(SchemaMappingTest, ClassifyRejectsDegenerateSets) {
  EXPECT_TRUE(SchemaMapping::ClassifyTgds({}).status().IsInvalidArgument());
  Tgd single({TgdAtom{"S1", {"a"}}}, TgdAtom{"T", {"a"}});
  EXPECT_TRUE(
      SchemaMapping::ClassifyTgds({single}).status().IsInvalidArgument());
}

TEST(SchemaMappingTest, VariableCollisionDisambiguated) {
  // Both sources have an unmapped column "dd" — the generated tgds must not
  // accidentally join them by reusing one variable name.
  rel::Schema s1 = rel::Schema::AllDouble({"k", "dd"});
  rel::Schema s2 = rel::Schema::AllDouble({"k", "dd"});
  rel::Schema target = rel::Schema::AllDouble({"k"});
  auto mapping = SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {SchemaMapping::SourceSpec{"S1", s1, {{"k", "k"}}},
       SchemaMapping::SourceSpec{"S2", s2, {{"k", "k"}}}},
      target);
  ASSERT_TRUE(mapping.ok());
  const Tgd& joint = mapping->tgds()[0];
  EXPECT_EQ(joint.JoinVariables(), (std::vector<std::string>{"k"}));
}

}  // namespace
}  // namespace integration
}  // namespace amalur
