#include "integration/tgd.h"

#include <gtest/gtest.h>

namespace amalur {
namespace integration {
namespace {

// m1 of the running example: S1(m,n,a,hr) ∧ S2(m,n,a,o,dd) → T(m,a,hr,o).
Tgd MakeJointTgd() {
  return Tgd({TgdAtom{"S1", {"m", "n", "a", "hr"}},
              TgdAtom{"S2", {"m", "n", "a", "o", "dd"}}},
             TgdAtom{"T", {"m", "a", "hr", "o"}});
}

// m2: S1(m,n,a,hr) → ∃o T(m,a,hr,o).
Tgd MakeS1Tgd() {
  return Tgd({TgdAtom{"S1", {"m", "n", "a", "hr"}}},
             TgdAtom{"T", {"m", "a", "hr", "o"}});
}

TEST(TgdAtomTest, ToString) {
  EXPECT_EQ((TgdAtom{"S1", {"m", "n"}}).ToString(), "S1(m, n)");
  EXPECT_EQ((TgdAtom{"T", {}}).ToString(), "T()");
}

TEST(TgdTest, UniversalVariablesAreBodyVarsInOrder) {
  EXPECT_EQ(MakeJointTgd().UniversalVariables(),
            (std::vector<std::string>{"m", "n", "a", "hr", "o", "dd"}));
  EXPECT_EQ(MakeS1Tgd().UniversalVariables(),
            (std::vector<std::string>{"m", "n", "a", "hr"}));
}

TEST(TgdTest, ExistentialVariablesAreHeadOnlyVars) {
  EXPECT_TRUE(MakeJointTgd().ExistentialVariables().empty());
  EXPECT_EQ(MakeS1Tgd().ExistentialVariables(),
            (std::vector<std::string>{"o"}));
}

TEST(TgdTest, FullTgdDetection) {
  EXPECT_TRUE(MakeJointTgd().IsFull());   // Example IV.1: m1 is full
  EXPECT_FALSE(MakeS1Tgd().IsFull());     // m2 has ∃o
}

TEST(TgdTest, JointDetection) {
  EXPECT_TRUE(MakeJointTgd().IsJoint());
  EXPECT_FALSE(MakeS1Tgd().IsJoint());
}

TEST(TgdTest, JoinVariablesAreSharedBodyVars) {
  EXPECT_EQ(MakeJointTgd().JoinVariables(),
            (std::vector<std::string>{"m", "n", "a"}));
  EXPECT_TRUE(MakeS1Tgd().JoinVariables().empty());
}

TEST(TgdTest, ToStringRendersQuantifiers) {
  EXPECT_EQ(MakeS1Tgd().ToString(),
            "∀ m, n, a, hr (S1(m, n, a, hr) → ∃ o T(m, a, hr, o))");
  EXPECT_EQ(MakeJointTgd().ToString(),
            "∀ m, n, a, hr, o, dd (S1(m, n, a, hr) ∧ S2(m, n, a, o, dd) → "
            "T(m, a, hr, o))");
}

TEST(TgdTest, Equality) {
  EXPECT_EQ(MakeJointTgd(), MakeJointTgd());
  EXPECT_FALSE(MakeJointTgd() == MakeS1Tgd());
}

}  // namespace
}  // namespace integration
}  // namespace amalur
