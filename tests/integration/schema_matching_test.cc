#include "integration/schema_matching.h"

#include <gtest/gtest.h>

#include "integration/running_example.h"
#include "relational/generator.h"

namespace amalur {
namespace integration {
namespace {

TEST(SchemaMatchingTest, RunningExampleFindsSharedColumns) {
  RunningExample ex = MakeRunningExample();
  auto matches = MatchSchemas(ex.s1, ex.s2);
  // Expected: m<->m, n<->n, a<->a. hr/o/dd must not match anything.
  ASSERT_GE(matches.size(), 3u);
  bool found_m = false, found_n = false, found_a = false;
  for (const ColumnMatch& m : matches) {
    const std::string left = ex.s1.column(m.left_column).name();
    const std::string right = ex.s2.column(m.right_column).name();
    if (left == "m" && right == "m") found_m = true;
    if (left == "n" && right == "n") found_n = true;
    if (left == "a" && right == "a") found_a = true;
    EXPECT_NE(left + right, "hro") << "hr must not match o";
  }
  EXPECT_TRUE(found_m);
  EXPECT_TRUE(found_n);
  EXPECT_TRUE(found_a);
}

TEST(SchemaMatchingTest, IdenticalColumnsScoreHigh) {
  rel::Column a = rel::Column::FromDoubles("age", {20, 35, 22, 37});
  rel::Column b = rel::Column::FromDoubles("age", {45, 20, 37});
  EXPECT_GT(ScoreColumnPair(a, b, {}), 0.8);
}

TEST(SchemaMatchingTest, StringVsNumericNeverMatches) {
  rel::Column a = rel::Column::FromStrings("x", {"1", "2"});
  rel::Column b = rel::Column::FromDoubles("x", {1, 2});
  EXPECT_DOUBLE_EQ(ScoreColumnPair(a, b, {}), 0.0);
}

TEST(SchemaMatchingTest, AbbreviationHeuristic) {
  // "restingHR" vs "resting heart rate"-style containment.
  rel::Column a = rel::Column::FromDoubles("restingHR", {60, 58, 65});
  rel::Column b = rel::Column::FromDoubles("resting", {61, 57, 64});
  SchemaMatcherOptions options;
  EXPECT_GT(ScoreColumnPair(a, b, options), options.threshold);
}

TEST(SchemaMatchingTest, DisjointRangesLowerInstanceScore) {
  rel::Column age = rel::Column::FromDoubles("v1", {20, 35, 22, 37, 28});
  rel::Column oxygen = rel::Column::FromDoubles("v2", {95, 97, 92, 96, 94});
  rel::Column age2 = rel::Column::FromDoubles("v3", {25, 31, 24, 33, 29});
  SchemaMatcherOptions options;
  const double cross = ScoreColumnPair(age, oxygen, options);
  const double same = ScoreColumnPair(age, age2, options);
  EXPECT_GT(same, cross);
}

TEST(SchemaMatchingTest, MatchingIsOneToOne) {
  RunningExample ex = MakeRunningExample();
  auto matches = MatchSchemas(ex.s1, ex.s2);
  std::set<size_t> left_seen, right_seen;
  for (const ColumnMatch& m : matches) {
    EXPECT_TRUE(left_seen.insert(m.left_column).second);
    EXPECT_TRUE(right_seen.insert(m.right_column).second);
  }
}

TEST(SchemaMatchingTest, GeneratedSilosSharedColumnsRecovered) {
  rel::SiloPairSpec spec;
  spec.base_rows = 200;
  spec.other_rows = 100;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.shared_features = 2;
  spec.seed = 11;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto matches = MatchSchemas(pair.base, pair.other);
  // Shared columns s0, s1 and the key k must be matched by name+instances.
  size_t shared_found = 0;
  for (const ColumnMatch& m : matches) {
    const std::string left = pair.base.column(m.left_column).name();
    const std::string right = pair.other.column(m.right_column).name();
    if (left == right && (left == "s0" || left == "s1" || left == "k")) {
      ++shared_found;
    }
  }
  EXPECT_EQ(shared_found, 3u);
}

TEST(SchemaMatchingTest, ThresholdFiltersWeakPairs) {
  RunningExample ex = MakeRunningExample();
  SchemaMatcherOptions strict;
  strict.threshold = 0.99;
  auto matches = MatchSchemas(ex.s1, ex.s2, strict);
  for (const ColumnMatch& m : matches) EXPECT_GE(m.score, 0.99);
}

}  // namespace
}  // namespace integration
}  // namespace amalur
