// Entity-resolution quality under injected noise: ER must recover the
// generator's ground-truth matching with high precision/recall even when
// names carry typos and attributes are partially null — and degrade
// gracefully (precision stays high) as noise grows.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "integration/entity_resolution.h"
#include "relational/table.h"

namespace amalur {
namespace integration {
namespace {

/// Two silos describing the same `entities` people: left has all of them,
/// right has a subset, with `typo_rate` of right names perturbed and
/// `null_rate` of ages dropped.
struct NoisyPair {
  rel::Table left, right;
  std::vector<std::pair<size_t, size_t>> truth;  // (left row, right row)
};

NoisyPair MakeNoisyPair(size_t entities, double subset, double typo_rate,
                        double null_rate, uint64_t seed) {
  Rng rng(seed);
  NoisyPair pair;
  std::vector<std::string> names(entities);
  std::vector<int64_t> ages(entities);
  for (size_t e = 0; e < entities; ++e) {
    // Distinctive synthetic names: "p<e>x<random>".
    names[e] = "p" + std::to_string(e) + "x" + std::to_string(rng.NextUint64(90) + 10);
    ages[e] = rng.NextInt64(18, 95);
  }
  pair.left = rel::Table("L");
  AMALUR_CHECK_OK(pair.left.AddColumn(rel::Column::FromStrings("name", names)));
  AMALUR_CHECK_OK(pair.left.AddColumn(rel::Column::FromInt64s("age", ages)));

  pair.right = rel::Table("R");
  rel::Column r_names("name", rel::DataType::kString);
  rel::Column r_ages("age", rel::DataType::kInt64);
  size_t right_row = 0;
  for (size_t e = 0; e < entities; ++e) {
    if (!rng.NextBernoulli(subset)) continue;
    std::string name = names[e];
    if (rng.NextBernoulli(typo_rate) && name.size() > 3) {
      std::swap(name[1], name[2]);  // transposition typo
    }
    r_names.AppendString(name);
    if (rng.NextBernoulli(null_rate)) {
      r_ages.AppendNull();
    } else {
      r_ages.AppendInt64(ages[e]);
    }
    pair.truth.emplace_back(e, right_row++);
  }
  AMALUR_CHECK_OK(pair.right.AddColumn(std::move(r_names)));
  AMALUR_CHECK_OK(pair.right.AddColumn(std::move(r_ages)));
  return pair;
}

struct Quality {
  double precision;
  double recall;
};

Quality Evaluate(const rel::RowMatching& matching,
                 const std::vector<std::pair<size_t, size_t>>& truth) {
  std::set<std::pair<size_t, size_t>> truth_set(truth.begin(), truth.end());
  size_t hits = 0;
  for (const auto& m : matching.matched) hits += truth_set.count(m);
  const double precision =
      matching.matched.empty()
          ? 1.0
          : static_cast<double>(hits) / static_cast<double>(matching.matched.size());
  const double recall = truth.empty() ? 1.0
                                      : static_cast<double>(hits) /
                                            static_cast<double>(truth.size());
  return {precision, recall};
}

std::vector<ColumnMatch> NameAgeMatches() { return {{0, 0, 1.0}, {1, 1, 1.0}}; }

TEST(ErQualityTest, CleanDataIsPerfect) {
  NoisyPair pair = MakeNoisyPair(300, 0.6, 0.0, 0.0, 1);
  auto matching = ResolveEntities(pair.left, pair.right, NameAgeMatches());
  ASSERT_TRUE(matching.ok());
  Quality q = Evaluate(*matching, pair.truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(ErQualityTest, TyposToleratedWithHighRecall) {
  NoisyPair pair = MakeNoisyPair(300, 0.6, 0.3, 0.0, 2);
  EntityResolverOptions options;
  options.threshold = 0.75;
  auto matching =
      ResolveEntities(pair.left, pair.right, NameAgeMatches(), options);
  ASSERT_TRUE(matching.ok());
  Quality q = Evaluate(*matching, pair.truth);
  EXPECT_GT(q.precision, 0.95);
  EXPECT_GT(q.recall, 0.9);
}

TEST(ErQualityTest, NullsReduceRecallNotPrecision) {
  NoisyPair pair = MakeNoisyPair(300, 0.6, 0.1, 0.4, 3);
  EntityResolverOptions options;
  options.threshold = 0.75;
  auto matching =
      ResolveEntities(pair.left, pair.right, NameAgeMatches(), options);
  ASSERT_TRUE(matching.ok());
  Quality q = Evaluate(*matching, pair.truth);
  EXPECT_GT(q.precision, 0.9);   // accepted pairs stay trustworthy
  EXPECT_GT(q.recall, 0.5);      // some entities become unmatchable
}

TEST(ErQualityTest, StricterThresholdTradesRecallForPrecision) {
  NoisyPair pair = MakeNoisyPair(400, 0.5, 0.4, 0.2, 4);
  EntityResolverOptions loose;
  loose.threshold = 0.6;
  EntityResolverOptions strict;
  strict.threshold = 0.95;
  auto loose_match =
      ResolveEntities(pair.left, pair.right, NameAgeMatches(), loose);
  auto strict_match =
      ResolveEntities(pair.left, pair.right, NameAgeMatches(), strict);
  ASSERT_TRUE(loose_match.ok());
  ASSERT_TRUE(strict_match.ok());
  Quality ql = Evaluate(*loose_match, pair.truth);
  Quality qs = Evaluate(*strict_match, pair.truth);
  EXPECT_GE(qs.precision, ql.precision);
  EXPECT_GE(ql.recall, qs.recall);
}

}  // namespace
}  // namespace integration
}  // namespace amalur
