#include "integration/entity_resolution.h"

#include <gtest/gtest.h>

#include "integration/running_example.h"
#include "integration/schema_matching.h"
#include "relational/generator.h"

namespace amalur {
namespace integration {
namespace {

std::vector<ColumnMatch> RunningExampleColumnMatches() {
  // m<->m, n<->n, a<->a by schema position in S1/S2.
  return {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}};
}

TEST(EntityResolutionTest, RunningExampleFindsJane) {
  RunningExample ex = MakeRunningExample();
  EntityResolverOptions options;
  options.threshold = 0.9;
  auto matching =
      ResolveEntities(ex.s1, ex.s2, RunningExampleColumnMatches(), options);
  ASSERT_TRUE(matching.ok()) << matching.status();
  ASSERT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->matched[0], (std::pair<size_t, size_t>{3, 2}));
  EXPECT_EQ(matching->left_only, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(matching->right_only, (std::vector<size_t>{0, 1}));
}

TEST(EntityResolutionTest, ScoredPairsCarrySimilarity) {
  RunningExample ex = MakeRunningExample();
  auto pairs = ResolveEntityPairs(ex.s1, ex.s2, RunningExampleColumnMatches());
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_DOUBLE_EQ((*pairs)[0].score, 1.0);  // Jane matches exactly
}

TEST(EntityResolutionTest, TypoToleratedBelowStrictThreshold) {
  // Same entity with a name typo: "Jane" vs "Jnae".
  rel::Table left("L");
  AMALUR_CHECK_OK(
      left.AddColumn(rel::Column::FromStrings("n", {"Jane", "Bob"})));
  AMALUR_CHECK_OK(left.AddColumn(rel::Column::FromInt64s("a", {37, 50})));
  rel::Table right("R");
  AMALUR_CHECK_OK(
      right.AddColumn(rel::Column::FromStrings("n", {"Jnae", "Alice"})));
  AMALUR_CHECK_OK(right.AddColumn(rel::Column::FromInt64s("a", {37, 28})));

  EntityResolverOptions tolerant;
  tolerant.threshold = 0.7;
  tolerant.use_blocking = false;  // the typo breaks first-char blocking? no —
                                  // J matches; disabled to test pure scoring
  auto matching = ResolveEntities(
      left, right, {{0, 0, 1.0}, {1, 1, 1.0}}, tolerant);
  ASSERT_TRUE(matching.ok());
  ASSERT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->matched[0], (std::pair<size_t, size_t>{0, 0}));

  EntityResolverOptions strict;
  strict.threshold = 0.99;
  auto none = ResolveEntities(left, right, {{0, 0, 1.0}, {1, 1, 1.0}}, strict);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->matched.empty());
}

TEST(EntityResolutionTest, AssignmentIsOneToOne) {
  // Two identical left rows compete for one right row.
  rel::Table left("L");
  AMALUR_CHECK_OK(
      left.AddColumn(rel::Column::FromStrings("n", {"Jane", "Jane"})));
  rel::Table right("R");
  AMALUR_CHECK_OK(right.AddColumn(rel::Column::FromStrings("n", {"Jane"})));
  auto matching = ResolveEntities(left, right, {{0, 0, 1.0}});
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->left_only.size(), 1u);
}

TEST(EntityResolutionTest, BlockingMatchesExhaustiveOnGeneratedData) {
  rel::SiloPairSpec spec;
  spec.base_rows = 120;
  spec.other_rows = 60;
  spec.row_overlap = 0.5;
  spec.match_fraction = 0.25;
  spec.shared_features = 2;
  spec.seed = 33;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  // Match on the key column (exact) — ER should recover key equality.
  auto key_left = pair.base.ColumnIndex("k").ValueOrDie();
  auto key_right = pair.other.ColumnIndex("k").ValueOrDie();
  std::vector<ColumnMatch> matches{{key_left, key_right, 1.0}};

  EntityResolverOptions blocked;
  blocked.use_blocking = true;
  EntityResolverOptions exhaustive;
  exhaustive.use_blocking = false;
  auto with_blocking = ResolveEntities(pair.base, pair.other, matches, blocked);
  auto without = ResolveEntities(pair.base, pair.other, matches, exhaustive);
  ASSERT_TRUE(with_blocking.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with_blocking->matched.size(), without->matched.size());
  // 25% of 120 base rows reference S2 keys; 1:1 assignment caps at 30.
  EXPECT_EQ(with_blocking->matched.size(), 30u);
}

TEST(EntityResolutionTest, NullCellsScoreZeroAgainstValues) {
  rel::Table left("L");
  rel::Column n_left("n", rel::DataType::kString);
  n_left.AppendString("Jane");
  n_left.AppendNull();
  AMALUR_CHECK_OK(left.AddColumn(std::move(n_left)));
  rel::Table right("R");
  AMALUR_CHECK_OK(right.AddColumn(rel::Column::FromStrings("n", {"Jane"})));
  auto matching = ResolveEntities(left, right, {{0, 0, 1.0}});
  ASSERT_TRUE(matching.ok());
  ASSERT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->matched[0].first, 0u);
}

TEST(EntityResolutionTest, RejectsEmptyColumnMatches) {
  RunningExample ex = MakeRunningExample();
  EXPECT_TRUE(
      ResolveEntities(ex.s1, ex.s2, {}).status().IsInvalidArgument());
}

TEST(EntityResolutionTest, RejectsOutOfRangeColumns) {
  RunningExample ex = MakeRunningExample();
  EXPECT_TRUE(ResolveEntities(ex.s1, ex.s2, {{99, 0, 1.0}})
                  .status()
                  .IsOutOfRange());
}

TEST(DeduplicateRowsTest, ExactDuplicatesCluster) {
  rel::Table t("D");
  AMALUR_CHECK_OK(
      t.AddColumn(rel::Column::FromStrings("n", {"a", "b", "a", "a"})));
  AMALUR_CHECK_OK(t.AddColumn(rel::Column::FromInt64s("v", {1, 2, 1, 9})));
  auto clusters = DeduplicateRows(t, {0, 1});
  EXPECT_EQ(clusters, (std::vector<size_t>{0, 1, 0, 3}));
  EXPECT_DOUBLE_EQ(DuplicateRatio(t, {0, 1}), 0.25);
}

TEST(DeduplicateRowsTest, AllNullRowsAreNotDuplicates) {
  rel::Table t("D");
  rel::Column c("n", rel::DataType::kString);
  c.AppendNull();
  c.AppendNull();
  AMALUR_CHECK_OK(t.AddColumn(std::move(c)));
  auto clusters = DeduplicateRows(t, {0});
  EXPECT_EQ(clusters, (std::vector<size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(DuplicateRatio(t, {0}), 0.0);
}

TEST(DeduplicateRowsTest, GeneratorDuplicatesDetected) {
  rel::SiloPairSpec spec;
  spec.base_rows = 10;
  spec.other_rows = 100;
  spec.other_dup_rate = 0.3;
  spec.other_features = 2;
  spec.seed = 5;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  std::vector<size_t> all_columns(pair.other.NumColumns());
  for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = i;
  EXPECT_NEAR(DuplicateRatio(pair.other, all_columns), 0.3 / 1.3, 0.02);
}

}  // namespace
}  // namespace integration
}  // namespace amalur
