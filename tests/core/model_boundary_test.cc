#include <gtest/gtest.h>

#include "core/amalur.h"
#include "relational/generator.h"

/// Zero-row holdout boundary contracts: predicting over an empty (but
/// schema-correct) table is a legal no-op — an empty answer — while
/// evaluating one is `kInvalidArgument`, because every metric's empty
/// average is 0.0 and the resulting report would impersonate a perfect
/// model. Schema validation still runs first either way.

namespace amalur {
namespace core {
namespace {

ModelHandle TrainModel(Amalur* amalur) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 120;
  spec.other_rows = 30;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 53;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  AMALUR_CHECK_OK(
      amalur->catalog()->RegisterSource({"a", pair.base, "", false}));
  AMALUR_CHECK_OK(
      amalur->catalog()->RegisterSource({"b", pair.other, "", false}));
  auto integration = amalur->Integrate("a", "b", rel::JoinKind::kLeftJoin);
  AMALUR_CHECK(integration.ok()) << integration.status();
  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 30;
  request.gd.learning_rate = 0.05;
  auto model = amalur->Train(*integration, request);
  AMALUR_CHECK(model.ok()) << model.status();
  return *std::move(model);
}

/// A zero-row table carrying the model's full training schema (features +
/// label), each column present and numeric, just empty.
rel::Table EmptyHoldout(const ModelHandle& model) {
  rel::Table holdout("holdout");
  AMALUR_CHECK_OK(holdout.AddColumn(
      rel::Column::FromDoubles(model.label_column(), {})));
  for (const std::string& name : model.feature_names()) {
    AMALUR_CHECK_OK(holdout.AddColumn(rel::Column::FromDoubles(name, {})));
  }
  return holdout;
}

TEST(ModelBoundaryTest, ZeroRowPredictReturnsAnEmptyAnswer) {
  Amalur amalur;
  ModelHandle model = TrainModel(&amalur);
  rel::Table holdout = EmptyHoldout(model);
  ASSERT_EQ(holdout.NumRows(), 0u);

  auto predictions = model.Predict(holdout);
  ASSERT_TRUE(predictions.ok()) << predictions.status();
  EXPECT_EQ(predictions->rows(), 0u);
  EXPECT_EQ(predictions->cols(), 1u);
}

TEST(ModelBoundaryTest, ZeroRowEvaluateIsInvalidArgument) {
  Amalur amalur;
  ModelHandle model = TrainModel(&amalur);
  rel::Table holdout = EmptyHoldout(model);

  Status status = model.Evaluate(holdout).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  // The error explains the degeneration instead of just rejecting.
  EXPECT_NE(status.message().find("zero-row"), std::string::npos) << status;
}

TEST(ModelBoundaryTest, SchemaValidationStillRunsOnZeroRowTables) {
  // An empty table with the WRONG schema is a schema error, not an empty
  // success: the missing-column contract outranks the zero-row shortcut.
  Amalur amalur;
  ModelHandle model = TrainModel(&amalur);

  rel::Table missing("missing");
  AMALUR_CHECK_OK(missing.AddColumn(
      rel::Column::FromDoubles(model.feature_names().front(), {})));
  EXPECT_TRUE(model.Predict(missing).status().IsInvalidArgument());
  EXPECT_TRUE(model.Evaluate(missing).status().IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace amalur
