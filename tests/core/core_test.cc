#include <gtest/gtest.h>

#include "core/amalur.h"
#include "cost/calibrator.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"
#include "relational/generator.h"

namespace amalur {
namespace core {
namespace {

TEST(CatalogTest, SourceCrud) {
  Catalog catalog;
  integration::RunningExample ex = integration::MakeRunningExample();
  EXPECT_TRUE(catalog.RegisterSource({"S1", ex.s1, "er", false}).ok());
  EXPECT_TRUE(
      catalog.RegisterSource({"S1", ex.s1, "er", false}).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterSource({"", ex.s1, "", false}).IsInvalidArgument());
  EXPECT_TRUE(catalog.HasSource("S1"));
  EXPECT_FALSE(catalog.HasSource("S9"));
  auto entry = catalog.GetSource("S1");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->silo_location, "er");
  EXPECT_TRUE(catalog.GetSource("S9").status().IsNotFound());
  EXPECT_EQ(catalog.SourceNames(), (std::vector<std::string>{"S1"}));
}

TEST(CatalogTest, DiMetadataStorage) {
  Catalog catalog;
  catalog.StoreColumnMatches("a", "b", {{0, 1, 0.9}});
  auto matches = catalog.GetColumnMatches("a", "b");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ((*matches)->size(), 1u);
  EXPECT_TRUE(catalog.GetColumnMatches("b", "a").status().IsNotFound());
  rel::RowMatching matching;
  matching.matched = {{3, 2}};
  catalog.StoreRowMatching("a", "b", matching);
  auto stored = catalog.GetRowMatching("a", "b");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*stored)->matched.size(), 1u);
}

TEST(CatalogTest, IntegrationRegistry) {
  Catalog catalog;
  IntegrationHandle handle;
  handle.name = "star-1";
  handle.source_names = {"fact", "dim"};
  EXPECT_TRUE(catalog.RegisterIntegration(handle).ok());
  // Duplicate names are rejected, never silently overwritten.
  EXPECT_TRUE(catalog.RegisterIntegration(handle).IsAlreadyExists());
  IntegrationHandle unnamed;
  EXPECT_TRUE(catalog.RegisterIntegration(unnamed).IsInvalidArgument());
  EXPECT_TRUE(catalog.HasIntegration("star-1"));
  EXPECT_FALSE(catalog.HasIntegration("star-2"));
  auto fetched = catalog.GetIntegration("star-1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->source_names,
            (std::vector<std::string>{"fact", "dim"}));
  EXPECT_TRUE(catalog.GetIntegration("star-2").status().IsNotFound());
  EXPECT_EQ(catalog.IntegrationNames(), (std::vector<std::string>{"star-1"}));
}

TEST(CatalogTest, ModelRegistry) {
  Catalog catalog;
  ModelEntry model;
  model.name = "m1";
  model.task = "linear_regression";
  model.metric = 0.25;
  EXPECT_TRUE(catalog.RegisterModel(model).ok());
  EXPECT_TRUE(catalog.RegisterModel(model).IsAlreadyExists());
  auto fetched = catalog.GetModel("m1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_DOUBLE_EQ((*fetched)->metric, 0.25);
  EXPECT_EQ(catalog.ModelNames(), (std::vector<std::string>{"m1"}));
}

TEST(OptimizerTest, PrivacyForcesFederation) {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  Optimizer optimizer;
  Plan plan = optimizer.Choose(*metadata, /*privacy_constrained=*/true);
  EXPECT_EQ(plan.strategy, ExecutionStrategy::kFederate);
  EXPECT_NE(plan.explanation.find("privacy"), std::string::npos);
  Plan free_plan = optimizer.Choose(*metadata, false);
  EXPECT_NE(free_plan.strategy, ExecutionStrategy::kFederate);
  EXPECT_FALSE(free_plan.explanation.empty());
}

/// End-to-end: the running example through the full automatic pipeline.
TEST(AmalurTest, RunningExampleEndToEnd) {
  integration::RunningExample ex = integration::MakeRunningExample();
  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", ex.s1, "er", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", ex.s2, "pulmonary", false}).ok());

  IntegrationSpec spec;
  spec.name = "er-pulmonary";
  spec.sources = {"S1", "S2"};
  spec.relationships = {rel::JoinKind::kFullOuterJoin};
  auto integration = amalur.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  // Target schema synthesized as T(m, a, hr, o) — the paper's mediated schema.
  EXPECT_EQ(integration->mapping.target_schema().Names(),
            (std::vector<std::string>{"m", "a", "hr", "o"}));
  // ER recovered Jane.
  ASSERT_EQ(integration->matchings.size(), 1u);
  ASSERT_EQ(integration->matchings[0].matched.size(), 1u);
  EXPECT_EQ(integration->matchings[0].matched[0],
            (std::pair<size_t, size_t>{3, 2}));
  // The materialized matrix matches Figure 4.
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      integration::RunningExampleTargetMatrix()));
  // The named handle became a first-class catalog object.
  ASSERT_TRUE(amalur.catalog()->GetIntegration("er-pulmonary").ok());
  // Re-integrating under the same name is rejected.
  EXPECT_TRUE(amalur.Integrate(spec).status().IsAlreadyExists());

  // Train mortality prediction; strategy is the optimizer's choice.
  TrainRequest request;
  request.task = TrainingTask::kLogisticRegression;
  request.label_column = "m";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.01;
  auto model = amalur.Train(*integration, request, "mortality");
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->weights().rows(), 3u);  // a, hr, o
  EXPECT_EQ(model->feature_names(),
            (std::vector<std::string>{"a", "hr", "o"}));
  EXPECT_FALSE(model->outcome().loss_history.empty());
  // Explain reproduces the executed plan.
  EXPECT_EQ(amalur.Explain(*model).strategy, model->outcome().strategy_used);
  // The model landed in the catalog.
  auto entry = amalur.catalog()->GetModel("mortality");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->task, "logistic_regression");
  EXPECT_EQ((*entry)->training_sources,
            (std::vector<std::string>{"S1", "S2"}));
}

TEST(AmalurTest, FactorizedAndMaterializedAgreeEndToEnd) {
  // Same integration, both strategies forced through the facade's
  // `force_strategy` override: identical weights — the paper's
  // "factorization does not affect accuracy".
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 150;
  spec.other_rows = 30;
  spec.base_features = 2;
  spec.other_features = 5;
  spec.seed = 77;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "silo1", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "silo2", false}).ok());
  auto integration = amalur.Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 30;
  request.gd.learning_rate = 0.05;

  request.force_strategy = ExecutionStrategy::kFactorize;
  auto fact = amalur.Train(*integration, request);
  request.force_strategy = ExecutionStrategy::kMaterialize;
  auto mat = amalur.Train(*integration, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-8);
  EXPECT_EQ(fact->outcome().strategy_used, ExecutionStrategy::kFactorize);
  EXPECT_EQ(mat->outcome().strategy_used, ExecutionStrategy::kMaterialize);
  // The forced plan records both the override and the optimizer's estimate.
  EXPECT_NE(amalur.Explain(*fact).explanation.find("forced"),
            std::string::npos);
}

TEST(AmalurTest, TrainRequestCalibrationFileDrivesThePlan) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 150;
  spec.other_rows = 30;
  spec.base_features = 2;
  spec.other_features = 5;
  spec.seed = 78;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "silo1", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "silo2", false}).ok());
  auto integration = amalur.Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  // A calibration that prices factorization out entirely: the per-request
  // knob must override the facade's constants, flip the plan to materialize
  // and disclose the file's provenance in the explanation.
  cost::Calibration calibration;
  calibration.calibrated = true;
  calibration.source = "request-knob-constants";
  calibration.options.flop_cost = 1e-9;
  calibration.options.factorized_cell_cost = 1e6;
  calibration.options.materialize_cell_cost = 1e-12;
  calibration.options.factorized_row_overhead = 0.0;
  const std::string path = ::testing::TempDir() + "facade_calibration.json";
  ASSERT_TRUE(cost::WriteCalibrationFile(path, calibration).ok());

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 10;
  request.gd.learning_rate = 0.05;
  request.calibration_file = path;
  auto model = amalur.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, ExecutionStrategy::kMaterialize);
  const Plan plan = amalur.Explain(*model);
  EXPECT_NE(plan.explanation.find("calibrated"), std::string::npos)
      << plan.explanation;
  EXPECT_NE(plan.explanation.find("request-knob-constants"), std::string::npos)
      << plan.explanation;

  // An unreadable calibration file never breaks training: the plan falls
  // back to the facade's constants and says why.
  request.calibration_file = ::testing::TempDir() + "no_such_calibration.json";
  auto fallback = amalur.Train(*integration, request);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_NE(amalur.Explain(*fallback).explanation.find("analytic defaults"),
            std::string::npos);
}

TEST(AmalurTest, ForceStrategyAllThreeAgreeOnRedundancyFreeScenario) {
  // A 1:1 inner join duplicates nothing, so every strategy sees the same
  // training matrix and must learn the same weights.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 90;
  spec.other_rows = 90;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 31;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  AmalurOptions options;
  options.matcher.threshold = 0.75;  // generic x0/z0 names need evidence
  Amalur amalur(options);
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = amalur.Integrate("a", "b", rel::JoinKind::kInnerJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;

  std::vector<la::DenseMatrix> weights;
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kFactorize, ExecutionStrategy::kMaterialize,
        ExecutionStrategy::kFederate}) {
    request.force_strategy = strategy;
    auto model = amalur.Train(*integration, request);
    ASSERT_TRUE(model.ok())
        << ExecutionStrategyToString(strategy) << ": " << model.status();
    EXPECT_EQ(model->outcome().strategy_used, strategy);
    weights.push_back(model->weights());
  }
  EXPECT_LT(weights[0].MaxAbsDiff(weights[1]), 1e-8);  // fact == mat
  EXPECT_LT(weights[0].MaxAbsDiff(weights[2]), 1e-8);  // fact == federated
}

TEST(AmalurTest, ModelHandlePredictsAndEvaluatesRelationalData) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 120;
  spec.other_rows = 40;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 91;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = amalur.Integrate("a", "b", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 80;
  request.gd.learning_rate = 0.05;
  auto model = amalur.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();

  // Score the materialized target as a relational table.
  const metadata::DiMetadata& md = integration->metadata;
  rel::Table target = rel::Table::FromMatrix(
      "target", md.MaterializeTargetMatrix(), md.target_schema().Names());
  auto predictions = model->Predict(target);
  ASSERT_TRUE(predictions.ok()) << predictions.status();
  EXPECT_EQ(predictions->rows(), md.target_rows());
  EXPECT_EQ(predictions->cols(), 1u);

  auto report = model->Evaluate(target);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rows, md.target_rows());
  // In-sample MSE of the final weights matches the last training loss.
  EXPECT_NEAR(report->mse, model->outcome().loss_history.back(), 0.05);
  EXPECT_DOUBLE_EQ(report->primary, report->mse);

  // Missing feature columns are the caller's data problem: the serving
  // contract is kInvalidArgument, naming the training-schema column.
  rel::Table incomplete("incomplete");
  AMALUR_CHECK_OK(
      incomplete.AddColumn(rel::Column::FromDoubles("y", {1.0, 2.0})));
  EXPECT_TRUE(model->Predict(incomplete).status().IsInvalidArgument());
  EXPECT_TRUE(model->Evaluate(incomplete).status().IsInvalidArgument());

  // A column with the right name but a string payload is equally invalid.
  rel::Table mistyped("mistyped");
  for (const std::string& name : model->feature_names()) {
    AMALUR_CHECK_OK(mistyped.AddColumn(
        name == model->feature_names().front()
            ? rel::Column::FromStrings(name, {"a", "b"})
            : rel::Column::FromDoubles(name, {1.0, 2.0})));
  }
  EXPECT_TRUE(model->Predict(mistyped).status().IsInvalidArgument());
}

TEST(AmalurTest, ServingAlignsShuffledHoldoutColumnsByName) {
  // Regression: out-of-sample serving must align holdout columns to the
  // training schema by NAME. A holdout table with the same columns in a
  // different (here: reversed) order must score identically — positional
  // trust would silently pair features with the wrong weights.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 100;
  spec.other_rows = 25;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 92;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = amalur.Integrate("a", "b", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 60;
  request.gd.learning_rate = 0.05;
  auto model = amalur.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();

  const metadata::DiMetadata& md = integration->metadata;
  rel::Table target = rel::Table::FromMatrix(
      "target", md.MaterializeTargetMatrix(), md.target_schema().Names());
  std::vector<size_t> reversed(target.NumColumns());
  for (size_t j = 0; j < target.NumColumns(); ++j) {
    reversed[j] = target.NumColumns() - 1 - j;
  }
  rel::Table shuffled = target.Project(reversed);

  auto in_order = model->Predict(target);
  auto out_of_order = model->Predict(shuffled);
  ASSERT_TRUE(in_order.ok()) << in_order.status();
  ASSERT_TRUE(out_of_order.ok()) << out_of_order.status();
  EXPECT_EQ(in_order->MaxAbsDiff(*out_of_order), 0.0);

  auto report_in_order = model->Evaluate(target);
  auto report_shuffled = model->Evaluate(shuffled);
  ASSERT_TRUE(report_in_order.ok()) << report_in_order.status();
  ASSERT_TRUE(report_shuffled.ok()) << report_shuffled.status();
  EXPECT_DOUBLE_EQ(report_in_order->mse, report_shuffled->mse);
}

TEST(AmalurTest, IntegrationSpecValidation) {
  integration::RunningExample ex = integration::MakeRunningExample();
  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", ex.s1, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", ex.s2, "", false}).ok());

  IntegrationSpec spec;
  spec.sources = {"S1"};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsInvalidArgument());

  spec.sources = {"S1", "S1"};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsInvalidArgument());

  spec.sources = {"S1", "S9"};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsNotFound());

  spec.sources = {"S1", "S2"};
  spec.relationships = {rel::JoinKind::kInnerJoin, rel::JoinKind::kLeftJoin};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsInvalidArgument());

  spec.relationships = {rel::JoinKind::kInnerJoin};
  spec.star_base = "S7";  // not among the sources
  EXPECT_TRUE(amalur.Integrate(spec).status().IsInvalidArgument());

  // Star scenarios demand the left-join relationship on every edge.
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S3", ex.s2, "", false}).ok());
  spec.star_base.clear();
  spec.sources = {"S1", "S2", "S3"};
  spec.relationships = {rel::JoinKind::kInnerJoin};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsInvalidArgument());
}

TEST(AmalurTest, GraphSpecValidationReportsPreciseErrors) {
  // Malformed edge-list specs fail fast in the graph planner with messages
  // that name the offending edge or source — no catalog access needed.
  Amalur amalur;
  const auto integrate_message = [&](IntegrationSpec spec) {
    auto result = amalur.Integrate(spec);
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
    return result.status().message();
  };

  IntegrationSpec spec;
  // Unknown source in an edge (the spec declares its participants).
  spec.sources = {"a", "b"};
  spec.edges = {{"a", "mystery", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find(
                "references source 'mystery', which is not among the spec's "
                "sources"),
            std::string::npos);

  // Duplicate edge (either orientation).
  spec.sources.clear();
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin},
                {"b", "a", rel::JoinKind::kUnion}};
  EXPECT_NE(integrate_message(spec).find("duplicate edge between 'b' and 'a'"),
            std::string::npos);

  // Self-loop.
  spec.edges = {{"a", "a", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find("joins source 'a' to itself"),
            std::string::npos);

  // Cycle: every node has a parent, so no root exists.
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin},
                {"b", "c", rel::JoinKind::kLeftJoin},
                {"c", "a", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find("contains a cycle"),
            std::string::npos);

  // Cycle component unreachable from the root.
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin},
                {"c", "d", rel::JoinKind::kLeftJoin},
                {"d", "e", rel::JoinKind::kLeftJoin},
                {"e", "c", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find("cycle"), std::string::npos);

  // Disconnected forest: two roots.
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin},
                {"c", "d", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find("disconnected"), std::string::npos);

  // Declared source reached by no edge.
  spec.sources = {"a", "b", "ghost"};
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(
      integrate_message(spec).find("source 'ghost' appears in no edge"),
      std::string::npos);

  // Two parents of a *fact shard* (a union-edge child). A diamond over a
  // dimension — a conformed dimension — is legal since the DAG
  // generalization; a multi-parent fact is not.
  spec.sources.clear();
  spec.edges = {{"a", "b", rel::JoinKind::kUnion},
                {"a", "c", rel::JoinKind::kLeftJoin},
                {"c", "b", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find(
                "source 'b' is a fact shard (a union-edge child) with "
                "several parent edges"),
            std::string::npos);

  // Union edges may only stack fact shards, not hang off dimensions.
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin},
                {"b", "c", rel::JoinKind::kUnion}};
  EXPECT_NE(integrate_message(spec).find("union edges stack fact shards only"),
            std::string::npos);

  // Full-outer joins exist only in pairwise specs (inner joins are graph
  // edges since the conformed-dimension generalization).
  spec.edges = {{"a", "b", rel::JoinKind::kFullOuterJoin},
                {"a", "c", rel::JoinKind::kLeftJoin}};
  EXPECT_NE(integrate_message(spec).find(
                "only valid on single-edge (pairwise) specs"),
            std::string::npos);

  // star_base belongs to the flat form.
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin}};
  spec.star_base = "a";
  EXPECT_NE(integrate_message(spec).find("star_base applies to the flat"),
            std::string::npos);

  // Edge endpoints that pass validation but are not registered sources
  // surface as NotFound from the catalog.
  spec.star_base.clear();
  spec.edges = {{"a", "b", rel::JoinKind::kLeftJoin}};
  EXPECT_TRUE(amalur.Integrate(spec).status().IsNotFound());
}

TEST(AmalurTest, EdgeListPairwiseSpecMatchesLegacyForm) {
  rel::SiloPairSpec pair_spec;
  pair_spec.kind = rel::JoinKind::kLeftJoin;
  pair_spec.base_rows = 80;
  pair_spec.other_rows = 20;
  pair_spec.base_features = 2;
  pair_spec.other_features = 3;
  pair_spec.seed = 21;
  rel::SiloPair pair = rel::GenerateSiloPair(pair_spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "", false}).ok());

  IntegrationSpec legacy;
  legacy.sources = {"S1", "S2"};
  legacy.relationships = {rel::JoinKind::kLeftJoin};
  auto from_legacy = amalur.Integrate(legacy);
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status();

  IntegrationSpec edge_form;
  edge_form.edges = {{"S1", "S2", rel::JoinKind::kLeftJoin}};
  auto from_edges = amalur.Integrate(edge_form);
  ASSERT_TRUE(from_edges.ok()) << from_edges.status();

  // Both forms lower to the same normalized graph and derive identically.
  EXPECT_EQ(from_legacy->shape, metadata::IntegrationShape::kPairwise);
  EXPECT_EQ(from_edges->shape, from_legacy->shape);
  ASSERT_EQ(from_legacy->edges.size(), 1u);
  EXPECT_EQ(from_legacy->edges[0].left, "S1");
  EXPECT_EQ(from_legacy->edges[0].right, "S2");
  EXPECT_EQ(from_legacy->edges[0].kind, rel::JoinKind::kLeftJoin);
  EXPECT_EQ(from_edges->source_names, from_legacy->source_names);
  EXPECT_EQ(from_edges->metadata.MaterializeTargetMatrix().MaxAbsDiff(
                from_legacy->metadata.MaterializeTargetMatrix()),
            0.0);
  // Explain leads with the graph shape.
  EXPECT_NE(amalur.Explain(*from_edges).explanation.find(
                "graph shape: pairwise"),
            std::string::npos);
}

TEST(AmalurTest, InSampleServingRoutesThroughFactorizedRuntime) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 120;
  spec.other_rows = 30;
  spec.base_features = 2;
  spec.other_features = 4;
  spec.seed = 55;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = amalur.Integrate("a", "b", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  request.force_strategy = ExecutionStrategy::kFactorize;
  auto fact = amalur.Train(*integration, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  request.force_strategy = ExecutionStrategy::kMaterialize;
  auto mat = amalur.Train(*integration, request);
  ASSERT_TRUE(mat.ok()) << mat.status();

  // The factorized model serves in-sample predictions straight off the silo
  // matrices; the result must equal scoring the materialized target as a
  // relational table through the explicit-data path.
  const metadata::DiMetadata& md = integration->metadata;
  rel::Table target = rel::Table::FromMatrix(
      "target", md.MaterializeTargetMatrix(), md.target_schema().Names());
  auto in_sample_fact = fact->Predict();
  ASSERT_TRUE(in_sample_fact.ok()) << in_sample_fact.status();
  EXPECT_EQ(in_sample_fact->rows(), md.target_rows());
  auto explicit_fact = fact->Predict(target);
  ASSERT_TRUE(explicit_fact.ok());
  EXPECT_LT(in_sample_fact->MaxAbsDiff(*explicit_fact), 1e-9);

  // Materialized-plan models fall back to the dense path — same numbers.
  auto in_sample_mat = mat->Predict();
  ASSERT_TRUE(in_sample_mat.ok()) << in_sample_mat.status();
  EXPECT_LT(in_sample_mat->MaxAbsDiff(*in_sample_fact), 1e-6);

  // In-sample evaluation matches the explicit-table evaluation.
  auto report = fact->Evaluate();
  auto table_report = fact->Evaluate(target);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(table_report.ok());
  EXPECT_EQ(report->rows, md.target_rows());
  EXPECT_NEAR(report->mse, table_report->mse, 1e-9);

  // A default-constructed handle has no integration data attached.
  ModelHandle empty;
  EXPECT_TRUE(empty.Predict().status().IsFailedPrecondition());
  EXPECT_TRUE(empty.Evaluate().status().IsFailedPrecondition());
}

TEST(AmalurTest, StarBaseReordersSources) {
  // Naming a star base rotates it to the front: the spec below is the same
  // scenario as {base, dim} with a left join.
  rel::SiloPairSpec pair_spec;
  pair_spec.kind = rel::JoinKind::kLeftJoin;
  pair_spec.base_rows = 60;
  pair_spec.other_rows = 20;
  pair_spec.base_features = 2;
  pair_spec.other_features = 2;
  pair_spec.seed = 17;
  rel::SiloPair pair = rel::GenerateSiloPair(pair_spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"dim", pair.other, "", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"base", pair.base, "", false}).ok());

  IntegrationSpec spec;
  spec.sources = {"dim", "base"};  // wrong order on purpose
  spec.relationships = {rel::JoinKind::kLeftJoin};
  spec.star_base = "base";
  auto integration = amalur.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->source_names,
            (std::vector<std::string>{"base", "dim"}));
  EXPECT_EQ(integration->metadata.target_rows(), 60u);
}

TEST(AmalurTest, PrivacySensitiveSourceTriggersFederatedRun) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 60;
  spec.other_rows = 60;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.seed = 78;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "bank-a", true}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "bank-b", true}).ok());
  auto integration = amalur.Integrate("S1", "S2", rel::JoinKind::kInnerJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_TRUE(integration->privacy_constrained);
  EXPECT_EQ(amalur.Explain(*integration).strategy, ExecutionStrategy::kFederate);

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 25;
  request.gd.learning_rate = 0.05;
  auto model = amalur.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, ExecutionStrategy::kFederate);
  EXPECT_GT(model->outcome().bytes_transferred, 0u);
  EXPECT_LT(model->outcome().loss_history.back(),
            model->outcome().loss_history.front());

  // Forcing a data-moving strategy over a privacy-constrained integration
  // is rejected — the override cannot launder the privacy constraint.
  request.force_strategy = ExecutionStrategy::kMaterialize;
  EXPECT_TRUE(
      amalur.Train(*integration, request).status().IsFailedPrecondition());
}

TEST(AmalurTest, IntegrateValidation) {
  Amalur amalur;
  EXPECT_TRUE(amalur.Integrate("a", "b", rel::JoinKind::kInnerJoin)
                  .status()
                  .IsNotFound());
  // Two tables with nothing in common cannot form a join scenario.
  rel::Table left("L");
  AMALUR_CHECK_OK(left.AddColumn(rel::Column::FromDoubles("ppp", {1, 2})));
  rel::Table right("R");
  AMALUR_CHECK_OK(right.AddColumn(
      rel::Column::FromStrings("qqq", {"x", "y"})));
  ASSERT_TRUE(amalur.catalog()->RegisterSource({"L", left, "", false}).ok());
  ASSERT_TRUE(amalur.catalog()->RegisterSource({"R", right, "", false}).ok());
  EXPECT_TRUE(amalur.Integrate("L", "R", rel::JoinKind::kInnerJoin)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ExecutorTest, UnknownLabelColumnRejected) {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  Executor executor;
  TrainRequest request;
  request.label_column = "nope";
  Plan plan{ExecutionStrategy::kFactorize, {}, ""};
  EXPECT_TRUE(executor.Run(*metadata, plan, request).status().IsNotFound());
}

TEST(ExecutorTest, FederatedLogisticUnimplemented) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 20;
  spec.other_rows = 20;
  spec.seed = 79;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  Executor executor;
  TrainRequest request;
  request.task = TrainingTask::kLogisticRegression;
  request.label_column = "y";
  Plan plan{ExecutionStrategy::kFederate, {}, ""};
  EXPECT_TRUE(
      executor.Run(*metadata, plan, request).status().IsUnimplemented());
}

TEST(StrategyNamesTest, AllRender) {
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kFactorize),
               "factorize");
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kMaterialize),
               "materialize");
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kFederate),
               "federate");
  EXPECT_STREQ(TrainingTaskToString(TrainingTask::kLinearRegression),
               "linear_regression");
}

}  // namespace
}  // namespace core
}  // namespace amalur
