#include <gtest/gtest.h>

#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"
#include "relational/generator.h"

namespace amalur {
namespace core {
namespace {

TEST(CatalogTest, SourceCrud) {
  Catalog catalog;
  integration::RunningExample ex = integration::MakeRunningExample();
  EXPECT_TRUE(catalog.RegisterSource({"S1", ex.s1, "er", false}).ok());
  EXPECT_TRUE(
      catalog.RegisterSource({"S1", ex.s1, "er", false}).IsAlreadyExists());
  EXPECT_TRUE(catalog.RegisterSource({"", ex.s1, "", false}).IsInvalidArgument());
  EXPECT_TRUE(catalog.HasSource("S1"));
  EXPECT_FALSE(catalog.HasSource("S9"));
  auto entry = catalog.GetSource("S1");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->silo_location, "er");
  EXPECT_TRUE(catalog.GetSource("S9").status().IsNotFound());
  EXPECT_EQ(catalog.SourceNames(), (std::vector<std::string>{"S1"}));
}

TEST(CatalogTest, DiMetadataStorage) {
  Catalog catalog;
  catalog.StoreColumnMatches("a", "b", {{0, 1, 0.9}});
  auto matches = catalog.GetColumnMatches("a", "b");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ((*matches)->size(), 1u);
  EXPECT_TRUE(catalog.GetColumnMatches("b", "a").status().IsNotFound());
  rel::RowMatching matching;
  matching.matched = {{3, 2}};
  catalog.StoreRowMatching("a", "b", matching);
  auto stored = catalog.GetRowMatching("a", "b");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ((*stored)->matched.size(), 1u);
}

TEST(CatalogTest, ModelRegistry) {
  Catalog catalog;
  ModelEntry model;
  model.name = "m1";
  model.task = "linear_regression";
  model.metric = 0.25;
  EXPECT_TRUE(catalog.RegisterModel(model).ok());
  EXPECT_TRUE(catalog.RegisterModel(model).IsAlreadyExists());
  auto fetched = catalog.GetModel("m1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_DOUBLE_EQ((*fetched)->metric, 0.25);
  EXPECT_EQ(catalog.ModelNames(), (std::vector<std::string>{"m1"}));
}

TEST(OptimizerTest, PrivacyForcesFederation) {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  Optimizer optimizer;
  Plan plan = optimizer.Choose(*metadata, /*privacy_constrained=*/true);
  EXPECT_EQ(plan.strategy, ExecutionStrategy::kFederate);
  EXPECT_NE(plan.explanation.find("privacy"), std::string::npos);
  Plan free_plan = optimizer.Choose(*metadata, false);
  EXPECT_NE(free_plan.strategy, ExecutionStrategy::kFederate);
  EXPECT_FALSE(free_plan.explanation.empty());
}

/// End-to-end: the running example through the full automatic pipeline.
TEST(AmalurTest, RunningExampleEndToEnd) {
  integration::RunningExample ex = integration::MakeRunningExample();
  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", ex.s1, "er", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", ex.s2, "pulmonary", false}).ok());

  auto integration =
      amalur.Integrate("S1", "S2", rel::JoinKind::kFullOuterJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  // Target schema synthesized as T(m, a, hr, o) — the paper's mediated schema.
  EXPECT_EQ(integration->mapping.target_schema().Names(),
            (std::vector<std::string>{"m", "a", "hr", "o"}));
  // ER recovered Jane.
  ASSERT_EQ(integration->matching.matched.size(), 1u);
  EXPECT_EQ(integration->matching.matched[0],
            (std::pair<size_t, size_t>{3, 2}));
  // The materialized matrix matches Figure 4.
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      integration::RunningExampleTargetMatrix()));

  // Train mortality prediction; strategy is the optimizer's choice.
  TrainRequest request;
  request.task = TrainingTask::kLogisticRegression;
  request.label_column = "m";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.01;
  auto outcome = amalur.Train(*integration, request, "mortality");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->weights.rows(), 3u);  // a, hr, o
  EXPECT_FALSE(outcome->loss_history.empty());
  // The model landed in the catalog.
  auto model = amalur.catalog()->GetModel("mortality");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->task, "logistic_regression");
  EXPECT_EQ((*model)->training_sources,
            (std::vector<std::string>{"S1", "S2"}));
}

TEST(AmalurTest, FactorizedAndMaterializedAgreeEndToEnd) {
  // Same integration, both strategies forced via the executor: identical
  // weights — the paper's "factorization does not affect accuracy".
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 150;
  spec.other_rows = 30;
  spec.base_features = 2;
  spec.other_features = 5;
  spec.seed = 77;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "silo1", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "silo2", false}).ok());
  auto integration = amalur.Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 30;
  request.gd.learning_rate = 0.05;

  Executor executor;
  Plan factorize{ExecutionStrategy::kFactorize, {}, "forced"};
  Plan materialize{ExecutionStrategy::kMaterialize, {}, "forced"};
  auto fact = executor.Run(integration->metadata, factorize, request);
  auto mat = executor.Run(integration->metadata, materialize, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights.MaxAbsDiff(mat->weights), 1e-8);
  EXPECT_EQ(fact->strategy_used, ExecutionStrategy::kFactorize);
  EXPECT_EQ(mat->strategy_used, ExecutionStrategy::kMaterialize);
}

TEST(AmalurTest, PrivacySensitiveSourceTriggersFederatedRun) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 60;
  spec.other_rows = 60;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.seed = 78;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", pair.base, "bank-a", true}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", pair.other, "bank-b", true}).ok());
  auto integration = amalur.Integrate("S1", "S2", rel::JoinKind::kInnerJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_TRUE(integration->privacy_constrained);
  EXPECT_EQ(amalur.PlanFor(*integration).strategy, ExecutionStrategy::kFederate);

  TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 25;
  request.gd.learning_rate = 0.05;
  auto outcome = amalur.Train(*integration, request);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->strategy_used, ExecutionStrategy::kFederate);
  EXPECT_GT(outcome->bytes_transferred, 0u);
  EXPECT_LT(outcome->loss_history.back(), outcome->loss_history.front());
}

TEST(AmalurTest, IntegrateValidation) {
  Amalur amalur;
  EXPECT_TRUE(amalur.Integrate("a", "b", rel::JoinKind::kInnerJoin)
                  .status()
                  .IsNotFound());
  // Two tables with nothing in common cannot form a join scenario.
  rel::Table left("L");
  AMALUR_CHECK_OK(left.AddColumn(rel::Column::FromDoubles("ppp", {1, 2})));
  rel::Table right("R");
  AMALUR_CHECK_OK(right.AddColumn(
      rel::Column::FromStrings("qqq", {"x", "y"})));
  ASSERT_TRUE(amalur.catalog()->RegisterSource({"L", left, "", false}).ok());
  ASSERT_TRUE(amalur.catalog()->RegisterSource({"R", right, "", false}).ok());
  EXPECT_TRUE(amalur.Integrate("L", "R", rel::JoinKind::kInnerJoin)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ExecutorTest, UnknownLabelColumnRejected) {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  Executor executor;
  TrainRequest request;
  request.label_column = "nope";
  Plan plan{ExecutionStrategy::kFactorize, {}, ""};
  EXPECT_TRUE(executor.Run(*metadata, plan, request).status().IsNotFound());
}

TEST(ExecutorTest, FederatedLogisticUnimplemented) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 20;
  spec.other_rows = 20;
  spec.seed = 79;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  Executor executor;
  TrainRequest request;
  request.task = TrainingTask::kLogisticRegression;
  request.label_column = "y";
  Plan plan{ExecutionStrategy::kFederate, {}, ""};
  EXPECT_TRUE(
      executor.Run(*metadata, plan, request).status().IsUnimplemented());
}

TEST(StrategyNamesTest, AllRender) {
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kFactorize),
               "factorize");
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kMaterialize),
               "materialize");
  EXPECT_STREQ(ExecutionStrategyToString(ExecutionStrategy::kFederate),
               "federate");
  EXPECT_STREQ(TrainingTaskToString(TrainingTask::kLinearRegression),
               "linear_regression");
}

}  // namespace
}  // namespace core
}  // namespace amalur
