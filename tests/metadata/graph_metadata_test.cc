// DiMetadata::DeriveGraph: the general tree derivation behind snowflake and
// union-of-stars scenarios. Star graphs must be bitwise-identical to the
// dedicated DeriveStar path; snowflakes must compose matchings along the
// dimension chain; union-of-stars must stack shard blocks with no
// cross-shard redundancy — and everything must agree with first-principles
// relational references and the factorized rewrites.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "factorized/factorized_table.h"
#include "factorized/scenario_builder.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"
#include "relational/join.h"

namespace amalur {
namespace metadata {
namespace {

/// A three-source star as an explicit graph: base(k1, k2, y, x0),
/// dim1(k1, z0, z1), dim2(k2, w0, w1) with fan-out.
struct StarFixture {
  rel::Table base{"base"}, dim1{"dim1"}, dim2{"dim2"};
  integration::SchemaMapping mapping;
  std::vector<rel::RowMatching> matchings;
};

StarFixture MakeStar(uint64_t seed = 5) {
  Rng rng(seed);
  StarFixture f;
  const size_t dim1_rows = 20, dim2_rows = 40, base_rows = 80;
  auto fill_dim = [&rng](rel::Table* table, const std::string& key,
                         size_t rows, const std::vector<const char*>& names) {
    std::vector<int64_t> keys(rows);
    for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(table->AddColumn(rel::Column::FromInt64s(key, keys)));
    for (const char* name : names) {
      std::vector<double> values(rows);
      for (double& v : values) v = rng.NextGaussian();
      AMALUR_CHECK_OK(
          table->AddColumn(rel::Column::FromDoubles(name, values)));
    }
  };
  fill_dim(&f.dim1, "k1", dim1_rows, {"z0", "z1"});
  fill_dim(&f.dim2, "k2", dim2_rows, {"w0", "w1"});
  {
    std::vector<int64_t> k1(base_rows), k2(base_rows);
    std::vector<double> y(base_rows), x0(base_rows);
    for (size_t i = 0; i < base_rows; ++i) {
      k1[i] = static_cast<int64_t>(i % dim1_rows);
      k2[i] = static_cast<int64_t>(i % dim2_rows);
      y[i] = rng.NextGaussian();
      x0[i] = rng.NextGaussian();
    }
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k1", k1)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k2", k2)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("y", y)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("x0", x0)));
  }
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "base", f.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim1", f.dim1.schema(), {{"z0", "z0"}, {"z1", "z1"}}},
       integration::SchemaMapping::SourceSpec{
           "dim2", f.dim2.schema(), {{"w0", "w0"}, {"w1", "w1"}}}},
      rel::Schema::AllDouble({"y", "x0", "z0", "z1", "w0", "w1"}),
      {{0, "k1", 1, "k1"}, {0, "k2", 2, "k2"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();
  f.mapping = std::move(mapping).ValueOrDie();
  for (const auto& [dim, key] :
       std::vector<std::pair<const rel::Table*, std::string>>{
           {&f.dim1, "k1"}, {&f.dim2, "k2"}}) {
    auto matching = rel::MatchRowsOnKeys(f.base, *dim, {key}, {key});
    AMALUR_CHECK(matching.ok()) << matching.status();
    f.matchings.push_back(std::move(matching).ValueOrDie());
  }
  return f;
}

TEST(GraphMetadataTest, PureStarBitwiseEqualsDeriveStar) {
  StarFixture f = MakeStar();
  const std::vector<const rel::Table*> tables{&f.base, &f.dim1, &f.dim2};
  auto star = DiMetadata::DeriveStar(f.mapping, tables, f.matchings);
  ASSERT_TRUE(star.ok()) << star.status();
  auto graph = DiMetadata::DeriveGraph(
      f.mapping, tables,
      {{0, 1, rel::JoinKind::kLeftJoin}, {0, 2, rel::JoinKind::kLeftJoin}},
      f.matchings);
  ASSERT_TRUE(graph.ok()) << graph.status();

  EXPECT_EQ(graph->shape(), IntegrationShape::kStar);
  EXPECT_EQ(graph->shape(), star->shape());
  EXPECT_EQ(graph->num_shards(), 1u);
  EXPECT_EQ(graph->join_depth(), 1u);
  ASSERT_EQ(graph->num_sources(), star->num_sources());
  EXPECT_EQ(graph->target_rows(), star->target_rows());
  for (size_t k = 0; k < graph->num_sources(); ++k) {
    // Bitwise equality of every derived artifact per source.
    EXPECT_EQ(graph->source(k).indicator.values(),
              star->source(k).indicator.values());
    EXPECT_EQ(graph->source(k).mapping.values(),
              star->source(k).mapping.values());
    EXPECT_EQ(graph->source(k).data.MaxAbsDiff(star->source(k).data), 0.0);
    EXPECT_EQ(graph->source(k).redundancy.ToDense().MaxAbsDiff(
                  star->source(k).redundancy.ToDense()),
              0.0);
    EXPECT_EQ(graph->source(k).column_names, star->source(k).column_names);
  }
  EXPECT_EQ(graph->MaterializeTargetMatrix().MaxAbsDiff(
                star->MaterializeTargetMatrix()),
            0.0);
}

TEST(GraphMetadataTest, SnowflakeComposesIndicatorsAlongTheChain) {
  rel::SnowflakeSpec spec;
  spec.fact_rows = 120;
  spec.level_rows = {24, 6};
  spec.level_features = {2, 3};
  spec.seed = 7;
  rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
  auto md = factorized::DeriveSnowflakeMetadata(snowflake);
  ASSERT_TRUE(md.ok()) << md.status();

  EXPECT_EQ(md->shape(), IntegrationShape::kSnowflake);
  EXPECT_EQ(md->num_shards(), 1u);
  EXPECT_EQ(md->join_depth(), 2u);
  EXPECT_EQ(md->target_rows(), spec.fact_rows);
  // The sub-dimension's indicator is the composition of the two round-robin
  // key assignments: fact row i -> dim0 row i % 24 -> dim1 row (i % 24) % 6.
  const CompressedIndicator& sub = md->source(2).indicator;
  for (size_t i = 0; i < spec.fact_rows; ++i) {
    EXPECT_EQ(sub.At(i), static_cast<int64_t>((i % 24) % 6)) << "row " << i;
  }

  // Relational reference: fact ⋈ dim0 ⋈ dim1, projected onto the target.
  auto j1 = rel::HashJoin(snowflake.tables[0], snowflake.tables[1],
                          {"dim0_id"}, {"dim0_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j1.ok()) << j1.status();
  auto j2 = rel::HashJoin(j1->table, snowflake.tables[2], {"dim1_id"},
                          {"dim1_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok()) << j2.status();
  auto projected = j2->table.ProjectNames(md->target_schema().Names());
  ASSERT_TRUE(projected.ok()) << projected.status();
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));
}

TEST(GraphMetadataTest, SnowflakeFactorizedOpsMatchMaterialized) {
  rel::SnowflakeSpec spec;
  spec.fact_rows = 90;
  spec.level_rows = {18, 6, 3};
  spec.level_features = {2, 2, 1};
  spec.seed = 8;
  auto md = factorized::DeriveSnowflakeMetadata(rel::GenerateSnowflake(spec));
  ASSERT_TRUE(md.ok()) << md.status();
  factorized::FactorizedTable table(*md);
  la::DenseMatrix dense = table.Materialize();
  Rng rng(9);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 3, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(dense.Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(dense.TransposeMultiply(y)),
      1e-9);
  EXPECT_LT(table.RowSums().MaxAbsDiff(dense.RowSums()), 1e-9);
  EXPECT_LT(table.ColSums().MaxAbsDiff(dense.ColSums()), 1e-9);
}

TEST(GraphMetadataTest, UnionOfStarsStacksShardBlocks) {
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 50;
  spec.fact_features = 2;
  spec.dim_rows = 10;
  spec.dim_features = 2;
  spec.seed = 11;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
  auto md = factorized::DeriveUnionOfStarsMetadata(scenario);
  ASSERT_TRUE(md.ok()) << md.status();

  EXPECT_EQ(md->shape(), IntegrationShape::kUnionOfStars);
  EXPECT_EQ(md->num_shards(), 2u);
  EXPECT_EQ(md->join_depth(), 1u);
  EXPECT_EQ(md->target_rows(), 2 * spec.fact_rows);
  // Shard facts are identities inside their block, absent outside.
  const CompressedIndicator& fact0 = md->source(0).indicator;
  const CompressedIndicator& fact1 = md->source(2).indicator;
  for (size_t i = 0; i < spec.fact_rows; ++i) {
    EXPECT_EQ(fact0.At(i), static_cast<int64_t>(i));
    EXPECT_EQ(fact0.At(spec.fact_rows + i), -1);
    EXPECT_EQ(fact1.At(i), -1);
    EXPECT_EQ(fact1.At(spec.fact_rows + i), static_cast<int64_t>(i));
  }
  // Shard rows are disjoint, so the shared y/x columns carry no cross-shard
  // redundancy; per-shard redundancy also vanishes (disjoint columns).
  for (size_t k = 0; k < md->num_sources(); ++k) {
    EXPECT_FALSE(md->source(k).redundancy.HasRedundancy()) << "source " << k;
  }

  // Relational reference per block: shard's fact ⋈ dim projected onto the
  // target schema (absent other-shard columns materialize as zero).
  la::DenseMatrix target = md->MaterializeTargetMatrix();
  for (size_t s = 0; s < 2; ++s) {
    const std::string key = "dim" + std::to_string(s) + "_id";
    auto joined =
        rel::HashJoin(scenario.tables[2 * s], scenario.tables[2 * s + 1],
                      {key}, {key}, rel::JoinKind::kLeftJoin);
    ASSERT_TRUE(joined.ok()) << joined.status();
    const size_t offset = s * spec.fact_rows;
    for (const std::string& name : md->target_schema().Names()) {
      const auto target_col = md->target_schema().IndexOf(name);
      auto shard_col = joined->table.ColumnIndex(name);
      for (size_t i = 0; i < spec.fact_rows; ++i) {
        const double expected =
            shard_col.ok() &&
                    !joined->table.column(*shard_col).IsNull(i)
                ? joined->table.column(*shard_col).GetDouble(i)
                : 0.0;
        EXPECT_NEAR(target.At(offset + i, *target_col), expected, 1e-12)
            << "shard " << s << " row " << i << " column " << name;
      }
    }
  }

  // Factorized rewrites agree with the stacked dense target.
  factorized::FactorizedTable table(*md);
  Rng rng(12);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 2, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(target.Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(target.TransposeMultiply(y)),
      1e-9);
}

TEST(GraphMetadataTest, ConformedDimensionMergesParentChains) {
  // A conformed dimension — one shared table referenced through two
  // intermediate dimensions — appears ONCE: one source entry, its columns
  // once in the target schema, and one indicator merged from both parent
  // chains (which agree by construction).
  rel::ConformedSnowflakeSpec spec;
  spec.fact_rows = 120;
  spec.fact_features = 2;
  spec.branches = 2;
  spec.branch_rows = 20;
  spec.branch_features = 2;
  spec.shared_rows = 5;
  spec.shared_features = 2;
  spec.seed = 31;
  rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
  auto md = factorized::DeriveConformedSnowflakeMetadata(scenario);
  ASSERT_TRUE(md.ok()) << md.status();

  EXPECT_EQ(md->shape(), IntegrationShape::kConformedSnowflake);
  EXPECT_EQ(md->num_shared_dimensions(), 1u);
  EXPECT_EQ(md->num_shards(), 1u);
  EXPECT_EQ(md->join_depth(), 2u);
  EXPECT_EQ(md->target_rows(), spec.fact_rows);
  ASSERT_EQ(md->num_sources(), 4u);  // fact, branch0, branch1, shared ONCE

  // The shared dimension's columns appear exactly once in the target.
  const std::vector<std::string> target_names = md->target_schema().Names();
  for (const std::string& name : md->source(3).column_names) {
    EXPECT_EQ(std::count(target_names.begin(), target_names.end(), name), 1)
        << name;
  }

  // Merged indicator: both chains resolve fact row i to shared row
  // (i % R) % S — the generator's conformed contract.
  const CompressedIndicator& shared = md->source(3).indicator;
  for (size_t i = 0; i < spec.fact_rows; ++i) {
    EXPECT_EQ(shared.At(i),
              static_cast<int64_t>((i % spec.branch_rows) % spec.shared_rows))
        << "row " << i;
  }

  // Relational reference: fact ⋈ branch0 ⋈ branch1 ⋈ shared, projected
  // onto the target schema. The shared dimension joins through branch0's
  // key; branch1's copy agrees by construction.
  auto j1 = rel::HashJoin(scenario.tables[0], scenario.tables[1],
                          {"branch0_id"}, {"branch0_id"},
                          rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j1.ok()) << j1.status();
  auto j2 = rel::HashJoin(j1->table, scenario.tables[2], {"branch1_id"},
                          {"branch1_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok()) << j2.status();
  auto j3 = rel::HashJoin(j2->table, scenario.tables[3], {"shared_id"},
                          {"shared_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j3.ok()) << j3.status();
  auto projected = j3->table.ProjectNames(target_names);
  ASSERT_TRUE(projected.ok()) << projected.status();
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));

  // The factorized rewrites see the merged silo exactly once.
  factorized::FactorizedTable table(*md);
  Rng rng(32);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 3, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(expected->Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(expected->TransposeMultiply(y)),
      1e-9);
}

TEST(GraphMetadataTest, ConformedChainDisagreementRejected) {
  // Chains that resolve a fact row to DIFFERENT shared rows contradict the
  // conformed contract: the derivation must refuse rather than silently
  // pick one.
  rel::ConformedSnowflakeSpec spec;
  spec.fact_rows = 40;
  spec.branches = 2;
  spec.branch_rows = 8;
  spec.shared_rows = 4;
  spec.seed = 33;
  rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
  // Tamper with branch1's shared references so its chain lands elsewhere.
  rel::Table& branch1 = scenario.tables[2];
  auto shared_col = branch1.ColumnIndex("shared_id");
  ASSERT_TRUE(shared_col.ok());
  std::vector<int64_t> skewed(spec.branch_rows);
  for (size_t j = 0; j < spec.branch_rows; ++j) {
    skewed[j] = (branch1.column(*shared_col).int64_data()[j] + 1) %
                static_cast<int64_t>(spec.shared_rows);
  }
  *branch1.mutable_column(*shared_col) =
      rel::Column::FromInt64s("shared_id", std::move(skewed));

  auto md = factorized::DeriveConformedSnowflakeMetadata(scenario);
  EXPECT_TRUE(md.status().IsFailedPrecondition()) << md.status();
  EXPECT_NE(md.status().message().find("conformed"), std::string::npos)
      << md.status();
}

TEST(GraphMetadataTest, InnerJoinEdgeRestrictsRowsLikeRelationalJoin) {
  // An inner-join edge drops exactly the target rows the relational inner
  // join would: rows whose (composed) indicator is absent.
  rel::ConformedSnowflakeSpec spec;
  spec.fact_rows = 100;
  spec.fact_features = 1;
  spec.branches = 2;
  spec.branch_rows = 10;
  spec.branch_features = 1;
  spec.shared_rows = 5;
  spec.shared_features = 1;
  spec.match_fraction = 0.7;  // 30 fact rows carry dangling references
  spec.seed = 37;
  rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);

  auto left = factorized::DeriveConformedSnowflakeMetadata(scenario);
  ASSERT_TRUE(left.ok()) << left.status();
  EXPECT_EQ(left->target_rows(), spec.fact_rows);  // left joins keep all rows

  auto inner =
      factorized::DeriveConformedSnowflakeMetadata(scenario,
                                                   /*inner_branches=*/1);
  ASSERT_TRUE(inner.ok()) << inner.status();

  // Relational reference: fact INNER JOIN branch0, then left joins down the
  // rest of the graph.
  auto j1 = rel::HashJoin(scenario.tables[0], scenario.tables[1],
                          {"branch0_id"}, {"branch0_id"},
                          rel::JoinKind::kInnerJoin);
  ASSERT_TRUE(j1.ok()) << j1.status();
  EXPECT_EQ(inner->target_rows(), j1->table.NumRows());
  EXPECT_EQ(inner->target_rows(), 70u);

  auto j2 = rel::HashJoin(j1->table, scenario.tables[2], {"branch1_id"},
                          {"branch1_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok()) << j2.status();
  auto j3 = rel::HashJoin(j2->table, scenario.tables[3], {"shared_id"},
                          {"shared_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j3.ok()) << j3.status();
  auto projected = j3->table.ProjectNames(inner->target_schema().Names());
  ASSERT_TRUE(projected.ok()) << projected.status();
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(inner->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));

  // Shard bookkeeping survives the row restriction.
  EXPECT_EQ(inner->ShardRowBegin(0), 0u);
  EXPECT_EQ(inner->ShardRowEnd(0), inner->target_rows());
}

TEST(GraphMetadataTest, InnerEdgeIntoConformedDimensionChecksItsOwnChain) {
  // Regression: an inner edge whose CHILD is a conformed dimension must
  // test its own chain, not the merged indicator — a row whose inner-edge
  // reference dangles is dropped even when another parent's chain resolves
  // the dimension.
  auto keyed = [](const std::string& name, const std::string& key,
                  std::vector<int64_t> keys,
                  std::vector<std::pair<std::string, std::vector<int64_t>>>
                      extra_keys,
                  const std::string& feature, std::vector<double> values) {
    rel::Table table(name);
    AMALUR_CHECK_OK(
        table.AddColumn(rel::Column::FromInt64s(key, std::move(keys))));
    for (auto& [k, v] : extra_keys) {
      AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromInt64s(k, std::move(v))));
    }
    AMALUR_CHECK_OK(
        table.AddColumn(rel::Column::FromDoubles(feature, std::move(values))));
    return table;
  };
  // fact rows: row 3's b1 reference dangles (no b1 row carries key 9); its
  // b0 chain still resolves the shared dimension.
  rel::Table fact = keyed("fact", "b0_id", {0, 1, 0, 1},
                          {{"b1_id", {1, 0, 1, 9}}}, "y",
                          {1.0, 2.0, 3.0, 4.0});
  rel::Table b0 =
      keyed("b0", "b0_id", {0, 1}, {{"c_id", {0, 1}}}, "u0", {10.0, 11.0});
  rel::Table b1 =
      keyed("b1", "b1_id", {0, 1}, {{"c_id", {1, 0}}}, "v0", {20.0, 21.0});
  rel::Table c = keyed("c", "c_id", {0, 1}, {}, "w0", {30.0, 31.0});

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{"fact", fact.schema(),
                                              {{"y", "y"}}},
       integration::SchemaMapping::SourceSpec{"b0", b0.schema(),
                                              {{"u0", "u0"}}},
       integration::SchemaMapping::SourceSpec{"b1", b1.schema(),
                                              {{"v0", "v0"}}},
       integration::SchemaMapping::SourceSpec{"c", c.schema(), {{"w0", "w0"}}}},
      rel::Schema::AllDouble({"y", "u0", "v0", "w0"}),
      {{0, "b0_id", 1, "b0_id"},
       {0, "b1_id", 2, "b1_id"},
       {1, "c_id", 3, "c_id"},
       {2, "c_id", 3, "c_id"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto m_b0 = rel::MatchRowsOnKeys(fact, b0, {"b0_id"}, {"b0_id"});
  auto m_b1 = rel::MatchRowsOnKeys(fact, b1, {"b1_id"}, {"b1_id"});
  auto m_b0c = rel::MatchRowsOnKeys(b0, c, {"c_id"}, {"c_id"});
  auto m_b1c = rel::MatchRowsOnKeys(b1, c, {"c_id"}, {"c_id"});
  ASSERT_TRUE(m_b0.ok() && m_b1.ok() && m_b0c.ok() && m_b1c.ok());
  // NOTE: b0 and b1 route each fact row to the SAME c row (b0's c_id is the
  // identity on key k -> c_id k; b1's is the swap, but fact references b1
  // with swapped keys), so the conformed contract holds where both resolve.
  const std::vector<MetadataEdge> edges{{0, 1, rel::JoinKind::kLeftJoin},
                                        {0, 2, rel::JoinKind::kLeftJoin},
                                        {1, 3, rel::JoinKind::kLeftJoin},
                                        {2, 3, rel::JoinKind::kInnerJoin}};
  const std::vector<rel::RowMatching> matchings{*m_b0, *m_b1, *m_b0c, *m_b1c};

  auto md = DiMetadata::DeriveGraph(*mapping, {&fact, &b0, &b1, &c}, edges,
                                    matchings);
  ASSERT_TRUE(md.ok()) << md.status();
  // Row 3 is dropped: its b1 -> c chain dangles, even though b0 -> c
  // resolves. This is exactly (fact LJ b0 LJ b1) INNER JOIN c ON b1.c_id.
  EXPECT_EQ(md->target_rows(), 3u);
  auto j1 = rel::HashJoin(fact, b0, {"b0_id"}, {"b0_id"},
                          rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j1.ok());
  auto j2 = rel::HashJoin(j1->table, b1, {"b1_id"}, {"b1_id"},
                          rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok());
  auto j3 = rel::HashJoin(j2->table, c, {"c_id_b1"}, {"c_id"},
                          rel::JoinKind::kInnerJoin);
  if (!j3.ok()) {
    // Column naming of the duplicate c_id depends on the join's collision
    // suffix; fall back to the unsuffixed name if b1's copy kept it.
    j3 = rel::HashJoin(j2->table, c, {"c_id"}, {"c_id"},
                       rel::JoinKind::kInnerJoin);
  }
  ASSERT_TRUE(j3.ok()) << j3.status();
  EXPECT_EQ(md->target_rows(), j3->table.NumRows());
}

TEST(GraphMetadataTest, ChainConflictOnInnerDroppedRowIsHarmless) {
  // Conformed chains that disagree ONLY on rows an inner-join edge drops
  // never reach the target — the derivation must succeed. The same graph
  // without the inner edge keeps the row and must fail.
  auto keyed = [](const std::string& name,
                  std::vector<std::pair<std::string, std::vector<int64_t>>>
                      key_columns,
                  const std::string& feature, std::vector<double> values) {
    rel::Table table(name);
    for (auto& [k, v] : key_columns) {
      AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromInt64s(k, std::move(v))));
    }
    AMALUR_CHECK_OK(
        table.AddColumn(rel::Column::FromDoubles(feature, std::move(values))));
    return table;
  };
  // Row 3: b0 chain -> c row 1, b1 chain -> c row 0 (conflict), and b2's
  // reference dangles (key 9).
  rel::Table fact = keyed(
      "fact",
      {{"b0_id", {0, 1, 0, 1}}, {"b1_id", {0, 1, 0, 2}}, {"b2_id", {0, 1, 0, 9}}},
      "y", {1.0, 2.0, 3.0, 4.0});
  rel::Table b0 =
      keyed("b0", {{"b0_id", {0, 1}}, {"c_id", {0, 1}}}, "u0", {10.0, 11.0});
  rel::Table b1 = keyed("b1", {{"b1_id", {0, 1, 2}}, {"c_id", {0, 1, 0}}}, "v0",
                        {20.0, 21.0, 22.0});
  rel::Table b2 = keyed("b2", {{"b2_id", {0, 1}}}, "t0", {40.0, 41.0});
  rel::Table c = keyed("c", {{"c_id", {0, 1}}}, "w0", {30.0, 31.0});

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{"fact", fact.schema(),
                                              {{"y", "y"}}},
       integration::SchemaMapping::SourceSpec{"b0", b0.schema(),
                                              {{"u0", "u0"}}},
       integration::SchemaMapping::SourceSpec{"b1", b1.schema(),
                                              {{"v0", "v0"}}},
       integration::SchemaMapping::SourceSpec{"b2", b2.schema(),
                                              {{"t0", "t0"}}},
       integration::SchemaMapping::SourceSpec{"c", c.schema(), {{"w0", "w0"}}}},
      rel::Schema::AllDouble({"y", "u0", "v0", "t0", "w0"}),
      {{0, "b0_id", 1, "b0_id"},
       {0, "b1_id", 2, "b1_id"},
       {0, "b2_id", 3, "b2_id"},
       {1, "c_id", 4, "c_id"},
       {2, "c_id", 4, "c_id"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto m_b0 = rel::MatchRowsOnKeys(fact, b0, {"b0_id"}, {"b0_id"});
  auto m_b1 = rel::MatchRowsOnKeys(fact, b1, {"b1_id"}, {"b1_id"});
  auto m_b2 = rel::MatchRowsOnKeys(fact, b2, {"b2_id"}, {"b2_id"});
  auto m_b0c = rel::MatchRowsOnKeys(b0, c, {"c_id"}, {"c_id"});
  auto m_b1c = rel::MatchRowsOnKeys(b1, c, {"c_id"}, {"c_id"});
  ASSERT_TRUE(m_b0.ok() && m_b1.ok() && m_b2.ok() && m_b0c.ok() && m_b1c.ok());
  const std::vector<const rel::Table*> tables{&fact, &b0, &b1, &b2, &c};
  const std::vector<rel::RowMatching> matchings{*m_b0, *m_b1, *m_b2, *m_b0c,
                                                *m_b1c};

  // Inner edge on b2: row 3 drops, its chain conflict is moot.
  auto with_inner = DiMetadata::DeriveGraph(
      *mapping, tables,
      {{0, 1, rel::JoinKind::kLeftJoin},
       {0, 2, rel::JoinKind::kLeftJoin},
       {0, 3, rel::JoinKind::kInnerJoin},
       {1, 4, rel::JoinKind::kLeftJoin},
       {2, 4, rel::JoinKind::kLeftJoin}},
      matchings);
  ASSERT_TRUE(with_inner.ok()) << with_inner.status();
  EXPECT_EQ(with_inner->target_rows(), 3u);

  // All-left graph: row 3 survives, so the disagreement is fatal.
  auto all_left = DiMetadata::DeriveGraph(
      *mapping, tables,
      {{0, 1, rel::JoinKind::kLeftJoin},
       {0, 2, rel::JoinKind::kLeftJoin},
       {0, 3, rel::JoinKind::kLeftJoin},
       {1, 4, rel::JoinKind::kLeftJoin},
       {2, 4, rel::JoinKind::kLeftJoin}},
      matchings);
  EXPECT_TRUE(all_left.status().IsFailedPrecondition()) << all_left.status();
}

TEST(GraphMetadataTest, SharedDimensionAcrossUnionShards) {
  // Two fact shards referencing ONE dimension silo: the union-of-stars
  // generalization of a conformed dimension. The dimension's single source
  // entry serves both shard blocks through one indicator.
  Rng rng(41);
  const size_t shard_rows = 30, dim_rows = 6;
  rel::Table dim("dim");
  {
    std::vector<int64_t> keys(dim_rows);
    for (size_t i = 0; i < dim_rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(dim.AddColumn(rel::Column::FromInt64s("dim_id", keys)));
    std::vector<double> u(dim_rows);
    for (double& v : u) v = rng.NextGaussian();
    AMALUR_CHECK_OK(dim.AddColumn(rel::Column::FromDoubles("u0", u)));
  }
  auto make_fact = [&](const std::string& name, size_t offset) {
    rel::Table fact(name);
    std::vector<int64_t> keys(shard_rows);
    std::vector<double> y(shard_rows), x(shard_rows);
    for (size_t i = 0; i < shard_rows; ++i) {
      keys[i] = static_cast<int64_t>((i + offset) % dim_rows);
      y[i] = rng.NextGaussian();
      x[i] = rng.NextGaussian();
    }
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromInt64s("dim_id", keys)));
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromDoubles("y", y)));
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromDoubles("x0", x)));
    return fact;
  };
  rel::Table fact0 = make_fact("fact0", 0);
  rel::Table fact1 = make_fact("fact1", 3);

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kUnion,
      {integration::SchemaMapping::SourceSpec{
           "fact0", fact0.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "fact1", fact1.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim", dim.schema(), {{"u0", "u0"}}}},
      rel::Schema::AllDouble({"y", "x0", "u0"}),
      {{0, "dim_id", 2, "dim_id"}, {1, "dim_id", 2, "dim_id"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto m0 = rel::MatchRowsOnKeys(fact0, dim, {"dim_id"}, {"dim_id"});
  auto m1 = rel::MatchRowsOnKeys(fact1, dim, {"dim_id"}, {"dim_id"});
  ASSERT_TRUE(m0.ok() && m1.ok());

  auto md = DiMetadata::DeriveGraph(
      *mapping, {&fact0, &fact1, &dim},
      {{0, 1, rel::JoinKind::kUnion},
       {0, 2, rel::JoinKind::kLeftJoin},
       {1, 2, rel::JoinKind::kLeftJoin}},
      {{}, *m0, *m1});
  ASSERT_TRUE(md.ok()) << md.status();
  EXPECT_EQ(md->shape(), IntegrationShape::kUnionOfStars);
  EXPECT_EQ(md->num_shards(), 2u);
  EXPECT_EQ(md->num_shared_dimensions(), 1u);
  EXPECT_EQ(md->target_rows(), 2 * shard_rows);
  // The dimension's indicator is defined in BOTH shard blocks.
  const CompressedIndicator& shared = md->source(2).indicator;
  for (size_t i = 0; i < shard_rows; ++i) {
    EXPECT_EQ(shared.At(i), static_cast<int64_t>(i % dim_rows));
    EXPECT_EQ(shared.At(shard_rows + i),
              static_cast<int64_t>((i + 3) % dim_rows));
  }

  // Reference: per-shard fact ⋈ dim blocks stacked.
  la::DenseMatrix target = md->MaterializeTargetMatrix();
  for (size_t s = 0; s < 2; ++s) {
    const rel::Table& fact = s == 0 ? fact0 : fact1;
    auto joined = rel::HashJoin(fact, dim, {"dim_id"}, {"dim_id"},
                                rel::JoinKind::kLeftJoin);
    ASSERT_TRUE(joined.ok()) << joined.status();
    for (const std::string& name : {"y", "x0", "u0"}) {
      const auto target_col = md->target_schema().IndexOf(name);
      auto shard_col = joined->table.ColumnIndex(name);
      ASSERT_TRUE(shard_col.ok());
      for (size_t i = 0; i < shard_rows; ++i) {
        EXPECT_NEAR(target.At(s * shard_rows + i, *target_col),
                    joined->table.column(*shard_col).GetDouble(i), 1e-12)
            << "shard " << s << " row " << i << " column " << name;
      }
    }
  }
}

TEST(GraphMetadataTest, Validation) {
  StarFixture f = MakeStar();
  const std::vector<const rel::Table*> tables{&f.base, &f.dim1, &f.dim2};
  // Edges must be in topological order with parent < child.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{1, 0, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // Every non-root source needs a parent edge (source 1 has none here; a
  // multi-parent *dimension* — a conformed dimension — is legal, a
  // disconnected source is not).
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 2, rel::JoinKind::kLeftJoin},
                   {1, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // Full outer joins are not graph edges (inner joins are, since the
  // conformed-dimension generalization).
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kFullOuterJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // Duplicate edges between one pair.
  {
    std::vector<rel::RowMatching> duplicated{f.matchings[0], f.matchings[0],
                                             f.matchings[1]};
    EXPECT_TRUE(DiMetadata::DeriveGraph(
                    f.mapping, tables,
                    {{0, 1, rel::JoinKind::kLeftJoin},
                     {0, 1, rel::JoinKind::kLeftJoin},
                     {0, 2, rel::JoinKind::kLeftJoin}},
                    duplicated)
                    .status()
                    .IsInvalidArgument());
  }
  // Union edges carry no row matching.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kUnion}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // A union edge set needs a union mapping (this one is left-join).
  std::vector<rel::RowMatching> union_matchings{f.matchings[0], {}};
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kUnion}},
                  union_matchings)
                  .status()
                  .IsInvalidArgument());
  // Non-functional join matching.
  auto broken = f.matchings;
  broken[0].matched.push_back(broken[0].matched[0]);
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  broken)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
