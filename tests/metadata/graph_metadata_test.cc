// DiMetadata::DeriveGraph: the general tree derivation behind snowflake and
// union-of-stars scenarios. Star graphs must be bitwise-identical to the
// dedicated DeriveStar path; snowflakes must compose matchings along the
// dimension chain; union-of-stars must stack shard blocks with no
// cross-shard redundancy — and everything must agree with first-principles
// relational references and the factorized rewrites.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/factorized_table.h"
#include "factorized/scenario_builder.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"
#include "relational/join.h"

namespace amalur {
namespace metadata {
namespace {

/// A three-source star as an explicit graph: base(k1, k2, y, x0),
/// dim1(k1, z0, z1), dim2(k2, w0, w1) with fan-out.
struct StarFixture {
  rel::Table base{"base"}, dim1{"dim1"}, dim2{"dim2"};
  integration::SchemaMapping mapping;
  std::vector<rel::RowMatching> matchings;
};

StarFixture MakeStar(uint64_t seed = 5) {
  Rng rng(seed);
  StarFixture f;
  const size_t dim1_rows = 20, dim2_rows = 40, base_rows = 80;
  auto fill_dim = [&rng](rel::Table* table, const std::string& key,
                         size_t rows, const std::vector<const char*>& names) {
    std::vector<int64_t> keys(rows);
    for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(table->AddColumn(rel::Column::FromInt64s(key, keys)));
    for (const char* name : names) {
      std::vector<double> values(rows);
      for (double& v : values) v = rng.NextGaussian();
      AMALUR_CHECK_OK(
          table->AddColumn(rel::Column::FromDoubles(name, values)));
    }
  };
  fill_dim(&f.dim1, "k1", dim1_rows, {"z0", "z1"});
  fill_dim(&f.dim2, "k2", dim2_rows, {"w0", "w1"});
  {
    std::vector<int64_t> k1(base_rows), k2(base_rows);
    std::vector<double> y(base_rows), x0(base_rows);
    for (size_t i = 0; i < base_rows; ++i) {
      k1[i] = static_cast<int64_t>(i % dim1_rows);
      k2[i] = static_cast<int64_t>(i % dim2_rows);
      y[i] = rng.NextGaussian();
      x0[i] = rng.NextGaussian();
    }
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k1", k1)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k2", k2)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("y", y)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("x0", x0)));
  }
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "base", f.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim1", f.dim1.schema(), {{"z0", "z0"}, {"z1", "z1"}}},
       integration::SchemaMapping::SourceSpec{
           "dim2", f.dim2.schema(), {{"w0", "w0"}, {"w1", "w1"}}}},
      rel::Schema::AllDouble({"y", "x0", "z0", "z1", "w0", "w1"}),
      {{0, "k1", 1, "k1"}, {0, "k2", 2, "k2"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();
  f.mapping = std::move(mapping).ValueOrDie();
  for (const auto& [dim, key] :
       std::vector<std::pair<const rel::Table*, std::string>>{
           {&f.dim1, "k1"}, {&f.dim2, "k2"}}) {
    auto matching = rel::MatchRowsOnKeys(f.base, *dim, {key}, {key});
    AMALUR_CHECK(matching.ok()) << matching.status();
    f.matchings.push_back(std::move(matching).ValueOrDie());
  }
  return f;
}

TEST(GraphMetadataTest, PureStarBitwiseEqualsDeriveStar) {
  StarFixture f = MakeStar();
  const std::vector<const rel::Table*> tables{&f.base, &f.dim1, &f.dim2};
  auto star = DiMetadata::DeriveStar(f.mapping, tables, f.matchings);
  ASSERT_TRUE(star.ok()) << star.status();
  auto graph = DiMetadata::DeriveGraph(
      f.mapping, tables,
      {{0, 1, rel::JoinKind::kLeftJoin}, {0, 2, rel::JoinKind::kLeftJoin}},
      f.matchings);
  ASSERT_TRUE(graph.ok()) << graph.status();

  EXPECT_EQ(graph->shape(), IntegrationShape::kStar);
  EXPECT_EQ(graph->shape(), star->shape());
  EXPECT_EQ(graph->num_shards(), 1u);
  EXPECT_EQ(graph->join_depth(), 1u);
  ASSERT_EQ(graph->num_sources(), star->num_sources());
  EXPECT_EQ(graph->target_rows(), star->target_rows());
  for (size_t k = 0; k < graph->num_sources(); ++k) {
    // Bitwise equality of every derived artifact per source.
    EXPECT_EQ(graph->source(k).indicator.values(),
              star->source(k).indicator.values());
    EXPECT_EQ(graph->source(k).mapping.values(),
              star->source(k).mapping.values());
    EXPECT_EQ(graph->source(k).data.MaxAbsDiff(star->source(k).data), 0.0);
    EXPECT_EQ(graph->source(k).redundancy.ToDense().MaxAbsDiff(
                  star->source(k).redundancy.ToDense()),
              0.0);
    EXPECT_EQ(graph->source(k).column_names, star->source(k).column_names);
  }
  EXPECT_EQ(graph->MaterializeTargetMatrix().MaxAbsDiff(
                star->MaterializeTargetMatrix()),
            0.0);
}

TEST(GraphMetadataTest, SnowflakeComposesIndicatorsAlongTheChain) {
  rel::SnowflakeSpec spec;
  spec.fact_rows = 120;
  spec.level_rows = {24, 6};
  spec.level_features = {2, 3};
  spec.seed = 7;
  rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
  auto md = factorized::DeriveSnowflakeMetadata(snowflake);
  ASSERT_TRUE(md.ok()) << md.status();

  EXPECT_EQ(md->shape(), IntegrationShape::kSnowflake);
  EXPECT_EQ(md->num_shards(), 1u);
  EXPECT_EQ(md->join_depth(), 2u);
  EXPECT_EQ(md->target_rows(), spec.fact_rows);
  // The sub-dimension's indicator is the composition of the two round-robin
  // key assignments: fact row i -> dim0 row i % 24 -> dim1 row (i % 24) % 6.
  const CompressedIndicator& sub = md->source(2).indicator;
  for (size_t i = 0; i < spec.fact_rows; ++i) {
    EXPECT_EQ(sub.At(i), static_cast<int64_t>((i % 24) % 6)) << "row " << i;
  }

  // Relational reference: fact ⋈ dim0 ⋈ dim1, projected onto the target.
  auto j1 = rel::HashJoin(snowflake.tables[0], snowflake.tables[1],
                          {"dim0_id"}, {"dim0_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j1.ok()) << j1.status();
  auto j2 = rel::HashJoin(j1->table, snowflake.tables[2], {"dim1_id"},
                          {"dim1_id"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok()) << j2.status();
  auto projected = j2->table.ProjectNames(md->target_schema().Names());
  ASSERT_TRUE(projected.ok()) << projected.status();
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));
}

TEST(GraphMetadataTest, SnowflakeFactorizedOpsMatchMaterialized) {
  rel::SnowflakeSpec spec;
  spec.fact_rows = 90;
  spec.level_rows = {18, 6, 3};
  spec.level_features = {2, 2, 1};
  spec.seed = 8;
  auto md = factorized::DeriveSnowflakeMetadata(rel::GenerateSnowflake(spec));
  ASSERT_TRUE(md.ok()) << md.status();
  factorized::FactorizedTable table(*md);
  la::DenseMatrix dense = table.Materialize();
  Rng rng(9);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 3, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(dense.Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(dense.TransposeMultiply(y)),
      1e-9);
  EXPECT_LT(table.RowSums().MaxAbsDiff(dense.RowSums()), 1e-9);
  EXPECT_LT(table.ColSums().MaxAbsDiff(dense.ColSums()), 1e-9);
}

TEST(GraphMetadataTest, UnionOfStarsStacksShardBlocks) {
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 50;
  spec.fact_features = 2;
  spec.dim_rows = 10;
  spec.dim_features = 2;
  spec.seed = 11;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
  auto md = factorized::DeriveUnionOfStarsMetadata(scenario);
  ASSERT_TRUE(md.ok()) << md.status();

  EXPECT_EQ(md->shape(), IntegrationShape::kUnionOfStars);
  EXPECT_EQ(md->num_shards(), 2u);
  EXPECT_EQ(md->join_depth(), 1u);
  EXPECT_EQ(md->target_rows(), 2 * spec.fact_rows);
  // Shard facts are identities inside their block, absent outside.
  const CompressedIndicator& fact0 = md->source(0).indicator;
  const CompressedIndicator& fact1 = md->source(2).indicator;
  for (size_t i = 0; i < spec.fact_rows; ++i) {
    EXPECT_EQ(fact0.At(i), static_cast<int64_t>(i));
    EXPECT_EQ(fact0.At(spec.fact_rows + i), -1);
    EXPECT_EQ(fact1.At(i), -1);
    EXPECT_EQ(fact1.At(spec.fact_rows + i), static_cast<int64_t>(i));
  }
  // Shard rows are disjoint, so the shared y/x columns carry no cross-shard
  // redundancy; per-shard redundancy also vanishes (disjoint columns).
  for (size_t k = 0; k < md->num_sources(); ++k) {
    EXPECT_FALSE(md->source(k).redundancy.HasRedundancy()) << "source " << k;
  }

  // Relational reference per block: shard's fact ⋈ dim projected onto the
  // target schema (absent other-shard columns materialize as zero).
  la::DenseMatrix target = md->MaterializeTargetMatrix();
  for (size_t s = 0; s < 2; ++s) {
    const std::string key = "dim" + std::to_string(s) + "_id";
    auto joined =
        rel::HashJoin(scenario.tables[2 * s], scenario.tables[2 * s + 1],
                      {key}, {key}, rel::JoinKind::kLeftJoin);
    ASSERT_TRUE(joined.ok()) << joined.status();
    const size_t offset = s * spec.fact_rows;
    for (const std::string& name : md->target_schema().Names()) {
      const auto target_col = md->target_schema().IndexOf(name);
      auto shard_col = joined->table.ColumnIndex(name);
      for (size_t i = 0; i < spec.fact_rows; ++i) {
        const double expected =
            shard_col.ok() &&
                    !joined->table.column(*shard_col).IsNull(i)
                ? joined->table.column(*shard_col).GetDouble(i)
                : 0.0;
        EXPECT_NEAR(target.At(offset + i, *target_col), expected, 1e-12)
            << "shard " << s << " row " << i << " column " << name;
      }
    }
  }

  // Factorized rewrites agree with the stacked dense target.
  factorized::FactorizedTable table(*md);
  Rng rng(12);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 2, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(target.Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(target.TransposeMultiply(y)),
      1e-9);
}

TEST(GraphMetadataTest, Validation) {
  StarFixture f = MakeStar();
  const std::vector<const rel::Table*> tables{&f.base, &f.dim1, &f.dim2};
  // Edges must be in topological order with parent < child.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{1, 0, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // One parent per node.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 2, rel::JoinKind::kLeftJoin},
                   {1, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // Inner joins are not graph edges.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kInnerJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // Union edges carry no row matching.
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kUnion}},
                  f.matchings)
                  .status()
                  .IsInvalidArgument());
  // A union edge set needs a union mapping (this one is left-join).
  std::vector<rel::RowMatching> union_matchings{f.matchings[0], {}};
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kUnion}},
                  union_matchings)
                  .status()
                  .IsInvalidArgument());
  // Non-functional join matching.
  auto broken = f.matchings;
  broken[0].matched.push_back(broken[0].matched[0]);
  EXPECT_TRUE(DiMetadata::DeriveGraph(
                  f.mapping, tables,
                  {{0, 1, rel::JoinKind::kLeftJoin},
                   {0, 2, rel::JoinKind::kLeftJoin}},
                  broken)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
