#include "metadata/redundancy_matrix.h"

#include <gtest/gtest.h>

namespace amalur {
namespace metadata {
namespace {

// Running-example metadata (Figure 4).
std::vector<CompressedMapping> MakeMappings() {
  return {CompressedMapping({0, 1, 2, -1}, 3),   // CM1
          CompressedMapping({0, 1, -1, 2}, 3)};  // CM2
}
std::vector<CompressedIndicator> MakeIndicators() {
  return {CompressedIndicator({3, 0, 1, 2, -1, -1}, 4),   // CI1
          CompressedIndicator({2, -1, -1, -1, 0, 1}, 3)};  // CI2
}

TEST(RedundancyMaskTest, BaseTableIsAllOnes) {
  RedundancyMask r1 = RedundancyMask::Derive(0, MakeIndicators(), MakeMappings());
  EXPECT_FALSE(r1.HasRedundancy());
  EXPECT_EQ(r1.RedundantCellCount(), 0u);
  EXPECT_TRUE(
      r1.ToDense().ApproxEquals(la::DenseMatrix::Constant(6, 4, 1.0), 0.0));
}

TEST(RedundancyMaskTest, Figure4cR2Values) {
  RedundancyMask r2 = RedundancyMask::Derive(1, MakeIndicators(), MakeMappings());
  // Paper: R2 row 0 (Jane, matched) is [0, 0, 1, 1]; all other rows are 1s.
  la::DenseMatrix expected({{0, 0, 1, 1},
                            {1, 1, 1, 1},
                            {1, 1, 1, 1},
                            {1, 1, 1, 1},
                            {1, 1, 1, 1},
                            {1, 1, 1, 1}});
  EXPECT_TRUE(r2.ToDense().ApproxEquals(expected, 0.0)) << r2.ToDense().ToString();
  EXPECT_TRUE(r2.HasRedundancy());
  EXPECT_EQ(r2.RedundantCellCount(), 2u);
  EXPECT_TRUE(r2.IsRedundant(0, 0));
  EXPECT_TRUE(r2.IsRedundant(0, 1));
  EXPECT_FALSE(r2.IsRedundant(0, 2));  // hr: S2 contributes nothing there
  EXPECT_FALSE(r2.IsRedundant(0, 3));  // o: S2-only column
  EXPECT_FALSE(r2.IsRedundant(4, 0));  // Rose: S1 does not cover the row
}

TEST(RedundancyMaskTest, ApplyInPlaceZeroesRedundantCells) {
  RedundancyMask r2 = RedundancyMask::Derive(1, MakeIndicators(), MakeMappings());
  la::DenseMatrix t2({{1, 37, 0, 92},
                      {0, 0, 0, 0},
                      {0, 0, 0, 0},
                      {0, 0, 0, 0},
                      {1, 45, 0, 95},
                      {0, 20, 0, 97}});
  r2.ApplyInPlace(&t2);
  // Jane's m and a are dropped; Rose/Castiel untouched (Figure 4c).
  EXPECT_TRUE(t2.ApproxEquals(la::DenseMatrix({{0, 0, 0, 92},
                                               {0, 0, 0, 0},
                                               {0, 0, 0, 0},
                                               {0, 0, 0, 0},
                                               {1, 45, 0, 95},
                                               {0, 20, 0, 97}})));
}

TEST(RedundancyMaskTest, ApplyMatchesDenseHadamard) {
  RedundancyMask r2 = RedundancyMask::Derive(1, MakeIndicators(), MakeMappings());
  la::DenseMatrix t2 = la::DenseMatrix::Constant(6, 4, 5.0);
  la::DenseMatrix expected = t2.Hadamard(r2.ToDense());
  r2.ApplyInPlace(&t2);
  EXPECT_TRUE(t2.ApproxEquals(expected, 0.0));
}

TEST(RedundancyMaskTest, NoColumnOverlapMeansNoRedundancy) {
  // Disjoint target columns (Morpheus setting): CM1 -> cols {0,1},
  // CM2 -> cols {2,3}; rows overlap fully.
  std::vector<CompressedMapping> mappings{CompressedMapping({0, 1, -1, -1}, 2),
                                          CompressedMapping({-1, -1, 0, 1}, 2)};
  std::vector<CompressedIndicator> indicators{CompressedIndicator({0, 1}, 2),
                                              CompressedIndicator({0, 1}, 2)};
  RedundancyMask r2 = RedundancyMask::Derive(1, indicators, mappings);
  EXPECT_FALSE(r2.HasRedundancy());
}

TEST(RedundancyMaskTest, NoRowOverlapMeansNoRedundancy) {
  // Union-style: same columns, disjoint rows.
  std::vector<CompressedMapping> mappings{CompressedMapping({0, 1}, 2),
                                          CompressedMapping({0, 1}, 2)};
  std::vector<CompressedIndicator> indicators{
      CompressedIndicator({0, 1, -1, -1}, 2),
      CompressedIndicator({-1, -1, 0, 1}, 2)};
  RedundancyMask r2 = RedundancyMask::Derive(1, indicators, mappings);
  EXPECT_FALSE(r2.HasRedundancy());
}

TEST(RedundancyMaskTest, FullOverlapMasksWholeRows) {
  // Both sources map both target columns and share both rows: every cell of
  // T_2 is redundant.
  std::vector<CompressedMapping> mappings{CompressedMapping({0, 1}, 2),
                                          CompressedMapping({0, 1}, 2)};
  std::vector<CompressedIndicator> indicators{CompressedIndicator({0, 1}, 2),
                                              CompressedIndicator({0, 1}, 2)};
  RedundancyMask r2 = RedundancyMask::Derive(1, indicators, mappings);
  EXPECT_EQ(r2.RedundantCellCount(), 4u);
  EXPECT_TRUE(r2.ToDense().ApproxEquals(la::DenseMatrix::Zeros(2, 2), 0.0));
}

TEST(RedundancyMaskTest, ThreeSourceChainUnionsCoverage) {
  // Source 2 overlaps source 0 on column 0 and source 1 on column 1;
  // a row covered by both earlier sources masks both columns.
  std::vector<CompressedMapping> mappings{
      CompressedMapping({0, -1, -1}, 1),   // S0 -> col 0
      CompressedMapping({-1, 0, -1}, 1),   // S1 -> col 1
      CompressedMapping({0, 1, 2}, 3)};    // S2 -> cols 0,1,2
  std::vector<CompressedIndicator> indicators{
      CompressedIndicator({0, -1, 1}, 2),   // S0 covers target rows 0, 2
      CompressedIndicator({0, 0, -1}, 1),   // S1 covers target rows 0, 1
      CompressedIndicator({0, 1, 2}, 3)};   // S2 contributes everywhere
  RedundancyMask r3 = RedundancyMask::Derive(2, indicators, mappings);
  la::DenseMatrix expected({{0, 0, 1},    // both cover row 0
                            {1, 0, 1},    // only S1 covers row 1
                            {0, 1, 1}});  // only S0 covers row 2
  EXPECT_TRUE(r3.ToDense().ApproxEquals(expected, 0.0)) << r3.ToDense().ToString();
}

TEST(RedundancyMaskTest, AllOnesFactory) {
  RedundancyMask r = RedundancyMask::AllOnes(3, 2);
  EXPECT_FALSE(r.HasRedundancy());
  EXPECT_EQ(r.target_rows(), 3u);
  EXPECT_EQ(r.target_cols(), 2u);
  EXPECT_EQ(r.row_set(0), -1);
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
