#include "metadata/di_metadata.h"

#include <gtest/gtest.h>

#include "integration/running_example.h"
#include "relational/generator.h"

namespace amalur {
namespace metadata {
namespace {

using integration::MakeRunningExample;
using integration::RunningExample;
using integration::RunningExampleTargetMatrix;

DiMetadata DeriveRunningExample() {
  RunningExample ex = MakeRunningExample();
  auto metadata = DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return std::move(metadata).ValueOrDie();
}

TEST(DiMetadataTest, RunningExampleShapes) {
  DiMetadata md = DeriveRunningExample();
  EXPECT_EQ(md.num_sources(), 2u);
  EXPECT_EQ(md.target_rows(), 6u);
  EXPECT_EQ(md.target_cols(), 4u);
  EXPECT_EQ(md.kind(), rel::JoinKind::kFullOuterJoin);
  EXPECT_EQ(md.source(0).data.rows(), 4u);
  EXPECT_EQ(md.source(0).data.cols(), 3u);
  EXPECT_EQ(md.source(1).data.rows(), 3u);
  EXPECT_EQ(md.source(1).data.cols(), 3u);
  EXPECT_EQ(md.source(0).column_names,
            (std::vector<std::string>{"m", "a", "hr"}));
  EXPECT_EQ(md.source(1).column_names,
            (std::vector<std::string>{"m", "a", "o"}));
}

TEST(DiMetadataTest, Figure4CompressedForms) {
  DiMetadata md = DeriveRunningExample();
  EXPECT_EQ(md.source(0).mapping.values(), (std::vector<int64_t>{0, 1, 2, -1}));
  EXPECT_EQ(md.source(1).mapping.values(), (std::vector<int64_t>{0, 1, -1, 2}));
  EXPECT_EQ(md.source(0).indicator.values(),
            (std::vector<int64_t>{3, 0, 1, 2, -1, -1}));
  EXPECT_EQ(md.source(1).indicator.values(),
            (std::vector<int64_t>{2, -1, -1, -1, 0, 1}));
}

TEST(DiMetadataTest, Figure4DataMatrices) {
  DiMetadata md = DeriveRunningExample();
  EXPECT_TRUE(md.source(0).data.ApproxEquals(la::DenseMatrix({{0, 20, 60},
                                                              {0, 35, 58},
                                                              {0, 22, 65},
                                                              {1, 37, 70}})));
  EXPECT_TRUE(md.source(1).data.ApproxEquals(la::DenseMatrix({{1, 45, 95},
                                                              {0, 20, 97},
                                                              {1, 37, 92}})));
}

TEST(DiMetadataTest, Figure4SourceContributions) {
  DiMetadata md = DeriveRunningExample();
  // T1 = I1 D1 M1^T (paper Figure 4c).
  EXPECT_TRUE(md.SourceContribution(0).ApproxEquals(
      la::DenseMatrix({{1, 37, 70, 0},
                       {0, 20, 60, 0},
                       {0, 35, 58, 0},
                       {0, 22, 65, 0},
                       {0, 0, 0, 0},
                       {0, 0, 0, 0}})));
  EXPECT_TRUE(md.SourceContribution(1).ApproxEquals(
      la::DenseMatrix({{1, 37, 0, 92},
                       {0, 0, 0, 0},
                       {0, 0, 0, 0},
                       {0, 0, 0, 0},
                       {1, 45, 0, 95},
                       {0, 20, 0, 97}})));
}

TEST(DiMetadataTest, MaterializedTargetMatchesFigure4) {
  DiMetadata md = DeriveRunningExample();
  EXPECT_TRUE(
      md.MaterializeTargetMatrix().ApproxEquals(RunningExampleTargetMatrix()));
}

TEST(DiMetadataTest, NaiveAdditionWouldBeWrong) {
  // The motivation for R: T1 + T2 != T because Jane's m and a double up.
  DiMetadata md = DeriveRunningExample();
  la::DenseMatrix naive = md.SourceContribution(0).Add(md.SourceContribution(1));
  EXPECT_FALSE(naive.ApproxEquals(RunningExampleTargetMatrix()));
  EXPECT_DOUBLE_EQ(naive.At(0, 0), 2.0);    // 1 + 1
  EXPECT_DOUBLE_EQ(naive.At(0, 1), 74.0);   // 37 + 37
}

TEST(DiMetadataTest, TupleAndFeatureRatios) {
  DiMetadata md = DeriveRunningExample();
  EXPECT_DOUBLE_EQ(md.TupleRatio(0), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(md.TupleRatio(1), 6.0 / 3.0);
  EXPECT_DOUBLE_EQ(md.FeatureRatio(0), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(md.FeatureRatio(1), 4.0 / 3.0);
}

TEST(DiMetadataTest, InnerJoinKeepsOnlyMatchedRows) {
  RunningExample ex = MakeRunningExample();
  auto inner_mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kInnerJoin,
      {integration::SchemaMapping::SourceSpec{
           "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}, {"hr", "hr"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", ex.s2.schema(), {{"m", "m"}, {"a", "a"}, {"o", "o"}}}},
      ex.target_schema, {{0, "n", 1, "n"}});
  ASSERT_TRUE(inner_mapping.ok());
  auto md = DiMetadata::Derive(*inner_mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->target_rows(), 1u);
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(
      la::DenseMatrix({{1, 37, 70, 92}})));
}

TEST(DiMetadataTest, LeftJoinKeepsBaseRows) {
  RunningExample ex = MakeRunningExample();
  auto left_mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}, {"hr", "hr"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", ex.s2.schema(), {{"a", "a"}, {"o", "o"}}}},
      ex.target_schema, {{0, "n", 1, "n"}});
  ASSERT_TRUE(left_mapping.ok());
  auto md = DiMetadata::Derive(*left_mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->target_rows(), 4u);  // Jane + 3 left-only
  la::DenseMatrix t = md->MaterializeTargetMatrix();
  EXPECT_TRUE(t.ApproxEquals(la::DenseMatrix({{1, 37, 70, 92},
                                              {0, 20, 60, 0},
                                              {0, 35, 58, 0},
                                              {0, 22, 65, 0}})));
}

TEST(DiMetadataTest, UnionStacksAllRows) {
  RunningExample ex = MakeRunningExample();
  // Union of the two tables over the shared columns (m, a).
  rel::Schema target = rel::Schema::AllDouble({"m", "a"});
  auto union_mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kUnion,
      {integration::SchemaMapping::SourceSpec{
           "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", ex.s2.schema(), {{"m", "m"}, {"a", "a"}}}},
      target);
  ASSERT_TRUE(union_mapping.ok());
  auto md = DiMetadata::Derive(*union_mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->target_rows(), 7u);
  // No redundancy: disjoint target rows.
  EXPECT_FALSE(md->source(1).redundancy.HasRedundancy());
  la::DenseMatrix t = md->MaterializeTargetMatrix();
  EXPECT_TRUE(t.ApproxEquals(la::DenseMatrix({{0, 20},
                                              {0, 35},
                                              {0, 22},
                                              {1, 37},
                                              {1, 45},
                                              {0, 20},
                                              {1, 37}})));
}

TEST(DiMetadataTest, GeneratedScenarioMatchesRelationalJoin) {
  // Matrix-level materialization must agree with the relational hash join
  // on a generated left-join scenario.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 80;
  spec.other_rows = 40;
  spec.match_fraction = 0.5;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 99;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  std::vector<std::string> target_names{"y", "x0", "x1", "z0", "z1", "z2"};
  rel::Schema target = rel::Schema::AllDouble(target_names);
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "S1", pair.base.schema(),
           {{"y", "y"}, {"x0", "x0"}, {"x1", "x1"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", pair.other.schema(),
           {{"z0", "z0"}, {"z1", "z1"}, {"z2", "z2"}}}},
      target, {{0, "k", 1, "k"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();

  auto matching = rel::MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  auto md = DiMetadata::Derive(*mapping, {&pair.base, &pair.other}, *matching);
  ASSERT_TRUE(md.ok()) << md.status();

  // Relational path: hash join then project to the target schema.
  auto joined = rel::HashJoin(pair.base, pair.other, {"k"}, {"k"},
                              rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(joined.ok());
  auto projected = joined->table.ProjectNames(target_names);
  ASSERT_TRUE(projected.ok());
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));
}

TEST(DiMetadataTest, DuplicateAndNullRatiosPopulated) {
  rel::SiloPairSpec spec;
  spec.base_rows = 50;
  spec.other_rows = 100;
  spec.other_dup_rate = 0.4;  // 40 duplicate rows appended -> 40/140 dup ratio
  spec.null_ratio = 0.0;
  spec.other_features = 4;
  spec.seed = 17;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  rel::Schema target = rel::Schema::AllDouble({"y", "x0", "z0", "z1", "z2", "z3"});
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "S1", pair.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", pair.other.schema(),
           {{"z0", "z0"}, {"z1", "z1"}, {"z2", "z2"}, {"z3", "z3"}}}},
      target, {{0, "k", 1, "k"}});
  ASSERT_TRUE(mapping.ok());
  auto matching = rel::MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  auto md = DiMetadata::Derive(*mapping, {&pair.base, &pair.other}, *matching);
  ASSERT_TRUE(md.ok());
  EXPECT_NEAR(md->source(1).duplicate_ratio, 40.0 / 140.0, 1e-9);
  EXPECT_DOUBLE_EQ(md->source(0).duplicate_ratio, 0.0);
  EXPECT_DOUBLE_EQ(md->source(1).null_ratio, 0.0);

  // With injected nulls, the mapped-column null ratio is reflected.
  spec.other_dup_rate = 0.0;
  spec.null_ratio = 0.15;
  rel::SiloPair nulled = rel::GenerateSiloPair(spec);
  auto matching2 = rel::MatchRowsOnKeys(nulled.base, nulled.other, {"k"}, {"k"});
  ASSERT_TRUE(matching2.ok());
  auto mapping2 = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "S1", nulled.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "S2", nulled.other.schema(),
           {{"z0", "z0"}, {"z1", "z1"}, {"z2", "z2"}, {"z3", "z3"}}}},
      target, {{0, "k", 1, "k"}});
  ASSERT_TRUE(mapping2.ok());
  auto md2 =
      DiMetadata::Derive(*mapping2, {&nulled.base, &nulled.other}, *matching2);
  ASSERT_TRUE(md2.ok());
  EXPECT_NEAR(md2->source(1).null_ratio, 0.15, 0.04);
}

TEST(DiMetadataTest, DeriveValidation) {
  RunningExample ex = MakeRunningExample();
  EXPECT_TRUE(DiMetadata::Derive(ex.mapping, {&ex.s1}, ex.matching)
                  .status()
                  .IsInvalidArgument());
  rel::RowMatching bad;
  bad.matched = {{99, 0}};
  EXPECT_TRUE(DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, bad)
                  .status()
                  .IsOutOfRange());
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
