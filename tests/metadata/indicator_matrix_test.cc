#include "metadata/indicator_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace amalur {
namespace metadata {
namespace {

// CI1 of the running example (Figure 4b): T rows [Jane, Jack, Sam, Ruby,
// Rose, Castiel] <- S1 rows [3, 0, 1, 2, -, -].
CompressedIndicator MakeCi1() {
  return CompressedIndicator({3, 0, 1, 2, -1, -1}, 4);
}
// CI2: <- S2 rows [2, -, -, -, 0, 1].
CompressedIndicator MakeCi2() {
  return CompressedIndicator({2, -1, -1, -1, 0, 1}, 3);
}

TEST(CompressedIndicatorTest, Figure4bValues) {
  EXPECT_EQ(MakeCi1().values(), (std::vector<int64_t>{3, 0, 1, 2, -1, -1}));
  EXPECT_EQ(MakeCi2().values(), (std::vector<int64_t>{2, -1, -1, -1, 0, 1}));
  EXPECT_EQ(MakeCi1().target_rows(), 6u);
  EXPECT_EQ(MakeCi1().source_rows(), 4u);
  EXPECT_EQ(MakeCi1().ContributedRows(), 4u);
  EXPECT_EQ(MakeCi2().ContributedRows(), 3u);
}

TEST(CompressedIndicatorTest, ToMatrixIsBinarySelector) {
  la::DenseMatrix i2 = MakeCi2().ToMatrix().ToDense();
  EXPECT_TRUE(i2.ApproxEquals(la::DenseMatrix({{0, 0, 1},
                                               {0, 0, 0},
                                               {0, 0, 0},
                                               {0, 0, 0},
                                               {1, 0, 0},
                                               {0, 1, 0}})));
}

TEST(CompressedIndicatorTest, ExpandRowsEqualsExplicitProduct) {
  Rng rng(1);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(3, 4, &rng);
  CompressedIndicator ci = MakeCi2();
  EXPECT_TRUE(ci.ExpandRows(y).ApproxEquals(ci.ToMatrix().Multiply(y), 1e-12));
}

TEST(CompressedIndicatorTest, ReduceRowsEqualsExplicitTransposeProduct) {
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(6, 2, &rng);
  CompressedIndicator ci = MakeCi1();
  EXPECT_TRUE(
      ci.ReduceRows(x).ApproxEquals(ci.ToMatrix().TransposeMultiply(x), 1e-12));
}

TEST(CompressedIndicatorTest, FanOutAccumulatesInReduce) {
  // Two target rows point at the same source row (join fan-out).
  CompressedIndicator ci({0, 0, 1}, 2);
  la::DenseMatrix x({{1, 2}, {10, 20}, {100, 200}});
  la::DenseMatrix reduced = ci.ReduceRows(x);
  EXPECT_TRUE(reduced.ApproxEquals(la::DenseMatrix({{11, 22}, {100, 200}})));
}

TEST(CompressedIndicatorTest, FanOutDuplicatesInExpand) {
  CompressedIndicator ci({0, 0, 1}, 2);
  la::DenseMatrix y({{5, 6}, {7, 8}});
  EXPECT_TRUE(ci.ExpandRows(y).ApproxEquals(
      la::DenseMatrix({{5, 6}, {5, 6}, {7, 8}})));
}

TEST(CompressedIndicatorTest, IdentityRoundTrip) {
  Rng rng(3);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(5, 3, &rng);
  CompressedIndicator id = CompressedIndicator::Identity(5);
  EXPECT_TRUE(id.ExpandRows(y).ApproxEquals(y, 0.0));
  EXPECT_TRUE(id.ReduceRows(y).ApproxEquals(y, 0.0));
}

TEST(CompressedIndicatorTest, ExpandReduceAdjoint) {
  // <I y, x> == <y, I^T x> — the adjoint identity behind factorized
  // gradients.
  Rng rng(4);
  CompressedIndicator ci = MakeCi1();
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(4, 3, &rng);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(6, 3, &rng);
  const double lhs = ci.ExpandRows(y).Hadamard(x).Sum();
  const double rhs = y.Hadamard(ci.ReduceRows(x)).Sum();
  EXPECT_NEAR(lhs, rhs, 1e-10);
}

TEST(CompressedIndicatorValidation, RejectsOutOfRange) {
  EXPECT_DEATH(CompressedIndicator({7}, 3), "out of range");
  EXPECT_DEATH(CompressedIndicator({-2}, 3), "out of range");
}

TEST(CompressedIndicatorTest, ToStringRendering) {
  EXPECT_EQ(MakeCi2().ToString(), "CI[2, -1, -1, -1, 0, 1]");
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
