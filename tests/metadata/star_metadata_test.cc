#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/factorized_table.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"

namespace amalur {
namespace metadata {
namespace {

/// A three-source star: base(k1, k2, y, x0) joins dim1(k1, z0, z1) and
/// dim2(k2, w0, w1, w2), with fan-outs 4 and 2.
struct StarFixture {
  rel::Table base, dim1, dim2;
  integration::SchemaMapping mapping;
  std::vector<rel::RowMatching> matchings;
};

StarFixture MakeStar(size_t dim1_rows = 25, size_t dim2_rows = 50,
                     uint64_t seed = 5) {
  Rng rng(seed);
  StarFixture f;
  const size_t base_rows = dim1_rows * 4;  // fan-out 4 on dim1, 2 on dim2

  f.dim1 = rel::Table("dim1");
  {
    std::vector<int64_t> keys(dim1_rows);
    for (size_t i = 0; i < dim1_rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(f.dim1.AddColumn(rel::Column::FromInt64s("k1", keys)));
    for (const char* name : {"z0", "z1"}) {
      std::vector<double> values(dim1_rows);
      for (double& v : values) v = rng.NextGaussian();
      AMALUR_CHECK_OK(f.dim1.AddColumn(rel::Column::FromDoubles(name, values)));
    }
  }
  f.dim2 = rel::Table("dim2");
  {
    std::vector<int64_t> keys(dim2_rows);
    for (size_t i = 0; i < dim2_rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(f.dim2.AddColumn(rel::Column::FromInt64s("k2", keys)));
    for (const char* name : {"w0", "w1", "w2"}) {
      std::vector<double> values(dim2_rows);
      for (double& v : values) v = rng.NextGaussian();
      AMALUR_CHECK_OK(f.dim2.AddColumn(rel::Column::FromDoubles(name, values)));
    }
  }
  f.base = rel::Table("base");
  {
    std::vector<int64_t> k1(base_rows), k2(base_rows);
    std::vector<double> y(base_rows), x0(base_rows);
    for (size_t i = 0; i < base_rows; ++i) {
      k1[i] = static_cast<int64_t>(i % dim1_rows);
      k2[i] = static_cast<int64_t>(i % dim2_rows);
      y[i] = rng.NextGaussian();
      x0[i] = rng.NextGaussian();
    }
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k1", k1)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromInt64s("k2", k2)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("y", y)));
    AMALUR_CHECK_OK(f.base.AddColumn(rel::Column::FromDoubles("x0", x0)));
  }

  rel::Schema target =
      rel::Schema::AllDouble({"y", "x0", "z0", "z1", "w0", "w1", "w2"});
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "base", f.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim1", f.dim1.schema(), {{"z0", "z0"}, {"z1", "z1"}}},
       integration::SchemaMapping::SourceSpec{
           "dim2", f.dim2.schema(), {{"w0", "w0"}, {"w1", "w1"}, {"w2", "w2"}}}},
      target, {{0, "k1", 1, "k1"}, {0, "k2", 2, "k2"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();
  f.mapping = std::move(mapping).ValueOrDie();

  auto m1 = rel::MatchRowsOnKeys(f.base, f.dim1, {"k1"}, {"k1"});
  auto m2 = rel::MatchRowsOnKeys(f.base, f.dim2, {"k2"}, {"k2"});
  AMALUR_CHECK(m1.ok() && m2.ok()) << "key matching failed";
  f.matchings = {std::move(m1).ValueOrDie(), std::move(m2).ValueOrDie()};
  return f;
}

TEST(StarMetadataTest, ThreeSourceShapes) {
  StarFixture f = MakeStar();
  auto md = DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                   f.matchings);
  ASSERT_TRUE(md.ok()) << md.status();
  EXPECT_EQ(md->num_sources(), 3u);
  EXPECT_EQ(md->target_rows(), f.base.NumRows());
  EXPECT_EQ(md->target_cols(), 7u);
  // Every dimension row is referenced (full fan-out coverage).
  EXPECT_EQ(md->source(1).indicator.ContributedRows(), f.base.NumRows());
  EXPECT_EQ(md->source(2).indicator.ContributedRows(), f.base.NumRows());
  // No column overlap between the three sources -> no redundancy.
  EXPECT_FALSE(md->source(1).redundancy.HasRedundancy());
  EXPECT_FALSE(md->source(2).redundancy.HasRedundancy());
}

TEST(StarMetadataTest, MaterializationMatchesJoinChain) {
  StarFixture f = MakeStar();
  auto md = DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                   f.matchings);
  ASSERT_TRUE(md.ok());

  // Relational reference: base ⋈ dim1 ⋈ dim2 projected onto the target.
  auto j1 =
      rel::HashJoin(f.base, f.dim1, {"k1"}, {"k1"}, rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j1.ok());
  auto j2 = rel::HashJoin(j1->table, f.dim2, {"k2"}, {"k2"},
                          rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(j2.ok());
  auto projected =
      j2->table.ProjectNames({"y", "x0", "z0", "z1", "w0", "w1", "w2"});
  ASSERT_TRUE(projected.ok());
  auto expected = projected->ToMatrix();
  ASSERT_TRUE(expected.ok());
  // Join chain preserves base-row order for matched-by-unique-key joins:
  // both sides enumerate base rows in order.
  EXPECT_TRUE(md->MaterializeTargetMatrix().ApproxEquals(*expected, 1e-12));
}

TEST(StarMetadataTest, FactorizedOpsMatchMaterializedOnThreeSources) {
  StarFixture f = MakeStar();
  auto md = DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                   f.matchings);
  ASSERT_TRUE(md.ok());
  factorized::FactorizedTable table(*md);
  la::DenseMatrix dense = table.Materialize();
  Rng rng(9);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 3, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(dense.Multiply(x)), 1e-9);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  EXPECT_LT(
      table.TransposeLeftMultiply(y).MaxAbsDiff(dense.TransposeMultiply(y)),
      1e-9);
  EXPECT_LT(table.RowSums().MaxAbsDiff(dense.RowSums()), 1e-9);
  EXPECT_LT(table.ColSums().MaxAbsDiff(dense.ColSums()), 1e-9);
}

TEST(StarMetadataTest, PartialMatchesLeaveNullPadding) {
  StarFixture f = MakeStar();
  // Remove dim2 matches for odd base rows (simulates missed ER matches).
  rel::RowMatching partial;
  for (const auto& [b, d] : f.matchings[1].matched) {
    if (b % 2 == 0) partial.matched.emplace_back(b, d);
  }
  f.matchings[1] = partial;
  auto md = DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                   f.matchings);
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->source(2).indicator.ContributedRows(), f.base.NumRows() / 2);
  la::DenseMatrix t = md->MaterializeTargetMatrix();
  // w columns (4..6) are zero on odd rows.
  for (size_t i = 1; i < t.rows(); i += 2) {
    EXPECT_DOUBLE_EQ(t.At(i, 4), 0.0);
    EXPECT_DOUBLE_EQ(t.At(i, 6), 0.0);
  }
}

TEST(StarMetadataTest, OverlappingDimensionsGetRedundancyMasks) {
  // dim1 and dim2 both map a shared target column: later source masked.
  StarFixture f = MakeStar();
  rel::Schema target = rel::Schema::AllDouble({"y", "x0", "z0", "w0"});
  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{
           "base", f.base.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim1", f.dim1.schema(), {{"z0", "z0"}}},
       // dim2's w0 maps onto dim1's z0 output column.
       integration::SchemaMapping::SourceSpec{
           "dim2", f.dim2.schema(), {{"w0", "z0"}, {"w1", "w0"}}}},
      target, {{0, "k1", 1, "k1"}, {0, "k2", 2, "k2"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto md = DiMetadata::DeriveStar(*mapping, {&f.base, &f.dim1, &f.dim2},
                                   f.matchings);
  ASSERT_TRUE(md.ok());
  // dim2 is redundant on column z0 wherever dim1 also contributes.
  EXPECT_TRUE(md->source(2).redundancy.HasRedundancy());
  // The factorized result still matches the masked materialization.
  factorized::FactorizedTable table(*md);
  Rng rng(3);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(table.cols(), 2, &rng);
  EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(table.Materialize().Multiply(x)),
            1e-9);
}

TEST(StarMetadataTest, Validation) {
  StarFixture f = MakeStar();
  // Wrong number of matchings.
  EXPECT_TRUE(DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                     {f.matchings[0]})
                  .status()
                  .IsInvalidArgument());
  // Non-functional matching: one base row matched twice.
  auto broken = f.matchings;
  broken[0].matched.push_back(broken[0].matched[0]);
  EXPECT_TRUE(DiMetadata::DeriveStar(f.mapping, {&f.base, &f.dim1, &f.dim2},
                                     broken)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
