#include "metadata/mapping_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace amalur {
namespace metadata {
namespace {

// CM1 of the running example: T(m,a,hr,o) <- D1(m,a,hr): [0, 1, 2, -1].
CompressedMapping MakeCm1() { return CompressedMapping({0, 1, 2, -1}, 3); }
// CM2: T(m,a,hr,o) <- D2(m,a,o): [0, 1, -1, 2].
CompressedMapping MakeCm2() { return CompressedMapping({0, 1, -1, 2}, 3); }

TEST(CompressedMappingTest, Figure4aValues) {
  EXPECT_EQ(MakeCm1().values(), (std::vector<int64_t>{0, 1, 2, -1}));
  EXPECT_EQ(MakeCm2().values(), (std::vector<int64_t>{0, 1, -1, 2}));
  EXPECT_EQ(MakeCm1().target_cols(), 4u);
  EXPECT_EQ(MakeCm1().source_cols(), 3u);
}

TEST(CompressedMappingTest, ToMatrixMatchesDefinitionIII1) {
  // M1 is 4x3 with rows m,a,hr mapped, last row all zeros (paper: "the last
  // row of M1 has only zeros").
  la::DenseMatrix m1 = MakeCm1().ToMatrix().ToDense();
  EXPECT_TRUE(m1.ApproxEquals(la::DenseMatrix({{1, 0, 0},
                                               {0, 1, 0},
                                               {0, 0, 1},
                                               {0, 0, 0}})));
  la::DenseMatrix m2 = MakeCm2().ToMatrix().ToDense();
  EXPECT_TRUE(m2.ApproxEquals(la::DenseMatrix({{1, 0, 0},
                                               {0, 1, 0},
                                               {0, 0, 0},
                                               {0, 0, 1}})));
}

TEST(CompressedMappingTest, MappedTargetColumns) {
  EXPECT_EQ(MakeCm1().MappedTargetColumns(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(MakeCm2().MappedTargetColumns(), (std::vector<size_t>{0, 1, 3}));
}

TEST(CompressedMappingTest, ExpandColumnsEqualsExplicitProduct) {
  Rng rng(1);
  la::DenseMatrix dk = la::DenseMatrix::RandomGaussian(5, 3, &rng);
  CompressedMapping cm = MakeCm2();
  la::DenseMatrix expected = cm.ToMatrix().LeftMultiplyTranspose(dk);  // D M^T
  EXPECT_TRUE(cm.ExpandColumns(dk).ApproxEquals(expected, 1e-12));
}

TEST(CompressedMappingTest, GatherTargetRowsEqualsExplicitProduct) {
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(4, 6, &rng);
  CompressedMapping cm = MakeCm1();
  la::DenseMatrix expected = cm.ToMatrix().TransposeMultiply(x);  // M^T X
  EXPECT_TRUE(cm.GatherTargetRows(x).ApproxEquals(expected, 1e-12));
}

TEST(CompressedMappingTest, IdentityRoundTrip) {
  Rng rng(3);
  la::DenseMatrix d = la::DenseMatrix::RandomGaussian(4, 5, &rng);
  CompressedMapping id = CompressedMapping::Identity(5);
  EXPECT_TRUE(id.ExpandColumns(d).ApproxEquals(d, 0.0));
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(5, 2, &rng);
  EXPECT_TRUE(id.GatherTargetRows(x).ApproxEquals(x, 0.0));
}

TEST(CompressedMappingTest, ExpandThenGatherIsIdentityOnMappedColumns) {
  // M^T (D M^T)^T-free identity: gathering after expanding restores D.
  Rng rng(4);
  la::DenseMatrix d = la::DenseMatrix::RandomGaussian(3, 3, &rng);
  CompressedMapping cm = MakeCm2();
  la::DenseMatrix expanded = cm.ExpandColumns(d);          // 3x4
  la::DenseMatrix back = cm.GatherTargetRows(expanded.Transpose());
  EXPECT_TRUE(back.ApproxEquals(d.Transpose(), 1e-12));
}

TEST(CompressedMappingTest, ToStringRendering) {
  EXPECT_EQ(MakeCm1().ToString(), "CM[0, 1, 2, -1]");
}

TEST(CompressedMappingValidation, RejectsDuplicateSourceColumn) {
  EXPECT_DEATH(CompressedMapping({0, 0}, 1), "mapped to two target columns");
}

TEST(CompressedMappingValidation, RejectsOutOfRangeEntry) {
  EXPECT_DEATH(CompressedMapping({5}, 3), "out of source range");
}

}  // namespace
}  // namespace metadata
}  // namespace amalur
