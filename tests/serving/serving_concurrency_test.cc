#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "core/amalur.h"
#include "la/dense_matrix.h"
#include "relational/generator.h"
#include "serving/deployed_model.h"
#include "serving/model_registry.h"

/// Concurrent-serving acceptance suite (runs under CI's TSan job): N client
/// threads hammer `PredictBatch` through `ModelRegistry::Get` while another
/// thread redeploys and churns the registry. Every client-visible result
/// must be bitwise-equal to the serial answer — concurrency may never change
/// a score — and the whole dance must be data-race-free.

namespace amalur {
namespace serving {
namespace {

struct ServingFixture {
  std::unique_ptr<core::Amalur> system;
  core::IntegrationHandle integration;
  core::ModelHandle model;
};

ServingFixture TrainModel() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 2000;
  spec.other_rows = 200;
  spec.base_features = 2;
  spec.other_features = 6;
  spec.seed = 47;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  ServingFixture fixture;
  fixture.system = std::make_unique<core::Amalur>();
  AMALUR_CHECK_OK(fixture.system->catalog()->RegisterSource(
      {"S1", pair.base, "silo-1", false}));
  AMALUR_CHECK_OK(fixture.system->catalog()->RegisterSource(
      {"S2", pair.other, "silo-2", false}));
  auto integration =
      fixture.system->Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  AMALUR_CHECK(integration.ok()) << integration.status();
  fixture.integration = *std::move(integration);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 25;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto model = fixture.system->Train(fixture.integration, request);
  AMALUR_CHECK(model.ok()) << model.status();
  fixture.model = *std::move(model);
  return fixture;
}

/// Deterministic per-(client, iteration) batch: same recipe on the serial
/// and the concurrent side, so expected answers are precomputable.
std::vector<RowRef> MakeBatch(size_t client, size_t iteration, size_t rows,
                              size_t batch_rows) {
  std::vector<RowRef> batch(batch_rows);
  for (size_t j = 0; j < batch_rows; ++j) {
    batch[j].row = (client * 100003 + iteration * 8191 + j * 31) % rows;
  }
  return batch;
}

TEST(ServingConcurrencyTest, ClientsSeeSerialScoresUnderRedeployChurn) {
  constexpr size_t kClients = 4;
  constexpr size_t kIterations = 20;
  constexpr size_t kBatchRows = 96;
  constexpr size_t kRedeploys = 12;

  ServingFixture fixture = TrainModel();
  ModelRegistry registry;
  auto deployed = fixture.model.Deploy(&registry, "hot");
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  const size_t rows = (*deployed)->rows();

  // Serial ground truth, computed before any concurrency starts. Redeploys
  // publish fresh snapshots of the SAME trained handle, so every version a
  // client can resolve must reproduce these bits exactly.
  std::vector<std::vector<la::DenseMatrix>> expected(kClients);
  {
    common::ScopedNumThreads one(1);
    for (size_t c = 0; c < kClients; ++c) {
      for (size_t i = 0; i < kIterations; ++i) {
        auto scores = (*deployed)->PredictBatch(
            MakeBatch(c, i, rows, kBatchRows));
        ASSERT_TRUE(scores.ok()) << scores.status();
        expected[c].push_back(*std::move(scores));
      }
    }
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kIterations; ++i) {
        // Resolve through the registry every iteration — clients race the
        // redeployer on purpose; whichever version they get must score
        // identically.
        auto model = registry.Get("hot");
        if (!model.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        auto scores =
            (*model)->PredictBatch(MakeBatch(c, i, rows, kBatchRows));
        if (!scores.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!(*scores == expected[c][i])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The churn thread republishes the hot model and mutates unrelated names
  // while the clients score.
  std::thread churn([&] {
    for (size_t r = 0; r < kRedeploys; ++r) {
      auto redeployed = registry.Redeploy("hot", fixture.model);
      AMALUR_CHECK(redeployed.ok()) << redeployed.status();
      const std::string aux = "aux-" + std::to_string(r);
      AMALUR_CHECK_OK(registry.Deploy(aux, fixture.model).status());
      AMALUR_CHECK_OK(registry.Undeploy(aux));
      std::this_thread::yield();
    }
  });

  for (std::thread& t : clients) t.join();
  churn.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  // The hot deployment ended at version 1 + kRedeploys, and every batch the
  // clients scored is accounted for across the published snapshots.
  auto final_model = registry.Get("hot");
  ASSERT_TRUE(final_model.ok());
  EXPECT_EQ((*final_model)->version(), 1 + kRedeploys);
  EXPECT_EQ(registry.DeployedNames(), (std::vector<std::string>{"hot"}));
}

TEST(ServingConcurrencyTest, ConcurrentDeploysNeverDropOrDuplicateNames) {
  // Writers racing on disjoint names: every deploy must land exactly once
  // (COW swaps may not lose concurrent insertions).
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 8;

  ServingFixture fixture = TrainModel();
  ModelRegistry registry;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = 0; i < kPerWriter; ++i) {
        const std::string name =
            "m-" + std::to_string(w) + "-" + std::to_string(i);
        AMALUR_CHECK_OK(registry.Deploy(name, fixture.model).status());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(registry.DeployedNames().size(), kWriters * kPerWriter);
}

TEST(ServingConcurrencyTest, CatalogServesConcurrentLookupsDuringRegistration) {
  // The core catalog side of the same story: readers resolving sources and
  // models while a writer registers new entries (the serving tier's deploy
  // path does exactly this).
  ServingFixture fixture = TrainModel();
  core::Catalog* catalog = fixture.system->catalog();

  std::atomic<bool> stop{false};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!catalog->GetSource("S1").ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        if (!catalog->HasSource("S2")) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        (void)catalog->SourceNames();
        (void)catalog->ModelNames();
      }
    });
  }

  for (size_t i = 0; i < 50; ++i) {
    core::ModelEntry entry;
    entry.name = "model-" + std::to_string(i);
    entry.task = "linear_regression";
    AMALUR_CHECK_OK(catalog->RegisterModel(entry));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(catalog->ModelNames().size(), 50u);
}

}  // namespace
}  // namespace serving
}  // namespace amalur
