#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/parallel_for.h"
#include "core/amalur.h"
#include "integration/running_example.h"
#include "relational/generator.h"
#include "serving/deployed_model.h"
#include "serving/model_registry.h"

namespace amalur {
namespace serving {
namespace {

/// Trains a linear-regression model over a fan-out left join (the classic
/// feature-augmentation star) under a forced strategy; the fixture every
/// serving test deploys from.
struct TrainedFixture {
  std::unique_ptr<core::Amalur> system;
  core::IntegrationHandle integration;
  core::ModelHandle model;
};

TrainedFixture TrainLeftJoinModel(core::ExecutionStrategy strategy,
                                  const std::string& model_name = "") {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 200;
  spec.other_rows = 40;
  spec.base_features = 2;
  spec.other_features = 4;
  spec.seed = 61;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  TrainedFixture fixture;
  fixture.system = std::make_unique<core::Amalur>();
  AMALUR_CHECK_OK(fixture.system->catalog()->RegisterSource(
      {"S1", pair.base, "silo-1", false}));
  AMALUR_CHECK_OK(fixture.system->catalog()->RegisterSource(
      {"S2", pair.other, "silo-2", false}));
  auto integration =
      fixture.system->Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  AMALUR_CHECK(integration.ok()) << integration.status();
  fixture.integration = *std::move(integration);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  request.force_strategy = strategy;
  auto model = fixture.system->Train(fixture.integration, request, model_name);
  AMALUR_CHECK(model.ok()) << model.status();
  fixture.model = *std::move(model);
  return fixture;
}

std::vector<RowRef> AllRows(size_t n) {
  std::vector<RowRef> batch(n);
  for (size_t i = 0; i < n; ++i) batch[i].row = i;
  return batch;
}

TEST(ModelRegistryTest, DeployResolveRedeployUndeployLifecycle) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;

  auto v1 = fixture.model.Deploy(&registry, "scorer");
  ASSERT_TRUE(v1.ok()) << v1.status();
  EXPECT_EQ((*v1)->name(), "scorer");
  EXPECT_EQ((*v1)->version(), 1u);
  EXPECT_EQ((*v1)->label_column(), "y");
  EXPECT_EQ((*v1)->feature_names(), fixture.model.feature_names());
  EXPECT_EQ((*v1)->source_names(),
            (std::vector<std::string>{"S1", "S2"}));
  EXPECT_EQ((*v1)->rows(), fixture.integration.metadata.target_rows());
  EXPECT_TRUE(registry.Has("scorer"));
  EXPECT_EQ(registry.DeployedNames(), (std::vector<std::string>{"scorer"}));

  // A live name never gets silently overwritten.
  EXPECT_TRUE(
      registry.Deploy("scorer", fixture.model).status().IsAlreadyExists());

  // Redeploy bumps the per-name version; the old snapshot keeps serving.
  auto v2 = registry.Redeploy("scorer", fixture.model);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_EQ((*v2)->version(), 2u);
  EXPECT_EQ((*v1)->version(), 1u);
  auto resolved = registry.Get("scorer");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*resolved)->version(), 2u);

  // The retired snapshot still scores — it is immune to registry mutation.
  const std::vector<RowRef> batch = AllRows((*v1)->rows());
  auto old_scores = (*v1)->PredictBatch(batch);
  auto new_scores = (*v2)->PredictBatch(batch);
  ASSERT_TRUE(old_scores.ok()) << old_scores.status();
  ASSERT_TRUE(new_scores.ok()) << new_scores.status();
  EXPECT_EQ(*old_scores, *new_scores);  // same weights → bit-equal scores

  EXPECT_TRUE(registry.Undeploy("scorer").ok());
  EXPECT_FALSE(registry.Has("scorer"));
  EXPECT_TRUE(registry.Undeploy("scorer").IsNotFound());
  EXPECT_TRUE(registry.Get("scorer").status().IsNotFound());
  EXPECT_TRUE(
      registry.Redeploy("scorer", fixture.model).status().IsNotFound());
}

TEST(ModelRegistryTest, DeployNameDefaultsAndValidation) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize, "churn-v1");
  ModelRegistry registry;

  // The empty deployment name is rejected outright...
  EXPECT_TRUE(registry.Deploy("", fixture.model).status().IsInvalidArgument());
  // ...but ModelHandle::Deploy defaults it to the model's catalog name.
  auto deployed = fixture.model.Deploy(&registry);
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  EXPECT_EQ((*deployed)->name(), "churn-v1");
  EXPECT_TRUE(registry.Has("churn-v1"));

  // A handle with no integration data cannot be snapshotted.
  core::ModelHandle untrained;
  EXPECT_TRUE(
      registry.Deploy("ghost", untrained).status().IsFailedPrecondition());
}

TEST(ModelRegistryTest, SnapshotIsImmuneToLaterMutations) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Deploy("a", fixture.model).ok());

  std::shared_ptr<const ModelRegistry::DeploymentMap> before =
      registry.Snapshot();
  ASSERT_TRUE(registry.Deploy("b", fixture.model).ok());
  ASSERT_TRUE(registry.Undeploy("a").ok());

  // The old map pointer still shows the world as of its read.
  EXPECT_EQ(before->size(), 1u);
  EXPECT_EQ(before->count("a"), 1u);
  std::shared_ptr<const ModelRegistry::DeploymentMap> after =
      registry.Snapshot();
  EXPECT_EQ(after->size(), 1u);
  EXPECT_EQ(after->count("b"), 1u);
}

TEST(DeployedModelTest, BatchScoresMatchTrainingPredictionsBitForBit) {
  // For a factorized-plan model the snapshot shares the exact view training
  // ran over, and the partial-score cache reproduces the training-time
  // in-sample predictions bit for bit.
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  auto deployed = fixture.model.Deploy(&registry, "scorer");
  ASSERT_TRUE(deployed.ok()) << deployed.status();

  auto in_sample = fixture.model.Predict();
  ASSERT_TRUE(in_sample.ok()) << in_sample.status();

  const std::vector<RowRef> batch = AllRows((*deployed)->rows());
  auto scores = (*deployed)->PredictBatch(batch);
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_EQ(*scores, *in_sample);  // bitwise

  // A gathered subset scores the same rows to the same bits, in request
  // order (including duplicates and reversals).
  std::vector<RowRef> subset = {{17}, {3}, {17}, {0}};
  auto gathered = (*deployed)->PredictBatch(subset);
  ASSERT_TRUE(gathered.ok()) << gathered.status();
  ASSERT_EQ(gathered->rows(), 4u);
  EXPECT_EQ(gathered->At(0, 0), in_sample->At(17, 0));
  EXPECT_EQ(gathered->At(1, 0), in_sample->At(3, 0));
  EXPECT_EQ(gathered->At(2, 0), gathered->At(0, 0));
  EXPECT_EQ(gathered->At(3, 0), in_sample->At(0, 0));
}

TEST(DeployedModelTest, MaterializedPlanModelsDeployThroughTheSameCache) {
  // Models whose executed plan materialized keep only the metadata copy;
  // deploy builds the factorized view from it, and both strategies' models
  // must serve identical scores (same weights to 1e-8, same view).
  TrainedFixture fact = TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  TrainedFixture mat =
      TrainLeftJoinModel(core::ExecutionStrategy::kMaterialize);
  ASSERT_EQ(fact.model.factorized_table() == nullptr, false);
  ASSERT_EQ(mat.model.factorized_table(), nullptr);
  ASSERT_NE(mat.model.metadata(), nullptr);

  ModelRegistry registry;
  auto from_fact = fact.model.Deploy(&registry, "fact");
  auto from_mat = mat.model.Deploy(&registry, "mat");
  ASSERT_TRUE(from_fact.ok()) << from_fact.status();
  ASSERT_TRUE(from_mat.ok()) << from_mat.status();

  const std::vector<RowRef> batch = AllRows((*from_fact)->rows());
  auto a = (*from_fact)->PredictBatch(batch);
  auto b = (*from_mat)->PredictBatch(batch);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_LT(a->MaxAbsDiff(*b), 1e-7);  // weights differ by GD rounding only
}

TEST(DeployedModelTest, BatchValidationAndEmptyBatchContracts) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  DeployOptions options;
  options.enable_dense_scoring = true;
  auto deployed = registry.Deploy("scorer", fixture.model, options);
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  const size_t rows = (*deployed)->rows();

  // An empty predict batch is fine (an empty answer, not an error)...
  auto empty = (*deployed)->PredictBatch({});
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->rows(), 0u);
  EXPECT_EQ(empty->cols(), 1u);
  // ...but an empty evaluation is rejected: its all-zero report would read
  // as a perfect model.
  EXPECT_TRUE((*deployed)->EvaluateBatch({}).status().IsInvalidArgument());

  // Any out-of-range reference fails the whole batch before scoring starts.
  std::vector<RowRef> bad = {{0}, {rows}};
  EXPECT_TRUE((*deployed)->PredictBatch(bad).status().IsInvalidArgument());
  EXPECT_TRUE(
      (*deployed)->PredictBatchDense(bad).status().IsInvalidArgument());
  EXPECT_TRUE((*deployed)->EvaluateBatch(bad).status().IsInvalidArgument());
}

TEST(DeployedModelTest, DenseScoringIsOptIn) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  auto lean = registry.Deploy("lean", fixture.model);
  ASSERT_TRUE(lean.ok()) << lean.status();
  EXPECT_FALSE((*lean)->dense_scoring_enabled());
  const std::vector<RowRef> batch = AllRows((*lean)->rows());
  EXPECT_TRUE(
      (*lean)->PredictBatchDense(batch).status().IsFailedPrecondition());

  DeployOptions options;
  options.enable_dense_scoring = true;
  auto full = registry.Deploy("full", fixture.model, options);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_TRUE((*full)->dense_scoring_enabled());
  auto factorized = (*full)->PredictBatch(batch);
  auto dense = (*full)->PredictBatchDense(batch);
  ASSERT_TRUE(factorized.ok()) << factorized.status();
  ASSERT_TRUE(dense.ok()) << dense.status();
  EXPECT_LT(factorized->MaxAbsDiff(*dense), 1e-12);
}

TEST(DeployedModelTest, BatchScoringIsThreadCountInvariant) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  auto deployed = registry.Deploy("scorer", fixture.model);
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  const std::vector<RowRef> batch = AllRows((*deployed)->rows());

  la::DenseMatrix serial;
  {
    common::ScopedNumThreads one(1);
    auto scores = (*deployed)->PredictBatch(batch);
    ASSERT_TRUE(scores.ok()) << scores.status();
    serial = *std::move(scores);
  }
  for (size_t threads : {2, 3, 8}) {
    common::ScopedNumThreads scope(threads);
    auto scores = (*deployed)->PredictBatch(batch);
    ASSERT_TRUE(scores.ok()) << scores.status();
    EXPECT_EQ(*scores, serial) << "thread count " << threads;
  }
}

TEST(DeployedModelTest, EvaluateBatchScoresAgainstDeployTimeLabels) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  auto deployed = registry.Deploy("scorer", fixture.model);
  ASSERT_TRUE(deployed.ok()) << deployed.status();

  const std::vector<RowRef> batch = AllRows((*deployed)->rows());
  auto report = (*deployed)->EvaluateBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->rows, (*deployed)->rows());
  // Full-batch evaluation equals the handle's in-sample evaluation.
  auto in_sample = fixture.model.Evaluate();
  ASSERT_TRUE(in_sample.ok()) << in_sample.status();
  EXPECT_DOUBLE_EQ(report->mse, in_sample->mse);
  EXPECT_DOUBLE_EQ(report->primary, report->mse);
}

TEST(DeployedModelTest, LogisticDeploymentsServeProbabilities) {
  integration::RunningExample ex = integration::MakeRunningExample();
  core::Amalur amalur;
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S1", ex.s1, "er", false}).ok());
  ASSERT_TRUE(
      amalur.catalog()->RegisterSource({"S2", ex.s2, "pulmonary", false}).ok());
  auto integration =
      amalur.Integrate("S1", "S2", rel::JoinKind::kFullOuterJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.task = core::TrainingTask::kLogisticRegression;
  request.label_column = "m";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.01;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto model = amalur.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();

  ModelRegistry registry;
  auto deployed = registry.Deploy("mortality", *model);
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  EXPECT_EQ((*deployed)->task(), core::TrainingTask::kLogisticRegression);

  const std::vector<RowRef> batch = AllRows((*deployed)->rows());
  auto scores = (*deployed)->PredictBatch(batch);
  ASSERT_TRUE(scores.ok()) << scores.status();
  for (size_t i = 0; i < scores->rows(); ++i) {
    EXPECT_GE(scores->At(i, 0), 0.0);
    EXPECT_LE(scores->At(i, 0), 1.0);
  }
  auto in_sample = model->Predict();
  ASSERT_TRUE(in_sample.ok()) << in_sample.status();
  EXPECT_EQ(*scores, *in_sample);  // sigmoid is elementwise → still bitwise

  auto report = (*deployed)->EvaluateBatch(batch);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->log_loss, 0.0);
  EXPECT_DOUBLE_EQ(report->primary, report->accuracy);
}

TEST(DeployedModelTest, StatsCountRequestsRowsAndCacheHits) {
  TrainedFixture fixture =
      TrainLeftJoinModel(core::ExecutionStrategy::kFactorize);
  ModelRegistry registry;
  DeployOptions options;
  options.enable_dense_scoring = true;
  auto deployed = registry.Deploy("scorer", fixture.model, options);
  ASSERT_TRUE(deployed.ok()) << deployed.status();

  ServingStats fresh = (*deployed)->stats();
  EXPECT_EQ(fresh.requests, 0u);
  EXPECT_EQ(fresh.rows, 0u);
  EXPECT_EQ(fresh.cache_hits, 0u);

  const std::vector<RowRef> batch = AllRows((*deployed)->rows());
  ASSERT_TRUE((*deployed)->PredictBatch(batch).ok());
  ServingStats after = (*deployed)->stats();
  EXPECT_EQ(after.requests, 1u);
  EXPECT_EQ(after.rows, batch.size());
  // Every row touches the base silo's cache at least once, so the
  // factorized path served >= one lookup per row.
  EXPECT_GE(after.cache_hits, batch.size());

  // The dense path counts the request but never hits the cache.
  ASSERT_TRUE((*deployed)->PredictBatchDense(batch).ok());
  ServingStats dense = (*deployed)->stats();
  EXPECT_EQ(dense.requests, 2u);
  EXPECT_EQ(dense.rows, 2 * batch.size());
  EXPECT_EQ(dense.cache_hits, after.cache_hits);

  // A failed batch never counts.
  std::vector<RowRef> bad = {{(*deployed)->rows()}};
  ASSERT_FALSE((*deployed)->PredictBatch(bad).ok());
  EXPECT_EQ((*deployed)->stats().requests, 2u);
}

}  // namespace
}  // namespace serving
}  // namespace amalur
