#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/amalur.h"
#include "relational/generator.h"
#include "serving/deployed_model.h"
#include "serving/model_registry.h"

/// Regression suite for the serving rewrite: on every Table I integration
/// scenario the batched factorized scorer (partial-score cache) must agree
/// with the dense baseline to 1e-12, and must reproduce the training-time
/// in-sample predictions bit for bit. This pins the serving tier to the
/// paper's core equivalence claim — factorization never changes the answer.

namespace amalur {
namespace serving {
namespace {

struct Scenario {
  std::string name;
  std::unique_ptr<core::Amalur> system;
  core::IntegrationHandle integration;
};

core::Amalur* NewSystem(std::vector<Scenario>* out, const char* name) {
  core::AmalurOptions options;
  options.matcher.threshold = 0.75;  // generic short names need evidence
  out->push_back({name, std::make_unique<core::Amalur>(options), {}});
  return out->back().system.get();
}

void FinishScenario(std::vector<Scenario>* out,
                    const core::IntegrationSpec& spec) {
  auto integration = out->back().system->Integrate(spec);
  AMALUR_CHECK(integration.ok()) << integration.status();
  out->back().integration = *std::move(integration);
}

/// The bench's seven Table I scenarios at test-sized row counts (same
/// generator seeds and shapes as bench_table1_scenarios.cc).
std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;

  const auto pair_scenario = [&out](const char* name, rel::SiloPairSpec spec) {
    core::Amalur* system = NewSystem(&out, name);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
    AMALUR_CHECK_OK(
        system->catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));
    core::IntegrationSpec integration_spec;
    integration_spec.sources = {"S1", "S2"};
    integration_spec.relationships = {spec.kind};
    FinishScenario(&out, integration_spec);
  };

  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kFullOuterJoin;
    spec.base_rows = 500;
    spec.other_rows = 200;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.shared_features = 2;
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
    spec.seed = 11;
    pair_scenario("full_outer_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kInnerJoin;
    spec.base_rows = 500;
    spec.other_rows = 500;
    spec.base_features = 4;
    spec.other_features = 40;
    spec.match_fraction = 1.0;
    spec.row_overlap = 1.0;
    spec.seed = 12;
    pair_scenario("inner_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kLeftJoin;
    spec.base_rows = 1000;
    spec.other_rows = 100;  // fan-out 10
    spec.base_features = 2;
    spec.other_features = 60;
    spec.seed = 13;
    pair_scenario("left_join", spec);
  }
  {
    rel::SiloPairSpec spec;
    spec.kind = rel::JoinKind::kUnion;
    spec.base_rows = 500;
    spec.other_rows = 500;
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 30;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
    spec.seed = 14;
    pair_scenario("union", spec);
  }
  {
    rel::SnowflakeSpec spec;
    spec.fact_rows = 1000;
    spec.fact_features = 2;
    spec.level_rows = {50, 5};
    spec.level_features = {30, 20};
    spec.seed = 15;
    rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
    core::Amalur* system = NewSystem(&out, "snowflake");
    for (const rel::Table& table : snowflake.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                              {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  {
    rel::UnionOfStarsSpec spec;
    spec.shards = 2;
    spec.fact_rows = 500;
    spec.fact_features = 2;
    spec.dim_rows = 25;
    spec.dim_features = 30;
    spec.seed = 16;
    rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
    core::Amalur* system = NewSystem(&out, "union_of_stars");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                              {"fact0", "fact1", rel::JoinKind::kUnion},
                              {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  {
    rel::ConformedSnowflakeSpec spec;
    spec.fact_rows = 1000;
    spec.fact_features = 2;
    spec.branches = 2;
    spec.branch_rows = 25;
    spec.branch_features = 20;
    spec.shared_rows = 5;
    spec.shared_features = 20;
    spec.seed = 17;
    rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
    core::Amalur* system = NewSystem(&out, "conformed_snowflake");
    for (const rel::Table& table : scenario.tables) {
      AMALUR_CHECK_OK(
          system->catalog()->RegisterSource({table.name(), table, "", false}));
    }
    core::IntegrationSpec integration_spec;
    integration_spec.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                              {"fact", "branch1", rel::JoinKind::kLeftJoin},
                              {"branch0", "shared", rel::JoinKind::kLeftJoin},
                              {"branch1", "shared", rel::JoinKind::kLeftJoin}};
    FinishScenario(&out, integration_spec);
  }
  return out;
}

TEST(ServingEquivalenceTest, BatchedFactorizedMatchesDenseOnAllScenarios) {
  for (Scenario& scenario : MakeScenarios()) {
    SCOPED_TRACE(scenario.name);

    core::TrainRequest request;
    request.label_column = "y";
    request.gd.iterations = 20;
    request.gd.learning_rate = 0.05;
    request.force_strategy = core::ExecutionStrategy::kFactorize;
    auto model = scenario.system->Train(scenario.integration, request);
    ASSERT_TRUE(model.ok()) << model.status();

    ModelRegistry registry;
    DeployOptions options;
    options.enable_dense_scoring = true;
    auto deployed = model->Deploy(&registry, "scorer", options);
    ASSERT_TRUE(deployed.ok()) << deployed.status();
    ASSERT_EQ((*deployed)->rows(),
              scenario.integration.metadata.target_rows());

    std::vector<RowRef> batch((*deployed)->rows());
    for (size_t i = 0; i < batch.size(); ++i) batch[i].row = i;

    auto factorized = (*deployed)->PredictBatch(batch);
    auto dense = (*deployed)->PredictBatchDense(batch);
    ASSERT_TRUE(factorized.ok()) << factorized.status();
    ASSERT_TRUE(dense.ok()) << dense.status();

    // The paper's equivalence claim, serving edition: the partial-score
    // cache and a dense dot product over the materialized target differ by
    // summation order only.
    EXPECT_LT(factorized->MaxAbsDiff(*dense), 1e-12);

    // And the cache reproduces the training-time in-sample predictions bit
    // for bit (same factorized view, same mapped-pair order).
    auto in_sample = model->Predict();
    ASSERT_TRUE(in_sample.ok()) << in_sample.status();
    EXPECT_EQ(*factorized, *in_sample);
  }
}

}  // namespace
}  // namespace serving
}  // namespace amalur
