#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "factorized/factorized_table.h"
#include "factorized/scenario_builder.h"

/// Parallel/serial equivalence for the factorized rewrite kernels. Every
/// parallel loop in FactorizedTable partitions disjoint output (unique rows,
/// a class's target rows, or target-column bands) and preserves the serial
/// floating-point accumulation order, so results must be *bitwise* equal to
/// the 1-thread run at every thread count — asserted with operator== across
/// {1, 2, hardware, 5} threads for all four Table I relationships.

namespace amalur {
namespace factorized {
namespace {

std::vector<size_t> TestedThreadCounts() {
  std::vector<size_t> counts = {1, 2};
  const size_t hw = common::DefaultNumThreads();
  if (hw != 1 && hw != 2) counts.push_back(hw);
  counts.push_back(5);
  return counts;
}

FactorizedTable MakeTable(rel::JoinKind kind, uint64_t seed) {
  rel::SiloPairSpec spec;
  spec.kind = kind;
  spec.base_rows = 250;
  spec.other_rows = 60;  // fan-out in the join scenarios
  spec.base_features = 3;
  spec.other_features = 5;
  spec.shared_features = 2;
  if (kind == rel::JoinKind::kUnion) {
    spec.base_features = 0;
    spec.other_features = 0;
    spec.shared_features = 4;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
  } else if (kind == rel::JoinKind::kFullOuterJoin) {
    spec.match_fraction = 0.5;
    spec.row_overlap = 0.5;
  }
  spec.seed = seed;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return FactorizedTable(std::move(metadata).ValueOrDie());
}

class ParallelFactorizedTest
    : public ::testing::TestWithParam<rel::JoinKind> {
 protected:
  void TearDown() override { common::SetNumThreads(0); }

  template <typename Fn>
  void ExpectBitwiseStable(Fn kernel) {
    common::SetNumThreads(1);
    const la::DenseMatrix serial = kernel();
    for (size_t threads : TestedThreadCounts()) {
      common::SetNumThreads(threads);
      EXPECT_TRUE(kernel() == serial) << "thread count " << threads;
    }
  }
};

TEST_P(ParallelFactorizedTest, LeftMultiplyBitwiseEqualAcrossThreads) {
  FactorizedTable table = MakeTable(GetParam(), 21);
  Rng rng(1);
  const la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(table.cols(), 3, &rng);
  ExpectBitwiseStable([&] { return table.LeftMultiply(x); });
}

TEST_P(ParallelFactorizedTest, TransposeLeftMultiplyBitwiseEqualAcrossThreads) {
  FactorizedTable table = MakeTable(GetParam(), 22);
  Rng rng(2);
  const la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(table.rows(), 2, &rng);
  ExpectBitwiseStable([&] { return table.TransposeLeftMultiply(x); });
}

TEST_P(ParallelFactorizedTest, RightMultiplyBitwiseEqualAcrossThreads) {
  FactorizedTable table = MakeTable(GetParam(), 23);
  Rng rng(3);
  const la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(4, table.rows(), &rng);
  ExpectBitwiseStable([&] { return table.RightMultiply(x); });
}

TEST_P(ParallelFactorizedTest, AggregatesBitwiseEqualAcrossThreads) {
  FactorizedTable table = MakeTable(GetParam(), 24);
  ExpectBitwiseStable([&] { return table.RowSums(); });
  ExpectBitwiseStable([&] { return table.ColSums(); });
  ExpectBitwiseStable([&] { return table.RowSquaredNorms(); });
}

TEST_P(ParallelFactorizedTest, ParallelRewriteStillMatchesMaterialized) {
  // The rewrite-correctness invariant must hold while parallel: TX computed
  // factorized == TX computed on the materialized target.
  FactorizedTable table = MakeTable(GetParam(), 25);
  Rng rng(4);
  const la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(table.cols(), 2, &rng);
  const la::DenseMatrix t = table.Materialize();
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    EXPECT_LT(table.LeftMultiply(x).MaxAbsDiff(t.Multiply(x)), 1e-10)
        << "thread count " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRelationships, ParallelFactorizedTest,
                         ::testing::Values(rel::JoinKind::kInnerJoin,
                                           rel::JoinKind::kLeftJoin,
                                           rel::JoinKind::kFullOuterJoin,
                                           rel::JoinKind::kUnion),
                         [](const auto& info) {
                           switch (info.param) {
                             case rel::JoinKind::kInnerJoin:
                               return "InnerJoin";
                             case rel::JoinKind::kLeftJoin:
                               return "LeftJoin";
                             case rel::JoinKind::kFullOuterJoin:
                               return "FullOuterJoin";
                             case rel::JoinKind::kUnion:
                               return "Union";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace factorized
}  // namespace amalur
