#include "factorized/aggregates.h"

#include <gtest/gtest.h>

#include "factorized/scenario_builder.h"
#include "integration/running_example.h"

namespace amalur {
namespace factorized {
namespace {

metadata::DiMetadata RunningExampleMetadata() {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto md =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  AMALUR_CHECK(md.ok()) << md.status();
  return std::move(md).ValueOrDie();
}

TEST(AggregatesTest, PaperSectionIIICMotivatingQuery) {
  // "How many patients aged above 30 are in S1 and S2? The correct answer
  // is three instead of four" — Jane (in both silos) counts once.
  metadata::DiMetadata md = RunningExampleMetadata();
  auto over_30 = CountWhere(md, "a", [](double age) { return age > 30; });
  ASSERT_TRUE(over_30.ok());
  EXPECT_EQ(*over_30, 3u);  // Sam (35), Jane (37, deduplicated), Rose (45)
}

TEST(AggregatesTest, CountRowsIsTargetCardinality) {
  metadata::DiMetadata md = RunningExampleMetadata();
  EXPECT_EQ(CountRows(md), 6u);  // 4 S1 + 3 S2 - 1 shared (Jane)
}

TEST(AggregatesTest, CountSkipsAbsentCells) {
  metadata::DiMetadata md = RunningExampleMetadata();
  // hr exists only for S1's patients (4 rows), o only for S2's (3 rows).
  auto any_hr = CountWhere(md, "hr", [](double) { return true; });
  ASSERT_TRUE(any_hr.ok());
  EXPECT_EQ(*any_hr, 4u);
  auto any_o = CountWhere(md, "o", [](double) { return true; });
  ASSERT_TRUE(any_o.ok());
  EXPECT_EQ(*any_o, 3u);
}

TEST(AggregatesTest, SumAvgMinMaxOnRunningExample) {
  metadata::DiMetadata md = RunningExampleMetadata();
  // Ages (deduplicated): Jane 37, Jack 20, Sam 35, Ruby 22, Rose 45,
  // Castiel 20 -> sum 179.
  auto sum = SumColumn(md, "a");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, 179.0);
  auto avg = AvgColumn(md, "a");
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 179.0 / 6.0);
  auto oxygen_avg = AvgColumn(md, "o");
  ASSERT_TRUE(oxygen_avg.ok());
  EXPECT_DOUBLE_EQ(*oxygen_avg, (95.0 + 97.0 + 92.0) / 3.0);  // only 3 rows
  EXPECT_DOUBLE_EQ(*MinColumn(md, "hr"), 58.0);
  EXPECT_DOUBLE_EQ(*MaxColumn(md, "hr"), 70.0);
}

TEST(AggregatesTest, NaiveDoubleCountingWouldBeWrong) {
  // The whole point of R: summing per-source contributions double-counts
  // Jane's age; the aggregate path must not.
  metadata::DiMetadata md = RunningExampleMetadata();
  double naive = md.SourceContribution(0).Add(md.SourceContribution(1))
                     .SelectColumns({1})
                     .Sum();
  EXPECT_DOUBLE_EQ(naive, 179.0 + 37.0);  // Jane counted twice
  EXPECT_DOUBLE_EQ(*SumColumn(md, "a"), 179.0);
}

TEST(AggregatesTest, UnknownColumnRejected) {
  metadata::DiMetadata md = RunningExampleMetadata();
  EXPECT_TRUE(SumColumn(md, "zzz").status().IsNotFound());
  EXPECT_TRUE(
      CountWhere(md, "zzz", [](double) { return true; }).status().IsNotFound());
}

TEST(AggregatesTest, AggregatesMatchMaterializedOnGeneratedScenarios) {
  for (rel::JoinKind kind :
       {rel::JoinKind::kInnerJoin, rel::JoinKind::kLeftJoin,
        rel::JoinKind::kFullOuterJoin, rel::JoinKind::kUnion}) {
    rel::SiloPairSpec spec;
    spec.kind = kind;
    spec.base_rows = 70;
    spec.other_rows = 35;
    spec.base_features = 2;
    spec.other_features = 2;
    spec.shared_features = 1;
    spec.match_fraction = kind == rel::JoinKind::kUnion ? 0.0 : 0.6;
    spec.row_overlap = kind == rel::JoinKind::kUnion ? 0.0 : 0.8;
    spec.seed = 50 + static_cast<uint64_t>(kind);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    auto md = DerivePairMetadata(pair);
    ASSERT_TRUE(md.ok()) << md.status();
    // SUM over the shared feature equals the materialized column sum
    // (absent cells are zeros either way).
    const auto target_index = md->target_schema().IndexOf("s0");
    ASSERT_TRUE(target_index.has_value());
    la::DenseMatrix t = md->MaterializeTargetMatrix();
    double expected = 0.0;
    for (size_t i = 0; i < t.rows(); ++i) expected += t.At(i, *target_index);
    auto sum = SumColumn(*md, "s0");
    ASSERT_TRUE(sum.ok());
    EXPECT_NEAR(*sum, expected, 1e-9) << rel::JoinKindToString(kind);
  }
}

}  // namespace
}  // namespace factorized
}  // namespace amalur
