#include "factorized/factorized_table.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"

namespace amalur {
namespace factorized {
namespace {

using integration::MakeRunningExample;
using integration::RunningExample;
using integration::RunningExampleTargetMatrix;

FactorizedTable MakeRunningExampleTable() {
  RunningExample ex = MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return FactorizedTable(std::move(metadata).ValueOrDie());
}

TEST(FactorizedTableTest, MaterializeMatchesFigure4) {
  FactorizedTable t = MakeRunningExampleTable();
  EXPECT_EQ(t.rows(), 6u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_TRUE(t.Materialize().ApproxEquals(RunningExampleTargetMatrix()));
}

TEST(FactorizedTableTest, LmmRewriteMatchesPaperEquation) {
  // TX → I1 D1 M1ᵀ X + ((I2 D2 M2ᵀ) ∘ R2) X (rewrite rule 2, Figure 4c).
  FactorizedTable t = MakeRunningExampleTable();
  Rng rng(7);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(4, 2, &rng);
  la::DenseMatrix expected = RunningExampleTargetMatrix().Multiply(x);
  EXPECT_LT(t.LeftMultiply(x).MaxAbsDiff(expected), 1e-10);

  // Explicit two-term assembly from the paper: T1 X + (T2 ∘ R2) X.
  const metadata::DiMetadata& md = t.metadata();
  la::DenseMatrix t1x = md.SourceContribution(0).Multiply(x);
  la::DenseMatrix t2 = md.SourceContribution(1);
  md.source(1).redundancy.ApplyInPlace(&t2);
  la::DenseMatrix assembled = t1x.Add(t2.Multiply(x));
  EXPECT_LT(t.LeftMultiply(x).MaxAbsDiff(assembled), 1e-10);
}

TEST(FactorizedTableTest, MorpheusRuleDoubleCountsOnOverlap) {
  // The running example has overlapping columns (m, a) on the matched row;
  // Morpheus-style assembly without R double-counts them.
  RunningExample ex = MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  MorpheusReference morpheus(std::move(metadata).ValueOrDie());
  la::DenseMatrix x = la::DenseMatrix::Identity(4);
  la::DenseMatrix morpheus_t = morpheus.LeftMultiply(x);
  la::DenseMatrix expected = RunningExampleTargetMatrix();
  EXPECT_FALSE(morpheus_t.ApproxEquals(expected));
  EXPECT_DOUBLE_EQ(morpheus_t.At(0, 0), 2.0);   // Jane's m doubled
  EXPECT_DOUBLE_EQ(morpheus_t.At(0, 1), 74.0);  // Jane's a doubled
  EXPECT_DOUBLE_EQ(morpheus_t.At(0, 3), 92.0);  // o unaffected
}

/// Factorized == materialized over every Table I dataset relationship and a
/// sweep of shapes/overlaps — the correctness core of the whole system.
struct ScenarioParam {
  rel::JoinKind kind;
  size_t base_rows, other_rows;
  size_t base_features, other_features, shared_features;
  double match_fraction, row_overlap;
  double null_ratio;
  bool other_has_label;
};

class FactorizedEquivalenceTest : public ::testing::TestWithParam<ScenarioParam> {
 protected:
  FactorizedTable MakeTable() {
    const ScenarioParam& p = GetParam();
    rel::SiloPairSpec spec;
    spec.kind = p.kind;
    spec.base_rows = p.base_rows;
    spec.other_rows = p.other_rows;
    spec.base_features = p.base_features;
    spec.other_features = p.other_features;
    spec.shared_features = p.shared_features;
    spec.match_fraction = p.match_fraction;
    spec.row_overlap = p.row_overlap;
    spec.null_ratio = p.null_ratio;
    spec.other_has_label = p.other_has_label;
    spec.seed = 1234 + static_cast<uint64_t>(p.kind);
    rel::SiloPair pair = rel::GenerateSiloPair(spec);
    auto metadata = DerivePairMetadata(pair);
    AMALUR_CHECK(metadata.ok()) << metadata.status();
    return FactorizedTable(std::move(metadata).ValueOrDie());
  }
};

TEST_P(FactorizedEquivalenceTest, LeftMultiply) {
  FactorizedTable t = MakeTable();
  la::DenseMatrix dense = t.Materialize();
  Rng rng(1);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(t.cols(), 3, &rng);
  EXPECT_LT(t.LeftMultiply(x).MaxAbsDiff(dense.Multiply(x)), 1e-9);
}

TEST_P(FactorizedEquivalenceTest, TransposeLeftMultiply) {
  FactorizedTable t = MakeTable();
  la::DenseMatrix dense = t.Materialize();
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(t.rows(), 3, &rng);
  EXPECT_LT(t.TransposeLeftMultiply(x).MaxAbsDiff(
                dense.TransposeMultiply(x)),
            1e-9);
}

TEST_P(FactorizedEquivalenceTest, RightMultiply) {
  FactorizedTable t = MakeTable();
  la::DenseMatrix dense = t.Materialize();
  Rng rng(3);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(2, t.rows(), &rng);
  EXPECT_LT(t.RightMultiply(x).MaxAbsDiff(x.Multiply(dense)), 1e-9);
}

TEST_P(FactorizedEquivalenceTest, Aggregates) {
  FactorizedTable t = MakeTable();
  la::DenseMatrix dense = t.Materialize();
  EXPECT_LT(t.RowSums().MaxAbsDiff(dense.RowSums()), 1e-9);
  EXPECT_LT(t.ColSums().MaxAbsDiff(dense.ColSums()), 1e-9);
  la::DenseMatrix squared = dense.Map([](double v) { return v * v; });
  EXPECT_LT(t.RowSquaredNorms().MaxAbsDiff(squared.RowSums()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TableOneScenarios, FactorizedEquivalenceTest,
    ::testing::Values(
        // Example 1: full outer join, overlapping columns & partial rows.
        ScenarioParam{rel::JoinKind::kFullOuterJoin, 60, 40, 2, 3, 2, 0.5, 0.6,
                      0.0, true},
        // Example 2: inner join, VFL-style shared sample space.
        ScenarioParam{rel::JoinKind::kInnerJoin, 50, 30, 3, 4, 1, 0.8, 0.9,
                      0.0, true},
        // Example 3: left join, only the base holds the label.
        ScenarioParam{rel::JoinKind::kLeftJoin, 70, 25, 2, 5, 0, 0.6, 1.0,
                      0.0, false},
        // Example 4: union, shared feature space, disjoint rows.
        ScenarioParam{rel::JoinKind::kUnion, 45, 35, 0, 0, 4, 0.0, 0.0, 0.0,
                      true},
        // Fan-out: several base rows reference the same other row (target
        // redundancy, tuple ratio 5).
        ScenarioParam{rel::JoinKind::kLeftJoin, 100, 20, 1, 8, 0, 1.0, 1.0,
                      0.0, false},
        // Nulls in the features.
        ScenarioParam{rel::JoinKind::kFullOuterJoin, 40, 40, 2, 2, 2, 0.5,
                      0.5, 0.25, true},
        // Degenerate: nothing matches (outer join = disjoint union).
        ScenarioParam{rel::JoinKind::kFullOuterJoin, 30, 30, 1, 1, 1, 0.0,
                      0.0, 0.0, true},
        // Single-column sources.
        ScenarioParam{rel::JoinKind::kInnerJoin, 20, 20, 1, 1, 0, 1.0, 1.0,
                      0.0, false}));

TEST(FactorizedTableTest, MorpheusAgreesWhenNoOverlap) {
  // Morpheus's setting: disjoint feature columns, inner join, no shared
  // columns -> rule (1) and rule (2) coincide.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 40;
  spec.other_rows = 20;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.shared_features = 0;
  spec.seed = 5;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  FactorizedTable amalur(*metadata);
  MorpheusReference morpheus(std::move(*metadata));
  Rng rng(6);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(amalur.cols(), 2, &rng);
  EXPECT_LT(amalur.LeftMultiply(x).MaxAbsDiff(morpheus.LeftMultiply(x)), 1e-10);
}

TEST(FactorizedTableTest, RejectsWrongShapes) {
  FactorizedTable t = MakeRunningExampleTable();
  la::DenseMatrix bad(3, 3);
  EXPECT_DEATH(t.LeftMultiply(bad), "LMM");
  EXPECT_DEATH(t.TransposeLeftMultiply(bad), "rT rows");
  EXPECT_DEATH(t.RightMultiply(bad), "rT columns");
}

}  // namespace
}  // namespace factorized
}  // namespace amalur
