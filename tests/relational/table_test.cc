#include "relational/table.h"

#include <gtest/gtest.h>

#include "relational/schema.h"

namespace amalur {
namespace rel {
namespace {

Table MakePatients() {
  Table t("S1");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("m", {0, 1, 2, 3})));
  AMALUR_CHECK_OK(
      t.AddColumn(Column::FromStrings("n", {"Jack", "Sam", "Ruby", "Jane"})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("a", {20, 35, 22, 37})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromDoubles("hr", {60, 58, 65, 70})));
  return t;
}

TEST(ValueTest, TypesAndNull) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{4}).int64(), 4);
  EXPECT_DOUBLE_EQ(Value(2.5).dbl(), 2.5);
  EXPECT_EQ(Value("abc").str(), "abc");
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsDouble(), 4.0);
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
}

TEST(SchemaTest, LookupAndProject) {
  Schema s = Schema::AllDouble({"m", "a", "hr", "o"});
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.IndexOf("hr").value(), 2u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
  Schema p = s.Project({0, 3});
  EXPECT_EQ(p.Names(), (std::vector<std::string>{"m", "o"}));
}

TEST(ColumnTest, NullHandling) {
  Column c("o", DataType::kDouble);
  c.AppendDouble(95);
  c.AppendNull();
  c.AppendDouble(97);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.NullCount(), 1u);
  EXPECT_DOUBLE_EQ(c.NullRatio(), 1.0 / 3.0);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_DOUBLE_EQ(c.GetDouble(1, -1.0), -1.0);
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, GatherWithNullRow) {
  Column c = Column::FromInt64s("a", {10, 20, 30});
  Column g = c.Gather({2, Column::kNullRow, 0, 0});
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.GetValue(0).int64(), 30);
  EXPECT_TRUE(g.GetValue(1).is_null());
  EXPECT_EQ(g.GetValue(2).int64(), 10);
  EXPECT_EQ(g.GetValue(3).int64(), 10);
}

TEST(ColumnTest, SetValueOverwrites) {
  Column c = Column::FromDoubles("hr", {60, 58});
  c.SetValue(1, Value::Null());
  EXPECT_TRUE(c.IsNull(1));
  c.SetValue(1, Value(72.0));
  EXPECT_DOUBLE_EQ(c.GetDouble(1), 72.0);
}

TEST(TableTest, BasicShapeAndSchema) {
  Table t = MakePatients();
  EXPECT_EQ(t.NumRows(), 4u);
  EXPECT_EQ(t.NumColumns(), 4u);
  EXPECT_EQ(t.schema().Names(), (std::vector<std::string>{"m", "n", "a", "hr"}));
  EXPECT_EQ(t.ColumnIndex("a").ValueOrDie(), 2u);
  EXPECT_TRUE(t.ColumnIndex("nope").status().IsNotFound());
}

TEST(TableTest, AddColumnValidation) {
  Table t = MakePatients();
  EXPECT_TRUE(t.AddColumn(Column::FromInt64s("m", {1, 2, 3, 4}))
                  .IsAlreadyExists());
  EXPECT_TRUE(t.AddColumn(Column::FromInt64s("w", {1, 2})).IsInvalidArgument());
  EXPECT_TRUE(t.AddColumn(Column::FromInt64s("w", {1, 2, 3, 4})).ok());
}

TEST(TableTest, AppendRowChecksArity) {
  Table t = MakePatients();
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4})}).IsInvalidArgument());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value("Rose"), Value(int64_t{45}),
                           Value::Null()})
                  .ok());
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_TRUE(t.column(3).IsNull(4));
}

TEST(TableTest, ProjectAndGather) {
  Table t = MakePatients();
  Table p = t.Project({0, 2});
  EXPECT_EQ(p.schema().Names(), (std::vector<std::string>{"m", "a"}));
  Table g = t.GatherRows({3, 0});
  EXPECT_EQ(g.NumRows(), 2u);
  EXPECT_EQ(g.column(1).GetValue(0).str(), "Jane");

  auto named = t.ProjectNames({"hr", "m"});
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->schema().Names(), (std::vector<std::string>{"hr", "m"}));
  EXPECT_TRUE(t.ProjectNames({"zzz"}).status().IsNotFound());
}

TEST(TableTest, ToMatrixNumericWithNullSubstitute) {
  Table t("D");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("m", {0, 1})));
  Column o("o", DataType::kDouble);
  o.AppendDouble(95);
  o.AppendNull();
  AMALUR_CHECK_OK(t.AddColumn(std::move(o)));
  auto m = t.ToMatrix();
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->ApproxEquals(la::DenseMatrix({{0, 95}, {1, 0}})));
  auto m2 = t.ToMatrix({1}, -9.0);
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(m2->ApproxEquals(la::DenseMatrix({{95}, {-9}})));
}

TEST(TableTest, ToMatrixRejectsStrings) {
  Table t = MakePatients();
  EXPECT_TRUE(t.ToMatrix().status().IsInvalidArgument());
  EXPECT_TRUE(t.ToMatrix({0, 2, 3}).ok());
}

TEST(TableTest, MatrixRoundTrip) {
  la::DenseMatrix m({{1, 2}, {3, 4}, {5, 6}});
  Table t = Table::FromMatrix("D", m, {"a", "b"});
  EXPECT_EQ(t.NumRows(), 3u);
  auto back = t.ToMatrix();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(m));
}

TEST(TableTest, NullRatio) {
  Table t("N");
  Column a("a", DataType::kDouble);
  a.AppendDouble(1);
  a.AppendNull();
  AMALUR_CHECK_OK(t.AddColumn(std::move(a)));
  Column b("b", DataType::kDouble);
  b.AppendNull();
  b.AppendNull();
  AMALUR_CHECK_OK(t.AddColumn(std::move(b)));
  EXPECT_DOUBLE_EQ(t.NullRatio(), 0.75);
}

}  // namespace
}  // namespace rel
}  // namespace amalur
