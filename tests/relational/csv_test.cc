#include "relational/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace amalur {
namespace rel {
namespace {

TEST(CsvTest, ParsesTypedColumnsWithHeader) {
  std::istringstream input(
      "m,n,a,hr\n"
      "0,Jack,20,60.5\n"
      "1,Sam,35,58\n");
  auto table = ReadCsv(input, "S1");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->column(0).type(), DataType::kInt64);
  EXPECT_EQ(table->column(1).type(), DataType::kString);
  EXPECT_EQ(table->column(2).type(), DataType::kInt64);
  EXPECT_EQ(table->column(3).type(), DataType::kDouble);  // 60.5 promotes
  EXPECT_DOUBLE_EQ(table->column(3).GetDouble(1), 58.0);
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  std::istringstream input(
      "a,o\n"
      "1,95\n"
      "2,\n");
  auto table = ReadCsv(input, "t");
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->column(1).IsNull(0));
  EXPECT_TRUE(table->column(1).IsNull(1));
}

TEST(CsvTest, StrayStringDemotesWholeColumn) {
  std::istringstream input(
      "v\n"
      "1\n"
      "x\n"
      "3\n");
  auto table = ReadCsv(input, "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column(0).type(), DataType::kString);
  EXPECT_EQ(table->column(0).GetValue(0).str(), "1");
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  std::istringstream input("1,2\n3,4\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(input, "t", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().Names(), (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(table->NumRows(), 2u);
}

TEST(CsvTest, RaggedRowRejected) {
  std::istringstream input("a,b\n1\n");
  EXPECT_TRUE(ReadCsv(input, "t").status().IsInvalidArgument());
}

TEST(CsvTest, EmptyInputRejected) {
  std::istringstream input("");
  EXPECT_TRUE(ReadCsv(input, "t").status().IsInvalidArgument());
}

TEST(CsvTest, CrlfLineEndingsHandled) {
  std::istringstream input("a\r\n1\r\n2\r\n");
  auto table = ReadCsv(input, "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->column(0).type(), DataType::kInt64);
}

TEST(CsvTest, RoundTripPreservesValuesAndNulls) {
  Table t("roundtrip");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("k", {1, 2, 3})));
  Column o("o", DataType::kDouble);
  o.AppendDouble(95.25);
  o.AppendNull();
  o.AppendDouble(-7.5);
  AMALUR_CHECK_OK(t.AddColumn(std::move(o)));
  AMALUR_CHECK_OK(
      t.AddColumn(Column::FromStrings("n", {"Rose", "Castiel", "Jane"})));

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, "roundtrip");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 3u);
  EXPECT_EQ(back->column(0).GetValue(2).int64(), 3);
  EXPECT_TRUE(back->column(1).IsNull(1));
  EXPECT_DOUBLE_EQ(back->column(1).GetDouble(0), 95.25);
  EXPECT_EQ(back->column(2).GetValue(2).str(), "Jane");
}

TEST(CsvTest, FileRoundTrip) {
  Table t("file_rt");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromDoubles("x", {1.5, 2.5})));
  const std::string path = ::testing::TempDir() + "/amalur_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "amalur_csv_test");
  EXPECT_DOUBLE_EQ(back->column(0).GetDouble(1), 2.5);
  EXPECT_TRUE(ReadCsvFile("/nonexistent/nope.csv").status().IsIOError());
}

}  // namespace
}  // namespace rel
}  // namespace amalur
