#include "relational/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "relational/join.h"

namespace amalur {
namespace rel {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  SiloPairSpec spec;
  spec.base_rows = 50;
  spec.other_rows = 20;
  spec.seed = 7;
  SiloPair a = GenerateSiloPair(spec);
  SiloPair b = GenerateSiloPair(spec);
  EXPECT_TRUE(a.base.ToMatrix({1, 2}).ValueOrDie().ApproxEquals(
      b.base.ToMatrix({1, 2}).ValueOrDie(), 0.0));
  EXPECT_TRUE(a.other.ToMatrix({1, 2}).ValueOrDie().ApproxEquals(
      b.other.ToMatrix({1, 2}).ValueOrDie(), 0.0));
}

TEST(GeneratorTest, ShapesMatchSpec) {
  SiloPairSpec spec;
  spec.base_rows = 100;
  spec.other_rows = 40;
  spec.base_features = 3;
  spec.other_features = 5;
  spec.shared_features = 2;
  SiloPair pair = GenerateSiloPair(spec);
  // S1: k, y, s0, s1, x0..x2
  EXPECT_EQ(pair.base.NumRows(), 100u);
  EXPECT_EQ(pair.base.NumColumns(), 2u + 2u + 3u);
  // S2: k, s0, s1, z0..z4
  EXPECT_EQ(pair.other.NumRows(), 40u);
  EXPECT_EQ(pair.other.NumColumns(), 1u + 2u + 5u);
  EXPECT_EQ(pair.TargetFeatureNames(),
            (std::vector<std::string>{"s0", "s1", "x0", "x1", "x2", "z0", "z1",
                                      "z2", "z3", "z4"}));
}

TEST(GeneratorTest, FullOverlapMeansEveryBaseRowMatches) {
  SiloPairSpec spec;
  spec.base_rows = 60;
  spec.other_rows = 20;
  spec.match_fraction = 1.0;
  spec.row_overlap = 1.0;
  SiloPair pair = GenerateSiloPair(spec);
  auto matching = MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->matched.size(), 60u);  // every S1 row matches exactly once
  EXPECT_TRUE(matching->left_only.empty());
  EXPECT_TRUE(matching->right_only.empty());
}

TEST(GeneratorTest, MatchFractionControlsUnmatchedBaseRows) {
  SiloPairSpec spec;
  spec.base_rows = 100;
  spec.other_rows = 50;
  spec.match_fraction = 0.3;
  SiloPair pair = GenerateSiloPair(spec);
  auto matching = MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->matched.size(), 30u);
  EXPECT_EQ(matching->left_only.size(), 70u);
}

TEST(GeneratorTest, RowOverlapControlsMatchedOtherRows) {
  SiloPairSpec spec;
  spec.base_rows = 200;
  spec.other_rows = 100;
  spec.match_fraction = 1.0;
  spec.row_overlap = 0.4;  // only 40 S2 entities are referenced
  SiloPair pair = GenerateSiloPair(spec);
  auto matching = MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->matched.size(), 200u);  // fan-out 5 over 40 keys
  EXPECT_EQ(matching->right_only.size(), 60u);
  std::set<size_t> matched_right;
  for (auto [l, r] : matching->matched) matched_right.insert(r);
  EXPECT_EQ(matched_right.size(), 40u);
}

TEST(GeneratorTest, DuplicateRateAddsExactCopies) {
  SiloPairSpec spec;
  spec.base_rows = 10;
  spec.other_rows = 100;
  spec.other_dup_rate = 0.5;
  spec.other_features = 3;
  SiloPair pair = GenerateSiloPair(spec);
  EXPECT_EQ(pair.other.NumRows(), 150u);
  // Duplicated rows carry identical feature values as their source entity.
  auto key_col = pair.other.ColumnByName("k").ValueOrDie();
  auto z0 = pair.other.ColumnByName("z0").ValueOrDie();
  for (size_t i = 100; i < 150; ++i) {
    const int64_t entity = key_col->GetValue(i).int64();
    EXPECT_EQ(z0->GetValue(i), z0->GetValue(static_cast<size_t>(entity)));
  }
}

TEST(GeneratorTest, SharedFeaturesAgreeAcrossSilos) {
  SiloPairSpec spec;
  spec.base_rows = 30;
  spec.other_rows = 30;
  spec.shared_features = 2;
  SiloPair pair = GenerateSiloPair(spec);
  auto matching = MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  auto s0_base = pair.base.ColumnByName("s0").ValueOrDie();
  auto s0_other = pair.other.ColumnByName("s0").ValueOrDie();
  for (auto [l, r] : matching->matched) {
    EXPECT_DOUBLE_EQ(s0_base->GetDouble(l), s0_other->GetDouble(r));
  }
}

TEST(GeneratorTest, NullRatioInjectsNulls) {
  SiloPairSpec spec;
  spec.base_rows = 1000;
  spec.other_rows = 100;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.null_ratio = 0.2;
  SiloPair pair = GenerateSiloPair(spec);
  double ratio = pair.base.ColumnByName("x0").ValueOrDie()->NullRatio();
  EXPECT_NEAR(ratio, 0.2, 0.05);
  // Keys and labels are never null.
  EXPECT_EQ(pair.base.ColumnByName("k").ValueOrDie()->NullCount(), 0u);
  EXPECT_EQ(pair.base.ColumnByName("y").ValueOrDie()->NullCount(), 0u);
}

TEST(GeneratorTest, OtherHasLabelWhenRequested) {
  SiloPairSpec spec;
  spec.other_has_label = true;
  spec.base_rows = 10;
  spec.other_rows = 10;
  SiloPair pair = GenerateSiloPair(spec);
  EXPECT_TRUE(pair.other.schema().Contains("y"));
  // Matched entities agree on the label across silos.
  auto matching = MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"});
  auto y_base = pair.base.ColumnByName("y").ValueOrDie();
  auto y_other = pair.other.ColumnByName("y").ValueOrDie();
  for (auto [l, r] : matching->matched) {
    EXPECT_DOUBLE_EQ(y_base->GetDouble(l), y_other->GetDouble(r));
  }
}

TEST(GeneratorTest, SingleTableGeneratorShape) {
  Table t = GenerateTable("D", 50, 4, 3);
  EXPECT_EQ(t.NumRows(), 50u);
  EXPECT_EQ(t.schema().Names(),
            (std::vector<std::string>{"k", "y", "x0", "x1", "x2", "x3"}));
  // Label is correlated with features (R^2 sanity: variance of y > noise).
  auto m = t.ToMatrix({1}).ValueOrDie();
  double mean = m.Sum() / 50.0;
  double var = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    var += (m.At(i, 0) - mean) * (m.At(i, 0) - mean);
  }
  EXPECT_GT(var / 50.0, 0.05);
}

}  // namespace
}  // namespace rel
}  // namespace amalur
