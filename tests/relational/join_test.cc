#include "relational/join.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace amalur {
namespace rel {
namespace {

// The paper's running example (Figure 2), keyed on patient name.
Table MakeS1() {
  Table t("S1");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("m", {0, 1, 2, 3})));
  AMALUR_CHECK_OK(
      t.AddColumn(Column::FromStrings("n", {"Jack", "Sam", "Ruby", "Jane"})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("a", {20, 35, 22, 37})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("hr", {60, 58, 65, 70})));
  return t;
}

Table MakeS2() {
  Table t("S2");
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("m", {0, 1, 2})));
  AMALUR_CHECK_OK(
      t.AddColumn(Column::FromStrings("n", {"Rose", "Castiel", "Jane"})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("a", {45, 20, 37})));
  AMALUR_CHECK_OK(t.AddColumn(Column::FromInt64s("o", {95, 97, 92})));
  AMALUR_CHECK_OK(t.AddColumn(
      Column::FromStrings("dd", {"1/4/21", "3/8/22", "11/5/21"})));
  return t;
}

TEST(MatchRowsTest, RunningExampleMatchesJaneOnly) {
  auto matching = MatchRowsOnKeys(MakeS1(), MakeS2(), {"n", "a"}, {"n", "a"});
  ASSERT_TRUE(matching.ok());
  ASSERT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->matched[0], (std::pair<size_t, size_t>{3, 2}));
  EXPECT_EQ(matching->left_only, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(matching->right_only, (std::vector<size_t>{0, 1}));
}

TEST(MatchRowsTest, NullKeysNeverMatch) {
  Table l("L");
  Column lk("k", DataType::kInt64);
  lk.AppendInt64(1);
  lk.AppendNull();
  AMALUR_CHECK_OK(l.AddColumn(std::move(lk)));
  Table r("R");
  Column rk("k", DataType::kInt64);
  rk.AppendNull();
  rk.AppendInt64(1);
  AMALUR_CHECK_OK(r.AddColumn(std::move(rk)));
  auto matching = MatchRowsOnKeys(l, r, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  ASSERT_EQ(matching->matched.size(), 1u);
  EXPECT_EQ(matching->matched[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(matching->left_only, (std::vector<size_t>{1}));
  EXPECT_EQ(matching->right_only, (std::vector<size_t>{0}));
}

TEST(MatchRowsTest, DuplicateKeysCrossProduct) {
  Table l("L");
  AMALUR_CHECK_OK(l.AddColumn(Column::FromInt64s("k", {7, 7})));
  Table r("R");
  AMALUR_CHECK_OK(r.AddColumn(Column::FromInt64s("k", {7, 7, 8})));
  auto matching = MatchRowsOnKeys(l, r, {"k"}, {"k"});
  ASSERT_TRUE(matching.ok());
  EXPECT_EQ(matching->matched.size(), 4u);  // 2 x 2
  EXPECT_EQ(matching->right_only, (std::vector<size_t>{2}));
}

TEST(MatchRowsTest, CompositeKeySeparatorIsUnambiguous) {
  // "a"+"bc" must not equal "ab"+"c".
  Table l("L");
  AMALUR_CHECK_OK(l.AddColumn(Column::FromStrings("p", {"a"})));
  AMALUR_CHECK_OK(l.AddColumn(Column::FromStrings("q", {"bc"})));
  Table r("R");
  AMALUR_CHECK_OK(r.AddColumn(Column::FromStrings("p", {"ab"})));
  AMALUR_CHECK_OK(r.AddColumn(Column::FromStrings("q", {"c"})));
  auto matching = MatchRowsOnKeys(l, r, {"p", "q"}, {"p", "q"});
  ASSERT_TRUE(matching.ok());
  EXPECT_TRUE(matching->matched.empty());
}

TEST(MatchRowsTest, RejectsBadKeyLists) {
  EXPECT_TRUE(MatchRowsOnKeys(MakeS1(), MakeS2(), {}, {}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MatchRowsOnKeys(MakeS1(), MakeS2(), {"n"}, {"n", "a"}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      MatchRowsOnKeys(MakeS1(), MakeS2(), {"zz"}, {"n"}).status().IsNotFound());
}

TEST(HashJoinTest, InnerJoinRunningExample) {
  auto joined =
      HashJoin(MakeS1(), MakeS2(), {"n", "a"}, {"n", "a"}, JoinKind::kInnerJoin);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->table.NumRows(), 1u);
  // Columns: m n a hr | m_S2 o dd
  EXPECT_EQ(joined->table.schema().Names(),
            (std::vector<std::string>{"m", "n", "a", "hr", "m_S2", "o", "dd"}));
  EXPECT_EQ(joined->table.column(1).GetValue(0).str(), "Jane");
  EXPECT_EQ(joined->table.column(5).GetValue(0).int64(), 92);
  EXPECT_EQ(joined->left_rows, (std::vector<size_t>{3}));
  EXPECT_EQ(joined->right_rows, (std::vector<size_t>{2}));
}

TEST(HashJoinTest, LeftJoinPadsRightWithNulls) {
  auto joined =
      HashJoin(MakeS1(), MakeS2(), {"n", "a"}, {"n", "a"}, JoinKind::kLeftJoin);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->table.NumRows(), 4u);
  // Row 0 is the matched Jane row; others are left-only with NULL o.
  auto o = joined->table.ColumnByName("o");
  ASSERT_TRUE(o.ok());
  size_t nulls = 0;
  for (size_t i = 0; i < 4; ++i) nulls += (*o)->IsNull(i) ? 1 : 0;
  EXPECT_EQ(nulls, 3u);
}

TEST(HashJoinTest, FullOuterJoinKeepsEverything) {
  auto joined = HashJoin(MakeS1(), MakeS2(), {"n", "a"}, {"n", "a"},
                         JoinKind::kFullOuterJoin);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->table.NumRows(), 6u);  // 1 matched + 3 left + 2 right
  size_t left_nulls = 0;
  for (size_t i = 0; i < 6; ++i) {
    left_nulls += joined->left_rows[i] == Column::kNullRow ? 1 : 0;
  }
  EXPECT_EQ(left_nulls, 2u);
}

TEST(HashJoinTest, UnionKindRejected) {
  EXPECT_TRUE(HashJoin(MakeS1(), MakeS2(), {"n"}, {"n"}, JoinKind::kUnion)
                  .status()
                  .IsInvalidArgument());
}

TEST(UnionAllTest, MapsColumnsAndPadsMissing) {
  // Target schema T(m, a, hr, o); S1 has no o, S2 has no hr and drops dd.
  Schema target({{"m", DataType::kInt64, true},
                 {"a", DataType::kInt64, true},
                 {"hr", DataType::kInt64, true},
                 {"o", DataType::kInt64, true}});
  Table s1 = MakeS1();  // m n a hr
  Table s2 = MakeS2();  // m n a o dd
  auto unioned = UnionAll(s1, s2, target,
                          {0, Column::kNullRow, 1, 2},
                          {0, Column::kNullRow, 1, 3, Column::kNullRow});
  ASSERT_TRUE(unioned.ok()) << unioned.status();
  EXPECT_EQ(unioned->table.NumRows(), 7u);
  EXPECT_EQ(unioned->table.NumColumns(), 4u);
  // First S1 block: hr present, o NULL.
  auto o = unioned->table.ColumnByName("o");
  ASSERT_TRUE(o.ok());
  EXPECT_TRUE((*o)->IsNull(0));
  EXPECT_EQ((*o)->GetValue(4).int64(), 95);
  // Provenance.
  EXPECT_EQ(unioned->left_rows[2], 2u);
  EXPECT_EQ(unioned->right_rows[2], Column::kNullRow);
  EXPECT_EQ(unioned->right_rows[4], 0u);
}

TEST(UnionAllTest, RejectsBadMappingSizes) {
  Schema target = Schema::AllDouble({"m"});
  EXPECT_TRUE(UnionAll(MakeS1(), MakeS2(), target, {0}, {0})
                  .status()
                  .IsInvalidArgument());
}

TEST(JoinKindTest, Names) {
  EXPECT_STREQ(JoinKindToString(JoinKind::kInnerJoin), "inner join");
  EXPECT_STREQ(JoinKindToString(JoinKind::kUnion), "union");
}

}  // namespace
}  // namespace rel
}  // namespace amalur
