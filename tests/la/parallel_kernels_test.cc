#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

/// Parallel/serial equivalence for the LA kernels: every parallelized kernel
/// is compared against its 1-thread result across thread counts
/// {1, 2, hardware}. Kernels that partition output rows are bitwise-equal to
/// serial at any thread count (asserted with operator==); kernels that merge
/// per-chunk partials in fixed chunk order are run-stable but may regroup
/// floating-point additions, so those are asserted within 1e-12.

namespace amalur {
namespace la {
namespace {

std::vector<size_t> TestedThreadCounts() {
  std::vector<size_t> counts = {1, 2};
  const size_t hw = common::DefaultNumThreads();
  if (hw != 1 && hw != 2) counts.push_back(hw);
  counts.push_back(5);  // an uneven split, > typical grain boundaries
  return counts;
}

class ParallelKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { common::SetNumThreads(0); }

  template <typename Fn>
  void ExpectBitwiseStable(Fn kernel) {
    common::SetNumThreads(1);
    const DenseMatrix serial = kernel();
    for (size_t threads : TestedThreadCounts()) {
      common::SetNumThreads(threads);
      const DenseMatrix parallel = kernel();
      EXPECT_TRUE(parallel == serial) << "thread count " << threads;
    }
  }

  template <typename Fn>
  void ExpectNearSerial(Fn kernel, double tolerance = 1e-12) {
    common::SetNumThreads(1);
    const DenseMatrix serial = kernel();
    for (size_t threads : TestedThreadCounts()) {
      common::SetNumThreads(threads);
      const DenseMatrix parallel = kernel();
      EXPECT_TRUE(parallel.ApproxEquals(serial, tolerance))
          << "thread count " << threads;
      // And run-to-run stability at this fixed thread count.
      EXPECT_TRUE(kernel() == parallel) << "thread count " << threads;
    }
  }
};

TEST_F(ParallelKernelsTest, DenseMultiplyBitwiseEqualAcrossThreads) {
  Rng rng(101);
  // Odd sizes straddle the kBlock=64 tile boundaries.
  const DenseMatrix a = DenseMatrix::RandomGaussian(173, 95, &rng);
  const DenseMatrix b = DenseMatrix::RandomGaussian(95, 131, &rng);
  ExpectBitwiseStable([&] { return a.Multiply(b); });
}

TEST_F(ParallelKernelsTest, DenseTransposeMultiplyBitwiseEqualAcrossThreads) {
  Rng rng(102);
  const DenseMatrix a = DenseMatrix::RandomGaussian(301, 47, &rng);
  const DenseMatrix b = DenseMatrix::RandomGaussian(301, 3, &rng);
  ExpectBitwiseStable([&] { return a.TransposeMultiply(b); });
}

TEST_F(ParallelKernelsTest, DenseMultiplyTransposeBitwiseEqualAcrossThreads) {
  Rng rng(103);
  const DenseMatrix a = DenseMatrix::RandomGaussian(111, 37, &rng);
  const DenseMatrix b = DenseMatrix::RandomGaussian(53, 37, &rng);
  ExpectBitwiseStable([&] { return a.MultiplyTranspose(b); });
}

TEST_F(ParallelKernelsTest, DenseTransposeAndRowSumsBitwiseEqual) {
  Rng rng(104);
  const DenseMatrix a = DenseMatrix::RandomGaussian(97, 203, &rng);
  ExpectBitwiseStable([&] { return a.Transpose(); });
  ExpectBitwiseStable([&] { return a.RowSums(); });
}

TEST_F(ParallelKernelsTest, DenseColSumsNearSerialAndRunStable) {
  Rng rng(105);
  // Tall enough that the row range splits into several reduce chunks; the
  // regrouped additions accumulate O(rows * eps) rounding, hence the looser
  // bound (run-to-run stability stays exact).
  const DenseMatrix a = DenseMatrix::RandomGaussian(40000, 7, &rng);
  ExpectNearSerial([&] { return a.ColSums(); }, 1e-8);
}

TEST_F(ParallelKernelsTest, DenseScalarReductionsNearSerialAndRunStable) {
  Rng rng(106);
  const DenseMatrix a = DenseMatrix::RandomGaussian(300, 300, &rng);
  common::SetNumThreads(1);
  const double serial_sum = a.Sum();
  const double serial_norm = a.FrobeniusNorm();
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    EXPECT_NEAR(a.Sum(), serial_sum, 1e-9) << threads;
    EXPECT_NEAR(a.FrobeniusNorm(), serial_norm, 1e-9) << threads;
    EXPECT_EQ(a.Sum(), a.Sum()) << threads;  // run-stable at fixed count
  }
}

SparseMatrix RandomSparse(size_t rows, size_t cols, double density, Rng* rng) {
  std::vector<Triplet> triplets;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng->NextDouble(0.0, 1.0) < density) {
        triplets.push_back({i, j, rng->NextGaussian()});
      }
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST_F(ParallelKernelsTest, SparseMultiplyBitwiseEqualAcrossThreads) {
  Rng rng(107);
  const SparseMatrix s = RandomSparse(700, 90, 0.05, &rng);
  const DenseMatrix d = DenseMatrix::RandomGaussian(90, 4, &rng);
  ExpectBitwiseStable([&] { return s.Multiply(d); });
}

TEST_F(ParallelKernelsTest, SparseLeftMultiplyBitwiseEqualAcrossThreads) {
  Rng rng(108);
  const SparseMatrix s = RandomSparse(90, 120, 0.05, &rng);
  const DenseMatrix d = DenseMatrix::RandomGaussian(64, 90, &rng);
  ExpectBitwiseStable([&] { return s.LeftMultiply(d); });
  const DenseMatrix dt = DenseMatrix::RandomGaussian(64, 120, &rng);
  ExpectBitwiseStable([&] { return s.LeftMultiplyTranspose(dt); });
}

TEST_F(ParallelKernelsTest, SparseTransposeMultiplyNearSerialAndRunStable) {
  Rng rng(109);
  // Scatter kernel: per-chunk buffers merged in chunk order.
  const SparseMatrix s = RandomSparse(900, 70, 0.04, &rng);
  const DenseMatrix d = DenseMatrix::RandomGaussian(900, 3, &rng);
  ExpectNearSerial([&] { return s.TransposeMultiply(d); });
}

TEST_F(ParallelKernelsTest, TransformInPlaceMatchesMapInPlace) {
  Rng rng(110);
  DenseMatrix via_function = DenseMatrix::RandomGaussian(40, 40, &rng);
  DenseMatrix via_template = via_function;
  via_function.MapInPlace([](double v) { return v * v + 1.0; });
  via_template.TransformInPlace([](double v) { return v * v + 1.0; });
  EXPECT_TRUE(via_function == via_template);
}

}  // namespace
}  // namespace la
}  // namespace amalur
