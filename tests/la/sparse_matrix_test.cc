#include "la/sparse_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/dense_matrix.h"

namespace amalur {
namespace la {
namespace {

/// A random sparse matrix with roughly `density` nonzeros, mirrored as dense.
std::pair<SparseMatrix, DenseMatrix> RandomPair(size_t rows, size_t cols,
                                                double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  DenseMatrix dense(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng.NextBernoulli(density)) {
        double v = rng.NextGaussian();
        triplets.push_back({i, j, v});
        dense.At(i, j) = v;
      }
    }
  }
  return {SparseMatrix::FromTriplets(rows, cols, std::move(triplets)), dense};
}

TEST(SparseMatrixTest, FromTripletsBasics) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 4, {{0, 1, 2.0}, {2, 3, -1.0}, {1, 0, 5.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(SparseMatrixTest, DuplicateTripletsAreSummed) {
  SparseMatrix m =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, -3.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 3.5);
}

TEST(SparseMatrixTest, CancellingDuplicatesAreDropped) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  auto [sparse, dense] = RandomPair(9, 7, 0.3, 42);
  EXPECT_TRUE(sparse.ToDense().ApproxEquals(dense, 0.0));
  EXPECT_TRUE(SparseMatrix::FromDense(dense).ToDense().ApproxEquals(dense, 0.0));
}

TEST(SparseMatrixTest, IdentityActsAsIdentity) {
  Rng rng(1);
  DenseMatrix x = DenseMatrix::RandomGaussian(6, 3, &rng);
  EXPECT_TRUE(SparseMatrix::Identity(6).Multiply(x).ApproxEquals(x, 0.0));
}

TEST(SparseMatrixTest, DensityComputed) {
  SparseMatrix m = SparseMatrix::FromTriplets(2, 5, {{0, 0, 1.0}, {1, 4, 1.0}});
  EXPECT_DOUBLE_EQ(m.Density(), 0.2);
  EXPECT_DOUBLE_EQ(SparseMatrix().Density(), 0.0);
}

/// SpMM against the dense reference over several shapes and densities.
class SpmmEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(SpmmEquivalenceTest, MultiplyMatchesDense) {
  auto [m, k, n, density] = GetParam();
  auto [sparse, dense] = RandomPair(m, k, density, 7 * m + k + n);
  Rng rng(99);
  DenseMatrix x = DenseMatrix::RandomGaussian(k, n, &rng);
  EXPECT_LT(sparse.Multiply(x).MaxAbsDiff(dense.Multiply(x)), 1e-10);
}

TEST_P(SpmmEquivalenceTest, TransposeMultiplyMatchesDense) {
  auto [m, k, n, density] = GetParam();
  auto [sparse, dense] = RandomPair(m, k, density, 13 * m + k + n);
  Rng rng(98);
  DenseMatrix x = DenseMatrix::RandomGaussian(m, n, &rng);
  EXPECT_LT(sparse.TransposeMultiply(x).MaxAbsDiff(
                dense.Transpose().Multiply(x)),
            1e-10);
}

TEST_P(SpmmEquivalenceTest, LeftMultiplyMatchesDense) {
  auto [m, k, n, density] = GetParam();
  auto [sparse, dense] = RandomPair(m, k, density, 17 * m + k + n);
  Rng rng(97);
  DenseMatrix x = DenseMatrix::RandomGaussian(n, m, &rng);
  EXPECT_LT(sparse.LeftMultiply(x).MaxAbsDiff(x.Multiply(dense)), 1e-10);
}

TEST_P(SpmmEquivalenceTest, LeftMultiplyTransposeMatchesDense) {
  auto [m, k, n, density] = GetParam();
  auto [sparse, dense] = RandomPair(m, k, density, 19 * m + k + n);
  Rng rng(96);
  DenseMatrix x = DenseMatrix::RandomGaussian(n, k, &rng);
  EXPECT_LT(sparse.LeftMultiplyTranspose(x).MaxAbsDiff(
                x.Multiply(dense.Transpose())),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, SpmmEquivalenceTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 1.0),
                      std::make_tuple(5, 7, 3, 0.1),
                      std::make_tuple(20, 10, 4, 0.5),
                      std::make_tuple(33, 17, 9, 0.05),
                      std::make_tuple(12, 12, 12, 0.9),
                      std::make_tuple(40, 3, 2, 0.02)));

TEST(SparseMatrixTest, SpGemmMatchesDense) {
  auto [a_sparse, a_dense] = RandomPair(8, 6, 0.4, 1);
  auto [b_sparse, b_dense] = RandomPair(6, 5, 0.4, 2);
  EXPECT_TRUE(a_sparse.MultiplySparse(b_sparse)
                  .ToDense()
                  .ApproxEquals(a_dense.Multiply(b_dense), 1e-10));
}

TEST(SparseMatrixTest, TransposeMatchesDense) {
  auto [sparse, dense] = RandomPair(10, 4, 0.3, 3);
  EXPECT_TRUE(sparse.Transpose().ToDense().ApproxEquals(dense.Transpose(), 0.0));
}

TEST(SparseMatrixTest, ScaleAndSums) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  EXPECT_DOUBLE_EQ(m.Scale(2.0).Sum(), 12.0);
  EXPECT_TRUE(m.RowSums().ApproxEquals(DenseMatrix({{3}, {3}})));
  EXPECT_TRUE(m.ColSums().ApproxEquals(DenseMatrix({{1, 3, 2}})));
}

TEST(SparseMatrixTest, ApproxEqualsIgnoresStructure) {
  SparseMatrix a = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}});
  SparseMatrix b =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {1, 1, 0.0}});
  EXPECT_TRUE(a.ApproxEquals(b));
  SparseMatrix c = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.5}});
  EXPECT_FALSE(a.ApproxEquals(c));
}

TEST(SparseMatrixTest, EmptyMatrixIsSafe) {
  SparseMatrix empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);
  SparseMatrix zero_rows = SparseMatrix::FromTriplets(0, 5, {});
  EXPECT_EQ(zero_rows.Multiply(DenseMatrix(5, 2)).rows(), 0u);
}

}  // namespace
}  // namespace la
}  // namespace amalur
