#include "la/dense_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"

namespace amalur {
namespace la {
namespace {

TEST(DenseMatrixTest, ConstructionAndAccess) {
  DenseMatrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6);
  m.At(1, 2) = 7;
  EXPECT_DOUBLE_EQ(m(1, 2), 7);
}

TEST(DenseMatrixTest, FactoryConstructors) {
  EXPECT_TRUE(DenseMatrix::Zeros(2, 2).ApproxEquals(DenseMatrix({{0, 0}, {0, 0}})));
  EXPECT_TRUE(
      DenseMatrix::Constant(2, 2, 3.5).ApproxEquals(DenseMatrix({{3.5, 3.5},
                                                                 {3.5, 3.5}})));
  EXPECT_TRUE(DenseMatrix::Identity(2).ApproxEquals(DenseMatrix({{1, 0}, {0, 1}})));
}

TEST(DenseMatrixTest, MultiplyKnownValues) {
  DenseMatrix a({{1, 2}, {3, 4}});
  DenseMatrix b({{5, 6}, {7, 8}});
  DenseMatrix expected({{19, 22}, {43, 50}});
  EXPECT_TRUE(a.Multiply(b).ApproxEquals(expected));
}

TEST(DenseMatrixTest, MultiplyIdentityIsNoop) {
  Rng rng(1);
  DenseMatrix a = DenseMatrix::RandomGaussian(7, 5, &rng);
  EXPECT_TRUE(a.Multiply(DenseMatrix::Identity(5)).ApproxEquals(a, 1e-12));
  EXPECT_TRUE(DenseMatrix::Identity(7).Multiply(a).ApproxEquals(a, 1e-12));
}

TEST(DenseMatrixTest, TransposeMultiplyMatchesExplicitTranspose) {
  Rng rng(2);
  DenseMatrix a = DenseMatrix::RandomGaussian(6, 4, &rng);
  DenseMatrix b = DenseMatrix::RandomGaussian(6, 3, &rng);
  EXPECT_TRUE(
      a.TransposeMultiply(b).ApproxEquals(a.Transpose().Multiply(b), 1e-10));
}

TEST(DenseMatrixTest, MultiplyTransposeMatchesExplicitTranspose) {
  Rng rng(3);
  DenseMatrix a = DenseMatrix::RandomGaussian(6, 4, &rng);
  DenseMatrix b = DenseMatrix::RandomGaussian(5, 4, &rng);
  EXPECT_TRUE(
      a.MultiplyTranspose(b).ApproxEquals(a.Multiply(b.Transpose()), 1e-10));
}

TEST(DenseMatrixTest, TransposeInvolution) {
  Rng rng(4);
  DenseMatrix a = DenseMatrix::RandomGaussian(5, 9, &rng);
  EXPECT_TRUE(a.Transpose().Transpose().ApproxEquals(a, 0.0));
}

TEST(DenseMatrixTest, ElementwiseOps) {
  DenseMatrix a({{1, 2}, {3, 4}});
  DenseMatrix b({{10, 20}, {30, 40}});
  EXPECT_TRUE(a.Add(b).ApproxEquals(DenseMatrix({{11, 22}, {33, 44}})));
  EXPECT_TRUE(b.Subtract(a).ApproxEquals(DenseMatrix({{9, 18}, {27, 36}})));
  EXPECT_TRUE(a.Hadamard(b).ApproxEquals(DenseMatrix({{10, 40}, {90, 160}})));
  EXPECT_TRUE(a.Scale(2.0).ApproxEquals(DenseMatrix({{2, 4}, {6, 8}})));
}

TEST(DenseMatrixTest, AddScaledAxpy) {
  DenseMatrix a({{1, 1}, {1, 1}});
  DenseMatrix g({{2, 4}, {6, 8}});
  a.AddScaled(g, -0.5);
  EXPECT_TRUE(a.ApproxEquals(DenseMatrix({{0, -1}, {-2, -3}})));
}

TEST(DenseMatrixTest, MapAppliesFunction) {
  DenseMatrix a({{0, 1}, {4, 9}});
  auto sqrted = a.Map([](double v) { return std::sqrt(v); });
  EXPECT_TRUE(sqrted.ApproxEquals(DenseMatrix({{0, 1}, {2, 3}})));
}

TEST(DenseMatrixTest, Reductions) {
  DenseMatrix a({{1, 2, 3}, {4, 5, 6}});
  EXPECT_TRUE(a.RowSums().ApproxEquals(DenseMatrix({{6}, {15}})));
  EXPECT_TRUE(a.ColSums().ApproxEquals(DenseMatrix({{5, 7, 9}})));
  EXPECT_DOUBLE_EQ(a.Sum(), 21.0);
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), std::sqrt(91.0));
}

TEST(DenseMatrixTest, SliceAndSelect) {
  DenseMatrix a({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_TRUE(a.SliceRows(1, 3).ApproxEquals(DenseMatrix({{4, 5, 6}, {7, 8, 9}})));
  EXPECT_TRUE(a.SelectColumns({2, 0}).ApproxEquals(DenseMatrix({{3, 1},
                                                                {6, 4},
                                                                {9, 7}})));
  EXPECT_TRUE(a.SelectRows({2, 2, 0}).ApproxEquals(DenseMatrix({{7, 8, 9},
                                                                {7, 8, 9},
                                                                {1, 2, 3}})));
}

TEST(DenseMatrixTest, Concatenation) {
  DenseMatrix a({{1, 2}, {3, 4}});
  DenseMatrix b({{5}, {6}});
  EXPECT_TRUE(a.ConcatColumns(b).ApproxEquals(DenseMatrix({{1, 2, 5}, {3, 4, 6}})));
  DenseMatrix c({{7, 8}});
  EXPECT_TRUE(
      a.ConcatRows(c).ApproxEquals(DenseMatrix({{1, 2}, {3, 4}, {7, 8}})));
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a({{1, 2}, {3, 4}});
  DenseMatrix b({{1, 2.5}, {3, 3}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(a), 0.0);
}

TEST(DenseMatrixTest, ApproxEqualsShapeMismatch) {
  EXPECT_FALSE(DenseMatrix(2, 2).ApproxEquals(DenseMatrix(2, 3)));
}

/// Associativity: (AB)C == A(BC) — exercised because the factorized rewrites
/// depend on reordering multiplication chains.
class GemmAssociativityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmAssociativityTest, Holds) {
  auto [m, k, l, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + k * 100 + l * 10 + n));
  DenseMatrix a = DenseMatrix::RandomGaussian(m, k, &rng);
  DenseMatrix b = DenseMatrix::RandomGaussian(k, l, &rng);
  DenseMatrix c = DenseMatrix::RandomGaussian(l, n, &rng);
  DenseMatrix left = a.Multiply(b).Multiply(c);
  DenseMatrix right = a.Multiply(b.Multiply(c));
  EXPECT_LT(left.MaxAbsDiff(right), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmAssociativityTest,
                         ::testing::Values(std::make_tuple(1, 1, 1, 1),
                                           std::make_tuple(3, 4, 5, 2),
                                           std::make_tuple(16, 8, 4, 2),
                                           std::make_tuple(65, 33, 17, 9),
                                           std::make_tuple(128, 1, 128, 1)));

/// Distributivity: (A+B)C == AC + BC — the algebraic identity behind the
/// Amalur local-result-assembly step.
class GemmDistributivityTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(GemmDistributivityTest, Holds) {
  auto [m, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 31 + n));
  DenseMatrix a = DenseMatrix::RandomGaussian(m, n, &rng);
  DenseMatrix b = DenseMatrix::RandomGaussian(m, n, &rng);
  DenseMatrix x = DenseMatrix::RandomGaussian(n, 3, &rng);
  DenseMatrix left = a.Add(b).Multiply(x);
  DenseMatrix right = a.Multiply(x).Add(b.Multiply(x));
  EXPECT_LT(left.MaxAbsDiff(right), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmDistributivityTest,
                         ::testing::Values(std::make_pair(2, 2),
                                           std::make_pair(7, 13),
                                           std::make_pair(64, 65),
                                           std::make_pair(100, 3)));

}  // namespace
}  // namespace la
}  // namespace amalur
