#include <gtest/gtest.h>

#include <cmath>

#include "cost/amalur_cost_model.h"
#include "cost/cost_features.h"
#include "cost/morpheus_heuristic.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"

namespace amalur {
namespace cost {
namespace {

CostFeatures FeaturesFor(const rel::SiloPairSpec& spec) {
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return CostFeatures::FromMetadata(*metadata);
}

/// The Morpheus sweet spot: high fan-out star join with a wide dimension.
rel::SiloPairSpec HighRedundancySpec() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 2000;
  spec.other_rows = 50;   // tuple ratio 40
  spec.base_features = 1;
  spec.other_features = 60;  // feature ratio 60
  spec.seed = 1;
  return spec;
}

/// No redundancy anywhere: 1:1 inner join.
rel::SiloPairSpec NoRedundancySpec() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 1000;
  spec.other_rows = 1000;
  spec.base_features = 5;
  spec.other_features = 5;
  spec.seed = 2;
  return spec;
}

TEST(CostFeaturesTest, ExtractedFromRunningExample) {
  integration::RunningExample ex = integration::MakeRunningExample();
  auto metadata =
      metadata::DiMetadata::Derive(ex.mapping, {&ex.s1, &ex.s2}, ex.matching);
  ASSERT_TRUE(metadata.ok());
  CostFeatures f = CostFeatures::FromMetadata(*metadata);
  EXPECT_EQ(f.target_rows, 6u);
  EXPECT_EQ(f.target_cols, 4u);
  ASSERT_EQ(f.sources.size(), 2u);
  EXPECT_EQ(f.sources[0].rows, 4u);
  EXPECT_EQ(f.sources[0].cols, 3u);
  EXPECT_EQ(f.sources[0].contributed_rows, 4u);
  EXPECT_EQ(f.sources[0].redundant_cells, 0u);
  EXPECT_EQ(f.sources[1].contributed_rows, 3u);
  EXPECT_EQ(f.sources[1].redundant_cells, 2u);  // Jane's m, a
  EXPECT_EQ(f.sources[1].EffectiveCells(), 3u * 3u - 2u);
  EXPECT_FALSE(f.all_tgds_full);  // full outer join
  EXPECT_DOUBLE_EQ(f.TupleRatio(1), 2.0);
  EXPECT_DOUBLE_EQ(f.FeatureRatio(1), 1.0);
  EXPECT_EQ(f.TotalSourceCells(), 12u + 9u);
  EXPECT_EQ(f.TargetCells(), 24u);
}

TEST(MorpheusHeuristicTest, FactorizesHighTupleAndFeatureRatio) {
  CostFeatures f = FeaturesFor(HighRedundancySpec());
  MorpheusHeuristic heuristic;
  EXPECT_DOUBLE_EQ(f.TupleRatio(1), 40.0);
  EXPECT_EQ(heuristic.Decide(f), Strategy::kFactorize);
}

TEST(MorpheusHeuristicTest, MaterializesLowRatios) {
  CostFeatures f = FeaturesFor(NoRedundancySpec());
  MorpheusHeuristic heuristic;
  EXPECT_DOUBLE_EQ(f.TupleRatio(1), 1.0);
  EXPECT_EQ(heuristic.Decide(f), Strategy::kMaterialize);
}

TEST(MorpheusHeuristicTest, BlindToRedundancyMetadata) {
  // The heuristic reads only the shape ratios: zeroing out or inflating the
  // DI-metadata signals (overlap cells, duplicates, nulls) cannot change its
  // decision, while the Amalur model reacts to the same change.
  CostFeatures f = FeaturesFor(HighRedundancySpec());
  MorpheusHeuristic heuristic;
  const Strategy before = heuristic.Decide(f);
  CostFeatures perturbed = f;
  for (SourceFeatures& s : perturbed.sources) {
    s.redundant_cells = s.contributed_rows * s.cols / 2;
    s.duplicate_ratio = 0.9;
    s.null_ratio = 0.9;
  }
  EXPECT_EQ(heuristic.Decide(perturbed), before);
  AmalurCostModel model;
  EXPECT_NE(model.Estimate(perturbed).factorized_cost,
            model.Estimate(f).factorized_cost);
}

TEST(MorpheusHeuristicTest, ThresholdsAreConfigurable) {
  CostFeatures f = FeaturesFor(HighRedundancySpec());
  MorpheusHeuristic strict({/*tuple*/ 100.0, /*feature*/ 100.0});
  EXPECT_EQ(strict.Decide(f), Strategy::kMaterialize);
}

TEST(MorpheusHeuristicTest, ExplainMentionsRatios) {
  CostFeatures f = FeaturesFor(HighRedundancySpec());
  MorpheusHeuristic heuristic;
  const std::string text = heuristic.Explain(f);
  EXPECT_NE(text.find("TR="), std::string::npos);
  EXPECT_NE(text.find("factorize"), std::string::npos);
}

TEST(AmalurCostModelTest, FactorizesWhenTargetIsRedundant) {
  CostFeatures f = FeaturesFor(HighRedundancySpec());
  AmalurCostModel model;
  CostEstimate estimate = model.Estimate(f);
  EXPECT_FALSE(estimate.decided_by_logic_rule);
  EXPECT_LT(estimate.factorized_cost, estimate.materialized_cost);
  EXPECT_EQ(estimate.Decision(), Strategy::kFactorize);
}

TEST(AmalurCostModelTest, TgdPrescreenMaterializesFullTgdScenario) {
  // Example IV.1: inner join => full tgd; 1:1 join => rT ≤ rS1 + rS2.
  CostFeatures f = FeaturesFor(NoRedundancySpec());
  AmalurCostModel model;
  EXPECT_EQ(model.PruneWithTgds(f).value(), Strategy::kMaterialize);
  CostEstimate estimate = model.Estimate(f);
  EXPECT_TRUE(estimate.decided_by_logic_rule);
  EXPECT_EQ(estimate.Decision(), Strategy::kMaterialize);
}

TEST(AmalurCostModelTest, PrescreenSkipsNonFullTgds) {
  CostFeatures f = FeaturesFor(HighRedundancySpec());  // left join
  AmalurCostModel model;
  EXPECT_FALSE(model.PruneWithTgds(f).has_value());
}

TEST(AmalurCostModelTest, PrescreenSkipsRowMultiplyingInnerJoin) {
  // Inner join with fan-out: full tgd but rT·cT outgrows the sources.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 1000;
  spec.other_rows = 10;  // fan-out 100
  spec.base_features = 1;
  spec.other_features = 50;
  spec.seed = 3;
  CostFeatures f = FeaturesFor(spec);
  AmalurCostModel model;
  EXPECT_FALSE(model.PruneWithTgds(f).has_value());
  EXPECT_EQ(model.Decide(f), Strategy::kFactorize);
}

TEST(AmalurCostModelTest, SeesThroughSourceDuplicates) {
  // With heavy within-source duplication, the tuple ratio collapses but the
  // effective-cell accounting still prices factorization correctly relative
  // to the inflated target.
  rel::SiloPairSpec spec = HighRedundancySpec();
  spec.other_dup_rate = 10.0;
  CostFeatures f = FeaturesFor(spec);
  AmalurCostModel model;
  // The materialized target still repeats the wide dimension rows 40x, so
  // factorization stays the cheaper plan.
  EXPECT_EQ(model.Decide(f), Strategy::kFactorize);
}

TEST(AmalurCostModelTest, AmortizationFlipsWithHorizon) {
  // A scenario near the boundary: with one iteration the join dominates and
  // factorization wins; with many iterations the per-iteration dense
  // advantage amortizes the join away.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 800;
  spec.other_rows = 400;  // tuple ratio 2: mild redundancy
  spec.base_features = 4;
  spec.other_features = 4;
  spec.seed = 4;
  CostFeatures f = FeaturesFor(spec);

  AmalurCostModelOptions one_shot;
  one_shot.training_iterations = 1.0;
  AmalurCostModelOptions long_run;
  long_run.training_iterations = 10000.0;
  const CostEstimate short_est = AmalurCostModel(one_shot).Estimate(f);
  const CostEstimate long_est = AmalurCostModel(long_run).Estimate(f);
  // The one-time materialization cost matters less on the long horizon.
  const double short_gap = short_est.materialized_cost - short_est.factorized_cost;
  const double long_gap = (long_est.materialized_cost - long_est.factorized_cost) /
                          long_run.training_iterations;
  EXPECT_GT(short_gap, long_gap);
}

TEST(AmalurCostModelTest, NullsDiscountBothPaths) {
  rel::SiloPairSpec spec = HighRedundancySpec();
  CostFeatures dense_f = FeaturesFor(spec);
  spec.null_ratio = 0.5;
  CostFeatures sparse_f = FeaturesFor(spec);
  AmalurCostModel model;
  EXPECT_LT(model.Estimate(sparse_f).factorized_cost,
            model.Estimate(dense_f).factorized_cost);
}

TEST(AmalurCostModelTest, ExplainShowsBreakdown) {
  AmalurCostModel model;
  const std::string text = model.Explain(FeaturesFor(HighRedundancySpec()));
  EXPECT_NE(text.find("factorized="), std::string::npos);
  const std::string pruned = model.Explain(FeaturesFor(NoRedundancySpec()));
  EXPECT_NE(pruned.find("prescreen"), std::string::npos);
}

TEST(AmalurCostModelTest, ExactCostTieMaterializes) {
  // The documented tie-break: an exact cost tie materializes — the simpler
  // plan (no indicator bookkeeping at train time) wins when the model sees
  // no advantage either way. Pinned so the comparison can never silently
  // drift to "ties factorize".
  CostEstimate tie;
  tie.factorized_cost = 123.0;
  tie.materialized_cost = 123.0;
  EXPECT_EQ(tie.Decision(), Strategy::kMaterialize);
  // One ulp below the tie and factorization is strictly cheaper again.
  tie.factorized_cost = std::nextafter(123.0, 0.0);
  EXPECT_EQ(tie.Decision(), Strategy::kFactorize);
}

TEST(StrategyTest, Names) {
  EXPECT_STREQ(StrategyToString(Strategy::kFactorize), "factorize");
  EXPECT_STREQ(StrategyToString(Strategy::kMaterialize), "materialize");
}

}  // namespace
}  // namespace cost
}  // namespace amalur
