// Pins the calibrated optimizer's decision map over the 7 standard Table-1
// scenarios (bench/bench_table1_scenarios.cc, full scale) against the
// measured winners of full-scale bench runs on the reference machine:
// materialize for the inner join and the union, factorize for the five
// redundancy-amplifying shapes. The analytic defaults historically lost the
// union (ROADMAP: predicted factorize at a measured 0.79x–0.94x); the
// pinned calibration must get all seven right, and any cost-model change
// that flips a decision fails here instead of silently degrading plans.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/optimizer.h"
#include "cost/calibrator.h"
#include "cost/cost_features.h"
#include "factorized/scenario_builder.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"

namespace amalur {
namespace cost {
namespace {

/// Constants fitted by `Calibrator` from a full-scale
/// bench_table1_scenarios run (dual-horizon observation log, 14
/// observations). Decisions compare cost ratios, so the absolute scale —
/// seconds per FLOP on the fitting machine — is irrelevant; what this pins
/// is the decision map. `training_iterations` matches the Table-1 workload.
Calibration PinnedCalibration() {
  Calibration calibration;
  calibration.calibrated = true;
  calibration.source = "pinned Table-1 fit";
  calibration.observations_used = 14;
  calibration.options.training_iterations = 20.0;
  calibration.options.flop_cost = 1.65e-9;
  calibration.options.factorized_cell_cost = 1.33;
  calibration.options.materialize_cell_cost = 1.50e-8;
  calibration.options.factorized_row_overhead = 5.3e-9;
  calibration.options.calibrated = true;
  calibration.options.constants_source = calibration.source;
  return calibration;
}

struct ScenarioCase {
  std::string name;
  metadata::DiMetadata metadata;
  Strategy measured;  // winner of full-scale bench runs
};

metadata::DiMetadata Derive(const rel::SiloPairSpec& spec) {
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return *std::move(metadata);
}

/// Scenario 1: full outer join — partial row/column overlap.
ScenarioCase FullOuterJoinCase() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kFullOuterJoin;
  spec.base_rows = 20000;
  spec.other_rows = 8000;
  spec.base_features = 4;
  spec.other_features = 40;
  spec.shared_features = 2;
  spec.match_fraction = 0.5;
  spec.row_overlap = 0.5;
  spec.seed = 11;
  return {"full_outer_join", Derive(spec), Strategy::kFactorize};
}

/// Scenario 2: inner join, shared sample space (1:1, no fan-out).
ScenarioCase InnerJoinCase() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 20000;
  spec.other_rows = 20000;
  spec.base_features = 4;
  spec.other_features = 40;
  spec.match_fraction = 1.0;
  spec.row_overlap = 1.0;
  spec.seed = 12;
  return {"inner_join", Derive(spec), Strategy::kMaterialize};
}

/// Scenario 3: left join with fan-out 10 (star schema).
ScenarioCase LeftJoinCase() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 40000;
  spec.other_rows = 4000;
  spec.base_features = 2;
  spec.other_features = 60;
  spec.seed = 13;
  return {"left_join", Derive(spec), Strategy::kFactorize};
}

/// Scenario 4: union — shared feature space, disjoint rows.
ScenarioCase UnionCase() {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kUnion;
  spec.base_rows = 20000;
  spec.other_rows = 20000;
  spec.base_features = 0;
  spec.other_features = 0;
  spec.shared_features = 30;
  spec.match_fraction = 0.0;
  spec.row_overlap = 0.0;
  spec.other_has_label = true;
  spec.seed = 14;
  return {"union", Derive(spec), Strategy::kMaterialize};
}

/// Scenario 5: snowflake — fact -> dim -> sub-dim chain.
ScenarioCase SnowflakeCase() {
  rel::SnowflakeSpec spec;
  spec.fact_rows = 40000;
  spec.fact_features = 2;
  spec.level_rows = {2000, 50};
  spec.level_features = {30, 20};
  spec.seed = 15;
  rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
  auto metadata = factorized::DeriveSnowflakeMetadata(snowflake);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return {"snowflake", *std::move(metadata), Strategy::kFactorize};
}

/// Scenario 6: union-of-stars — two fact shards, each with a dimension.
ScenarioCase UnionOfStarsCase() {
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 20000;
  spec.fact_features = 2;
  spec.dim_rows = 1000;
  spec.dim_features = 30;
  spec.seed = 16;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
  auto metadata = factorized::DeriveUnionOfStarsMetadata(scenario);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return {"union_of_stars", *std::move(metadata), Strategy::kFactorize};
}

/// Scenario 7: conformed snowflake — shared dimension through two branches.
ScenarioCase ConformedSnowflakeCase() {
  rel::ConformedSnowflakeSpec spec;
  spec.fact_rows = 40000;
  spec.fact_features = 2;
  spec.branches = 2;
  spec.branch_rows = 1000;
  spec.branch_features = 20;
  spec.shared_rows = 50;
  spec.shared_features = 20;
  spec.seed = 17;
  rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
  auto metadata = factorized::DeriveConformedSnowflakeMetadata(scenario);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return {"conformed_snowflake", *std::move(metadata), Strategy::kFactorize};
}

core::ExecutionStrategy Expected(Strategy measured) {
  return measured == Strategy::kFactorize ? core::ExecutionStrategy::kFactorize
                                          : core::ExecutionStrategy::kMaterialize;
}

// Headline case 1: the 1:1 inner join measured materialize (0.77x–0.87x
// across full-scale runs) and must stay materialize.
TEST(DecisionRegressionTest, InnerJoinMaterializes) {
  const ScenarioCase c = InnerJoinCase();
  const core::Plan plan =
      core::Optimizer(PinnedCalibration()).Choose(c.metadata, false);
  EXPECT_EQ(plan.strategy, core::ExecutionStrategy::kMaterialize)
      << plan.explanation;
}

// Headline case 2: the union measured materialize (0.79x–0.94x) and the
// analytic defaults historically predicted factorize; the calibration must
// recover it.
TEST(DecisionRegressionTest, UnionMaterializes) {
  const ScenarioCase c = UnionCase();
  const core::Plan plan =
      core::Optimizer(PinnedCalibration()).Choose(c.metadata, false);
  EXPECT_EQ(plan.strategy, core::ExecutionStrategy::kMaterialize)
      << plan.explanation;
}

// The full invariant: zero mispredictions over all 7 standard scenarios.
TEST(DecisionRegressionTest, ZeroMispredictionsOnTableOneScenarios) {
  const std::vector<ScenarioCase> cases = {
      FullOuterJoinCase(), InnerJoinCase(),    LeftJoinCase(),
      UnionCase(),         SnowflakeCase(),    UnionOfStarsCase(),
      ConformedSnowflakeCase()};
  const core::Optimizer optimizer{PinnedCalibration()};
  for (const ScenarioCase& c : cases) {
    const core::Plan plan = optimizer.Choose(c.metadata, false);
    EXPECT_EQ(plan.strategy, Expected(c.measured))
        << c.name << ": " << plan.explanation;
  }
}

// The plan must disclose that calibrated constants made the decision.
TEST(DecisionRegressionTest, ExplanationReportsCalibratedConstants) {
  const core::Plan plan = core::Optimizer(PinnedCalibration())
                              .Choose(LeftJoinCase().metadata, false);
  EXPECT_NE(plan.explanation.find("calibrated"), std::string::npos)
      << plan.explanation;
  EXPECT_NE(plan.explanation.find("pinned Table-1 fit"), std::string::npos)
      << plan.explanation;
}

// With no calibration resolved, the same plan discloses the analytic
// defaults — the provenance string always states which constants decided.
TEST(DecisionRegressionTest, ExplanationReportsDefaultConstants) {
  const core::Plan plan =
      core::Optimizer().Choose(LeftJoinCase().metadata, false);
  EXPECT_NE(plan.explanation.find("analytic defaults"), std::string::npos)
      << plan.explanation;
}

}  // namespace
}  // namespace cost
}  // namespace amalur
