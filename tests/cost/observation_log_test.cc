// The measurement side of the calibration loop: the JSONL observation log
// must round-trip losslessly, tolerate corrupt/truncated lines (skip and
// count, never crash), and serialize concurrent appends so parallel bench
// workers interleave whole lines, never bytes.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "common/parallel_for.h"
#include "cost/observation_log.h"

namespace amalur {
namespace cost {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

Observation SampleObservation() {
  Observation o;
  o.scenario = "inner_join";
  o.training_iterations = 20.0;
  o.rhs_cols = 1.0;
  o.compute_cells = 900000.0;
  o.expansion_rows = 40000.0;
  o.target_cells = 900000.0;
  o.factorized_seconds = 0.0805518509;
  o.materialized_seconds = 0.0681047850;
  return o;
}

TEST(ObservationTest, JsonRoundTripIsLossless) {
  // Values chosen to have no short decimal representation: %.17g must
  // reproduce every bit through an append -> parse cycle.
  Observation o;
  o.scenario = "awkward_doubles";
  o.training_iterations = 1.0 / 3.0;
  o.rhs_cols = 0.1 + 0.2;
  o.compute_cells = 12345.678901234567;
  o.expansion_rows = 2.2250738585072014e-308;  // smallest normal double
  o.target_cells = 9.8765432109876543e12;
  o.factorized_seconds = 0.041045700999999997;
  o.materialized_seconds = 1e-12;

  auto parsed = Observation::FromJsonLine(o.ToJsonLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->scenario, o.scenario);
  EXPECT_EQ(parsed->training_iterations, o.training_iterations);
  EXPECT_EQ(parsed->rhs_cols, o.rhs_cols);
  EXPECT_EQ(parsed->compute_cells, o.compute_cells);
  EXPECT_EQ(parsed->expansion_rows, o.expansion_rows);
  EXPECT_EQ(parsed->target_cells, o.target_cells);
  EXPECT_EQ(parsed->factorized_seconds, o.factorized_seconds);
  EXPECT_EQ(parsed->materialized_seconds, o.materialized_seconds);
}

TEST(ObservationTest, FromFeaturesAggregatesTheRegressors) {
  CostFeatures features;
  features.target_rows = 30;
  features.target_cols = 4;
  SourceFeatures s0;
  s0.compute_cells = 100;
  s0.null_ratio = 0.5;
  s0.contributed_rows = 10;
  SourceFeatures s1;
  s1.compute_cells = 200;
  s1.null_ratio = 0.0;
  s1.contributed_rows = 20;
  features.sources = {s0, s1};

  const Observation o =
      Observation::FromFeatures(features, 20.0, 0.5, 0.7, "agg", 2.0);
  EXPECT_EQ(o.scenario, "agg");
  EXPECT_DOUBLE_EQ(o.training_iterations, 20.0);
  EXPECT_DOUBLE_EQ(o.rhs_cols, 2.0);
  EXPECT_DOUBLE_EQ(o.compute_cells, 100.0 * 0.5 + 200.0);
  EXPECT_DOUBLE_EQ(o.expansion_rows, 30.0);
  EXPECT_DOUBLE_EQ(o.target_cells, 120.0);
  EXPECT_DOUBLE_EQ(o.factorized_seconds, 0.5);
  EXPECT_DOUBLE_EQ(o.materialized_seconds, 0.7);
}

TEST(ObservationTest, RejectsTruncatedAndIncompleteLines) {
  const std::string good = SampleObservation().ToJsonLine();
  EXPECT_FALSE(Observation::FromJsonLine(good.substr(0, 40)).ok());
  EXPECT_FALSE(Observation::FromJsonLine("not json at all").ok());
  EXPECT_FALSE(
      Observation::FromJsonLine("{\"scenario\": \"x\"}").ok());  // fields gone
  EXPECT_EQ(Observation::FromJsonLine(good.substr(0, 40)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ObservationLogTest, ReadMissingFileIsNotFound) {
  auto contents = ObservationLog::Read(TempPath("no_such_log.jsonl"));
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST(ObservationLogTest, AppendThenReadRoundTrips) {
  const std::string path = TempPath("append_roundtrip.jsonl");
  std::remove(path.c_str());
  ObservationLog log(path);
  Observation first = SampleObservation();
  Observation second = SampleObservation();
  second.scenario = "union";
  second.training_iterations = 5.0;
  ASSERT_TRUE(log.Append(first).ok());
  ASSERT_TRUE(log.Append(second).ok());

  auto contents = ObservationLog::Read(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->skipped_lines, 0u);
  ASSERT_EQ(contents->observations.size(), 2u);
  EXPECT_EQ(contents->observations[0].scenario, "inner_join");
  EXPECT_EQ(contents->observations[1].scenario, "union");
  EXPECT_EQ(contents->observations[1].training_iterations, 5.0);
}

TEST(ObservationLogTest, CorruptAndTruncatedLinesAreSkippedAndCounted) {
  const std::string path = TempPath("corrupt_lines.jsonl");
  const std::string good = SampleObservation().ToJsonLine();
  {
    std::ofstream out(path, std::ios::trunc);
    out << good << "\n";
    out << "garbage that is not json\n";
    out << good.substr(0, good.size() / 2) << "\n";  // killed mid-write
    out << "\n";                                     // blank: not counted
    out << good << "\n";
  }
  auto contents = ObservationLog::Read(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->observations.size(), 2u);
  EXPECT_EQ(contents->skipped_lines, 2u);
}

TEST(ObservationLogTest, ConcurrentAppendsInterleaveWholeLines) {
  const std::string path = TempPath("concurrent_appends.jsonl");
  std::remove(path.c_str());
  ObservationLog log(path);
  constexpr size_t kRecords = 64;
  // Appends race from ParallelForChunks workers; the log's internal mutex
  // must serialize them so every line parses back (bytes never interleave).
  common::ScopedNumThreads threads(4);
  common::ParallelForChunks(0, kRecords, 1,
                            [&](size_t, size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                Observation o = SampleObservation();
                                o.scenario = "record_" + std::to_string(i);
                                ASSERT_TRUE(log.Append(o).ok());
                              }
                            });

  auto contents = ObservationLog::Read(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_EQ(contents->skipped_lines, 0u);
  ASSERT_EQ(contents->observations.size(), kRecords);
  std::set<std::string> scenarios;
  for (const Observation& o : contents->observations) {
    scenarios.insert(o.scenario);
  }
  EXPECT_EQ(scenarios.size(), kRecords);  // every record arrived intact
}

TEST(ObservationLogTest, DefaultPathHonorsEnvironment) {
  unsetenv(kObservationLogEnvVar);
  EXPECT_EQ(ObservationLog::DefaultPath(), "observations.jsonl");
  setenv(kObservationLogEnvVar, "/tmp/custom_obs.jsonl", 1);
  EXPECT_EQ(ObservationLog::DefaultPath(), "/tmp/custom_obs.jsonl");
  unsetenv(kObservationLogEnvVar);
}

}  // namespace
}  // namespace cost
}  // namespace amalur
