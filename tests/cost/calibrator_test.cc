// The fitting side of the calibration loop: a synthetic log generated from
// known constants must be recovered to within 1%; logs that cannot support
// a fit (missing, empty, one-row, rank-deficient, sign-degenerate) must
// fall back to the analytic defaults with a Status/source string explaining
// why; the fitted-constants file must round-trip; and resolution must honor
// explicit path > $AMALUR_CALIBRATION_FILE > defaults.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cost/calibrator.h"
#include "cost/observation_log.h"

namespace amalur {
namespace cost {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

AmalurCostModelOptions TrueConstants() {
  AmalurCostModelOptions truth;
  truth.flop_cost = 2.0e-9;
  truth.factorized_cell_cost = 1.5;
  truth.materialize_cell_cost = 1.2e-8;
  truth.factorized_row_overhead = 4.0e-9;
  return truth;
}

/// Generates the noiseless measurement the analytical model predicts for
/// `truth` — exactly the linear expressions the calibrator inverts.
Observation Synthetic(const std::string& name, double iterations,
                      double compute_cells, double expansion_rows,
                      double target_cells,
                      const AmalurCostModelOptions& truth) {
  Observation o;
  o.scenario = name;
  o.training_iterations = iterations;
  o.compute_cells = compute_cells;
  o.expansion_rows = expansion_rows;
  o.target_cells = target_cells;
  const double i = iterations;
  const double r = o.rhs_cols;
  o.factorized_seconds =
      2.0 * i * r * compute_cells * truth.flop_cost *
          truth.factorized_cell_cost +
      2.0 * i * r * expansion_rows * truth.flop_cost +
      i * expansion_rows * truth.factorized_row_overhead;
  o.materialized_seconds = target_cells * truth.materialize_cell_cost +
                           2.0 * i * r * target_cells * truth.flop_cost;
  return o;
}

/// Varied sizes AND horizons: a single shared horizon leaves the one-time
/// materialization cost inseparable from the per-iteration constants.
std::vector<Observation> SyntheticLog(const AmalurCostModelOptions& truth) {
  return {
      Synthetic("a5", 5, 4.0e5, 3.0e4, 1.1e6, truth),
      Synthetic("a20", 20, 4.0e5, 3.0e4, 1.1e6, truth),
      Synthetic("b5", 5, 9.0e5, 4.0e4, 9.0e5, truth),
      Synthetic("b20", 20, 9.0e5, 4.0e4, 9.0e5, truth),
      Synthetic("c60", 60, 2.5e6, 4.0e4, 2.5e6, truth),
      Synthetic("d10", 10, 1.2e6, 8.0e4, 2.1e6, truth),
  };
}

void ExpectWithinOnePercent(double actual, double expected, const char* what) {
  EXPECT_NEAR(actual, expected, 0.01 * std::fabs(expected)) << what;
}

TEST(CalibratorTest, RecoversKnownConstantsWithinOnePercent) {
  const AmalurCostModelOptions truth = TrueConstants();
  auto fitted = Calibrator().Fit(SyntheticLog(truth));
  ASSERT_TRUE(fitted.ok()) << fitted.status();
  ExpectWithinOnePercent(fitted->flop_cost, truth.flop_cost, "flop_cost");
  ExpectWithinOnePercent(fitted->factorized_cell_cost,
                         truth.factorized_cell_cost, "factorized_cell_cost");
  ExpectWithinOnePercent(fitted->materialize_cell_cost,
                         truth.materialize_cell_cost, "materialize_cell_cost");
  ExpectWithinOnePercent(fitted->factorized_row_overhead,
                         truth.factorized_row_overhead,
                         "factorized_row_overhead");
  EXPECT_TRUE(fitted->calibrated);
  EXPECT_NE(fitted->constants_source.find("least-squares"), std::string::npos);
}

TEST(CalibratorTest, PreservesWorkloadKnobsFromDefaults) {
  AmalurCostModelOptions defaults;
  defaults.training_iterations = 77.0;
  auto fitted = Calibrator(defaults).Fit(SyntheticLog(TrueConstants()));
  ASSERT_TRUE(fitted.ok()) << fitted.status();
  // Workload knobs are the caller's, never fitted.
  EXPECT_DOUBLE_EQ(fitted->training_iterations, 77.0);
}

TEST(CalibratorTest, EmptyLogIsInvalidArgument) {
  auto fitted = Calibrator().Fit({});
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, OneObservationIsInvalidArgument) {
  auto fitted =
      Calibrator().Fit({Synthetic("only", 20, 4e5, 3e4, 1e6, TrueConstants())});
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, UnusableObservationsDoNotCount) {
  Observation broken = Synthetic("broken", 20, 4e5, 3e4, 1e6, TrueConstants());
  broken.factorized_seconds = 0.0;  // a zero wall-clock is a broken run
  auto fitted = Calibrator().Fit({broken, broken, broken});
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, DuplicatedObservationsAreRankDeficient) {
  const Observation one = Synthetic("dup", 20, 4e5, 3e4, 1e6, TrueConstants());
  auto fitted = Calibrator().Fit({one, one, one, one, one, one});
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(fitted.status().ToString().find("rank-deficient"),
            std::string::npos);
}

TEST(CalibratorTest, SingleSharedHorizonIsRankDeficient) {
  // Structurally, with every observation at the same iteration count I the
  // null direction (1, 0, -2I, -2) exists: flop trades against the one-time
  // materialization cost and the row overhead. Varied sizes alone cannot
  // save the fit — only a second horizon can.
  const AmalurCostModelOptions truth = TrueConstants();
  auto fitted = Calibrator().Fit({
      Synthetic("a", 20, 4.0e5, 3.0e4, 1.1e6, truth),
      Synthetic("b", 20, 9.0e5, 4.0e4, 9.0e5, truth),
      Synthetic("c", 20, 2.5e6, 4.0e4, 2.5e6, truth),
      Synthetic("d", 20, 1.2e6, 8.0e4, 2.1e6, truth),
  });
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CalibratorTest, NonPositiveFittedConstantIsDegenerate) {
  // Measurements generated from a negative flop cost are linearly
  // consistent (every synthetic wall-clock is still positive), so the fit
  // succeeds numerically — and must then be rejected on sign.
  AmalurCostModelOptions impossible = TrueConstants();
  impossible.flop_cost = -2.0e-10;
  impossible.factorized_cell_cost = -15.0;  // keeps flop*fact_cell > 0
  impossible.materialize_cell_cost = 2.0e-8;
  auto fitted = Calibrator().Fit({
      Synthetic("a5", 5, 4.0e5, 3.0e4, 1.1e6, impossible),
      Synthetic("a20", 20, 4.0e5, 3.0e4, 1.1e6, impossible),
      Synthetic("b5", 5, 9.0e5, 4.0e4, 9.0e5, impossible),
      Synthetic("b20", 20, 9.0e5, 4.0e4, 9.0e5, impossible),
  });
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(fitted.status().ToString().find("non-positive"),
            std::string::npos);
}

TEST(CalibratorTest, CalibrateFromMissingLogFallsBackWithReason) {
  AmalurCostModelOptions defaults;
  const Calibration calibration =
      Calibrator(defaults).CalibrateFromLog(TempPath("no_such.jsonl"));
  EXPECT_FALSE(calibration.calibrated);
  EXPECT_DOUBLE_EQ(calibration.options.flop_cost, defaults.flop_cost);
  EXPECT_NE(calibration.source.find("analytic defaults"), std::string::npos);
  EXPECT_NE(calibration.source.find("does not exist"), std::string::npos);
  EXPECT_EQ(calibration.options.constants_source, calibration.source);
}

TEST(CalibratorTest, CalibrateFromLogFitsAndCountsCorruptLines) {
  const std::string path = TempPath("calibrate_from_log.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    for (const Observation& o : SyntheticLog(TrueConstants())) {
      out << o.ToJsonLine() << "\n";
    }
    out << "corrupt trailing line from a killed writer\n";
  }
  const Calibration calibration = Calibrator().CalibrateFromLog(path);
  EXPECT_TRUE(calibration.calibrated);
  EXPECT_EQ(calibration.observations_used, 6u);
  EXPECT_EQ(calibration.observations_skipped, 1u);
  EXPECT_NE(calibration.source.find("fitted from 6 observations"),
            std::string::npos);
  EXPECT_NE(calibration.source.find("1 corrupt lines skipped"),
            std::string::npos);
  EXPECT_TRUE(calibration.options.calibrated);
  ExpectWithinOnePercent(calibration.options.materialize_cell_cost,
                         TrueConstants().materialize_cell_cost,
                         "materialize_cell_cost");
}

TEST(CalibratorTest, CalibrationFileRoundTrips) {
  const std::string path = TempPath("calibration_roundtrip.json");
  Calibration fitted;
  fitted.calibrated = true;
  fitted.observations_used = 14;
  fitted.source = "fitted from 14 observations in 'observations.jsonl'";
  fitted.options = TrueConstants();
  fitted.options.calibrated = true;
  ASSERT_TRUE(WriteCalibrationFile(path, fitted).ok());

  auto loaded = LoadCalibrationFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->calibrated);
  EXPECT_EQ(loaded->observations_used, 14u);
  EXPECT_EQ(loaded->source, fitted.source);
  EXPECT_EQ(loaded->options.flop_cost, fitted.options.flop_cost);
  EXPECT_EQ(loaded->options.factorized_cell_cost,
            fitted.options.factorized_cell_cost);
  EXPECT_EQ(loaded->options.materialize_cell_cost,
            fitted.options.materialize_cell_cost);
  EXPECT_EQ(loaded->options.factorized_row_overhead,
            fitted.options.factorized_row_overhead);
}

TEST(CalibratorTest, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_EQ(LoadCalibrationFile(TempPath("absent.json")).status().code(),
            StatusCode::kNotFound);

  const std::string bad = TempPath("bad_calibration.json");
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "{\"flop_cost\": -1.0, \"factorized_cell_cost\": 1.0, "
           "\"materialize_cell_cost\": 1.0, \"factorized_row_overhead\": 0}\n";
  }
  EXPECT_EQ(LoadCalibrationFile(bad).status().code(),
            StatusCode::kInvalidArgument);

  const std::string incomplete = TempPath("incomplete_calibration.json");
  {
    std::ofstream out(incomplete, std::ios::trunc);
    out << "{\"flop_cost\": 1e-9}\n";
  }
  EXPECT_EQ(LoadCalibrationFile(incomplete).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CalibratorTest, ResolveCalibrationPrecedence) {
  const std::string explicit_path = TempPath("resolve_explicit.json");
  const std::string env_path = TempPath("resolve_env.json");
  Calibration a;
  a.calibrated = true;
  a.source = "explicit-file-constants";
  a.options = TrueConstants();
  ASSERT_TRUE(WriteCalibrationFile(explicit_path, a).ok());
  Calibration b = a;
  b.source = "env-file-constants";
  b.options.flop_cost = 3.0e-9;
  ASSERT_TRUE(WriteCalibrationFile(env_path, b).ok());

  setenv(kCalibrationFileEnvVar, env_path.c_str(), 1);
  // 1. The explicit path (the TrainRequest knob) beats the environment.
  Calibration resolved = ResolveCalibration({}, explicit_path);
  EXPECT_TRUE(resolved.calibrated);
  EXPECT_EQ(resolved.source, "explicit-file-constants");
  // 2. With no explicit path, the environment file decides.
  resolved = ResolveCalibration();
  EXPECT_TRUE(resolved.calibrated);
  EXPECT_EQ(resolved.source, "env-file-constants");
  EXPECT_DOUBLE_EQ(resolved.options.flop_cost, 3.0e-9);
  unsetenv(kCalibrationFileEnvVar);
  // 3. Nothing configured: analytic defaults, explicitly labeled as such.
  resolved = ResolveCalibration();
  EXPECT_FALSE(resolved.calibrated);
  EXPECT_EQ(resolved.source, "analytic defaults");
}

TEST(CalibratorTest, ResolveNeverFailsOnBadFile) {
  AmalurCostModelOptions defaults;
  const Calibration resolved =
      ResolveCalibration(defaults, TempPath("resolve_absent.json"));
  EXPECT_FALSE(resolved.calibrated);
  EXPECT_DOUBLE_EQ(resolved.options.flop_cost, defaults.flop_cost);
  EXPECT_NE(resolved.source.find("analytic defaults"), std::string::npos);
  EXPECT_NE(resolved.source.find("does not exist"), std::string::npos);
}

}  // namespace
}  // namespace cost
}  // namespace amalur
