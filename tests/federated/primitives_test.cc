#include <gtest/gtest.h>

#include "common/rng.h"
#include "federated/message_bus.h"
#include "federated/paillier.h"
#include "federated/secret_sharing.h"
#include "federated/vfl.h"

namespace amalur {
namespace federated {
namespace {

TEST(MessageBusTest, FifoDeliveryAndAccounting) {
  MessageBus bus;
  bus.Send("A", "B", la::DenseMatrix({{1, 2}}));
  bus.Send("A", "B", la::DenseMatrix({{3, 4}}));
  auto first = bus.Receive("A", "B");
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(first->At(0, 0), 1);
  auto second = bus.Receive("A", "B");
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->At(0, 0), 3);
  EXPECT_TRUE(bus.Receive("A", "B").status().IsNotFound());
  // 2 messages x (2 doubles + 32B envelope).
  EXPECT_EQ(bus.TotalBytes(), 2 * (16 + 32));
  EXPECT_EQ(bus.TotalMessages(), 2u);
  EXPECT_EQ(bus.ChannelStats("A", "B").messages, 2u);
  EXPECT_EQ(bus.ChannelStats("B", "A").messages, 0u);
}

TEST(MessageBusTest, ChannelsAreDirected) {
  MessageBus bus;
  bus.Send("A", "B", la::DenseMatrix({{1}}));
  EXPECT_TRUE(bus.Receive("B", "A").status().IsNotFound());
  EXPECT_TRUE(bus.Receive("A", "B").ok());
}

TEST(MessageBusTest, BytePayloadsAndReset) {
  MessageBus bus;
  bus.SendBytes("A", "B", {1, 2, 3});
  auto words = bus.ReceiveBytes("A", "B");
  ASSERT_TRUE(words.ok());
  EXPECT_EQ(words->size(), 3u);
  bus.Reset();
  EXPECT_EQ(bus.TotalBytes(), 0u);
  EXPECT_TRUE(bus.ReceiveBytes("A", "B").status().IsNotFound());
}

TEST(MessageBusTest, CiphertextPayloadsMeteredAtSerializedSize) {
  // Regression for the §V.B accounting invariant: Paillier payloads are
  // counted at their serialized ciphertext size (16 bytes each — the
  // (lo, hi) word pair that actually travels), NOT at the 8-byte
  // plaintext-double rate. Metering ciphertexts as if they were doubles
  // would make encrypted and plaintext wires look equally heavy and hide
  // the encryption blow-up from bytes_transferred.
  Paillier paillier(Paillier::GenerateKeys(7, 24), 12);
  Rng rng(3);
  la::DenseMatrix values({{1.5}, {-2.0}, {0.25}, {7.0}});
  std::vector<PaillierCiphertext> ciphertexts =
      paillier.EncryptMatrix(values, &rng);

  MessageBus secure_bus;
  secure_bus.SendCiphertextWords("A", "B", PackCiphertexts(ciphertexts));
  MessageBus plain_bus;
  plain_bus.Send("A", "B", values);

  const size_t envelope = 32;
  const TransferStats secure = secure_bus.ChannelStats("A", "B");
  const TransferStats plain = plain_bus.ChannelStats("A", "B");
  EXPECT_EQ(secure.bytes,
            values.size() * MessageBus::kCiphertextWireBytes + envelope);
  // Exactly the 2x-per-value blow-up of the 16-byte ciphertext vs the
  // 8-byte double, visible on the wire.
  EXPECT_EQ(secure.bytes - envelope, 2 * (plain.bytes - envelope));

  // The payload still round-trips through the ordinary byte queue.
  auto words = secure_bus.ReceiveBytes("A", "B");
  ASSERT_TRUE(words.ok());
  la::DenseMatrix decrypted =
      paillier.DecryptMatrix(UnpackCiphertexts(*words), 4, 1);
  EXPECT_LT(decrypted.MaxAbsDiff(values), 1e-3);
}

TEST(MessageBusTest, NaryPaillierRingMetersEachCiphertextHopExactlyOnce) {
  // Audit pin for the N=3 Paillier ring's byte accounting. Every ciphertext
  // hop is metered exactly once, at the 16-byte serialized rate:
  //
  //   per iteration, n rows, party widths p_k (P = Σ p_k):
  //    * ring accumulation  : N-1 messages of n ciphertexts,
  //    * residual broadcast : N-1 messages of n ciphertexts,
  //    * masked decryption  : per party, ONE ciphertext message to the
  //      coordinator (p_k ciphertexts) and ONE dense reply (p_k doubles) —
  //      the coordinator's decryption is a round-trip, never a re-metered
  //      copy of the inbound payload (the double-count this test pins out),
  //    * every message adds the 32-byte envelope.
  //
  // Any change to the protocol's message pattern or metering rate moves
  // this exact total and must be justified.
  Rng rng(21);
  const size_t n_rows = 4;
  const std::vector<size_t> widths{2, 1, 2};
  std::vector<VflParty> parties(widths.size());
  for (size_t k = 0; k < widths.size(); ++k) {
    parties[k].x = la::DenseMatrix::RandomGaussian(n_rows, widths[k], &rng);
  }
  la::DenseMatrix labels = la::DenseMatrix::RandomGaussian(n_rows, 1, &rng);

  VflOptions options;
  options.iterations = 3;
  options.privacy = VflPrivacy::kPaillier;
  MessageBus bus;
  auto result = TrainVerticalFlrNary(parties, labels, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();

  const size_t parties_n = widths.size();                    // N = 3
  const size_t total_width = 2 + 1 + 2;                      // P = 5
  const size_t ring_ciphertexts = (parties_n - 1) * n_rows;  // 8
  const size_t broadcast_ciphertexts = (parties_n - 1) * n_rows;  // 8
  const size_t gradient_ciphertexts = total_width;                // 5
  const size_t messages_per_iteration =
      (parties_n - 1) + (parties_n - 1) + parties_n + parties_n;  // 10
  const size_t envelope = 32;
  const size_t bytes_per_iteration =
      (ring_ciphertexts + broadcast_ciphertexts + gradient_ciphertexts) *
          MessageBus::kCiphertextWireBytes +
      total_width * sizeof(double) +  // the coordinator's dense replies
      messages_per_iteration * envelope;
  EXPECT_EQ(bytes_per_iteration, 21 * 16 + 40 + 320);  // 696 for this shape

  EXPECT_EQ(result->messages, options.iterations * messages_per_iteration);
  EXPECT_EQ(result->bytes_transferred,
            options.iterations * bytes_per_iteration);
  EXPECT_EQ(result->bytes_transferred, 3u * 696u);
}

TEST(SecretSharingTest, RoundTripExactForFixedPointValues) {
  AdditiveSecretSharing sharing;
  Rng rng(1);
  la::DenseMatrix secret({{1.5, -2.25}, {0.0, 1000.125}});
  auto shares = sharing.Share(secret, 3, &rng);
  ASSERT_EQ(shares.size(), 3u);
  la::DenseMatrix restored = sharing.Reconstruct(shares);
  EXPECT_LT(restored.MaxAbsDiff(secret), 1e-6);
}

TEST(SecretSharingTest, IndividualSharesLookRandom) {
  AdditiveSecretSharing sharing;
  Rng rng(2);
  la::DenseMatrix secret = la::DenseMatrix::Constant(1, 64, 5.0);
  auto shares = sharing.Share(secret, 2, &rng);
  // The first share is uniform: its cells should not all decode near 5.
  size_t near_secret = 0;
  for (size_t j = 0; j < 64; ++j) {
    if (std::fabs(sharing.Decode(shares[0].At(0, j)) - 5.0) < 1.0) {
      ++near_secret;
    }
  }
  EXPECT_LT(near_secret, 8u);
}

TEST(SecretSharingTest, AdditionIsHomomorphic) {
  AdditiveSecretSharing sharing;
  Rng rng(3);
  la::DenseMatrix a({{1.25, -4.0}});
  la::DenseMatrix b({{2.5, 3.5}});
  auto shares_a = sharing.Share(a, 2, &rng);
  auto shares_b = sharing.Share(b, 2, &rng);
  std::vector<ShareMatrix> sum_shares{
      AdditiveSecretSharing::AddShares(shares_a[0], shares_b[0]),
      AdditiveSecretSharing::AddShares(shares_a[1], shares_b[1])};
  la::DenseMatrix sum = sharing.Reconstruct(sum_shares);
  EXPECT_LT(sum.MaxAbsDiff(a.Add(b)), 1e-6);
}

TEST(SecretSharingTest, NegativeAndLargeMagnitudes) {
  AdditiveSecretSharing sharing;
  Rng rng(4);
  la::DenseMatrix secret({{-1e6, 1e-5, -3.14159, 7.0}});
  auto shares = sharing.Share(secret, 5, &rng);
  EXPECT_LT(sharing.Reconstruct(shares).MaxAbsDiff(secret), 1e-4);
}

TEST(PrimalityTest, KnownPrimesAndComposites) {
  EXPECT_TRUE(IsPrime64(2));
  EXPECT_TRUE(IsPrime64(3));
  EXPECT_TRUE(IsPrime64(1000000007ULL));
  EXPECT_TRUE(IsPrime64(2147483647ULL));  // 2^31 - 1
  EXPECT_FALSE(IsPrime64(0));
  EXPECT_FALSE(IsPrime64(1));
  EXPECT_FALSE(IsPrime64(1000000007ULL * 3));
  EXPECT_FALSE(IsPrime64(561));   // Carmichael
  EXPECT_FALSE(IsPrime64(6601));  // Carmichael
}

TEST(PaillierTest, KeyGenerationProducesValidModulus) {
  PaillierKeyPair keys = Paillier::GenerateKeys(42, 24);
  EXPECT_GT(keys.public_key.n, uint64_t{1} << 46);
  EXPECT_EQ(keys.public_key.n_squared,
            static_cast<unsigned __int128>(keys.public_key.n) *
                keys.public_key.n);
  // Deterministic in the seed.
  EXPECT_EQ(Paillier::GenerateKeys(42, 24).public_key.n, keys.public_key.n);
  EXPECT_NE(Paillier::GenerateKeys(43, 24).public_key.n, keys.public_key.n);
}

TEST(PaillierTest, RawRoundTrip) {
  Paillier paillier(Paillier::GenerateKeys(7, 28));
  Rng rng(1);
  for (uint64_t m : {0ULL, 1ULL, 12345ULL, 99999999ULL}) {
    EXPECT_EQ(paillier.DecryptRaw(paillier.EncryptRaw(m, &rng)), m);
  }
}

TEST(PaillierTest, EncryptionIsRandomized) {
  Paillier paillier(Paillier::GenerateKeys(7, 28));
  Rng rng(2);
  auto c1 = paillier.EncryptRaw(42, &rng);
  auto c2 = paillier.EncryptRaw(42, &rng);
  EXPECT_TRUE(c1 != c2);  // fresh randomness
  EXPECT_EQ(paillier.DecryptRaw(c1), paillier.DecryptRaw(c2));
}

TEST(PaillierTest, AdditiveHomomorphism) {
  Paillier paillier(Paillier::GenerateKeys(11, 28));
  Rng rng(3);
  auto ca = paillier.EncryptRaw(1000, &rng);
  auto cb = paillier.EncryptRaw(2345, &rng);
  EXPECT_EQ(paillier.DecryptRaw(paillier.CipherAdd(ca, cb)), 3345u);
  EXPECT_EQ(paillier.DecryptRaw(paillier.CipherScale(ca, 7)), 7000u);
}

TEST(PaillierTest, DoubleEncodingHandlesNegatives) {
  Paillier paillier(Paillier::GenerateKeys(13, 28), 16);
  Rng rng(4);
  for (double v : {0.0, 1.5, -1.5, 123.456, -987.654}) {
    EXPECT_NEAR(paillier.DecryptDouble(paillier.EncryptDouble(v, &rng)), v,
                1e-4);
  }
}

TEST(PaillierTest, HomomorphicSumOfDoubles) {
  Paillier paillier(Paillier::GenerateKeys(17, 28), 16);
  Rng rng(5);
  auto ca = paillier.EncryptDouble(2.5, &rng);
  auto cb = paillier.EncryptDouble(-1.25, &rng);
  EXPECT_NEAR(paillier.DecryptDouble(paillier.CipherAdd(ca, cb)), 1.25, 1e-4);
}

TEST(PaillierTest, MatrixRoundTripAndPacking) {
  Paillier paillier(Paillier::GenerateKeys(19, 26), 12);
  Rng rng(6);
  la::DenseMatrix values({{1.5, -2.0}, {0.25, 3.75}});
  auto ciphertexts = paillier.EncryptMatrix(values, &rng);
  auto packed = PackCiphertexts(ciphertexts);
  EXPECT_EQ(packed.size(), 8u);
  auto unpacked = UnpackCiphertexts(packed);
  la::DenseMatrix restored = paillier.DecryptMatrix(unpacked, 2, 2);
  EXPECT_LT(restored.MaxAbsDiff(values), 1e-3);
}

}  // namespace
}  // namespace federated
}  // namespace amalur
