// Parallel/serial equivalence of the federated round loop: per-silo work
// (forward passes, gradients, FedAvg local epochs) fans out over the shared
// pool with a fixed-order merge, so training with a fixed seed must be
// bitwise-reproducible at every thread count — the same contract
// tests/ml/parallel_training_test.cc pins for the centralized trainers,
// extended to both federated protocols and to the facade's federated path.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "relational/generator.h"

namespace amalur {
namespace federated {
namespace {

std::vector<size_t> TestedThreadCounts() { return {1, 2, 5}; }

class FederatedDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { common::SetNumThreads(0); }
};

std::vector<VflParty> MakeParties(size_t n_parties, size_t rows,
                                  size_t features_each, uint64_t seed,
                                  la::DenseMatrix* labels) {
  Rng rng(seed);
  std::vector<VflParty> parties;
  *labels = la::DenseMatrix(rows, 1);
  for (size_t k = 0; k < n_parties; ++k) {
    VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(rows, features_each, &rng);
    la::DenseMatrix w = la::DenseMatrix::RandomGaussian(features_each, 1, &rng);
    labels->AddInPlace(party.x.Multiply(w));
    parties.push_back(std::move(party));
  }
  return parties;
}

TEST_F(FederatedDeterminismTest, NaryVflBitwiseEqualAcrossThreads) {
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeParties(4, 120, 3, 51, &labels);
  VflOptions options;
  options.iterations = 20;
  options.learning_rate = 0.05;

  common::SetNumThreads(1);
  MessageBus serial_bus;
  auto serial = TrainVerticalFlrNary(parties, labels, options, &serial_bus);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    MessageBus bus;
    auto parallel = TrainVerticalFlrNary(parties, labels, options, &bus);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    for (size_t k = 0; k < parties.size(); ++k) {
      EXPECT_TRUE(parallel->thetas[k] == serial->thetas[k])
          << "party " << k << ", thread count " << threads;
    }
    EXPECT_EQ(parallel->loss_history, serial->loss_history)
        << "thread count " << threads;
    EXPECT_EQ(parallel->bytes_transferred, serial->bytes_transferred);
  }
}

TEST_F(FederatedDeterminismTest, PaillierVflBitwiseEqualAcrossThreads) {
  // The secure mode threads one RNG through the encryption schedule and
  // runs serially — the thread knob must not perturb it either.
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeParties(3, 30, 2, 52, &labels);
  VflOptions options;
  options.iterations = 4;
  options.learning_rate = 0.05;
  options.privacy = VflPrivacy::kPaillier;

  common::SetNumThreads(1);
  MessageBus serial_bus;
  auto serial = TrainVerticalFlrNary(parties, labels, options, &serial_bus);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    MessageBus bus;
    auto parallel = TrainVerticalFlrNary(parties, labels, options, &bus);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    for (size_t k = 0; k < parties.size(); ++k) {
      EXPECT_TRUE(parallel->thetas[k] == serial->thetas[k])
          << "party " << k << ", thread count " << threads;
    }
  }
}

TEST_F(FederatedDeterminismTest, FedAvgBitwiseEqualAcrossThreads) {
  Rng rng(53);
  std::vector<HflPartition> parties;
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(4, 1, &rng);
  for (size_t p = 0; p < 5; ++p) {
    HflPartition partition{la::DenseMatrix::RandomGaussian(40 + 10 * p, 4, &rng),
                           {}};
    partition.labels = partition.features.Multiply(w_true);
    parties.push_back(std::move(partition));
  }
  for (bool secure : {false, true}) {
    HflOptions options;
    options.rounds = 15;
    options.local_epochs = 2;
    options.learning_rate = 0.1;
    options.secure_aggregation = secure;

    common::SetNumThreads(1);
    MessageBus serial_bus;
    auto serial = TrainHorizontalFlr(parties, options, &serial_bus);
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (size_t threads : TestedThreadCounts()) {
      common::SetNumThreads(threads);
      MessageBus bus;
      auto parallel = TrainHorizontalFlr(parties, options, &bus);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_TRUE(parallel->weights == serial->weights)
          << (secure ? "secure" : "plain") << " aggregation, thread count "
          << threads;
      EXPECT_EQ(parallel->loss_history, serial->loss_history)
          << "thread count " << threads;
    }
  }
}

TEST_F(FederatedDeterminismTest, FacadeFederatedTrainingEqualAcrossThreads) {
  // Through Amalur::Train: a privacy-constrained union-of-stars routes to
  // per-shard FedAvg; the request's thread knob must leave the weights
  // bitwise-unchanged (and stay scoped to the run).
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 80;
  spec.fact_features = 2;
  spec.dim_rows = 10;
  spec.dim_features = 2;
  spec.seed = 54;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(system.catalog()
                    ->RegisterSource({table.name(), table, "silo", true})
                    .ok());
  }
  core::IntegrationSpec spec2;
  spec2.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                 {"fact0", "fact1", rel::JoinKind::kUnion},
                 {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(spec2);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 12;
  request.gd.learning_rate = 0.05;
  request.num_threads = 1;
  auto serial = system.Train(*integration, request);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  for (size_t threads : TestedThreadCounts()) {
    request.num_threads = threads;
    auto parallel = system.Train(*integration, request);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(parallel->weights() == serial->weights())
        << "thread count " << threads;
    EXPECT_EQ(common::NumThreads(), common::DefaultNumThreads());
  }
}

}  // namespace
}  // namespace federated
}  // namespace amalur
