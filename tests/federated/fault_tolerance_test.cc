// Fault-tolerant federated execution: the chaos matrix. A seeded
// `FaultSchedule` drives drop/delay/duplicate/crash faults through the
// `FaultyMessageBus`; the hardened protocols must (a) absorb transient
// faults with retransmissions while producing bitwise the *same* model a
// clean wire produces, (b) degrade gracefully on silo loss where the
// protocol structure allows it (HFL re-weights FedAvg over survivors, with
// round-boundary re-admission), (c) fail cleanly with `kUnavailable`
// naming the lost silo where it does not (VFL), and (d) stay perfectly
// deterministic: the same seed yields the same drops, byte counts and
// weights at every thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "federated/fault_injection.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "relational/generator.h"

namespace amalur {
namespace federated {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  void TearDown() override { common::SetNumThreads(0); }
};

// ---------------------------------------------------------------- bus units

TEST_F(FaultToleranceTest, DropIsMeteredAsWasteNotTransfer) {
  FaultSchedule schedule(11);
  SiloFaultProfile lossy;
  lossy.drop_rate = 1.0;
  schedule.Set("A", lossy);
  FaultyMessageBus bus(schedule);

  bus.Send("A", "B", la::DenseMatrix(4, 1));
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  EXPECT_EQ(bus.TotalBytes(), 0u);
  EXPECT_EQ(bus.TotalMessages(), 0u);
  EXPECT_EQ(bus.WastedBytes(), 4 * 8 + 32u);  // payload + envelope
  EXPECT_EQ(bus.MessagesDropped(), 1u);
}

TEST_F(FaultToleranceTest, DelaySurfacesAfterCountedAttempts) {
  FaultSchedule schedule(12);
  SiloFaultProfile slow;
  slow.delay_rate = 1.0;
  slow.delay_attempts = 2;
  schedule.Set("A", slow);
  FaultyMessageBus bus(schedule);

  bus.Send("A", "B", la::DenseMatrix(3, 1));
  // Metered at send time: the message *will* arrive.
  EXPECT_EQ(bus.TotalBytes(), 3 * 8 + 32u);
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  auto delivered = bus.Receive("A", "B");
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(delivered->rows(), 3u);
  EXPECT_EQ(bus.WastedBytes(), 0u);
}

TEST_F(FaultToleranceTest, RetransmitOfDelayedMessageIsDeduplicated) {
  FaultSchedule schedule(13);
  SiloFaultProfile slow;
  slow.delay_rate = 1.0;
  slow.delay_attempts = 1;
  schedule.Set("A", slow);
  FaultyMessageBus bus(schedule);

  bus.Send("A", "B", la::DenseMatrix(2, 1));
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  // The sender retries while the original is still in flight: the resend
  // burns wire bytes but the receiver must see exactly one copy.
  bus.Send("A", "B", la::DenseMatrix(2, 1));
  EXPECT_TRUE(bus.Receive("A", "B").ok());
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  EXPECT_EQ(bus.TotalBytes(), 2 * 8 + 32u);
  EXPECT_EQ(bus.WastedBytes(), 2 * 8 + 32u);
  EXPECT_EQ(bus.MessagesDuplicated(), 1u);
}

TEST_F(FaultToleranceTest, DuplicateDeliversOnceAndMetersRedundantCopy) {
  FaultSchedule schedule(14);
  SiloFaultProfile chatty;
  chatty.duplicate_rate = 1.0;
  schedule.Set("A", chatty);
  FaultyMessageBus bus(schedule);

  bus.Send("A", "B", la::DenseMatrix(5, 1));
  EXPECT_TRUE(bus.Receive("A", "B").ok());
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  EXPECT_EQ(bus.TotalBytes(), 5 * 8 + 32u);
  EXPECT_EQ(bus.WastedBytes(), 5 * 8 + 32u);
  EXPECT_EQ(bus.MessagesDuplicated(), 1u);
}

TEST_F(FaultToleranceTest, CrashWindowSuppressesAndDropsUntilRejoin) {
  FaultSchedule schedule(15);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 1;
  mortal.rejoin_at_round = 3;
  schedule.Set("B", mortal);
  FaultyMessageBus bus(schedule);

  bus.BeginRound(0);
  EXPECT_FALSE(bus.IsDown("B"));
  bus.Send("A", "B", la::DenseMatrix(1, 1));
  EXPECT_TRUE(bus.Receive("A", "B").ok());

  bus.BeginRound(1);
  EXPECT_TRUE(bus.IsDown("B"));
  // To a crashed silo: transmitted but never delivered (waste).
  bus.Send("A", "B", la::DenseMatrix(1, 1));
  EXPECT_FALSE(bus.Receive("A", "B").ok());
  EXPECT_EQ(bus.MessagesDropped(), 1u);
  // From a crashed silo: nothing even leaves (no bytes at all).
  const size_t wasted_before = bus.WastedBytes();
  bus.Send("B", "A", la::DenseMatrix(1, 1));
  EXPECT_FALSE(bus.Receive("B", "A").ok());
  EXPECT_EQ(bus.WastedBytes(), wasted_before);
  EXPECT_EQ(bus.MessagesSuppressed(), 1u);

  bus.BeginRound(3);
  EXPECT_FALSE(bus.IsDown("B"));
  bus.Send("A", "B", la::DenseMatrix(1, 1));
  EXPECT_TRUE(bus.Receive("A", "B").ok());
}

TEST_F(FaultToleranceTest, ResetReplaysTheSameFaultStream) {
  FaultSchedule schedule(16);
  SiloFaultProfile lossy;
  lossy.drop_rate = 0.5;
  schedule.SetDefault(lossy);
  FaultyMessageBus bus(schedule);

  auto run = [&bus]() {
    std::vector<bool> delivered;
    for (int i = 0; i < 32; ++i) {
      bus.Send("A", "B", la::DenseMatrix(1, 1));
      delivered.push_back(bus.Receive("A", "B").ok());
    }
    return delivered;
  };
  const std::vector<bool> first = run();
  bus.Reset();
  EXPECT_EQ(run(), first);
}

// --------------------------------------------------------- transfer helpers

TEST_F(FaultToleranceTest, TransferRetriesThroughDropsAndChargesVirtualTime) {
  FaultSchedule schedule(17);
  SiloFaultProfile lossy;
  lossy.drop_rate = 0.5;
  schedule.Set("A", lossy);
  FaultyMessageBus bus(schedule);

  FederatedPolicy policy;
  policy.retry.max_retries = 16;
  WireTelemetry wire;
  size_t delivered = 0;
  for (int i = 0; i < 16; ++i) {
    auto got = TransferDense(&bus, policy, "A", "B", "B",
                             la::DenseMatrix(2, 1), &wire);
    if (got.ok()) ++delivered;
  }
  EXPECT_EQ(delivered, 16u);     // retry budget absorbs a 50% drop rate
  EXPECT_GT(wire.retries, 0u);   // ... and some retransmissions happened
  EXPECT_GT(wire.virtual_ms, 0u);
  EXPECT_GT(bus.WastedBytes(), 0u);
}

TEST_F(FaultToleranceTest, TransferExhaustedRetriesReturnUnavailable) {
  FaultSchedule schedule(18);
  SiloFaultProfile dead;
  dead.crash_at_round = 0;
  schedule.Set("B", dead);
  FaultyMessageBus bus(schedule);
  bus.BeginRound(0);

  FederatedPolicy policy;
  policy.retry.max_retries = 2;
  WireTelemetry wire;
  auto got =
      TransferDense(&bus, policy, "A", "B", "B", la::DenseMatrix(1, 1), &wire);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
  EXPECT_NE(got.status().message().find("silo B"), std::string::npos)
      << got.status();
  EXPECT_NE(got.status().message().find("3 delivery attempts"),
            std::string::npos)
      << got.status();
}

TEST_F(FaultToleranceTest, RoundTimeoutBudgetCutsRetriesShort) {
  FaultSchedule schedule(19);
  SiloFaultProfile glacial;
  glacial.delay_rate = 1.0;
  glacial.delay_attempts = 100;
  schedule.Set("A", glacial);
  FaultyMessageBus bus(schedule);

  FederatedPolicy policy;
  policy.retry.max_retries = 50;        // per-message budget would allow 51
  policy.max_round_timeout_ms = 120;    // ... but the round budget does not
  WireTelemetry wire;
  auto got =
      TransferDense(&bus, policy, "A", "B", "B", la::DenseMatrix(1, 1), &wire);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
  EXPECT_NE(got.status().message().find("round timeout budget"),
            std::string::npos)
      << got.status();
}

// ----------------------------------------------------------- VFL under chaos

std::vector<VflParty> MakeVflParties(size_t n_parties, size_t rows,
                                     size_t features_each, uint64_t seed,
                                     la::DenseMatrix* labels) {
  Rng rng(seed);
  std::vector<VflParty> parties;
  *labels = la::DenseMatrix(rows, 1);
  for (size_t k = 0; k < n_parties; ++k) {
    VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(rows, features_each, &rng);
    la::DenseMatrix w = la::DenseMatrix::RandomGaussian(features_each, 1, &rng);
    labels->AddInPlace(party.x.Multiply(w));
    parties.push_back(std::move(party));
  }
  return parties;
}

TEST_F(FaultToleranceTest, VflAbsorbsDropsAndMatchesCleanWeightsBitwise) {
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeVflParties(3, 60, 2, 21, &labels);
  VflOptions options;
  options.iterations = 15;
  options.learning_rate = 0.05;
  options.policy.retry.max_retries = 8;

  MessageBus clean_bus;
  auto clean = TrainVerticalFlrNary(parties, labels, options, &clean_bus);
  ASSERT_TRUE(clean.ok()) << clean.status();

  FaultSchedule schedule(22);
  SiloFaultProfile lossy;
  lossy.drop_rate = 0.1;
  schedule.SetDefault(lossy);
  FaultyMessageBus chaos_bus(schedule);
  auto chaotic = TrainVerticalFlrNary(parties, labels, options, &chaos_bus);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status();

  // Retransmission recovers the exact protocol: same weights, same loss
  // curve, same *delivered* bytes — the drops only show up as waste.
  for (size_t k = 0; k < parties.size(); ++k) {
    EXPECT_TRUE(chaotic->thetas[k] == clean->thetas[k]) << "party " << k;
  }
  EXPECT_EQ(chaotic->loss_history, clean->loss_history);
  EXPECT_EQ(chaotic->bytes_transferred, clean->bytes_transferred);
  EXPECT_GT(chaotic->retries, 0u);
  EXPECT_GT(chaotic->bytes_wasted, 0u);
  EXPECT_EQ(clean->retries, 0u);
  EXPECT_EQ(clean->bytes_wasted, 0u);
}

TEST_F(FaultToleranceTest, PaillierVflRetransmitsCiphertextsUnchanged) {
  // A resend must ship the *same* ciphertext words — re-encrypting would
  // consume protocol randomness and diverge from the clean run.
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeVflParties(3, 24, 2, 23, &labels);
  VflOptions options;
  options.iterations = 3;
  options.learning_rate = 0.05;
  options.privacy = VflPrivacy::kPaillier;
  options.policy.retry.max_retries = 8;

  MessageBus clean_bus;
  auto clean = TrainVerticalFlrNary(parties, labels, options, &clean_bus);
  ASSERT_TRUE(clean.ok()) << clean.status();

  FaultSchedule schedule(24);
  SiloFaultProfile lossy;
  lossy.drop_rate = 0.1;
  lossy.delay_rate = 0.05;
  schedule.SetDefault(lossy);
  FaultyMessageBus chaos_bus(schedule);
  auto chaotic = TrainVerticalFlrNary(parties, labels, options, &chaos_bus);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status();

  for (size_t k = 0; k < parties.size(); ++k) {
    EXPECT_TRUE(chaotic->thetas[k] == clean->thetas[k]) << "party " << k;
  }
  EXPECT_EQ(chaotic->bytes_transferred, clean->bytes_transferred);
  EXPECT_GT(chaotic->retries, 0u);
}

TEST_F(FaultToleranceTest, VflCrashReturnsUnavailableNamingTheLostSilo) {
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeVflParties(3, 40, 2, 25, &labels);
  VflOptions options;
  options.iterations = 10;
  options.learning_rate = 0.05;
  // Degrade is requested but structurally impossible for VFL: P2's feature
  // columns cannot be conjured by the survivors.
  options.policy.on_silo_loss = SiloLossAction::kDegrade;

  FaultSchedule schedule(26);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 3;
  schedule.Set("P2", mortal);
  FaultyMessageBus bus(schedule);
  auto got = TrainVerticalFlrNary(parties, labels, options, &bus);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
  EXPECT_NE(got.status().message().find("P2"), std::string::npos)
      << got.status();
}

TEST_F(FaultToleranceTest, VflSinglePartyIsInvalidArgumentSayingTrainLocally) {
  // The N = 1 contract (shared with AlignForVflNary's single-source guard):
  // one party holding every feature is not a federation — the error says
  // to train locally instead of reporting a generic shape failure.
  la::DenseMatrix labels;
  std::vector<VflParty> parties = MakeVflParties(1, 10, 2, 27, &labels);
  MessageBus bus;
  auto got = TrainVerticalFlrNary(parties, labels, VflOptions{}, &bus);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsInvalidArgument()) << got.status();
  EXPECT_NE(got.status().message().find("train locally"), std::string::npos)
      << got.status();
}

// ----------------------------------------------------------- HFL under chaos

std::vector<HflPartition> MakeHflPartitions(size_t n_parties, uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(3, 1, &rng);
  std::vector<HflPartition> parties;
  for (size_t p = 0; p < n_parties; ++p) {
    HflPartition partition{
        la::DenseMatrix::RandomGaussian(50 + 10 * p, 3, &rng), {}};
    partition.labels = partition.features.Multiply(w_true);
    parties.push_back(std::move(partition));
  }
  return parties;
}

TEST_F(FaultToleranceTest, HflFailPolicyReturnsUnavailableNamingTheSilo) {
  std::vector<HflPartition> parties = MakeHflPartitions(3, 31);
  HflOptions options;
  options.rounds = 8;
  options.policy.on_silo_loss = SiloLossAction::kFail;  // the default

  FaultSchedule schedule(32);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 2;
  schedule.Set("P1", mortal);
  FaultyMessageBus bus(schedule);
  auto got = TrainHorizontalFlr(parties, options, &bus);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
  EXPECT_NE(got.status().message().find("P1"), std::string::npos)
      << got.status();
  EXPECT_NE(got.status().message().find("round 2"), std::string::npos)
      << got.status();
}

TEST_F(FaultToleranceTest, HflDegradeMatchesSurvivorsFromScratchBitwise) {
  // A party dead from round 0 under `kDegrade` must be *exactly* as if it
  // never enrolled: same weights, same loss curve as training the
  // survivors from scratch — re-weighted FedAvg, not a biased average
  // over a phantom participant.
  std::vector<HflPartition> parties = MakeHflPartitions(3, 33);
  HflOptions options;
  options.rounds = 12;
  options.policy.on_silo_loss = SiloLossAction::kDegrade;

  FaultSchedule schedule(34);
  SiloFaultProfile stillborn;
  stillborn.crash_at_round = 0;
  schedule.Set("P2", stillborn);
  FaultyMessageBus chaos_bus(schedule);
  auto degraded = TrainHorizontalFlr(parties, options, &chaos_bus);
  ASSERT_TRUE(degraded.ok()) << degraded.status();

  std::vector<HflPartition> survivors = {parties[0], parties[1]};
  MessageBus clean_bus;
  auto from_scratch = TrainHorizontalFlr(survivors, options, &clean_bus);
  ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();

  EXPECT_TRUE(degraded->weights == from_scratch->weights);
  EXPECT_EQ(degraded->loss_history, from_scratch->loss_history);
  EXPECT_EQ(degraded->silos_dropped, std::vector<std::string>{"P2"});
  EXPECT_EQ(degraded->rounds_degraded, options.rounds);
  EXPECT_EQ(from_scratch->rounds_degraded, 0u);
}

TEST_F(FaultToleranceTest, HflDegradeMidTrainingConvergesToSurvivorOptimum) {
  // Crash at round 3: the first rounds see all shards, the rest only the
  // survivors. Re-weighted FedAvg must still converge to the survivors'
  // optimum — within 1e-8 of a clean survivors-only run.
  std::vector<HflPartition> parties = MakeHflPartitions(3, 35);
  HflOptions options;
  options.rounds = 400;
  options.learning_rate = 0.3;
  // Plain aggregation: secret sharing's fixed-point encoding quantizes at
  // ~1e-7, which would swamp the 1e-8 optimum comparison.
  options.secure_aggregation = false;
  options.policy.on_silo_loss = SiloLossAction::kDegrade;

  FaultSchedule schedule(36);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 3;
  schedule.Set("P2", mortal);
  FaultyMessageBus chaos_bus(schedule);
  auto degraded = TrainHorizontalFlr(parties, options, &chaos_bus);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->rounds_degraded, options.rounds - 3);

  std::vector<HflPartition> survivors = {parties[0], parties[1]};
  MessageBus clean_bus;
  auto from_scratch = TrainHorizontalFlr(survivors, options, &clean_bus);
  ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();

  for (size_t j = 0; j < degraded->weights.rows(); ++j) {
    EXPECT_NEAR(degraded->weights.At(j, 0), from_scratch->weights.At(j, 0),
                1e-8)
        << "weight " << j;
  }
}

TEST_F(FaultToleranceTest, HflRejoinIsReadmittedAtTheRoundBoundary) {
  std::vector<HflPartition> parties = MakeHflPartitions(3, 37);
  HflOptions options;
  options.rounds = 8;
  options.policy.on_silo_loss = SiloLossAction::kDegrade;

  FaultSchedule schedule(38);
  SiloFaultProfile flaky;
  flaky.crash_at_round = 2;
  flaky.rejoin_at_round = 5;
  schedule.Set("P1", flaky);
  FaultyMessageBus bus(schedule);
  auto got = TrainHorizontalFlr(parties, options, &bus);
  ASSERT_TRUE(got.ok()) << got.status();
  // Down for rounds 2, 3, 4; probed and re-admitted at round 5.
  EXPECT_EQ(got->rounds_degraded, 3u);
  EXPECT_EQ(got->silos_dropped, std::vector<std::string>{"P1"});
  EXPECT_EQ(got->loss_history.size(), options.rounds);
}

TEST_F(FaultToleranceTest, QuorumLossReturnsUnavailable) {
  std::vector<HflPartition> parties = MakeHflPartitions(3, 39);
  HflOptions options;
  options.rounds = 6;
  options.policy.on_silo_loss = SiloLossAction::kDegrade;
  options.policy.min_quorum = 2;

  FaultSchedule schedule(40);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 1;
  schedule.Set("P1", mortal);
  schedule.Set("P2", mortal);
  FaultyMessageBus bus(schedule);
  auto got = TrainHorizontalFlr(parties, options, &bus);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status();
  EXPECT_NE(got.status().message().find("quorum"), std::string::npos)
      << got.status();
}

TEST_F(FaultToleranceTest, HealthyWireIsByteIdenticalToThePlainBus) {
  // An all-zero schedule must be perfectly transparent: the reliability
  // layer adds no traffic, no retries, no waste, and the weights are
  // bitwise those of the plain bus.
  std::vector<HflPartition> parties = MakeHflPartitions(3, 41);
  HflOptions options;
  options.rounds = 10;

  MessageBus plain_bus;
  auto plain = TrainHorizontalFlr(parties, options, &plain_bus);
  ASSERT_TRUE(plain.ok()) << plain.status();

  FaultyMessageBus idle_bus{FaultSchedule(42)};
  auto faultless = TrainHorizontalFlr(parties, options, &idle_bus);
  ASSERT_TRUE(faultless.ok()) << faultless.status();

  EXPECT_TRUE(faultless->weights == plain->weights);
  EXPECT_EQ(faultless->loss_history, plain->loss_history);
  EXPECT_EQ(faultless->bytes_transferred, plain->bytes_transferred);
  EXPECT_EQ(faultless->messages, plain->messages);
  EXPECT_EQ(faultless->retries, 0u);
  EXPECT_EQ(faultless->bytes_wasted, 0u);
}

// ------------------------------------------------------------- determinism

TEST_F(FaultToleranceTest, ChaosMatrixIsDeterministicAcrossThreadCounts) {
  // The full chaos stack — drops, a crash, a rejoin, retransmissions,
  // degradation — must be bitwise-reproducible at any thread count: bus
  // faults are decided on the serial round thread, parallel regions only do
  // silo-local math.
  std::vector<HflPartition> hfl_parties = MakeHflPartitions(4, 43);
  HflOptions hfl_options;
  hfl_options.rounds = 10;
  hfl_options.policy.on_silo_loss = SiloLossAction::kDegrade;
  hfl_options.policy.retry.max_retries = 8;

  la::DenseMatrix labels;
  std::vector<VflParty> vfl_parties = MakeVflParties(3, 40, 2, 44, &labels);
  VflOptions vfl_options;
  vfl_options.iterations = 12;
  vfl_options.learning_rate = 0.05;
  vfl_options.policy.retry.max_retries = 8;

  FaultSchedule schedule(45);
  SiloFaultProfile lossy;
  lossy.drop_rate = 0.1;
  lossy.delay_rate = 0.05;
  schedule.SetDefault(lossy);
  SiloFaultProfile flaky = lossy;
  flaky.crash_at_round = 2;
  flaky.rejoin_at_round = 6;
  schedule.Set("P3", flaky);

  struct Snapshot {
    la::DenseMatrix hfl_weights;
    std::vector<la::DenseMatrix> vfl_thetas;
    size_t hfl_bytes, hfl_wasted, hfl_retries, hfl_dropped, hfl_degraded;
    size_t vfl_bytes, vfl_wasted, vfl_retries;
  };
  auto run = [&]() {
    Snapshot snap;
    FaultyMessageBus hfl_bus(schedule);
    auto hfl = TrainHorizontalFlr(hfl_parties, hfl_options, &hfl_bus);
    EXPECT_TRUE(hfl.ok()) << hfl.status();
    snap.hfl_weights = hfl->weights;
    snap.hfl_bytes = hfl->bytes_transferred;
    snap.hfl_wasted = hfl->bytes_wasted;
    snap.hfl_retries = hfl->retries;
    snap.hfl_dropped = hfl_bus.MessagesDropped();
    snap.hfl_degraded = hfl->rounds_degraded;
    FaultyMessageBus vfl_bus(schedule);
    auto vfl = TrainVerticalFlrNary(vfl_parties, labels, vfl_options, &vfl_bus);
    EXPECT_TRUE(vfl.ok()) << vfl.status();
    snap.vfl_thetas = vfl->thetas;
    snap.vfl_bytes = vfl->bytes_transferred;
    snap.vfl_wasted = vfl->bytes_wasted;
    snap.vfl_retries = vfl->retries;
    return snap;
  };

  common::SetNumThreads(1);
  const Snapshot serial = run();
  EXPECT_GT(serial.hfl_degraded, 0u);  // the chaos actually bit
  EXPECT_GT(serial.hfl_retries + serial.vfl_retries, 0u);
  for (size_t threads : {size_t{2}, size_t{4}}) {
    common::SetNumThreads(threads);
    const Snapshot parallel = run();
    EXPECT_TRUE(parallel.hfl_weights == serial.hfl_weights)
        << "thread count " << threads;
    EXPECT_EQ(parallel.hfl_bytes, serial.hfl_bytes);
    EXPECT_EQ(parallel.hfl_wasted, serial.hfl_wasted);
    EXPECT_EQ(parallel.hfl_retries, serial.hfl_retries);
    EXPECT_EQ(parallel.hfl_dropped, serial.hfl_dropped);
    EXPECT_EQ(parallel.hfl_degraded, serial.hfl_degraded);
    ASSERT_EQ(parallel.vfl_thetas.size(), serial.vfl_thetas.size());
    for (size_t k = 0; k < serial.vfl_thetas.size(); ++k) {
      EXPECT_TRUE(parallel.vfl_thetas[k] == serial.vfl_thetas[k])
          << "party " << k << ", thread count " << threads;
    }
    EXPECT_EQ(parallel.vfl_bytes, serial.vfl_bytes);
    EXPECT_EQ(parallel.vfl_wasted, serial.vfl_wasted);
    EXPECT_EQ(parallel.vfl_retries, serial.vfl_retries);
  }
}

// ------------------------------------------------------------------ facade

TEST_F(FaultToleranceTest, FacadeChaosTrainReportsDegradationInThePlan) {
  // Through Amalur::Train: a privacy-constrained union-of-stars routes to
  // per-shard FedAvg; a chaos schedule crashing one shard's party under a
  // degrade policy must surface in the outcome and the executed plan.
  rel::UnionOfStarsSpec spec;
  spec.shards = 2;
  spec.fact_rows = 80;
  spec.fact_features = 2;
  spec.dim_rows = 10;
  spec.dim_features = 2;
  spec.seed = 46;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(system.catalog()
                    ->RegisterSource({table.name(), table, "silo", true})
                    .ok());
  }
  core::IntegrationSpec integration_spec;
  integration_spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                            {"fact0", "fact1", rel::JoinKind::kUnion},
                            {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(integration_spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  FaultSchedule schedule(47);
  SiloFaultProfile mortal;
  mortal.crash_at_round = 2;
  schedule.Set("P1", mortal);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 6;
  request.gd.learning_rate = 0.05;
  request.federated_policy.on_silo_loss = SiloLossAction::kDegrade;
  request.fault_schedule = &schedule;
  auto model = system.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  EXPECT_EQ(model->outcome().silos_dropped, std::vector<std::string>{"P1"});
  EXPECT_EQ(model->outcome().rounds_degraded, 4u);
  EXPECT_NE(model->plan().explanation.find("degraded: 4 rounds without {P1}"),
            std::string::npos)
      << model->plan().explanation;

  // Same request without the schedule: clean run, no degradation clause.
  request.fault_schedule = nullptr;
  auto clean = system.Train(*integration, request);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_TRUE(clean->outcome().silos_dropped.empty());
  EXPECT_EQ(clean->plan().explanation.find("degraded"), std::string::npos)
      << clean->plan().explanation;

  // The facade's kFail default surfaces the loss as a training error.
  request.fault_schedule = &schedule;
  request.federated_policy.on_silo_loss = SiloLossAction::kFail;
  auto failed = system.Train(*integration, request);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable()) << failed.status();
}

}  // namespace
}  // namespace federated
}  // namespace amalur
