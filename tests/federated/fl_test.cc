#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "factorized/scenario_builder.h"
#include "integration/schema_mapping.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"
#include "relational/join.h"
#include "federated/hfl.h"
#include "federated/vfl.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace federated {
namespace {

/// Centralized reference: GD linear regression on [xa | xb].
la::DenseMatrix CentralizedWeights(const la::DenseMatrix& xa,
                                   const la::DenseMatrix& labels,
                                   const la::DenseMatrix& xb, size_t iterations,
                                   double learning_rate) {
  ml::MaterializedMatrix features(xa.ConcatColumns(xb));
  ml::GradientDescentOptions options;
  options.iterations = iterations;
  options.learning_rate = learning_rate;
  return ml::TrainLinearRegression(features, labels, options).weights;
}

struct VflFixture {
  la::DenseMatrix xa, labels, xb;
};

VflFixture MakeVflFixture(size_t rows, size_t pa, size_t pb, uint64_t seed) {
  Rng rng(seed);
  VflFixture f{la::DenseMatrix::RandomGaussian(rows, pa, &rng),
               la::DenseMatrix(rows, 1),
               la::DenseMatrix::RandomGaussian(rows, pb, &rng)};
  // Planted linear model over the joint feature space + noise.
  la::DenseMatrix wa = la::DenseMatrix::RandomGaussian(pa, 1, &rng);
  la::DenseMatrix wb = la::DenseMatrix::RandomGaussian(pb, 1, &rng);
  f.labels = f.xa.Multiply(wa).Add(f.xb.Multiply(wb));
  for (size_t i = 0; i < rows; ++i) {
    f.labels.At(i, 0) += 0.01 * rng.NextGaussian();
  }
  return f;
}

TEST(VflTest, PlaintextMatchesCentralizedExactly) {
  VflFixture f = MakeVflFixture(80, 3, 2, 1);
  MessageBus bus;
  VflOptions options;
  options.iterations = 60;
  options.learning_rate = 0.1;
  options.privacy = VflPrivacy::kPlaintext;
  auto result = TrainVerticalFlr(f.xa, f.labels, f.xb, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();
  la::DenseMatrix central =
      CentralizedWeights(f.xa, f.labels, f.xb, 60, 0.1);
  // Federated [θA; θB] equals the centralized weight vector: the protocol
  // computes the same gradients, just split by party.
  la::DenseMatrix combined = result->theta_a.ConcatRows(result->theta_b);
  EXPECT_LT(combined.MaxAbsDiff(central), 1e-10);
  EXPECT_GT(result->bytes_transferred, 0u);
}

TEST(VflTest, PaillierMatchesCentralizedWithinFixedPoint) {
  VflFixture f = MakeVflFixture(40, 2, 2, 2);
  MessageBus bus;
  VflOptions options;
  options.iterations = 15;
  options.learning_rate = 0.1;
  options.privacy = VflPrivacy::kPaillier;
  auto result = TrainVerticalFlr(f.xa, f.labels, f.xb, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();
  la::DenseMatrix central = CentralizedWeights(f.xa, f.labels, f.xb, 15, 0.1);
  la::DenseMatrix combined = result->theta_a.ConcatRows(result->theta_b);
  EXPECT_LT(combined.MaxAbsDiff(central), 1e-2);  // fixed-point tolerance
  // Loss decreases under encryption too.
  EXPECT_LT(result->loss_history.back(), result->loss_history.front());
}

TEST(VflTest, EncryptionInflatesTraffic) {
  // §V.B: "encryption often brings tremendous computation overhead" — and
  // ciphertext expansion shows up directly in transfer volume.
  VflFixture f = MakeVflFixture(30, 2, 2, 3);
  VflOptions options;
  options.iterations = 5;
  MessageBus plain_bus;
  options.privacy = VflPrivacy::kPlaintext;
  auto plain = TrainVerticalFlr(f.xa, f.labels, f.xb, options, &plain_bus);
  ASSERT_TRUE(plain.ok());
  MessageBus secure_bus;
  options.privacy = VflPrivacy::kPaillier;
  auto secure = TrainVerticalFlr(f.xa, f.labels, f.xb, options, &secure_bus);
  ASSERT_TRUE(secure.ok());
  EXPECT_GT(secure->bytes_transferred, plain->bytes_transferred);
}

TEST(VflTest, InputValidation) {
  la::DenseMatrix a(4, 2), y(4, 1), b(5, 2);
  MessageBus bus;
  EXPECT_TRUE(TrainVerticalFlr(a, y, b, {}, &bus).status().IsInvalidArgument());
  EXPECT_TRUE(TrainVerticalFlr(a, y, a, {}, nullptr)
                  .status()
                  .IsInvalidArgument());
  la::DenseMatrix bad_y(4, 2);
  EXPECT_TRUE(
      TrainVerticalFlr(a, bad_y, a, {}, &bus).status().IsInvalidArgument());
}

TEST(VflAlignmentTest, InnerJoinScenarioProducesDisjointFeatureBlocks) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 60;
  spec.other_rows = 60;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.shared_features = 1;  // s0 overlaps: provided by the base party
  spec.seed = 4;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  auto alignment = AlignForVfl(*metadata, 0);
  ASSERT_TRUE(alignment.ok()) << alignment.status();
  // A holds s0, x0, x1; B holds z0..z2 (s0 masked away as redundant).
  EXPECT_EQ(alignment->a_columns.size(), 3u);
  EXPECT_EQ(alignment->b_columns.size(), 3u);
  for (size_t c : alignment->a_columns) {
    for (size_t cb : alignment->b_columns) EXPECT_NE(c, cb);
  }
  EXPECT_EQ(alignment->xa.rows(), 60u);
  EXPECT_EQ(alignment->xb.rows(), 60u);

  // Training on the aligned blocks equals centralized training on the
  // materialized feature matrix.
  MessageBus bus;
  VflOptions options;
  options.iterations = 40;
  options.learning_rate = 0.05;
  auto fed = TrainVerticalFlr(alignment->xa, alignment->labels, alignment->xb,
                              options, &bus);
  ASSERT_TRUE(fed.ok());
  la::DenseMatrix central = CentralizedWeights(alignment->xa, alignment->labels,
                                               alignment->xb, 40, 0.05);
  EXPECT_LT(fed->theta_a.ConcatRows(fed->theta_b).MaxAbsDiff(central), 1e-10);
}

TEST(VflAlignmentTest, RejectsPartialSampleSpace) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 40;
  spec.other_rows = 20;
  spec.match_fraction = 0.5;
  spec.seed = 5;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  EXPECT_TRUE(AlignForVfl(*metadata, 0).status().IsFailedPrecondition());
}

std::vector<HflPartition> MakeHflParties(size_t parties, size_t rows_each,
                                         size_t features, uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix w_true = la::DenseMatrix::RandomGaussian(features, 1, &rng);
  std::vector<HflPartition> out;
  for (size_t p = 0; p < parties; ++p) {
    HflPartition partition{
        la::DenseMatrix::RandomGaussian(rows_each, features, &rng),
        la::DenseMatrix(rows_each, 1)};
    partition.labels = partition.features.Multiply(w_true);
    for (size_t i = 0; i < rows_each; ++i) {
      partition.labels.At(i, 0) += 0.05 * rng.NextGaussian();
    }
    out.push_back(std::move(partition));
  }
  return out;
}

TEST(HflTest, FedAvgConverges) {
  auto parties = MakeHflParties(3, 50, 4, 10);
  MessageBus bus;
  HflOptions options;
  options.rounds = 60;
  options.local_epochs = 2;
  options.learning_rate = 0.2;
  auto result = TrainHorizontalFlr(parties, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->loss_history.back(), 0.1 * result->loss_history.front());
  EXPECT_LT(result->loss_history.back(), 0.05);
}

TEST(HflTest, SecureAggregationMatchesPlaintextAggregation) {
  auto parties = MakeHflParties(4, 30, 3, 11);
  HflOptions options;
  options.rounds = 10;
  options.local_epochs = 1;
  options.learning_rate = 0.1;
  MessageBus bus_secure, bus_plain;
  options.secure_aggregation = true;
  auto secure = TrainHorizontalFlr(parties, options, &bus_secure);
  options.secure_aggregation = false;
  auto plain = TrainHorizontalFlr(parties, options, &bus_plain);
  ASSERT_TRUE(secure.ok());
  ASSERT_TRUE(plain.ok());
  // Same model up to fixed-point encoding noise.
  EXPECT_LT(secure->weights.MaxAbsDiff(plain->weights), 1e-5);
  // Secure aggregation costs extra peer-to-peer traffic.
  EXPECT_GT(secure->bytes_transferred, plain->bytes_transferred);
}

TEST(HflTest, WeightedAveragingRespectsPartitionSizes) {
  // One party with many rows should dominate the average.
  Rng rng(12);
  HflPartition big{la::DenseMatrix::RandomGaussian(200, 2, &rng),
                   la::DenseMatrix(200, 1)};
  la::DenseMatrix w_big({{2.0}, {-1.0}});
  big.labels = big.features.Multiply(w_big);
  HflPartition small{la::DenseMatrix::RandomGaussian(10, 2, &rng),
                     la::DenseMatrix(10, 1)};
  la::DenseMatrix w_small({{-5.0}, {5.0}});
  small.labels = small.features.Multiply(w_small);

  MessageBus bus;
  HflOptions options;
  options.rounds = 80;
  options.learning_rate = 0.2;
  auto result = TrainHorizontalFlr({big, small}, options, &bus);
  ASSERT_TRUE(result.ok());
  // The solution sits closer to the big party's weights.
  EXPECT_LT(result->weights.MaxAbsDiff(w_big),
            result->weights.MaxAbsDiff(w_small));
}

TEST(HflTest, EmptyPartitionContributesZeroWeightNotNaN) {
  // A party with zero rows holds no evidence: it must enter the fixed-order
  // merge with weight 0 — never poison the round with a 1/0 local average.
  auto parties = MakeHflParties(2, 25, 3, 17);
  HflPartition empty{la::DenseMatrix(0, 3), la::DenseMatrix(0, 1)};
  std::vector<HflPartition> with_empty{parties[0], empty, parties[1]};

  HflOptions options;
  options.rounds = 20;
  options.learning_rate = 0.1;
  options.secure_aggregation = false;
  MessageBus bus_with, bus_without;
  auto with = TrainHorizontalFlr(with_empty, options, &bus_with);
  auto without = TrainHorizontalFlr(parties, options, &bus_without);
  ASSERT_TRUE(with.ok()) << with.status();
  ASSERT_TRUE(without.ok()) << without.status();
  for (size_t j = 0; j < with->weights.rows(); ++j) {
    ASSERT_TRUE(std::isfinite(with->weights.At(j, 0))) << "weight " << j;
  }
  // Adding a weight-0 participant changes traffic, not the model.
  EXPECT_EQ(with->weights.MaxAbsDiff(without->weights), 0.0);
  EXPECT_EQ(with->loss_history.back(), without->loss_history.back());

  // The secure-aggregation wire stays finite too (shares of a zero model).
  options.secure_aggregation = true;
  MessageBus bus_secure;
  auto secure = TrainHorizontalFlr(with_empty, options, &bus_secure);
  ASSERT_TRUE(secure.ok()) << secure.status();
  for (size_t j = 0; j < secure->weights.rows(); ++j) {
    ASSERT_TRUE(std::isfinite(secure->weights.At(j, 0))) << "weight " << j;
  }
}

TEST(HflAlignmentTest, EmptyFactShardIsSkippedNotFederated) {
  // A union-of-stars with one zero-row fact shard: the empty shard must not
  // become a FedAvg participant (its local average is 0/0). AlignForHfl
  // skips it and the remaining shards train to the exact model the same
  // scenario without the empty silo produces.
  rel::UnionOfStarsSpec spec;
  spec.shards = 3;
  spec.fact_rows = 40;
  spec.fact_features = 2;
  spec.dim_rows = 8;
  spec.dim_features = 2;
  spec.seed = 19;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(spec);
  // Empty the middle shard's fact silo (schema intact, zero rows).
  scenario.tables[2] = scenario.tables[2].GatherRows({});
  ASSERT_EQ(scenario.tables[2].NumRows(), 0u);

  auto metadata = factorized::DeriveUnionOfStarsMetadata(scenario);
  ASSERT_TRUE(metadata.ok()) << metadata.status();
  EXPECT_EQ(metadata->num_shards(), 3u);
  EXPECT_EQ(metadata->ShardRowBegin(1), metadata->ShardRowEnd(1));
  EXPECT_EQ(metadata->target_rows(), 2 * spec.fact_rows);

  auto partitions = AlignForHfl(*metadata, 0);
  ASSERT_TRUE(partitions.ok()) << partitions.status();
  ASSERT_EQ(partitions->size(), 2u);  // the empty shard is not a participant
  for (const HflPartition& partition : *partitions) {
    EXPECT_EQ(partition.features.rows(), spec.fact_rows);
  }

  MessageBus bus;
  HflOptions options;
  options.rounds = 30;
  options.learning_rate = 0.1;
  auto result = TrainHorizontalFlr(*partitions, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t j = 0; j < result->weights.rows(); ++j) {
    ASSERT_TRUE(std::isfinite(result->weights.At(j, 0))) << "weight " << j;
  }
  EXPECT_LT(result->loss_history.back(), result->loss_history.front());
}

TEST(HflAlignmentTest, SharedDimensionServesEveryReferencingShardBlock) {
  // Two union shards referencing ONE dimension silo: the conformed
  // dimension's reach-set spans both shards, so AlignForHfl must assemble
  // its contribution into BOTH partitions — each equal to the materialized
  // target's block — from the single silo.
  Rng rng(51);
  const size_t shard_rows = 20, dim_rows = 5;
  rel::Table dim("dim");
  {
    std::vector<int64_t> keys(dim_rows);
    for (size_t i = 0; i < dim_rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(dim.AddColumn(rel::Column::FromInt64s("dim_id", keys)));
    std::vector<double> u(dim_rows);
    for (double& v : u) v = rng.NextGaussian();
    AMALUR_CHECK_OK(dim.AddColumn(rel::Column::FromDoubles("u0", u)));
  }
  auto make_fact = [&](const std::string& name, size_t offset) {
    rel::Table fact(name);
    std::vector<int64_t> keys(shard_rows);
    std::vector<double> y(shard_rows), x(shard_rows);
    for (size_t i = 0; i < shard_rows; ++i) {
      keys[i] = static_cast<int64_t>((i + offset) % dim_rows);
      y[i] = rng.NextGaussian();
      x[i] = rng.NextGaussian();
    }
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromInt64s("dim_id", keys)));
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromDoubles("y", y)));
    AMALUR_CHECK_OK(fact.AddColumn(rel::Column::FromDoubles("x0", x)));
    return fact;
  };
  rel::Table fact0 = make_fact("fact0", 0);
  rel::Table fact1 = make_fact("fact1", 2);

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kUnion,
      {integration::SchemaMapping::SourceSpec{
           "fact0", fact0.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "fact1", fact1.schema(), {{"y", "y"}, {"x0", "x0"}}},
       integration::SchemaMapping::SourceSpec{
           "dim", dim.schema(), {{"u0", "u0"}}}},
      rel::Schema::AllDouble({"y", "x0", "u0"}),
      {{0, "dim_id", 2, "dim_id"}, {1, "dim_id", 2, "dim_id"}});
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto m0 = rel::MatchRowsOnKeys(fact0, dim, {"dim_id"}, {"dim_id"});
  auto m1 = rel::MatchRowsOnKeys(fact1, dim, {"dim_id"}, {"dim_id"});
  ASSERT_TRUE(m0.ok() && m1.ok());
  auto metadata = metadata::DiMetadata::DeriveGraph(
      *mapping, {&fact0, &fact1, &dim},
      {{0, 1, rel::JoinKind::kUnion},
       {0, 2, rel::JoinKind::kLeftJoin},
       {1, 2, rel::JoinKind::kLeftJoin}},
      {{}, *m0, *m1});
  ASSERT_TRUE(metadata.ok()) << metadata.status();
  ASSERT_EQ(metadata->num_shared_dimensions(), 1u);
  ASSERT_EQ(metadata->shards_reaching(2).size(), 2u);

  auto partitions = AlignForHfl(*metadata, 0);
  ASSERT_TRUE(partitions.ok()) << partitions.status();
  ASSERT_EQ(partitions->size(), 2u);
  // Each partition is exactly its block of the materialized target — the
  // shared dimension's u0 column filled in BOTH.
  const la::DenseMatrix target = metadata->MaterializeTargetMatrix();
  const size_t u0_col = 2;  // target schema: y, x0, u0
  for (size_t s = 0; s < 2; ++s) {
    const HflPartition& partition = (*partitions)[s];
    ASSERT_EQ(partition.features.rows(), shard_rows);
    ASSERT_EQ(partition.features.cols(), 2u);  // x0, u0
    bool any_dim_value = false;
    for (size_t i = 0; i < shard_rows; ++i) {
      EXPECT_EQ(partition.labels.At(i, 0), target.At(s * shard_rows + i, 0));
      EXPECT_EQ(partition.features.At(i, 0),
                target.At(s * shard_rows + i, 1));
      EXPECT_EQ(partition.features.At(i, 1),
                target.At(s * shard_rows + i, u0_col));
      any_dim_value |= partition.features.At(i, 1) != 0.0;
    }
    EXPECT_TRUE(any_dim_value) << "shard " << s
                               << " never received the shared dimension";
  }

  // And the partitions train like any horizontal federation.
  MessageBus bus;
  HflOptions options;
  options.rounds = 20;
  options.learning_rate = 0.1;
  auto result = TrainHorizontalFlr(*partitions, options, &bus);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->loss_history.back(), result->loss_history.front());
}

TEST(HflTest, InputValidation) {
  MessageBus bus;
  EXPECT_TRUE(TrainHorizontalFlr({}, {}, &bus).status().IsInvalidArgument());
  auto parties = MakeHflParties(2, 10, 3, 13);
  EXPECT_TRUE(
      TrainHorizontalFlr(parties, {}, nullptr).status().IsInvalidArgument());
  parties[1].features = la::DenseMatrix(10, 99);
  EXPECT_TRUE(
      TrainHorizontalFlr(parties, {}, &bus).status().IsInvalidArgument());
}

}  // namespace
}  // namespace federated
}  // namespace amalur
