// The n-ary vertical protocol: N feature-holding silos must reproduce
// centralized gradient descent on the materialized join (plaintext exactly,
// Paillier within fixed-point error), the N = 2 instance must be
// bitwise-identical to the historical pairwise protocol, and the
// metadata-driven alignment must hand every silo exactly its composed
// indicator block.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/scenario_builder.h"
#include "federated/vfl.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/training_matrix.h"
#include "relational/generator.h"

namespace amalur {
namespace federated {
namespace {

/// N random row-aligned feature blocks with a planted joint linear model.
struct NaryFixture {
  std::vector<VflParty> parties;
  la::DenseMatrix labels;
};

NaryFixture MakeNaryFixture(const std::vector<size_t>& features_per_party,
                            size_t rows, uint64_t seed) {
  Rng rng(seed);
  NaryFixture f;
  f.labels = la::DenseMatrix(rows, 1);
  size_t column = 0;
  for (size_t k = 0; k < features_per_party.size(); ++k) {
    VflParty party;
    party.x = la::DenseMatrix::RandomGaussian(rows, features_per_party[k], &rng);
    for (size_t j = 0; j < features_per_party[k]; ++j) {
      party.columns.push_back(column++);
    }
    la::DenseMatrix w_k =
        la::DenseMatrix::RandomGaussian(features_per_party[k], 1, &rng);
    f.labels.AddInPlace(party.x.Multiply(w_k));
    f.parties.push_back(std::move(party));
  }
  for (size_t i = 0; i < rows; ++i) f.labels.At(i, 0) += 0.01 * rng.NextGaussian();
  return f;
}

/// Centralized reference: GD linear regression on the concatenated blocks.
la::DenseMatrix CentralizedWeights(const NaryFixture& f, size_t iterations,
                                   double learning_rate) {
  la::DenseMatrix joined = f.parties[0].x;
  for (size_t k = 1; k < f.parties.size(); ++k) {
    joined = joined.ConcatColumns(f.parties[k].x);
  }
  ml::MaterializedMatrix features(std::move(joined));
  ml::GradientDescentOptions options;
  options.iterations = iterations;
  options.learning_rate = learning_rate;
  return ml::TrainLinearRegression(features, f.labels, options).weights;
}

la::DenseMatrix ConcatThetas(const NaryVflResult& result) {
  la::DenseMatrix combined = result.thetas[0];
  for (size_t k = 1; k < result.thetas.size(); ++k) {
    combined = combined.ConcatRows(result.thetas[k]);
  }
  return combined;
}

TEST(NaryVflTest, PlaintextMatchesCentralizedForTwoThreeAndFiveSilos) {
  const std::vector<std::vector<size_t>> layouts = {
      {3, 2}, {2, 2, 3}, {1, 2, 1, 3, 2}};
  for (const std::vector<size_t>& layout : layouts) {
    NaryFixture f = MakeNaryFixture(layout, 90, 21 + layout.size());
    MessageBus bus;
    VflOptions options;
    options.iterations = 60;
    options.learning_rate = 0.1;
    auto result = TrainVerticalFlrNary(f.parties, f.labels, options, &bus);
    ASSERT_TRUE(result.ok()) << layout.size() << " silos: " << result.status();
    EXPECT_EQ(result->thetas.size(), layout.size());
    EXPECT_EQ(result->rounds, 60u);
    // The protocol computes the same gradients as centralized GD on the
    // materialized join, just split by silo.
    la::DenseMatrix central = CentralizedWeights(f, 60, 0.1);
    EXPECT_LT(ConcatThetas(*result).MaxAbsDiff(central), 1e-10)
        << layout.size() << " silos";
    EXPECT_GT(result->bytes_transferred, 0u);
    // Per round: N-1 partial predictions in, N-1 residual broadcasts out.
    EXPECT_EQ(result->messages, 2 * (layout.size() - 1) * 60);
  }
}

TEST(NaryVflTest, TwoSilosBitwiseIdenticalToLegacyPairwiseProtocol) {
  // Reference: the historical hard-coded two-party plaintext loop (B sends
  // u_B to A, A forms the residual and sends it back), replicated verbatim.
  // The n-ary protocol at N = 2 must reproduce it bit for bit — same
  // arithmetic, same operation order.
  NaryFixture f = MakeNaryFixture({3, 4}, 70, 5);
  const size_t iterations = 40;
  const double lr = 0.1, l2 = 0.01;
  const double inv_n = 1.0 / 70.0;
  la::DenseMatrix theta_a(3, 1), theta_b(4, 1);
  for (size_t it = 0; it < iterations; ++it) {
    la::DenseMatrix ua = f.parties[0].x.Multiply(theta_a);
    la::DenseMatrix ub = f.parties[1].x.Multiply(theta_b);
    la::DenseMatrix predictions = ua.Add(ub);
    la::DenseMatrix d = predictions.Subtract(f.labels);
    la::DenseMatrix grad_a = f.parties[0].x.TransposeMultiply(d).Scale(inv_n);
    la::DenseMatrix grad_b = f.parties[1].x.TransposeMultiply(d).Scale(inv_n);
    grad_a.AddScaled(theta_a, l2);
    grad_b.AddScaled(theta_b, l2);
    theta_a.AddScaled(grad_a, -lr);
    theta_b.AddScaled(grad_b, -lr);
  }

  VflOptions options;
  options.iterations = iterations;
  options.learning_rate = lr;
  options.l2 = l2;
  MessageBus nary_bus;
  auto nary = TrainVerticalFlrNary(f.parties, f.labels, options, &nary_bus);
  ASSERT_TRUE(nary.ok()) << nary.status();
  EXPECT_TRUE(nary->thetas[0] == theta_a);
  EXPECT_TRUE(nary->thetas[1] == theta_b);

  // The two-party wrapper (the legacy entry point) is the same run.
  MessageBus legacy_bus;
  auto legacy = TrainVerticalFlr(f.parties[0].x, f.labels, f.parties[1].x,
                                 options, &legacy_bus);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_TRUE(legacy->theta_a == nary->thetas[0]);
  EXPECT_TRUE(legacy->theta_b == nary->thetas[1]);
  EXPECT_EQ(legacy->bytes_transferred, nary->bytes_transferred);
  EXPECT_EQ(legacy->messages, nary->messages);
  EXPECT_EQ(legacy->loss_history, nary->loss_history);
}

TEST(NaryVflTest, PaillierThreeSilosTracksCentralizedWithinFixedPoint) {
  NaryFixture f = MakeNaryFixture({2, 2, 2}, 40, 9);
  VflOptions options;
  options.iterations = 12;
  options.learning_rate = 0.1;

  MessageBus plain_bus;
  options.privacy = VflPrivacy::kPlaintext;
  auto plain = TrainVerticalFlrNary(f.parties, f.labels, options, &plain_bus);
  ASSERT_TRUE(plain.ok()) << plain.status();

  MessageBus secure_bus;
  options.privacy = VflPrivacy::kPaillier;
  auto secure = TrainVerticalFlrNary(f.parties, f.labels, options, &secure_bus);
  ASSERT_TRUE(secure.ok()) << secure.status();

  la::DenseMatrix central = CentralizedWeights(f, 12, 0.1);
  EXPECT_LT(ConcatThetas(*secure).MaxAbsDiff(central), 1e-2);
  EXPECT_LT(secure->loss_history.back(), secure->loss_history.front());
  // §V.B: the encrypted ring + masked-gradient exchange inflates traffic —
  // each ciphertext travels at its 16-byte serialized size, 2x the
  // plaintext-double rate, and every silo's gradient round-trips through
  // the coordinator on top.
  EXPECT_GT(secure->bytes_transferred, 2 * plain->bytes_transferred);
}

TEST(NaryVflTest, AlignmentAssignsEachSnowflakeSiloItsComposedBlock) {
  // A 3-level snowflake: the leaf dimension reaches the fact only through
  // the chain, so its party block must be built from the *composed*
  // indicator DeriveGraph assigned — training over the aligned blocks then
  // equals centralized GD on the materialized join.
  rel::SnowflakeSpec spec;
  spec.fact_rows = 120;
  spec.fact_features = 2;
  spec.level_rows = {30, 6};
  spec.level_features = {2, 2};
  spec.seed = 33;
  rel::Snowflake snowflake = rel::GenerateSnowflake(spec);
  auto metadata = factorized::DeriveSnowflakeMetadata(snowflake);
  ASSERT_TRUE(metadata.ok()) << metadata.status();

  auto alignment = AlignForVflNary(*metadata, 0);
  ASSERT_TRUE(alignment.ok()) << alignment.status();
  ASSERT_EQ(alignment->parties.size(), 3u);
  // Every silo covers the full sample space and owns disjoint columns.
  std::vector<bool> owned(metadata->target_cols(), false);
  owned[0] = true;  // the label
  for (const VflParty& party : alignment->parties) {
    EXPECT_EQ(party.x.rows(), metadata->target_rows());
    for (size_t c : party.columns) {
      EXPECT_FALSE(owned[c]) << "column " << c << " claimed twice";
      owned[c] = true;
    }
  }
  for (size_t c = 0; c < owned.size(); ++c) {
    EXPECT_TRUE(owned[c]) << "column " << c << " unclaimed";
  }
  // The blocks reassemble the materialized target exactly.
  const la::DenseMatrix target = metadata->MaterializeTargetMatrix();
  for (const VflParty& party : alignment->parties) {
    for (size_t j = 0; j < party.columns.size(); ++j) {
      for (size_t i = 0; i < party.x.rows(); ++i) {
        ASSERT_EQ(party.x.At(i, j), target.At(i, party.columns[j]));
      }
    }
  }

  MessageBus bus;
  VflOptions options;
  options.iterations = 40;
  options.learning_rate = 0.05;
  auto fed =
      TrainVerticalFlrNary(alignment->parties, alignment->labels, options, &bus);
  ASSERT_TRUE(fed.ok()) << fed.status();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
  ml::GradientDescentOptions gd;
  gd.iterations = 40;
  gd.learning_rate = 0.05;
  la::DenseMatrix central =
      ml::TrainLinearRegression(features, alignment->labels, gd).weights;
  // Scatter the per-silo thetas into target-feature order for comparison.
  la::DenseMatrix scattered(central.rows(), 1);
  for (size_t k = 0; k < alignment->parties.size(); ++k) {
    const VflParty& party = alignment->parties[k];
    for (size_t j = 0; j < party.columns.size(); ++j) {
      scattered.At(party.columns[j] - 1, 0) = fed->thetas[k].At(j, 0);
    }
  }
  EXPECT_LT(scattered.MaxAbsDiff(central), 1e-10);
}

TEST(NaryVflTest, ConformedDimensionSiloOwnsItsColumnsOnce) {
  // A conformed dimension enters the vertical protocol as ONE party: its
  // masked block is reached through several parents' composed indicator
  // chains, yet it still owns its feature columns exclusively — and the
  // federated model equals centralized GD on the materialized DAG.
  rel::ConformedSnowflakeSpec spec;
  spec.fact_rows = 120;
  spec.fact_features = 2;
  spec.branches = 2;
  spec.branch_rows = 24;
  spec.branch_features = 2;
  spec.shared_rows = 6;
  spec.shared_features = 2;
  spec.seed = 61;
  rel::ConformedSnowflake scenario = rel::GenerateConformedSnowflake(spec);
  auto metadata = factorized::DeriveConformedSnowflakeMetadata(scenario);
  ASSERT_TRUE(metadata.ok()) << metadata.status();
  ASSERT_EQ(metadata->num_shared_dimensions(), 1u);

  auto alignment = AlignForVflNary(*metadata, 0);
  ASSERT_TRUE(alignment.ok()) << alignment.status();
  ASSERT_EQ(alignment->parties.size(), 4u);  // the shared silo joins ONCE
  std::vector<bool> owned(metadata->target_cols(), false);
  owned[0] = true;  // the label
  for (const VflParty& party : alignment->parties) {
    EXPECT_EQ(party.x.rows(), metadata->target_rows());
    for (size_t c : party.columns) {
      EXPECT_FALSE(owned[c]) << "column " << c << " claimed twice";
      owned[c] = true;
    }
  }
  for (size_t c = 0; c < owned.size(); ++c) {
    EXPECT_TRUE(owned[c]) << "column " << c << " unclaimed";
  }
  // The conformed silo's block is its merged-indicator contribution: it
  // reassembles the materialized target's shared columns exactly.
  const la::DenseMatrix target = metadata->MaterializeTargetMatrix();
  const VflParty& shared_party = alignment->parties[3];
  ASSERT_EQ(shared_party.columns.size(), spec.shared_features);
  for (size_t j = 0; j < shared_party.columns.size(); ++j) {
    for (size_t i = 0; i < shared_party.x.rows(); ++i) {
      ASSERT_EQ(shared_party.x.At(i, j),
                target.At(i, shared_party.columns[j]));
    }
  }

  MessageBus bus;
  VflOptions options;
  options.iterations = 40;
  options.learning_rate = 0.05;
  auto fed =
      TrainVerticalFlrNary(alignment->parties, alignment->labels, options, &bus);
  ASSERT_TRUE(fed.ok()) << fed.status();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  ml::MaterializedMatrix features(target.SelectColumns(feature_cols));
  ml::GradientDescentOptions gd;
  gd.iterations = 40;
  gd.learning_rate = 0.05;
  la::DenseMatrix central =
      ml::TrainLinearRegression(features, alignment->labels, gd).weights;
  la::DenseMatrix scattered(central.rows(), 1);
  for (size_t k = 0; k < alignment->parties.size(); ++k) {
    const VflParty& party = alignment->parties[k];
    for (size_t j = 0; j < party.columns.size(); ++j) {
      scattered.At(party.columns[j] - 1, 0) = fed->thetas[k].At(j, 0);
    }
  }
  EXPECT_LT(scattered.MaxAbsDiff(central), 1e-10);
}

TEST(NaryVflTest, AlignmentRejectsPartialCoverage) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 40;
  spec.other_rows = 20;
  spec.match_fraction = 0.5;
  spec.seed = 5;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());
  EXPECT_TRUE(AlignForVflNary(*metadata, 0).status().IsFailedPrecondition());
}

TEST(NaryVflTest, InputValidation) {
  MessageBus bus;
  la::DenseMatrix y(4, 1);
  // Fewer than two parties.
  EXPECT_TRUE(TrainVerticalFlrNary({VflParty{"", la::DenseMatrix(4, 2), {}}},
                                   y, {}, &bus)
                  .status()
                  .IsInvalidArgument());
  // Misaligned rows on a non-root party.
  std::vector<VflParty> parties(3);
  parties[0].x = la::DenseMatrix(4, 2);
  parties[1].x = la::DenseMatrix(4, 1);
  parties[2].x = la::DenseMatrix(5, 1);
  EXPECT_TRUE(
      TrainVerticalFlrNary(parties, y, {}, &bus).status().IsInvalidArgument());
  // Null bus.
  parties[2].x = la::DenseMatrix(4, 1);
  EXPECT_TRUE(TrainVerticalFlrNary(parties, y, {}, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace federated
}  // namespace amalur
