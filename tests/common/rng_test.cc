#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace amalur {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(13), 13u);
}

TEST(RngTest, NextInt64Inclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(21);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace amalur
