#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace amalur {
namespace {

TEST(LoggingTest, ThresholdGatesOutput) {
  internal::SetLogThreshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  AMALUR_LOG(Warning) << "hidden";
  AMALUR_LOG(Error) << "visible";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("visible"), std::string::npos);
  EXPECT_NE(captured.find("[ERROR"), std::string::npos);
  internal::SetLogThreshold(LogLevel::kWarning);  // restore default
}

TEST(LoggingTest, MessagesCarryFileAndLine) {
  internal::SetLogThreshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  AMALUR_LOG(Info) << "locate me";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  internal::SetLogThreshold(LogLevel::kWarning);
}

TEST(LoggingTest, CheckMacrosPassOnTrueConditions) {
  AMALUR_CHECK(true) << "never printed";
  AMALUR_CHECK_EQ(1, 1);
  AMALUR_CHECK_LT(1, 2);
  AMALUR_CHECK_LE(2, 2);
  AMALUR_CHECK_GT(3, 2);
  AMALUR_CHECK_GE(3, 3);
  AMALUR_CHECK_NE(1, 2);
  AMALUR_CHECK_OK(Status::OK());
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(AMALUR_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(AMALUR_CHECK_OK(Status::Internal("bad state")), "bad state");
}

}  // namespace
}  // namespace amalur
