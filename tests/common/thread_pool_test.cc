#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace amalur {
namespace common {
namespace {

/// Every test forces a known thread count and restores the default after,
/// so suites stay order-independent.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(0); }
};

TEST_F(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(DefaultNumThreads(), 1u);
  EXPECT_GE(NumThreads(), 1u);
}

TEST_F(ThreadPoolTest, SetNumThreadsOverridesAndZeroRestores) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3u);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), DefaultNumThreads());
}

TEST_F(ThreadPoolTest, ScopedOverrideRestoresPrevious) {
  SetNumThreads(2);
  {
    ScopedNumThreads scope(5);
    EXPECT_EQ(NumThreads(), 5u);
  }
  EXPECT_EQ(NumThreads(), 2u);
  {
    ScopedNumThreads no_op(0);  // 0 leaves the current setting untouched
    EXPECT_EQ(NumThreads(), 2u);
  }
  EXPECT_EQ(NumThreads(), 2u);
}

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });  // end < begin
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, ZeroLengthRangeYieldsZeroChunksAndSafeReductions) {
  // Boundary contract: `ParallelChunkCount(0, g)` is 0, NOT 1 — a caller
  // that pre-sizes per-chunk accumulators and then indexes `partials[0]`
  // unconditionally would read a phantom chunk. The house reduction pattern
  // (pre-size by the count, fill inside ParallelForChunks, merge in chunk
  // order) must degrade to "no buffers, no calls, identity result" on the
  // zero-length ranges real pipelines produce: 0-row silo blocks, empty
  // residual vectors, fully-restricted inner-join targets.
  for (size_t threads : {1, 4}) {
    SetNumThreads(threads);
    for (size_t grain : {1, 8, 1000}) {
      EXPECT_EQ(ParallelChunkCount(0, grain), 0u) << "grain " << grain;
    }

    // The reduction pattern over an empty value set: zero accumulators are
    // allocated, the loop body never runs, the merged total is the
    // identity.
    const std::vector<double> values;  // a 0-row block's flattened cells
    const size_t chunks = ParallelChunkCount(values.size(), 64);
    std::vector<double> partials(chunks, 0.0);
    EXPECT_TRUE(partials.empty());
    std::atomic<int> calls{0};
    ParallelForChunks(0, values.size(), 64,
                      [&](size_t chunk, size_t begin, size_t end) {
                        ++calls;
                        ASSERT_LT(chunk, partials.size());
                        for (size_t i = begin; i < end; ++i) {
                          partials[chunk] += values[i];
                        }
                      });
    EXPECT_EQ(calls.load(), 0);
    double total = 0.0;
    for (double partial : partials) total += partial;
    EXPECT_EQ(total, 0.0);
  }
}

TEST_F(ThreadPoolTest, GrainLargerThanRangeRunsOneChunk) {
  SetNumThreads(4);
  EXPECT_EQ(ParallelChunkCount(10, 100), 1u);
  int calls = 0;
  size_t seen_begin = 0, seen_end = 0;
  ParallelFor(2, 12, 100, [&](size_t begin, size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 2u);
  EXPECT_EQ(seen_end, 12u);
}

TEST_F(ThreadPoolTest, SingleThreadRunsWholeRangeSerially) {
  SetNumThreads(1);
  EXPECT_EQ(ParallelChunkCount(1000, 1), 1u);
  int calls = 0;
  ParallelFor(0, 1000, 1, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1000u);
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ThreadPoolTest, ChunksPartitionTheRangeExactly) {
  for (size_t threads : {2u, 3u, 4u, 7u}) {
    SetNumThreads(threads);
    const size_t kBegin = 3, kEnd = 1003;
    std::vector<std::atomic<int>> visits(kEnd);
    for (auto& v : visits) v = 0;
    ParallelFor(kBegin, kEnd, 8, [&](size_t begin, size_t end) {
      ASSERT_LE(begin, end);
      for (size_t i = begin; i < end; ++i) ++visits[i];
    });
    for (size_t i = 0; i < kBegin; ++i) EXPECT_EQ(visits[i].load(), 0);
    for (size_t i = kBegin; i < kEnd; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST_F(ThreadPoolTest, ChunkCountBoundedByThreadsAndSizedByGrain) {
  SetNumThreads(4);
  EXPECT_LE(ParallelChunkCount(1000, 1), 4u);
  // grain dominates: 100 elements at grain 60 -> 2 chunks of >= 60/40.
  EXPECT_EQ(ParallelChunkCount(100, 60), 2u);
  EXPECT_EQ(ParallelChunkCount(0, 8), 0u);
}

TEST_F(ThreadPoolTest, ChunkIndicesAreDenseAndOrderedByBegin) {
  SetNumThreads(4);
  const size_t num_chunks = ParallelChunkCount(1 << 12, 16);
  ASSERT_GT(num_chunks, 1u);
  std::vector<std::pair<size_t, size_t>> spans(num_chunks, {0, 0});
  ParallelForChunks(0, 1 << 12, 16,
                    [&](size_t chunk, size_t begin, size_t end) {
                      ASSERT_LT(chunk, num_chunks);
                      spans[chunk] = {begin, end};
                    });
  size_t expected_begin = 0;
  for (const auto& [begin, end] : spans) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, size_t{1} << 12);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1 << 12, 1,
                  [&](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("chunk failure");
                  }),
      std::runtime_error);
  // The pool survives a failed batch and keeps scheduling new ones.
  std::atomic<size_t> total{0};
  ParallelFor(0, 100, 1, [&](size_t begin, size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  SetNumThreads(4);
  std::atomic<size_t> inner_total{0};
  ParallelFor(0, 256, 1, [&](size_t begin, size_t end) {
    // A nested region must not deadlock on the shared pool; it degrades to
    // one serial chunk on the calling worker.
    ParallelFor(begin, end, 1, [&](size_t inner_begin, size_t inner_end) {
      EXPECT_EQ(inner_begin, begin);
      EXPECT_EQ(inner_end, end);
      inner_total += inner_end - inner_begin;
    });
  });
  EXPECT_EQ(inner_total.load(), 256u);
}

TEST_F(ThreadPoolTest, DedicatedPoolRunsAllChunks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2u);
  std::vector<std::atomic<int>> ran(64);
  for (auto& r : ran) r = 0;
  pool.RunChunks(64, [&](size_t chunk) { ++ran[chunk]; });
  for (size_t c = 0; c < 64; ++c) EXPECT_EQ(ran[c].load(), 1);
}

TEST_F(ThreadPoolTest, DedicatedPoolPropagatesFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.RunChunks(32,
                              [&](size_t chunk) {
                                if (chunk % 2 == 0) {
                                  throw std::runtime_error("boom");
                                }
                              }),
               std::runtime_error);
  // Reusable afterwards.
  std::atomic<int> ok{0};
  pool.RunChunks(8, [&](size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST_F(ThreadPoolTest, DeterministicReductionAtFixedThreadCount) {
  // The chunk-partial + fixed-merge-order pattern used by the kernels:
  // identical results across repeated runs at the same thread count.
  SetNumThreads(4);
  std::vector<double> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto reduce = [&] {
    const size_t chunks = ParallelChunkCount(values.size(), 64);
    std::vector<double> partials(chunks, 0.0);
    ParallelForChunks(0, values.size(), 64,
                      [&](size_t chunk, size_t begin, size_t end) {
                        double acc = 0.0;
                        for (size_t i = begin; i < end; ++i) acc += values[i];
                        partials[chunk] = acc;
                      });
    double total = 0.0;
    for (double p : partials) total += p;
    return total;
  };
  const double first = reduce();
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(reduce(), first);  // bitwise: merge order is fixed
  }
}

}  // namespace
}  // namespace common
}  // namespace amalur
