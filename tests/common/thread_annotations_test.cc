// Behavioral tests for the capability-annotated lock wrappers in
// common/thread_annotations.h. The *compile-time* side of the contract is
// covered by the negative canaries (tools/*_canary.cc, registered as
// WILL_FAIL ctest entries); these tests pin down the runtime semantics the
// wrappers delegate to: mutual exclusion, shared/exclusive modes, TryLock,
// and CondVar wakeups. This file itself compiles under -Werror=thread-safety
// in the clang CI job, so it doubles as a usage example the analysis accepts.

#include "common/thread_annotations.h"

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace amalur {
namespace common {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  struct Shared {
    Mutex mu;
    // Deliberately non-atomic: only the lock makes the increments exact.
    size_t counter GUARDED_BY(mu) = 0;
  } shared;

  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (size_t i = 0; i < kIncrements; ++i) {
        MutexLock lock(shared.mu);
        ++shared.counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(shared.mu);
  EXPECT_EQ(shared.counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsHeldState) {
  Mutex mu;
  mu.Lock();

  // While held here, another thread must not be able to acquire it.
  bool acquired_while_held = true;
  std::thread prober([&] {
    acquired_while_held = mu.TryLock();
    if (acquired_while_held) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired_while_held);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutexTest, AllowsConcurrentReaders) {
  struct Shared {
    SharedMutex mu;
    int value GUARDED_BY(mu) = 7;
  } shared;

  // Every reader enters the shared section and spins until all of them are
  // inside at once. If SharedLock were exclusive this would deadlock (and
  // the test would hit the ctest timeout), so passing proves concurrency.
  constexpr size_t kReaders = 4;
  std::atomic<size_t> inside{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      SharedLock lock(shared.mu);
      inside.fetch_add(1, std::memory_order_acq_rel);
      while (inside.load(std::memory_order_acquire) < kReaders) {
      }
      EXPECT_EQ(shared.value, 7);
    });
  }
  for (std::thread& reader : readers) reader.join();
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  struct Shared {
    SharedMutex mu;
    // Invariant: a == b. Only holding the exclusive lock across both stores
    // keeps a shared-mode reader from observing the intermediate state.
    int a GUARDED_BY(mu) = 0;
    int b GUARDED_BY(mu) = 0;
  } shared;

  constexpr int kRounds = 5000;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i <= kRounds; ++i) {
      MutexLock lock(shared.mu);  // exclusive mode on the SharedMutex
      shared.a = i;
      shared.b = i;
    }
    stop.store(true, std::memory_order_release);
  });

  size_t reads = 0;
  while (!stop.load(std::memory_order_acquire)) {
    SharedLock lock(shared.mu);
    EXPECT_EQ(shared.a, shared.b);
    ++reads;
  }
  writer.join();
  EXPECT_GT(reads, 0u);

  MutexLock lock(shared.mu);
  EXPECT_EQ(shared.a, kRounds);
  EXPECT_EQ(shared.b, kRounds);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
    bool consumed GUARDED_BY(mu) = false;
  } shared;

  std::thread consumer([&] {
    MutexLock lock(shared.mu);
    // House idiom: explicit wait loop, no predicate lambda — the analysis
    // sees the guarded read of `ready` under `mu`.
    while (!shared.ready) shared.cv.Wait(shared.mu);
    shared.consumed = true;
    shared.cv.NotifyAll();
  });

  {
    MutexLock lock(shared.mu);
    shared.ready = true;
  }
  shared.cv.NotifyAll();

  {
    MutexLock lock(shared.mu);
    while (!shared.consumed) shared.cv.Wait(shared.mu);
    EXPECT_TRUE(shared.consumed);
  }
  consumer.join();
}

}  // namespace
}  // namespace common
}  // namespace amalur
