#include "common/string_util.h"

#include <gtest/gtest.h>

namespace amalur {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"m", "a", "hr", "o"};
  EXPECT_EQ(Join(parts, ","), "m,a,hr,o");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, RemovesAsciiWhitespace) {
  EXPECT_EQ(Trim("  resting HR \t\n"), "resting HR");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("RestingHR"), "restinghr");
  EXPECT_EQ(ToLower("már"), "már");  // non-ASCII bytes pass through
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("mortality", "mort"));
  EXPECT_FALSE(StartsWith("mort", "mortality"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("oxygen", "oxygen"), 0u);
  EXPECT_EQ(EditDistance("age", "page"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("restingHR", "heart_rate"),
            EditDistance("heart_rate", "restingHR"));
}

TEST(EditSimilarityTest, Bounds) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  double s = EditSimilarity("mortality", "mortal");
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 1.0);
}

TEST(TrigramJaccardTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("oxygen", "oxygen"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("abcdef", "uvwxyz"), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", ""), 1.0);
  double s = TrigramJaccard("resting heart rate", "rate of resting heart");
  EXPECT_GT(s, 0.3);
}

TEST(CanonicalizeIdentifierTest, StripsSeparatorsAndCase) {
  EXPECT_EQ(CanonicalizeIdentifier("resting HR"), "restinghr");
  EXPECT_EQ(CanonicalizeIdentifier("restingHR"), "restinghr");
  EXPECT_EQ(CanonicalizeIdentifier("date_diagnosed"), "datediagnosed");
  EXPECT_EQ(CanonicalizeIdentifier("__a-b c1__"), "abc1");
}

TEST(FormatDoubleTest, SignificantDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.14");
  EXPECT_EQ(FormatDouble(1000000.0, 4), "1e+06");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.5");
}

}  // namespace
}  // namespace amalur
