#include "common/span.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace amalur {
namespace common {
namespace {

TEST(SpanTest, DefaultIsEmpty) {
  Span<int> span;
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.size(), 0u);
  EXPECT_EQ(span.data(), nullptr);
  EXPECT_EQ(span.begin(), span.end());
}

TEST(SpanTest, ViewsVectorWithoutCopying) {
  std::vector<int> values = {3, 1, 4, 1, 5};
  Span<int> span = values;  // implicit — the common call shape
  ASSERT_EQ(span.size(), values.size());
  EXPECT_EQ(span.data(), values.data());
  for (size_t i = 0; i < span.size(); ++i) EXPECT_EQ(span[i], values[i]);
  EXPECT_EQ(std::accumulate(span.begin(), span.end(), 0), 14);
}

TEST(SpanTest, ViewsRawPointerRange) {
  const double raw[] = {1.5, 2.5, 3.5};
  Span<double> span(raw, 3);
  EXPECT_EQ(span.size(), 3u);
  EXPECT_DOUBLE_EQ(span[2], 3.5);
}

TEST(SpanTest, SubspanSelectsAndClampsToTheEnd) {
  std::vector<int> values = {0, 1, 2, 3, 4};
  Span<int> span = values;

  Span<int> middle = span.subspan(1, 3);
  ASSERT_EQ(middle.size(), 3u);
  EXPECT_EQ(middle[0], 1);
  EXPECT_EQ(middle[2], 3);

  // A count past the end is clamped, never an error.
  Span<int> tail = span.subspan(3, 100);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], 3);

  // offset == size is the legal empty tail.
  EXPECT_TRUE(span.subspan(5, 1).empty());
}

TEST(SpanDeathTest, OutOfRangeAccessesAreChecked) {
  std::vector<int> values = {1, 2};
  Span<int> span = values;
  EXPECT_DEATH(span[2], "span index");
  EXPECT_DEATH(span.subspan(3, 0), "span offset");
}

}  // namespace
}  // namespace common
}  // namespace amalur
