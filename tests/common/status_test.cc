#include "common/status.h"

#include <gtest/gtest.h>

namespace amalur {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryBuildersCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("row ", 7, " out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "row 7 out of range");
  EXPECT_EQ(s.ToString(), "Invalid argument: row 7 out of range");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, WithContextPrependsAndPreservesCode) {
  Status s = Status::NotFound("table S2").WithContext("loading silo");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "loading silo: table S2");
  EXPECT_TRUE(Status::OK().WithContext("noop").ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive: ", v);
  return v;
}

Status UseValue(int v, int* out) {
  AMALUR_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseValue(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status s = UseValue(-1, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status FailThenSucceed(bool fail) {
  AMALUR_RETURN_NOT_OK(fail ? Status::IOError("disk") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(FailThenSucceed(false).ok());
  EXPECT_TRUE(FailThenSucceed(true).IsIOError());
}

}  // namespace
}  // namespace amalur
