// Cross-module integration tests: the full journey a downstream user takes —
// silo data on disk as CSV, loaded, integrated automatically, trained under
// every execution strategy — verifying that all paths through the system
// agree with each other and with first-principles references.

#include <gtest/gtest.h>

#include <fstream>

#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"
#include "relational/csv.h"
#include "relational/generator.h"

namespace amalur {
namespace {

TEST(SystemTest, CsvRoundTripThroughFullPipeline) {
  // Write the running example to disk, read it back, integrate, train.
  integration::RunningExample ex = integration::MakeRunningExample();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(rel::WriteCsvFile(ex.s1, dir + "/er_department.csv").ok());
  ASSERT_TRUE(rel::WriteCsvFile(ex.s2, dir + "/pulmonary.csv").ok());

  auto s1 = rel::ReadCsvFile(dir + "/er_department.csv");
  auto s2 = rel::ReadCsvFile(dir + "/pulmonary.csv");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->NumRows(), 4u);
  EXPECT_EQ(s2->NumRows(), 3u);

  core::Amalur system;
  ASSERT_TRUE(system.catalog()
                  ->RegisterSource({"er", *s1, "disk", false})
                  .ok());
  ASSERT_TRUE(system.catalog()
                  ->RegisterSource({"pulmonary", *s2, "disk", false})
                  .ok());
  auto integration =
      system.Integrate("er", "pulmonary", rel::JoinKind::kFullOuterJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  // The CSV round trip preserves everything the pipeline needs: the derived
  // matrices match the in-memory fixture's golden values.
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      integration::RunningExampleTargetMatrix()));
}

TEST(SystemTest, AllThreeStrategiesAgreeOnOneScenario) {
  // An inner-join scenario is VFL-compatible, so all three strategies can
  // run — and must produce the same linear model.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 90;
  spec.other_rows = 90;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 31;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());

  core::Executor executor;
  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;

  std::vector<la::DenseMatrix> weights;
  for (core::ExecutionStrategy strategy :
       {core::ExecutionStrategy::kFactorize,
        core::ExecutionStrategy::kMaterialize,
        core::ExecutionStrategy::kFederate}) {
    core::Plan plan{strategy, {}, "forced"};
    auto outcome = executor.Run(*metadata, plan, request);
    ASSERT_TRUE(outcome.ok())
        << core::ExecutionStrategyToString(strategy) << ": "
        << outcome.status();
    weights.push_back(outcome->weights);
  }
  EXPECT_LT(weights[0].MaxAbsDiff(weights[1]), 1e-8);  // fact == mat
  EXPECT_LT(weights[0].MaxAbsDiff(weights[2]), 1e-8);  // fact == federated
}

TEST(SystemTest, CatalogAccumulatesModelsAcrossIntegrations) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 60;
  spec.other_rows = 20;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.seed = 32;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::Amalur system;
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = system.Integrate("a", "b", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 10;
  request.gd.learning_rate = 0.05;
  ASSERT_TRUE(system.Train(*integration, request, "model-v1").ok());
  request.gd.iterations = 20;
  ASSERT_TRUE(system.Train(*integration, request, "model-v2").ok());
  // Same name twice is rejected.
  EXPECT_TRUE(
      system.Train(*integration, request, "model-v1").status()
          .IsAlreadyExists());
  EXPECT_EQ(system.catalog()->ModelNames(),
            (std::vector<std::string>{"model-v1", "model-v2"}));
  // The catalog also kept the DI metadata of the integration run.
  EXPECT_TRUE(system.catalog()->GetColumnMatches("a", "b").ok());
  EXPECT_TRUE(system.catalog()->GetRowMatching("a", "b").ok());
}

TEST(SystemTest, MalformedCsvSurfacesCleanErrors) {
  const std::string path = ::testing::TempDir() + "/broken.csv";
  std::ofstream out(path);
  out << "a,b\n1,2\n3\n";  // ragged row
  out.close();
  auto table = rel::ReadCsvFile(path);
  EXPECT_TRUE(table.status().IsInvalidArgument());
  EXPECT_NE(table.status().message().find("fields"), std::string::npos);
}

TEST(SystemTest, UnionIntegrationEndToEnd) {
  // Horizontal case through the facade: two branches with identical
  // schemas, union integration, then training over the stacked rows.
  rel::Table branch_a = rel::GenerateTable("branch_a", 60, 3, 41);
  rel::Table branch_b = rel::GenerateTable("branch_b", 40, 3, 42);
  core::Amalur system;
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"a", branch_a, "", false}).ok());
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"b", branch_b, "", false}).ok());
  auto integration = system.Integrate("a", "b", rel::JoinKind::kUnion);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->metadata.target_rows(), 100u);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 60;
  request.gd.learning_rate = 0.1;
  auto outcome = system.Train(*integration, request);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_LT(outcome->loss_history.back(), outcome->loss_history.front());
}

}  // namespace
}  // namespace amalur
