// Cross-module integration tests: the full journey a downstream user takes —
// silo data on disk as CSV, loaded, integrated automatically, trained under
// every execution strategy — verifying that all paths through the system
// agree with each other and with first-principles references.

#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "integration/running_example.h"
#include "relational/csv.h"
#include "relational/generator.h"

namespace amalur {
namespace {

TEST(SystemTest, CsvRoundTripThroughFullPipeline) {
  // Write the running example to disk, read it back, integrate, train.
  integration::RunningExample ex = integration::MakeRunningExample();
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(rel::WriteCsvFile(ex.s1, dir + "/er_department.csv").ok());
  ASSERT_TRUE(rel::WriteCsvFile(ex.s2, dir + "/pulmonary.csv").ok());

  auto s1 = rel::ReadCsvFile(dir + "/er_department.csv");
  auto s2 = rel::ReadCsvFile(dir + "/pulmonary.csv");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->NumRows(), 4u);
  EXPECT_EQ(s2->NumRows(), 3u);

  core::Amalur system;
  ASSERT_TRUE(system.catalog()
                  ->RegisterSource({"er", *s1, "disk", false})
                  .ok());
  ASSERT_TRUE(system.catalog()
                  ->RegisterSource({"pulmonary", *s2, "disk", false})
                  .ok());
  auto integration =
      system.Integrate("er", "pulmonary", rel::JoinKind::kFullOuterJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();
  // The CSV round trip preserves everything the pipeline needs: the derived
  // matrices match the in-memory fixture's golden values.
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      integration::RunningExampleTargetMatrix()));
}

TEST(SystemTest, AllThreeStrategiesAgreeOnOneScenario) {
  // An inner-join scenario is VFL-compatible, so all three strategies can
  // run — and must produce the same linear model. All three are forced
  // through the facade's TrainRequest::force_strategy override.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kInnerJoin;
  spec.base_rows = 90;
  spec.other_rows = 90;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.seed = 31;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  core::IntegrationSpec integration_spec;
  integration_spec.sources = {"a", "b"};
  integration_spec.relationships = {rel::JoinKind::kInnerJoin};
  auto integration = system.Integrate(integration_spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;

  std::vector<la::DenseMatrix> weights;
  for (core::ExecutionStrategy strategy :
       {core::ExecutionStrategy::kFactorize,
        core::ExecutionStrategy::kMaterialize,
        core::ExecutionStrategy::kFederate}) {
    request.force_strategy = strategy;
    auto model = system.Train(*integration, request);
    ASSERT_TRUE(model.ok())
        << core::ExecutionStrategyToString(strategy) << ": " << model.status();
    EXPECT_EQ(model->outcome().strategy_used, strategy);
    weights.push_back(model->weights());
  }
  EXPECT_LT(weights[0].MaxAbsDiff(weights[1]), 1e-8);  // fact == mat
  EXPECT_LT(weights[0].MaxAbsDiff(weights[2]), 1e-8);  // fact == federated
}

TEST(SystemTest, CatalogAccumulatesModelsAcrossIntegrations) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 60;
  spec.other_rows = 20;
  spec.base_features = 2;
  spec.other_features = 2;
  spec.seed = 32;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::Amalur system;
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"a", pair.base, "", false}).ok());
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"b", pair.other, "", false}).ok());
  auto integration = system.Integrate("a", "b", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 10;
  request.gd.learning_rate = 0.05;
  ASSERT_TRUE(system.Train(*integration, request, "model-v1").status().ok());
  request.gd.iterations = 20;
  ASSERT_TRUE(system.Train(*integration, request, "model-v2").status().ok());
  // Same name twice is rejected.
  EXPECT_TRUE(
      system.Train(*integration, request, "model-v1").status()
          .IsAlreadyExists());
  EXPECT_EQ(system.catalog()->ModelNames(),
            (std::vector<std::string>{"model-v1", "model-v2"}));
  // The catalog also kept the DI metadata of the integration run.
  EXPECT_TRUE(system.catalog()->GetColumnMatches("a", "b").ok());
  EXPECT_TRUE(system.catalog()->GetRowMatching("a", "b").ok());
}

TEST(SystemTest, MalformedCsvSurfacesCleanErrors) {
  const std::string path = ::testing::TempDir() + "/broken.csv";
  std::ofstream out(path);
  out << "a,b\n1,2\n3\n";  // ragged row
  out.close();
  auto table = rel::ReadCsvFile(path);
  EXPECT_TRUE(table.status().IsInvalidArgument());
  EXPECT_NE(table.status().message().find("fields"), std::string::npos);
}

TEST(SystemTest, UnionIntegrationEndToEnd) {
  // Horizontal case through the facade: two branches with identical
  // schemas, union integration, then training over the stacked rows.
  rel::Table branch_a = rel::GenerateTable("branch_a", 60, 3, 41);
  rel::Table branch_b = rel::GenerateTable("branch_b", 40, 3, 42);
  core::Amalur system;
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"a", branch_a, "", false}).ok());
  ASSERT_TRUE(
      system.catalog()->RegisterSource({"b", branch_b, "", false}).ok());
  auto integration = system.Integrate("a", "b", rel::JoinKind::kUnion);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->metadata.target_rows(), 100u);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 60;
  request.gd.learning_rate = 0.1;
  auto model = system.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_LT(model->outcome().loss_history.back(),
            model->outcome().loss_history.front());
}

namespace star {

/// A small three-source star: a fact table referencing two keyed dimensions.
struct StarFixture {
  rel::Table fact{"visits"};
  rel::Table patients;
  rel::Table clinics;
};

rel::Table MakeDimension(const std::string& name, const std::string& key,
                         size_t rows, size_t features, Rng* rng) {
  rel::Table table(name);
  std::vector<int64_t> keys(rows);
  for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
  AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromInt64s(key, keys)));
  for (size_t f = 0; f < features; ++f) {
    std::vector<double> values(rows);
    for (double& v : values) v = rng->NextGaussian();
    AMALUR_CHECK_OK(table.AddColumn(rel::Column::FromDoubles(
        name.substr(0, 3) + "_" + std::to_string(f), values)));
  }
  return table;
}

StarFixture MakeStar(size_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  StarFixture fixture;
  fixture.patients = MakeDimension("patients", "patient_id", 40, 3, &rng);
  fixture.clinics = MakeDimension("clinics", "clinic_id", 10, 2, &rng);
  std::vector<int64_t> pid(fact_rows), cid(fact_rows);
  std::vector<double> charge(fact_rows), visits(fact_rows);
  for (size_t i = 0; i < fact_rows; ++i) {
    pid[i] = static_cast<int64_t>(rng.NextUint64(40));
    cid[i] = static_cast<int64_t>(rng.NextUint64(10));
    visits[i] = rng.NextGaussian();
    charge[i] = 1.3 * visits[i] + 0.2 * rng.NextGaussian();
  }
  AMALUR_CHECK_OK(
      fixture.fact.AddColumn(rel::Column::FromInt64s("patient_id", pid)));
  AMALUR_CHECK_OK(
      fixture.fact.AddColumn(rel::Column::FromInt64s("clinic_id", cid)));
  AMALUR_CHECK_OK(
      fixture.fact.AddColumn(rel::Column::FromDoubles("charge", charge)));
  AMALUR_CHECK_OK(
      fixture.fact.AddColumn(rel::Column::FromDoubles("visits", visits)));
  return fixture;
}

/// The hand-built derivation the facade must reproduce: explicit schema
/// mapping, key-equality row matchings, DeriveStar — exactly what
/// examples/star_schema.cpp did before the facade grew the n-ary path.
metadata::DiMetadata HandBuiltMetadata(const StarFixture& fixture) {
  std::vector<std::string> target_names{"charge", "visits"};
  std::vector<integration::ColumnCorrespondence> fact_corr{
      {"charge", "charge"}, {"visits", "visits"}};
  auto dimension_corr = [&target_names](const rel::Table& dim) {
    std::vector<integration::ColumnCorrespondence> corr;
    for (size_t j = 1; j < dim.NumColumns(); ++j) {  // skip the key
      corr.push_back({dim.column(j).name(), dim.column(j).name()});
      target_names.push_back(dim.column(j).name());
    }
    return corr;
  };
  auto patients_corr = dimension_corr(fixture.patients);
  auto clinics_corr = dimension_corr(fixture.clinics);

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{"visits", fixture.fact.schema(),
                                              fact_corr},
       integration::SchemaMapping::SourceSpec{
           "patients", fixture.patients.schema(), patients_corr},
       integration::SchemaMapping::SourceSpec{
           "clinics", fixture.clinics.schema(), clinics_corr}},
      rel::Schema::AllDouble(target_names),
      {{0, "patient_id", 1, "patient_id"}, {0, "clinic_id", 2, "clinic_id"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();

  std::vector<rel::RowMatching> matchings;
  for (const auto& [dim, key] :
       std::vector<std::pair<const rel::Table*, std::string>>{
           {&fixture.patients, "patient_id"}, {&fixture.clinics, "clinic_id"}}) {
    auto matching = rel::MatchRowsOnKeys(fixture.fact, *dim, {key}, {key});
    AMALUR_CHECK(matching.ok()) << matching.status();
    matchings.push_back(std::move(matching).ValueOrDie());
  }
  auto metadata = metadata::DiMetadata::DeriveStar(
      *mapping, {&fixture.fact, &fixture.patients, &fixture.clinics},
      matchings);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return std::move(metadata).ValueOrDie();
}

// Registers the star's sources into a caller-owned system (Amalur is
// non-copyable: its catalog holds a reader/writer lock).
void RegisterStarSources(core::Amalur* system, const StarFixture& fixture) {
  AMALUR_CHECK_OK(system->catalog()->RegisterSource(
      {"visits", fixture.fact, "clinic-dept", false}));
  AMALUR_CHECK_OK(system->catalog()->RegisterSource(
      {"patients", fixture.patients, "registry", false}));
  AMALUR_CHECK_OK(system->catalog()->RegisterSource(
      {"clinics", fixture.clinics, "geo", false}));
}

}  // namespace star

TEST(SystemTest, StarFacadeMatchesHandBuiltDerivation) {
  // The automatic n-ary pipeline must reproduce the hand-built star
  // derivation: same target schema, same per-silo shapes, same materialized
  // target matrix.
  star::StarFixture fixture = star::MakeStar(300, 606);
  const metadata::DiMetadata reference = star::HandBuiltMetadata(fixture);

  core::Amalur system;
  star::RegisterStarSources(&system, fixture);
  core::IntegrationSpec spec;
  spec.name = "visits-star";
  spec.sources = {"visits", "patients", "clinics"};
  spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  const metadata::DiMetadata& derived = integration->metadata;
  ASSERT_EQ(derived.num_sources(), reference.num_sources());
  EXPECT_EQ(derived.target_schema().Names(), reference.target_schema().Names());
  EXPECT_EQ(derived.target_rows(), reference.target_rows());
  for (size_t k = 0; k < derived.num_sources(); ++k) {
    EXPECT_EQ(derived.source(k).data.rows(), reference.source(k).data.rows());
    EXPECT_EQ(derived.source(k).data.cols(), reference.source(k).data.cols());
  }
  EXPECT_TRUE(derived.MaterializeTargetMatrix().ApproxEquals(
      reference.MaterializeTargetMatrix()));
  // The named handle is reusable from the catalog, and the per-edge DI
  // metadata was cached under the source pairs.
  EXPECT_TRUE(system.catalog()->GetIntegration("visits-star").ok());
  EXPECT_TRUE(system.catalog()->GetColumnMatches("visits", "patients").ok());
  EXPECT_TRUE(system.catalog()->GetRowMatching("visits", "clinics").ok());
}

TEST(SystemTest, StarFacadeMergesOverlappingDimensionFeature) {
  // A dimension column sharing a base feature's name schema-matches it and
  // merges into ONE target column (the base value wins under a left join)
  // instead of appearing twice — and both strategies still agree.
  star::StarFixture fixture = star::MakeStar(200, 808);
  {
    Rng rng(909);
    std::vector<double> values(fixture.patients.NumRows());
    for (double& v : values) v = rng.NextGaussian();
    AMALUR_CHECK_OK(fixture.patients.AddColumn(
        rel::Column::FromDoubles("visits", values)));  // overlaps the fact's
  }
  core::Amalur system;
  star::RegisterStarSources(&system, fixture);
  core::IntegrationSpec spec;
  spec.sources = {"visits", "patients", "clinics"};
  spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  size_t visits_columns = 0;
  for (const std::string& name : integration->metadata.target_schema().Names()) {
    if (name.rfind("visits", 0) == 0) ++visits_columns;
  }
  EXPECT_EQ(visits_columns, 1u);  // merged, not duplicated or suffixed

  core::TrainRequest request;
  request.label_column = "charge";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request);
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-7);
}

TEST(SystemTest, StarFacadeTrainsPredictsEvaluatesUnderBothStrategies) {
  // Acceptance scenario: a 3-source star through the facade, trained under
  // both the factorized and the materialized strategy — same weights, and
  // matching evaluation metrics on the materialized target table.
  star::StarFixture fixture = star::MakeStar(400, 707);
  core::Amalur system;
  star::RegisterStarSources(&system, fixture);

  core::IntegrationSpec spec;
  spec.sources = {"visits", "patients", "clinics"};
  spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "charge";
  request.gd.iterations = 60;
  request.gd.learning_rate = 0.05;

  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto factorized = system.Train(*integration, request, "star-fact");
  ASSERT_TRUE(factorized.ok()) << factorized.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto materialized = system.Train(*integration, request, "star-mat");
  ASSERT_TRUE(materialized.ok()) << materialized.status();

  EXPECT_EQ(factorized->outcome().strategy_used,
            core::ExecutionStrategy::kFactorize);
  EXPECT_EQ(materialized->outcome().strategy_used,
            core::ExecutionStrategy::kMaterialize);
  EXPECT_LT(factorized->weights().MaxAbsDiff(materialized->weights()), 1e-8);

  // Serve both models over the same relational table; metrics must match.
  const metadata::DiMetadata& md = integration->metadata;
  rel::Table target = rel::Table::FromMatrix(
      "target", md.MaterializeTargetMatrix(), md.target_schema().Names());
  auto predictions = factorized->Predict(target);
  ASSERT_TRUE(predictions.ok()) << predictions.status();
  EXPECT_EQ(predictions->rows(), md.target_rows());

  auto fact_report = factorized->Evaluate(target);
  auto mat_report = materialized->Evaluate(target);
  ASSERT_TRUE(fact_report.ok()) << fact_report.status();
  ASSERT_TRUE(mat_report.ok()) << mat_report.status();
  EXPECT_EQ(fact_report->rows, md.target_rows());
  EXPECT_NEAR(fact_report->mse, mat_report->mse, 1e-10);
  // The model learned the planted relationship charge ~ 1.3 * visits.
  EXPECT_LT(fact_report->mse, 0.1);

  // Explain exposes both the forced strategy and the optimizer's estimate.
  const core::Plan& plan = system.Explain(*factorized);
  EXPECT_EQ(plan.strategy, core::ExecutionStrategy::kFactorize);
  EXPECT_NE(plan.explanation.find("forced"), std::string::npos);
  // Both trained models are in the catalog model zoo.
  EXPECT_EQ(system.catalog()->ModelNames(),
            (std::vector<std::string>{"star-fact", "star-mat"}));
}

TEST(SystemTest, StarEdgeListSpecMatchesLegacyForm) {
  // The same star, described once with the flat sources list and once with
  // an explicit edge list, derives identical metadata and reports the star
  // shape either way.
  star::StarFixture fixture = star::MakeStar(250, 505);
  core::Amalur legacy_system;
  star::RegisterStarSources(&legacy_system, fixture);
  core::Amalur edge_system;
  star::RegisterStarSources(&edge_system, fixture);

  core::IntegrationSpec legacy;
  legacy.sources = {"visits", "patients", "clinics"};
  legacy.relationships = {rel::JoinKind::kLeftJoin};
  auto from_legacy = legacy_system.Integrate(legacy);
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status();

  core::IntegrationSpec edge_form;
  edge_form.edges = {{"visits", "patients", rel::JoinKind::kLeftJoin},
                     {"visits", "clinics", rel::JoinKind::kLeftJoin}};
  auto from_edges = edge_system.Integrate(edge_form);
  ASSERT_TRUE(from_edges.ok()) << from_edges.status();

  EXPECT_EQ(from_edges->shape, metadata::IntegrationShape::kStar);
  EXPECT_EQ(from_edges->source_names, from_legacy->source_names);
  EXPECT_EQ(from_edges->metadata.target_schema().Names(),
            from_legacy->metadata.target_schema().Names());
  EXPECT_EQ(from_edges->metadata.MaterializeTargetMatrix().MaxAbsDiff(
                from_legacy->metadata.MaterializeTargetMatrix()),
            0.0);
  EXPECT_NE(
      edge_system.Explain(*from_edges).explanation.find("graph shape: star"),
      std::string::npos);
}

TEST(SystemTest, SnowflakeEdgeListEndToEnd) {
  // Acceptance scenario: a 3-level snowflake (fact -> dim -> sub-dim)
  // integrated through an edge-list spec — automatic key discovery down the
  // chain, composed fan-out metadata, matching weights under both forced
  // strategies, and a shape-aware Explain.
  rel::SnowflakeSpec snow_spec;
  snow_spec.fact_rows = 400;
  snow_spec.fact_features = 2;
  snow_spec.level_rows = {40, 8};
  snow_spec.level_features = {3, 2};
  snow_spec.seed = 17;
  rel::Snowflake snowflake = rel::GenerateSnowflake(snow_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;  // generic short names need evidence
  core::Amalur system(options);
  for (const rel::Table& table : snowflake.tables) {
    ASSERT_TRUE(
        system.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }

  core::IntegrationSpec spec;
  spec.name = "sales-snowflake";
  spec.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  EXPECT_EQ(integration->shape, metadata::IntegrationShape::kSnowflake);
  EXPECT_EQ(integration->source_names,
            (std::vector<std::string>{"fact", "dim0", "dim1"}));
  // Keys discovered along the chain stay out of the feature space.
  EXPECT_EQ(integration->metadata.target_schema().Names(),
            (std::vector<std::string>{"y", "x0", "x1", "u0", "u1", "u2", "v0",
                                      "v1"}));
  // The automatic pipeline reproduces the hand-built graph derivation.
  auto reference = factorized::DeriveSnowflakeMetadata(snowflake);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      reference->MaterializeTargetMatrix()));

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request, "snow-fact");
  ASSERT_TRUE(fact.ok()) << fact.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request, "snow-mat");
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-8);
  // Training genuinely learned the planted chain signal.
  EXPECT_LT(fact->outcome().loss_history.back(),
            fact->outcome().loss_history.front());

  // Explain reports the graph shape for the integration and both models.
  EXPECT_NE(system.Explain(*integration).explanation.find(
                "graph shape: snowflake"),
            std::string::npos);
  EXPECT_NE(system.Explain(*fact).explanation.find("graph shape: snowflake"),
            std::string::npos);

  // In-sample factorized serving agrees with the dense fallback.
  auto fact_scores = fact->Predict();
  auto mat_scores = mat->Predict();
  ASSERT_TRUE(fact_scores.ok()) << fact_scores.status();
  ASSERT_TRUE(mat_scores.ok()) << mat_scores.status();
  EXPECT_EQ(fact_scores->rows(), integration->metadata.target_rows());
  EXPECT_LT(fact_scores->MaxAbsDiff(*mat_scores), 1e-6);
}

TEST(SystemTest, ConformedDimensionEdgeListEndToEnd) {
  // Acceptance scenario: a DAG — one shared ("conformed") dimension
  // referenced through two intermediate dimensions — integrated through an
  // edge-list spec. Automatic key discovery runs per edge (the shared
  // dimension is matched against BOTH parents), the shared columns appear
  // exactly once in the target schema, and training matches a materialized
  // run at 1e-8 under both forced strategies.
  rel::ConformedSnowflakeSpec conformed_spec;
  conformed_spec.fact_rows = 400;
  conformed_spec.fact_features = 2;
  conformed_spec.branches = 2;
  conformed_spec.branch_rows = 40;
  conformed_spec.branch_features = 2;
  conformed_spec.shared_rows = 8;
  conformed_spec.shared_features = 2;
  conformed_spec.seed = 43;
  rel::ConformedSnowflake scenario =
      rel::GenerateConformedSnowflake(conformed_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(
        system.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }

  core::IntegrationSpec spec;
  spec.name = "sales-conformed";
  spec.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                {"fact", "branch1", rel::JoinKind::kLeftJoin},
                {"branch0", "shared", rel::JoinKind::kLeftJoin},
                {"branch1", "shared", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  EXPECT_EQ(integration->shape,
            metadata::IntegrationShape::kConformedSnowflake);
  EXPECT_EQ(integration->metadata.num_shared_dimensions(), 1u);
  // The shared dimension is visited once, after its last parent.
  EXPECT_EQ(integration->source_names,
            (std::vector<std::string>{"fact", "branch0", "branch1", "shared"}));
  // Keys stay out of the feature space; the shared dimension's features
  // appear exactly once.
  EXPECT_EQ(integration->metadata.target_schema().Names(),
            (std::vector<std::string>{"y", "x0", "x1", "u0", "u1", "v0", "v1",
                                      "w0", "w1"}));
  // The automatic pipeline reproduces the hand-built DAG derivation.
  auto reference = factorized::DeriveConformedSnowflakeMetadata(scenario);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      reference->MaterializeTargetMatrix()));

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request, "conformed-fact");
  ASSERT_TRUE(fact.ok()) << fact.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request, "conformed-mat");
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-8);
  EXPECT_LT(fact->outcome().loss_history.back(),
            fact->outcome().loss_history.front());

  // Explain names the conformed shape and the shared-dimension count.
  EXPECT_NE(system.Explain(*integration)
                .explanation.find(
                    "graph shape: conformed-snowflake (1 shared dimension)"),
            std::string::npos)
      << system.Explain(*integration).explanation;

  // In-sample factorized serving agrees with the dense fallback.
  auto fact_scores = fact->Predict();
  auto mat_scores = mat->Predict();
  ASSERT_TRUE(fact_scores.ok()) << fact_scores.status();
  ASSERT_TRUE(mat_scores.ok()) << mat_scores.status();
  EXPECT_LT(fact_scores->MaxAbsDiff(*mat_scores), 1e-6);

  // Per-edge artifacts cover BOTH parents of the shared dimension.
  EXPECT_TRUE(system.catalog()->GetRowMatching("branch0", "shared").ok());
  EXPECT_TRUE(system.catalog()->GetRowMatching("branch1", "shared").ok());
}

TEST(SystemTest, InnerJoinEdgeEndToEnd) {
  // An inner-join edge inside a graph restricts the target to rows where
  // the dimension matched — the row set the relational inner join
  // materializes — and the restricted scenario still trains identically
  // under both strategies.
  rel::ConformedSnowflakeSpec conformed_spec;
  conformed_spec.fact_rows = 300;
  conformed_spec.fact_features = 2;
  conformed_spec.branches = 2;
  conformed_spec.branch_rows = 30;
  conformed_spec.branch_features = 2;
  conformed_spec.shared_rows = 6;
  conformed_spec.shared_features = 1;
  conformed_spec.match_fraction = 0.8;  // 60 rows carry dangling references
  conformed_spec.seed = 47;
  rel::ConformedSnowflake scenario =
      rel::GenerateConformedSnowflake(conformed_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(
        system.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }

  core::IntegrationSpec spec;
  spec.edges = {{"fact", "branch0", rel::JoinKind::kInnerJoin},
                {"fact", "branch1", rel::JoinKind::kLeftJoin},
                {"branch0", "shared", rel::JoinKind::kLeftJoin},
                {"branch1", "shared", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  // The inner edge drops exactly the relational inner join's complement.
  auto joined = rel::HashJoin(scenario.tables[0], scenario.tables[1],
                              {"branch0_id"}, {"branch0_id"},
                              rel::JoinKind::kInnerJoin);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_EQ(integration->metadata.target_rows(), joined->table.NumRows());
  EXPECT_EQ(integration->metadata.target_rows(), 240u);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request);
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-8);

  // Regression: a DEPTH-1 graph with an inner edge keeps the star shape
  // but must not take the left-join-only star fast path — the inner
  // restriction applies there too.
  core::IntegrationSpec star_spec;
  star_spec.edges = {{"fact", "branch0", rel::JoinKind::kInnerJoin},
                     {"fact", "branch1", rel::JoinKind::kLeftJoin}};
  auto star_integration = system.Integrate(star_spec);
  ASSERT_TRUE(star_integration.ok()) << star_integration.status();
  EXPECT_EQ(star_integration->shape, metadata::IntegrationShape::kStar);
  EXPECT_EQ(star_integration->metadata.target_rows(), 240u);
}

TEST(SystemTest, UnionOfStarsEdgeListEndToEnd) {
  // Acceptance scenario: two horizontally partitioned fact shards, each
  // with a private dimension, stacked through a union edge — Table I's
  // union relationship between silos that are themselves stars.
  rel::UnionOfStarsSpec union_spec;
  union_spec.shards = 2;
  union_spec.fact_rows = 300;
  union_spec.fact_features = 2;
  union_spec.dim_rows = 30;
  union_spec.dim_features = 3;
  union_spec.seed = 19;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(union_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(
        system.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }

  core::IntegrationSpec spec;
  spec.name = "claims-shards";
  spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                {"fact0", "fact1", rel::JoinKind::kUnion},
                {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = system.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();

  EXPECT_EQ(integration->shape, metadata::IntegrationShape::kUnionOfStars);
  // Shard-major topological order: each fact precedes its dimensions.
  EXPECT_EQ(integration->source_names,
            (std::vector<std::string>{"fact0", "dim0", "fact1", "dim1"}));
  EXPECT_EQ(integration->metadata.target_rows(), 2 * union_spec.fact_rows);
  EXPECT_EQ(integration->metadata.num_shards(), 2u);
  // Shared fact columns merged into one target column each; shard keys out.
  EXPECT_EQ(integration->metadata.target_schema().Names(),
            (std::vector<std::string>{"y", "x0", "x1", "u0", "u1", "u2", "v0",
                                      "v1", "v2"}));
  auto reference = factorized::DeriveUnionOfStarsMetadata(scenario);
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_TRUE(integration->metadata.MaterializeTargetMatrix().ApproxEquals(
      reference->MaterializeTargetMatrix()));

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;
  auto fact = system.Train(*integration, request);
  ASSERT_TRUE(fact.ok()) << fact.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto mat = system.Train(*integration, request);
  ASSERT_TRUE(mat.ok()) << mat.status();
  EXPECT_LT(fact->weights().MaxAbsDiff(mat->weights()), 1e-8);
  EXPECT_LT(fact->outcome().loss_history.back(),
            fact->outcome().loss_history.front());

  EXPECT_NE(system.Explain(*integration).explanation.find(
                "graph shape: union-of-stars"),
            std::string::npos);
  EXPECT_NE(
      system.Explain(*fact).explanation.find("graph shape: union-of-stars"),
      std::string::npos);

  // In-sample serving across the stacked blocks, both routes agreeing.
  auto fact_scores = fact->Predict();
  auto mat_scores = mat->Predict();
  ASSERT_TRUE(fact_scores.ok()) << fact_scores.status();
  ASSERT_TRUE(mat_scores.ok()) << mat_scores.status();
  EXPECT_EQ(fact_scores->rows(), 2 * union_spec.fact_rows);
  EXPECT_LT(fact_scores->MaxAbsDiff(*mat_scores), 1e-6);

  // The named handle and its per-edge artifacts landed in the catalog.
  EXPECT_TRUE(system.catalog()->GetIntegration("claims-shards").ok());
  EXPECT_TRUE(system.catalog()->GetColumnMatches("fact0", "fact1").ok());
  EXPECT_TRUE(system.catalog()->GetRowMatching("fact1", "dim1").ok());
}

TEST(SystemTest, PrivacyConstrainedStarTrainsNarySilos) {
  // Acceptance scenario: a 3-silo star whose sources may not move. The
  // optimizer federates, the executor runs the n-ary vertical protocol with
  // one party per silo, and the weights equal centralized training on the
  // materialized join — computed by a second, unconstrained system over the
  // same tables.
  star::StarFixture fixture = star::MakeStar(300, 1001);

  core::Amalur constrained;
  AMALUR_CHECK_OK(constrained.catalog()->RegisterSource(
      {"visits", fixture.fact, "clinic-dept", /*privacy_sensitive=*/true}));
  AMALUR_CHECK_OK(constrained.catalog()->RegisterSource(
      {"patients", fixture.patients, "registry", /*privacy_sensitive=*/true}));
  AMALUR_CHECK_OK(constrained.catalog()->RegisterSource(
      {"clinics", fixture.clinics, "geo", /*privacy_sensitive=*/true}));
  core::IntegrationSpec spec;
  spec.sources = {"visits", "patients", "clinics"};
  spec.relationships = {rel::JoinKind::kLeftJoin};
  auto integration = constrained.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_TRUE(integration->privacy_constrained);

  const core::Plan plan = constrained.Explain(*integration);
  EXPECT_EQ(plan.strategy, core::ExecutionStrategy::kFederate);
  EXPECT_NE(plan.explanation.find("vertical n-ary FLR over 3 silos"),
            std::string::npos)
      << plan.explanation;

  core::TrainRequest request;
  request.label_column = "charge";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  auto model = constrained.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  EXPECT_EQ(model->outcome().federated_silos, 3u);
  EXPECT_EQ(model->outcome().federated_rounds, 40u);
  EXPECT_GT(model->outcome().bytes_transferred, 0u);
  EXPECT_NE(model->plan().explanation.find("federated: 3 silos, 40 rounds"),
            std::string::npos)
      << model->plan().explanation;

  // Forcing a data-moving strategy over the constrained integration is
  // still refused.
  for (core::ExecutionStrategy strategy :
       {core::ExecutionStrategy::kFactorize,
        core::ExecutionStrategy::kMaterialize}) {
    request.force_strategy = strategy;
    EXPECT_TRUE(constrained.Train(*integration, request)
                    .status()
                    .IsFailedPrecondition());
  }
  request.force_strategy.reset();

  // Equivalence: an unconstrained system over the same silos, trained
  // centralized (materialized), produces the same model.
  core::Amalur open;
  star::RegisterStarSources(&open, fixture);
  auto open_integration = open.Integrate(spec);
  ASSERT_TRUE(open_integration.ok()) << open_integration.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto central = open.Train(*open_integration, request);
  ASSERT_TRUE(central.ok()) << central.status();
  EXPECT_LT(model->weights().MaxAbsDiff(central->weights()), 1e-8);

  // The federated model serves in-sample predictions without the caller
  // materializing anything.
  auto scores = model->Predict();
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_EQ(scores->rows(), integration->metadata.target_rows());
}

TEST(SystemTest, PrivacyConstrainedSnowflakeFederatesComposedSilos) {
  // A privacy-constrained snowflake: the leaf dimension only reaches the
  // fact through the chain, so its federated party block is built from the
  // composed indicator the graph derivation assigned — and n-ary VFL still
  // equals centralized training.
  rel::SnowflakeSpec snow_spec;
  snow_spec.fact_rows = 300;
  snow_spec.fact_features = 2;
  snow_spec.level_rows = {30, 6};
  snow_spec.level_features = {3, 2};
  snow_spec.seed = 23;
  rel::Snowflake snowflake = rel::GenerateSnowflake(snow_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur constrained(options);
  core::Amalur open(options);
  for (const rel::Table& table : snowflake.tables) {
    ASSERT_TRUE(constrained.catalog()
                    ->RegisterSource({table.name(), table, "silo", true})
                    .ok());
    ASSERT_TRUE(
        open.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }
  core::IntegrationSpec spec;
  spec.edges = {{"fact", "dim0", rel::JoinKind::kLeftJoin},
                {"dim0", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = constrained.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->shape, metadata::IntegrationShape::kSnowflake);
  EXPECT_TRUE(integration->privacy_constrained);
  EXPECT_NE(constrained.Explain(*integration)
                .explanation.find("vertical n-ary FLR over 3 silos"),
            std::string::npos);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  auto model = constrained.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  EXPECT_EQ(model->outcome().federated_silos, 3u);
  EXPECT_LT(model->outcome().loss_history.back(),
            model->outcome().loss_history.front());

  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  EXPECT_TRUE(
      constrained.Train(*integration, request).status().IsFailedPrecondition());

  auto open_integration = open.Integrate(spec);
  ASSERT_TRUE(open_integration.ok()) << open_integration.status();
  auto central = open.Train(*open_integration, request);
  ASSERT_TRUE(central.ok()) << central.status();
  EXPECT_LT(model->weights().MaxAbsDiff(central->weights()), 1e-8);
}

TEST(SystemTest, PrivacyConstrainedConformedDimensionFederates) {
  // A privacy-constrained conformed snowflake: the shared dimension's silo
  // joins the vertical protocol ONCE — one masked contribution block,
  // reached through several parents' composed indicator chains — and still
  // owns its feature columns exclusively. N-ary VFL equals centralized
  // training on the materialized DAG.
  rel::ConformedSnowflakeSpec conformed_spec;
  conformed_spec.fact_rows = 240;
  conformed_spec.fact_features = 2;
  conformed_spec.branches = 2;
  conformed_spec.branch_rows = 24;
  conformed_spec.branch_features = 2;
  conformed_spec.shared_rows = 6;
  conformed_spec.shared_features = 2;
  conformed_spec.seed = 53;
  rel::ConformedSnowflake scenario =
      rel::GenerateConformedSnowflake(conformed_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur constrained(options);
  core::Amalur open(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(constrained.catalog()
                    ->RegisterSource({table.name(), table, "silo", true})
                    .ok());
    ASSERT_TRUE(
        open.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }
  core::IntegrationSpec spec;
  spec.edges = {{"fact", "branch0", rel::JoinKind::kLeftJoin},
                {"fact", "branch1", rel::JoinKind::kLeftJoin},
                {"branch0", "shared", rel::JoinKind::kLeftJoin},
                {"branch1", "shared", rel::JoinKind::kLeftJoin}};
  auto integration = constrained.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->shape,
            metadata::IntegrationShape::kConformedSnowflake);
  EXPECT_TRUE(integration->privacy_constrained);
  const core::Plan plan = constrained.Explain(*integration);
  EXPECT_NE(plan.explanation.find("conformed-snowflake"), std::string::npos)
      << plan.explanation;
  EXPECT_NE(plan.explanation.find("vertical n-ary FLR over 4 silos"),
            std::string::npos)
      << plan.explanation;

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 40;
  request.gd.learning_rate = 0.05;
  auto model = constrained.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  EXPECT_EQ(model->outcome().federated_silos, 4u);  // shared silo counted once

  auto open_integration = open.Integrate(spec);
  ASSERT_TRUE(open_integration.ok()) << open_integration.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto central = open.Train(*open_integration, request);
  ASSERT_TRUE(central.ok()) << central.status();
  EXPECT_LT(model->weights().MaxAbsDiff(central->weights()), 1e-8);
}

TEST(SystemTest, PrivacyConstrainedUnionOfStarsRunsPerShardFedAvg) {
  // Union-of-stars silos are horizontally partitioned, so the federated
  // strategy routes to FedAvg with one participant per fact shard. With one
  // local epoch per round the weighted average IS the centralized gradient
  // step, so the global model equals centralized training over the stacked
  // target.
  rel::UnionOfStarsSpec union_spec;
  union_spec.shards = 2;
  union_spec.fact_rows = 200;
  union_spec.fact_features = 2;
  union_spec.dim_rows = 20;
  union_spec.dim_features = 3;
  union_spec.seed = 29;
  rel::UnionOfStars scenario = rel::GenerateUnionOfStars(union_spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur constrained(options);
  core::Amalur open(options);
  for (const rel::Table& table : scenario.tables) {
    ASSERT_TRUE(constrained.catalog()
                    ->RegisterSource({table.name(), table, "silo", true})
                    .ok());
    ASSERT_TRUE(
        open.catalog()->RegisterSource({table.name(), table, "", false}).ok());
  }
  core::IntegrationSpec spec;
  spec.edges = {{"fact0", "dim0", rel::JoinKind::kLeftJoin},
                {"fact0", "fact1", rel::JoinKind::kUnion},
                {"fact1", "dim1", rel::JoinKind::kLeftJoin}};
  auto integration = constrained.Integrate(spec);
  ASSERT_TRUE(integration.ok()) << integration.status();
  EXPECT_EQ(integration->shape, metadata::IntegrationShape::kUnionOfStars);
  EXPECT_TRUE(integration->privacy_constrained);
  EXPECT_NE(constrained.Explain(*integration)
                .explanation.find("horizontal FedAvg over 2 fact shards"),
            std::string::npos);

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 50;
  request.gd.learning_rate = 0.05;
  request.gd.l2 = 0.01;  // regularization reaches the shards' local steps
  auto model = constrained.Train(*integration, request);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->outcome().strategy_used, core::ExecutionStrategy::kFederate);
  EXPECT_EQ(model->outcome().federated_silos, 2u);  // one per shard
  EXPECT_EQ(model->outcome().federated_rounds, 50u);
  EXPECT_GT(model->outcome().bytes_transferred, 0u);

  request.force_strategy = core::ExecutionStrategy::kFactorize;
  EXPECT_TRUE(
      constrained.Train(*integration, request).status().IsFailedPrecondition());

  auto open_integration = open.Integrate(spec);
  ASSERT_TRUE(open_integration.ok()) << open_integration.status();
  request.force_strategy = core::ExecutionStrategy::kMaterialize;
  auto central = open.Train(*open_integration, request);
  ASSERT_TRUE(central.ok()) << central.status();
  EXPECT_LT(model->weights().MaxAbsDiff(central->weights()), 1e-8);

  // The federated model serves the stacked target in-sample.
  auto scores = model->Predict();
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_EQ(scores->rows(), 2 * union_spec.fact_rows);
}

}  // namespace
}  // namespace amalur
