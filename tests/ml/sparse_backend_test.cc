#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/scenario_builder.h"
#include "ml/linear_models.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace ml {
namespace {

TEST(SparseBackendTest, OpsMatchDense) {
  Rng rng(1);
  la::DenseMatrix dense = la::DenseMatrix::RandomGaussian(8, 5, &rng);
  // Punch some exact zeros so the CSR structure is non-trivial.
  for (size_t i = 0; i < 8; ++i) dense.At(i, i % 5) = 0.0;
  SparseMaterializedMatrix sparse = SparseMaterializedMatrix::FromDense(dense);
  MaterializedMatrix reference(dense);

  EXPECT_EQ(sparse.rows(), 8u);
  EXPECT_EQ(sparse.cols(), 5u);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(5, 3, &rng);
  EXPECT_LT(sparse.LeftMultiply(x).MaxAbsDiff(reference.LeftMultiply(x)),
            1e-12);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(8, 2, &rng);
  EXPECT_LT(sparse.TransposeLeftMultiply(y).MaxAbsDiff(
                reference.TransposeLeftMultiply(y)),
            1e-12);
  EXPECT_LT(sparse.RowSquaredNorms().MaxAbsDiff(reference.RowSquaredNorms()),
            1e-12);
  EXPECT_LT(sparse.ColSums().MaxAbsDiff(reference.ColSums()), 1e-12);
}

TEST(SparseBackendTest, TrainingMatchesDenseBackendOnNullPaddedTarget) {
  // Outer-join target with heavy NULL padding: all three backends must
  // produce identical models.
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kFullOuterJoin;
  spec.base_rows = 80;
  spec.other_rows = 80;
  spec.base_features = 3;
  spec.other_features = 3;
  spec.match_fraction = 0.2;
  spec.row_overlap = 0.2;
  spec.seed = 4;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  ASSERT_TRUE(metadata.ok());

  la::DenseMatrix target = metadata->MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  la::DenseMatrix features_dense = target.SelectColumns(feature_cols);
  la::DenseMatrix labels = target.SelectColumns({0});

  MaterializedMatrix dense(features_dense);
  SparseMaterializedMatrix sparse =
      SparseMaterializedMatrix::FromDense(features_dense);
  auto table = std::make_shared<factorized::FactorizedTable>(
      std::move(*metadata));
  FactorizedFeatures factorized_features(table, 0);

  GradientDescentOptions gd;
  gd.iterations = 30;
  gd.learning_rate = 0.05;
  LinearModel from_dense = TrainLinearRegression(dense, labels, gd);
  LinearModel from_sparse = TrainLinearRegression(sparse, labels, gd);
  LinearModel from_factorized =
      TrainLinearRegression(factorized_features, labels, gd);
  EXPECT_LT(from_sparse.weights.MaxAbsDiff(from_dense.weights), 1e-9);
  EXPECT_LT(from_factorized.weights.MaxAbsDiff(from_dense.weights), 1e-9);
}

TEST(SparseBackendTest, GraphScenariosAgreeAcrossAllThreeBackends) {
  // Snowflake, union-of-stars and conformed-snowflake metadata trained
  // under all three training backends — factorized pushdown, dense
  // materialized, CSR materialized — must produce the same model as the
  // dense baseline.
  auto snowflake = [] {
    rel::SnowflakeSpec spec;
    spec.fact_rows = 90;
    spec.level_rows = {18, 6};
    spec.level_features = {2, 2};
    spec.seed = 23;
    return factorized::DeriveSnowflakeMetadata(rel::GenerateSnowflake(spec));
  }();
  auto union_of_stars = [] {
    rel::UnionOfStarsSpec spec;
    spec.shards = 2;
    spec.fact_rows = 60;
    spec.dim_rows = 12;
    spec.dim_features = 2;
    spec.seed = 24;
    return factorized::DeriveUnionOfStarsMetadata(
        rel::GenerateUnionOfStars(spec));
  }();
  auto conformed = [] {
    rel::ConformedSnowflakeSpec spec;
    spec.fact_rows = 80;
    spec.branches = 2;
    spec.branch_rows = 16;
    spec.shared_rows = 4;
    spec.seed = 25;
    return factorized::DeriveConformedSnowflakeMetadata(
        rel::GenerateConformedSnowflake(spec));
  }();
  ASSERT_TRUE(snowflake.ok()) << snowflake.status();
  ASSERT_TRUE(union_of_stars.ok()) << union_of_stars.status();
  ASSERT_TRUE(conformed.ok()) << conformed.status();

  for (auto* metadata : {&*snowflake, &*union_of_stars, &*conformed}) {
    // Label is target column 0 ("y") in both scenario builders.
    la::DenseMatrix target = metadata->MaterializeTargetMatrix();
    std::vector<size_t> feature_cols;
    for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
    la::DenseMatrix features_dense = target.SelectColumns(feature_cols);
    la::DenseMatrix labels = target.SelectColumns({0});

    MaterializedMatrix dense(features_dense);
    SparseMaterializedMatrix sparse =
        SparseMaterializedMatrix::FromDense(features_dense);
    auto table = std::make_shared<factorized::FactorizedTable>(*metadata);
    FactorizedFeatures factorized_features(table, 0);

    GradientDescentOptions gd;
    gd.iterations = 30;
    gd.learning_rate = 0.05;
    LinearModel from_dense = TrainLinearRegression(dense, labels, gd);
    LinearModel from_sparse = TrainLinearRegression(sparse, labels, gd);
    LinearModel from_factorized =
        TrainLinearRegression(factorized_features, labels, gd);
    EXPECT_LT(from_sparse.weights.MaxAbsDiff(from_dense.weights), 1e-9);
    EXPECT_LT(from_factorized.weights.MaxAbsDiff(from_dense.weights), 1e-9);
  }
}

TEST(SparseBackendTest, EmptyMatrixSafe) {
  SparseMaterializedMatrix sparse =
      SparseMaterializedMatrix::FromDense(la::DenseMatrix::Zeros(3, 2));
  EXPECT_EQ(sparse.data().nnz(), 0u);
  la::DenseMatrix x(2, 1);
  EXPECT_TRUE(sparse.LeftMultiply(x).ApproxEquals(la::DenseMatrix(3, 1)));
  EXPECT_TRUE(sparse.RowSquaredNorms().ApproxEquals(la::DenseMatrix(3, 1)));
}

}  // namespace
}  // namespace ml
}  // namespace amalur
