// Unsupervised workloads (k-means, GNMF) over an n-source star scenario:
// the factorized backend must reproduce the materialized results bit-for-
// bit-comparable across more than two silos — the full generality of the
// paper's Definition III.1-III.4 notation (k ∈ [1, n]).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/factorized_table.h"
#include "metadata/di_metadata.h"
#include "ml/gnmf.h"
#include "ml/kmeans.h"
#include "ml/training_matrix.h"
#include "relational/join.h"

namespace amalur {
namespace ml {
namespace {

/// Base(k1, k2, a) + dim1(k1, b0, b1) + dim2(k2, c0), fan-outs 3 and 6.
factorized::FactorizedTable MakeStarTable(uint64_t seed) {
  Rng rng(seed);
  const size_t dim1_rows = 20, dim2_rows = 10, base_rows = 60;
  auto make_dim = [&rng](const std::string& name, const std::string& key,
                         size_t rows, const std::vector<std::string>& cols) {
    rel::Table t(name);
    std::vector<int64_t> keys(rows);
    for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(t.AddColumn(rel::Column::FromInt64s(key, keys)));
    for (const std::string& c : cols) {
      std::vector<double> values(rows);
      for (double& v : values) v = rng.NextDouble(0.0, 2.0);  // non-negative
      AMALUR_CHECK_OK(t.AddColumn(rel::Column::FromDoubles(c, values)));
    }
    return t;
  };
  rel::Table dim1 = make_dim("dim1", "k1", dim1_rows, {"b0", "b1"});
  rel::Table dim2 = make_dim("dim2", "k2", dim2_rows, {"c0"});
  rel::Table base("base");
  {
    std::vector<int64_t> k1(base_rows), k2(base_rows);
    std::vector<double> a(base_rows);
    for (size_t i = 0; i < base_rows; ++i) {
      k1[i] = static_cast<int64_t>(i % dim1_rows);
      k2[i] = static_cast<int64_t>(i % dim2_rows);
      a[i] = rng.NextDouble(0.0, 2.0);
    }
    AMALUR_CHECK_OK(base.AddColumn(rel::Column::FromInt64s("k1", k1)));
    AMALUR_CHECK_OK(base.AddColumn(rel::Column::FromInt64s("k2", k2)));
    AMALUR_CHECK_OK(base.AddColumn(rel::Column::FromDoubles("a", a)));
  }

  auto mapping = integration::SchemaMapping::Create(
      rel::JoinKind::kLeftJoin,
      {integration::SchemaMapping::SourceSpec{"base", base.schema(),
                                              {{"a", "a"}}},
       integration::SchemaMapping::SourceSpec{"dim1", dim1.schema(),
                                              {{"b0", "b0"}, {"b1", "b1"}}},
       integration::SchemaMapping::SourceSpec{"dim2", dim2.schema(),
                                              {{"c0", "c0"}}}},
      rel::Schema::AllDouble({"a", "b0", "b1", "c0"}),
      {{0, "k1", 1, "k1"}, {0, "k2", 2, "k2"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();
  auto m1 = rel::MatchRowsOnKeys(base, dim1, {"k1"}, {"k1"});
  auto m2 = rel::MatchRowsOnKeys(base, dim2, {"k2"}, {"k2"});
  AMALUR_CHECK(m1.ok() && m2.ok()) << "matching";
  auto md = metadata::DiMetadata::DeriveStar(*mapping, {&base, &dim1, &dim2},
                                             {*m1, *m2});
  AMALUR_CHECK(md.ok()) << md.status();
  return factorized::FactorizedTable(std::move(*md));
}

TEST(UnsupervisedStarTest, KMeansMatchesMaterializedAcrossThreeSilos) {
  factorized::FactorizedTable table = MakeStarTable(21);
  auto shared =
      std::make_shared<factorized::FactorizedTable>(table);
  FactorizedFeatures fact(shared, FactorizedFeatures::kNoLabel);
  MaterializedMatrix mat(table.Materialize());

  KMeansOptions options;
  options.clusters = 4;
  options.iterations = 12;
  KMeansModel from_fact = TrainKMeans(fact, options);
  KMeansModel from_mat = TrainKMeans(mat, options);
  EXPECT_EQ(from_fact.assignments, from_mat.assignments);
  EXPECT_LT(from_fact.centroids.MaxAbsDiff(from_mat.centroids), 1e-9);
}

TEST(UnsupervisedStarTest, GnmfMatchesMaterializedAcrossThreeSilos) {
  factorized::FactorizedTable table = MakeStarTable(22);
  auto shared =
      std::make_shared<factorized::FactorizedTable>(table);
  FactorizedFeatures fact(shared, FactorizedFeatures::kNoLabel);
  MaterializedMatrix mat(table.Materialize());

  GnmfOptions options;
  options.rank = 2;
  options.iterations = 10;
  GnmfModel from_fact = TrainGnmf(fact, options);
  GnmfModel from_mat = TrainGnmf(mat, options);
  ASSERT_EQ(from_fact.loss_history.size(), from_mat.loss_history.size());
  for (size_t i = 0; i < from_fact.loss_history.size(); ++i) {
    EXPECT_NEAR(from_fact.loss_history[i], from_mat.loss_history[i],
                1e-7 * (1.0 + from_mat.loss_history[i]));
  }
  EXPECT_LT(from_fact.w.MaxAbsDiff(from_mat.w), 1e-7);
}

TEST(UnsupervisedStarTest, GnmfReconstructsLowRankStarTarget) {
  // The star target is genuinely low-rank-ish (dimension features repeat
  // with fan-out); GNMF should fit it far better than a constant baseline.
  factorized::FactorizedTable table = MakeStarTable(23);
  auto shared = std::make_shared<factorized::FactorizedTable>(table);
  FactorizedFeatures fact(shared, FactorizedFeatures::kNoLabel);
  GnmfOptions options;
  options.rank = 4;
  options.iterations = 60;
  GnmfModel model = TrainGnmf(fact, options);
  EXPECT_LT(model.loss_history.back(), 0.2 * model.loss_history.front());
}

}  // namespace
}  // namespace ml
}  // namespace amalur
