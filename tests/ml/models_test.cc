#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/scenario_builder.h"
#include "ml/gnmf.h"
#include "ml/kmeans.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace ml {
namespace {

/// Builds both backends over the same scenario: factorized features+labels
/// and the equivalent materialized slice.
struct BothBackends {
  std::shared_ptr<const factorized::FactorizedTable> table;
  std::unique_ptr<FactorizedFeatures> factorized;
  std::unique_ptr<MaterializedMatrix> materialized;
  la::DenseMatrix labels;
};

BothBackends MakeBackends(rel::JoinKind kind, uint64_t seed) {
  rel::SiloPairSpec spec;
  spec.kind = kind;
  spec.base_rows = 120;
  spec.other_rows = 40;
  spec.base_features = 2;
  spec.other_features = 4;
  spec.shared_features = kind == rel::JoinKind::kUnion ? 3 : 1;
  if (kind == rel::JoinKind::kUnion) {
    spec.base_features = 0;
    spec.other_features = 0;
    spec.match_fraction = 0.0;
    spec.row_overlap = 0.0;
    spec.other_has_label = true;
  }
  spec.seed = seed;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();

  BothBackends both;
  both.table = std::make_shared<factorized::FactorizedTable>(
      std::move(metadata).ValueOrDie());
  both.factorized = std::make_unique<FactorizedFeatures>(both.table, 0);
  la::DenseMatrix t = both.table->Materialize();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < t.cols(); ++j) feature_cols.push_back(j);
  both.materialized =
      std::make_unique<MaterializedMatrix>(t.SelectColumns(feature_cols));
  both.labels = both.factorized->Labels();
  return both;
}

class BackendEquivalenceTest : public ::testing::TestWithParam<rel::JoinKind> {};

TEST_P(BackendEquivalenceTest, LinearRegressionWeightsAgree) {
  BothBackends both = MakeBackends(GetParam(), 100);
  GradientDescentOptions options;
  options.iterations = 40;
  options.learning_rate = 0.05;
  LinearModel fact = TrainLinearRegression(*both.factorized, both.labels, options);
  LinearModel mat =
      TrainLinearRegression(*both.materialized, both.labels, options);
  EXPECT_LT(fact.weights.MaxAbsDiff(mat.weights), 1e-8);
  ASSERT_EQ(fact.loss_history.size(), mat.loss_history.size());
  for (size_t i = 0; i < fact.loss_history.size(); ++i) {
    EXPECT_NEAR(fact.loss_history[i], mat.loss_history[i], 1e-8);
  }
}

TEST_P(BackendEquivalenceTest, LogisticRegressionWeightsAgree) {
  BothBackends both = MakeBackends(GetParam(), 200);
  // Binarize labels for logistic regression.
  la::DenseMatrix binary = both.labels.Map([](double v) { return v > 0 ? 1.0 : 0.0; });
  GradientDescentOptions options;
  options.iterations = 30;
  options.learning_rate = 0.2;
  options.l2 = 0.01;
  LinearModel fact = TrainLogisticRegression(*both.factorized, binary, options);
  LinearModel mat = TrainLogisticRegression(*both.materialized, binary, options);
  EXPECT_LT(fact.weights.MaxAbsDiff(mat.weights), 1e-8);
}

TEST_P(BackendEquivalenceTest, KMeansAssignmentsAgree) {
  BothBackends both = MakeBackends(GetParam(), 300);
  KMeansOptions options;
  options.clusters = 3;
  options.iterations = 10;
  KMeansModel fact = TrainKMeans(*both.factorized, options);
  KMeansModel mat = TrainKMeans(*both.materialized, options);
  EXPECT_EQ(fact.assignments, mat.assignments);
  EXPECT_LT(fact.centroids.MaxAbsDiff(mat.centroids), 1e-8);
}

TEST_P(BackendEquivalenceTest, GnmfLossTrajectoriesAgree) {
  BothBackends both = MakeBackends(GetParam(), 400);
  GnmfOptions options;
  options.rank = 3;
  options.iterations = 8;
  GnmfModel fact = TrainGnmf(*both.factorized, options);
  GnmfModel mat = TrainGnmf(*both.materialized, options);
  ASSERT_EQ(fact.loss_history.size(), mat.loss_history.size());
  for (size_t i = 0; i < fact.loss_history.size(); ++i) {
    EXPECT_NEAR(fact.loss_history[i], mat.loss_history[i],
                1e-6 * (1.0 + std::fabs(mat.loss_history[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, BackendEquivalenceTest,
                         ::testing::Values(rel::JoinKind::kInnerJoin,
                                           rel::JoinKind::kLeftJoin,
                                           rel::JoinKind::kFullOuterJoin,
                                           rel::JoinKind::kUnion));

TEST(LinearRegressionTest, RecoversPlantedWeightsOnDenseData) {
  // y = Xw* exactly; GD must drive MSE to ~0 and recover w*.
  Rng rng(42);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(200, 3, &rng);
  la::DenseMatrix w_true({{1.5}, {-2.0}, {0.5}});
  la::DenseMatrix y = x.Multiply(w_true);
  MaterializedMatrix features(x);
  GradientDescentOptions options;
  options.iterations = 500;
  options.learning_rate = 0.1;
  LinearModel model = TrainLinearRegression(features, y, options);
  EXPECT_LT(model.weights.MaxAbsDiff(w_true), 1e-3);
  EXPECT_LT(model.loss_history.back(), 1e-5);
  // Loss is monotically non-increasing for a well-conditioned problem.
  for (size_t i = 1; i < model.loss_history.size(); ++i) {
    EXPECT_LE(model.loss_history[i], model.loss_history[i - 1] + 1e-12);
  }
}

TEST(LogisticRegressionTest, SeparatesLinearlySeparableData) {
  Rng rng(43);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(300, 2, &rng);
  la::DenseMatrix y(300, 1);
  for (size_t i = 0; i < 300; ++i) {
    y.At(i, 0) = (x.At(i, 0) + 2.0 * x.At(i, 1)) > 0 ? 1.0 : 0.0;
  }
  MaterializedMatrix features(x);
  GradientDescentOptions options;
  options.iterations = 300;
  options.learning_rate = 0.5;
  LinearModel model = TrainLogisticRegression(features, y, options);
  la::DenseMatrix p = PredictLogistic(features, model.weights);
  EXPECT_GT(BinaryAccuracy(p, y), 0.97);
  EXPECT_LT(model.loss_history.back(), model.loss_history.front());
}

TEST(KMeansTest, SeparatesWellSeparatedBlobs) {
  Rng rng(44);
  la::DenseMatrix x(90, 2);
  for (size_t i = 0; i < 90; ++i) {
    const double cx = i < 30 ? 0.0 : (i < 60 ? 20.0 : 40.0);
    x.At(i, 0) = cx + rng.NextGaussian();
    x.At(i, 1) = cx + rng.NextGaussian();
  }
  MaterializedMatrix data(x);
  KMeansOptions options;
  options.clusters = 3;
  options.iterations = 25;
  KMeansModel model = TrainKMeans(data, options);
  // All rows of one blob share one label, and blobs get distinct labels.
  std::set<size_t> blob_labels;
  for (size_t blob = 0; blob < 3; ++blob) {
    const size_t label = model.assignments[blob * 30];
    blob_labels.insert(label);
    for (size_t i = blob * 30; i < (blob + 1) * 30; ++i) {
      EXPECT_EQ(model.assignments[i], label) << "row " << i;
    }
  }
  EXPECT_EQ(blob_labels.size(), 3u);
  // Inertia decreases.
  EXPECT_LE(model.inertia_history.back(), model.inertia_history.front());
}

TEST(GnmfTest, ReconstructionErrorDecreases) {
  Rng rng(45);
  // Non-negative low-rank data.
  la::DenseMatrix w = la::DenseMatrix::RandomUniform(50, 3, 0.0, 1.0, &rng);
  la::DenseMatrix h = la::DenseMatrix::RandomUniform(3, 8, 0.0, 1.0, &rng);
  MaterializedMatrix data(w.Multiply(h));
  GnmfOptions options;
  options.rank = 3;
  options.iterations = 50;
  GnmfModel model = TrainGnmf(data, options);
  EXPECT_LT(model.loss_history.back(), 0.05 * model.loss_history.front());
  for (size_t i = 1; i < model.loss_history.size(); ++i) {
    EXPECT_LE(model.loss_history[i], model.loss_history[i - 1] * 1.0001);
  }
  // Factors stay non-negative.
  for (size_t i = 0; i < model.w.rows(); ++i) {
    for (size_t j = 0; j < model.w.cols(); ++j) {
      EXPECT_GE(model.w.At(i, j), 0.0);
    }
  }
}

TEST(MetricsTest, KnownValues) {
  la::DenseMatrix p({{0.9}, {0.1}, {0.8}});
  la::DenseMatrix y({{1.0}, {0.0}, {0.0}});
  EXPECT_NEAR(BinaryAccuracy(p, y), 2.0 / 3.0, 1e-12);
  EXPECT_GT(LogLoss(p, y), 0.0);
  la::DenseMatrix pred({{1.0}, {2.0}});
  la::DenseMatrix truth({{0.0}, {4.0}});
  EXPECT_DOUBLE_EQ(MeanSquaredError(pred, truth), (1.0 + 4.0) / 2.0);
}

TEST(MetricsTest, SigmoidProperties) {
  la::DenseMatrix x({{0.0, 1000.0, -1000.0}});
  la::DenseMatrix s = Sigmoid(x);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 0.5);
  EXPECT_NEAR(s.At(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s.At(0, 2), 0.0, 1e-12);
  // Symmetry: σ(-x) = 1 - σ(x).
  la::DenseMatrix v({{0.7}});
  EXPECT_NEAR(Sigmoid(v.Scale(-1.0)).At(0, 0), 1.0 - Sigmoid(v).At(0, 0), 1e-12);
}

}  // namespace
}  // namespace ml
}  // namespace amalur
