#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/amalur.h"
#include "factorized/scenario_builder.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"
#include "ml/training_matrix.h"
#include "relational/generator.h"

/// End-to-end parallel/serial equivalence: gradient-descent training (which
/// exercises the dense GEMM family, the factorized rewrites and the sigmoid
/// fast path every iteration) must produce the same weights at every thread
/// count. The factorized and dense-materialized pipelines are built from
/// disjoint-write kernels only, so their weights are bitwise-equal to the
/// 1-thread run; the facade knob (`TrainRequest.num_threads`) is checked
/// through `Amalur::Train` including its `threads_used` reporting.

namespace amalur {
namespace ml {
namespace {

std::vector<size_t> TestedThreadCounts() {
  std::vector<size_t> counts = {1, 2};
  const size_t hw = common::DefaultNumThreads();
  if (hw != 1 && hw != 2) counts.push_back(hw);
  counts.push_back(5);
  return counts;
}

metadata::DiMetadata MakeScenarioMetadata(uint64_t seed) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 300;
  spec.other_rows = 50;  // fan-out 6
  spec.base_features = 2;
  spec.other_features = 6;
  spec.seed = seed;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return std::move(metadata).ValueOrDie();
}

class ParallelTrainingTest : public ::testing::Test {
 protected:
  void TearDown() override { common::SetNumThreads(0); }
};

TEST_F(ParallelTrainingTest, FactorizedWeightsBitwiseEqualAcrossThreads) {
  auto table = std::make_shared<factorized::FactorizedTable>(
      MakeScenarioMetadata(31));
  FactorizedFeatures features(table, 0);
  const la::DenseMatrix labels = features.Labels();
  GradientDescentOptions gd;
  gd.iterations = 15;
  gd.learning_rate = 0.05;

  common::SetNumThreads(1);
  const LinearModel serial = TrainLinearRegression(features, labels, gd);
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    const LinearModel parallel = TrainLinearRegression(features, labels, gd);
    EXPECT_TRUE(parallel.weights == serial.weights)
        << "thread count " << threads;
    EXPECT_EQ(parallel.loss_history, serial.loss_history)
        << "thread count " << threads;
  }
}

TEST_F(ParallelTrainingTest, MaterializedWeightsBitwiseEqualAcrossThreads) {
  const metadata::DiMetadata metadata = MakeScenarioMetadata(32);
  const la::DenseMatrix target = metadata.MaterializeTargetMatrix();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < target.cols(); ++j) feature_cols.push_back(j);
  MaterializedMatrix features(target.SelectColumns(feature_cols));
  const la::DenseMatrix labels = target.SelectColumns({0});
  GradientDescentOptions gd;
  gd.iterations = 15;
  gd.learning_rate = 0.05;

  common::SetNumThreads(1);
  const LinearModel serial = TrainLinearRegression(features, labels, gd);
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    const LinearModel parallel = TrainLinearRegression(features, labels, gd);
    EXPECT_TRUE(parallel.weights == serial.weights)
        << "thread count " << threads;
  }
}

TEST_F(ParallelTrainingTest, LogisticSigmoidFastPathEqualAcrossThreads) {
  auto table = std::make_shared<factorized::FactorizedTable>(
      MakeScenarioMetadata(33));
  FactorizedFeatures features(table, 0);
  // 0/1-ize the labels for logistic regression.
  la::DenseMatrix labels = features.Labels();
  labels.TransformInPlace([](double v) { return v > 0.0 ? 1.0 : 0.0; });
  GradientDescentOptions gd;
  gd.iterations = 10;
  gd.learning_rate = 0.1;

  common::SetNumThreads(1);
  const LinearModel serial = TrainLogisticRegression(features, labels, gd);
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    const LinearModel parallel = TrainLogisticRegression(features, labels, gd);
    EXPECT_TRUE(parallel.weights == serial.weights)
        << "thread count " << threads;
  }
}

TEST_F(ParallelTrainingTest, SigmoidMatchesSerialMapFormulation) {
  Rng rng(34);
  const la::DenseMatrix x = la::DenseMatrix::RandomGaussian(5000, 1, &rng);
  const la::DenseMatrix reference = x.Map([](double v) {
    if (v >= 0) {
      const double e = std::exp(-v);
      return 1.0 / (1.0 + e);
    }
    const double e = std::exp(v);
    return e / (1.0 + e);
  });
  for (size_t threads : TestedThreadCounts()) {
    common::SetNumThreads(threads);
    EXPECT_TRUE(Sigmoid(x) == reference) << "thread count " << threads;
  }
}

TEST_F(ParallelTrainingTest, FacadeThreadKnobIsScopedAndReported) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 200;
  spec.other_rows = 40;
  spec.base_features = 2;
  spec.other_features = 4;
  spec.seed = 35;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);

  core::AmalurOptions options;
  options.matcher.threshold = 0.75;
  core::Amalur system(options);
  AMALUR_CHECK_OK(
      system.catalog()->RegisterSource({"S1", pair.base, "silo-1", false}));
  AMALUR_CHECK_OK(
      system.catalog()->RegisterSource({"S2", pair.other, "silo-2", false}));
  auto integration = system.Integrate("S1", "S2", rel::JoinKind::kLeftJoin);
  ASSERT_TRUE(integration.ok()) << integration.status();

  core::TrainRequest request;
  request.label_column = "y";
  request.gd.iterations = 8;
  request.gd.learning_rate = 0.05;
  request.force_strategy = core::ExecutionStrategy::kFactorize;

  request.num_threads = 1;
  auto serial = system.Train(*integration, request);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->outcome().threads_used, 1u);
  EXPECT_NE(serial->plan().explanation.find("executed with 1 thread"),
            std::string::npos)
      << serial->plan().explanation;

  for (size_t threads : {size_t{2}, size_t{4}}) {
    request.num_threads = threads;
    auto parallel = system.Train(*integration, request);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    // Reported width = request capped by what the pool can actually run.
    EXPECT_EQ(parallel->outcome().threads_used,
              std::min(threads, common::ThreadPool::Global()->parallelism()));
    EXPECT_TRUE(parallel->weights() == serial->weights())
        << "thread count " << threads;
    // The override is scoped to the run: the global default is untouched.
    EXPECT_EQ(common::NumThreads(), common::DefaultNumThreads());
  }
}

}  // namespace
}  // namespace ml
}  // namespace amalur
