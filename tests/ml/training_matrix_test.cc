#include "ml/training_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "factorized/scenario_builder.h"

namespace amalur {
namespace ml {
namespace {

/// A left-join scenario with label at target column 0.
std::shared_ptr<const factorized::FactorizedTable> MakeTable(uint64_t seed) {
  rel::SiloPairSpec spec;
  spec.kind = rel::JoinKind::kLeftJoin;
  spec.base_rows = 50;
  spec.other_rows = 25;
  spec.base_features = 2;
  spec.other_features = 3;
  spec.match_fraction = 0.8;
  spec.seed = seed;
  rel::SiloPair pair = rel::GenerateSiloPair(spec);
  auto metadata = factorized::DerivePairMetadata(pair);
  AMALUR_CHECK(metadata.ok()) << metadata.status();
  return std::make_shared<factorized::FactorizedTable>(
      std::move(metadata).ValueOrDie());
}

TEST(MaterializedMatrixTest, OpsMatchDense) {
  Rng rng(1);
  la::DenseMatrix d = la::DenseMatrix::RandomGaussian(6, 4, &rng);
  MaterializedMatrix m(d);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 4u);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(4, 2, &rng);
  EXPECT_TRUE(m.LeftMultiply(x).ApproxEquals(d.Multiply(x), 1e-12));
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(6, 2, &rng);
  EXPECT_TRUE(
      m.TransposeLeftMultiply(y).ApproxEquals(d.TransposeMultiply(y), 1e-12));
  la::DenseMatrix squared = d.Map([](double v) { return v * v; });
  EXPECT_TRUE(m.RowSquaredNorms().ApproxEquals(squared.RowSums(), 1e-12));
  EXPECT_TRUE(m.ColSums().ApproxEquals(d.ColSums(), 1e-12));
}

TEST(FactorizedFeaturesTest, ShapeExcludesLabel) {
  auto table = MakeTable(3);
  FactorizedFeatures features(table, 0);
  EXPECT_EQ(features.rows(), table->rows());
  EXPECT_EQ(features.cols(), table->cols() - 1);
}

TEST(FactorizedFeaturesTest, OpsMatchMaterializedFeatureSlice) {
  auto table = MakeTable(4);
  FactorizedFeatures features(table, 0);
  // Reference: dense T without column 0.
  la::DenseMatrix t = table->Materialize();
  std::vector<size_t> feature_cols;
  for (size_t j = 1; j < t.cols(); ++j) feature_cols.push_back(j);
  la::DenseMatrix f = t.SelectColumns(feature_cols);

  Rng rng(9);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(features.cols(), 3, &rng);
  EXPECT_LT(features.LeftMultiply(x).MaxAbsDiff(f.Multiply(x)), 1e-10);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(features.rows(), 3, &rng);
  EXPECT_LT(features.TransposeLeftMultiply(y).MaxAbsDiff(
                f.TransposeMultiply(y)),
            1e-10);
  la::DenseMatrix squared = f.Map([](double v) { return v * v; });
  EXPECT_LT(features.RowSquaredNorms().MaxAbsDiff(squared.RowSums()), 1e-9);
  EXPECT_LT(features.ColSums().MaxAbsDiff(f.ColSums()), 1e-10);
}

TEST(FactorizedFeaturesTest, LabelsMatchTargetColumn) {
  auto table = MakeTable(5);
  FactorizedFeatures features(table, 0);
  la::DenseMatrix t = table->Materialize();
  la::DenseMatrix labels = features.Labels();
  ASSERT_EQ(labels.rows(), t.rows());
  for (size_t i = 0; i < t.rows(); ++i) {
    EXPECT_DOUBLE_EQ(labels.At(i, 0), t.At(i, 0));
  }
}

TEST(FactorizedFeaturesTest, NoLabelViewExposesAllColumns) {
  auto table = MakeTable(6);
  FactorizedFeatures all(table, FactorizedFeatures::kNoLabel);
  EXPECT_EQ(all.cols(), table->cols());
  la::DenseMatrix t = table->Materialize();
  Rng rng(2);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(all.cols(), 2, &rng);
  EXPECT_LT(all.LeftMultiply(x).MaxAbsDiff(t.Multiply(x)), 1e-10);
}

TEST(FactorizedFeaturesTest, MiddleLabelColumnHandled) {
  auto table = MakeTable(7);
  const size_t label = 2;  // not the first column
  FactorizedFeatures features(table, label);
  la::DenseMatrix t = table->Materialize();
  std::vector<size_t> cols;
  for (size_t j = 0; j < t.cols(); ++j) {
    if (j != label) cols.push_back(j);
  }
  la::DenseMatrix f = t.SelectColumns(cols);
  Rng rng(3);
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(features.cols(), 2, &rng);
  EXPECT_LT(features.LeftMultiply(x).MaxAbsDiff(f.Multiply(x)), 1e-10);
  la::DenseMatrix y = la::DenseMatrix::RandomGaussian(features.rows(), 2, &rng);
  EXPECT_LT(
      features.TransposeLeftMultiply(y).MaxAbsDiff(f.TransposeMultiply(y)),
      1e-10);
}

}  // namespace
}  // namespace ml
}  // namespace amalur
