#include "serving/deployed_model.h"

#include <utility>

#include "common/parallel_for.h"
#include "common/span.h"
#include "common/status.h"
#include "ml/metrics.h"
#include "ml/training_matrix.h"

namespace amalur {
namespace serving {

namespace {
// ParallelFor grain for batch scoring: a row score is a handful of lookups,
// so chunks need some width before fan-out pays. Chunk boundaries are a pure
// function of (batch size, grain, thread count) and each chunk writes
// disjoint output rows — the house determinism pattern.
constexpr size_t kBatchGrain = 64;
}  // namespace

Result<std::shared_ptr<DeployedModel>> DeployedModel::Create(
    const std::string& name, const core::ModelHandle& model,
    const DeployOptions& options) {
  if (name.empty()) return Status::InvalidArgument("empty deployment name");

  std::shared_ptr<const factorized::FactorizedTable> table;
  if (model.factorized_table() != nullptr) {
    // Factorized plans: share the exact view training ran over.
    table = model.factorized_table();
  } else if (model.metadata() != nullptr) {
    // Materialized/federated plans kept only the derived metadata; build
    // the factorized view once at deploy time so every deployment serves
    // through the partial-score cache.
    table =
        std::make_shared<const factorized::FactorizedTable>(*model.metadata());
  } else {
    return Status::FailedPrecondition(
        "model for deployment '", name,
        "' carries no integration data; train it through Amalur::Train "
        "before deploying");
  }

  const size_t label = model.label_index();
  const la::DenseMatrix& weights = model.weights();
  if (weights.cols() != 1 || weights.rows() + 1 != table->cols() ||
      label >= table->cols()) {
    return Status::FailedPrecondition(
        "model for deployment '", name, "' has ", weights.rows(),
        " weights but the target schema has ", table->cols(),
        " columns (label at ", label, "); the handle is inconsistent");
  }

  auto out = std::shared_ptr<DeployedModel>(new DeployedModel());
  out->name_ = name;
  out->task_ = model.task();
  out->label_column_ = model.label_column();
  out->feature_names_ = model.feature_names();
  out->source_names_ = model.source_names();

  // Pad the weights to target-column space with a zero at the label — the
  // same layout FactorizedFeatures::PadToTarget gives the training LMM, so
  // the partial scores reproduce training-time predictions bit for bit.
  la::DenseMatrix target_weights(table->cols(), 1);
  for (size_t j = 0, f = 0; j < table->cols(); ++j) {
    if (j == label) continue;
    target_weights.At(j, 0) = weights.At(f++, 0);
  }
  out->target_weights_ = std::move(target_weights);
  out->partials_ = table->ExtractPartialScores(out->target_weights_);
  out->labels_ = ml::FactorizedFeatures(table, label).Labels();
  if (options.enable_dense_scoring) out->dense_target_ = table->Materialize();
  out->table_ = std::move(table);
  return out;
}

Status DeployedModel::ValidateBatch(common::Span<RowRef> batch) const {
  const size_t limit = table_->rows();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].row >= limit) {
      return Status::InvalidArgument(
          "batch entry ", i, " references target row ", batch[i].row,
          " but deployment '", name_, "' serves ", limit, " rows");
    }
  }
  return Status::OK();
}

Result<la::DenseMatrix> DeployedModel::PredictBatch(
    common::Span<RowRef> batch) const {
  AMALUR_RETURN_NOT_OK(ValidateBatch(batch));
  la::DenseMatrix out(batch.size(), 1);
  std::atomic<uint64_t> hits{0};
  common::ParallelFor(
      0, batch.size(), kBatchGrain, [&](size_t begin, size_t end) {
        size_t chunk_hits = 0;
        for (size_t i = begin; i < end; ++i) {
          out.At(i, 0) = partials_.ScoreRow(batch[i].row, &chunk_hits);
        }
        hits.fetch_add(chunk_hits, std::memory_order_relaxed);
      });
  if (task_ == core::TrainingTask::kLogisticRegression) out = ml::Sigmoid(out);
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_served_.fetch_add(batch.size(), std::memory_order_relaxed);
  cache_hits_.fetch_add(hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return out;
}

Result<la::DenseMatrix> DeployedModel::PredictBatchDense(
    common::Span<RowRef> batch) const {
  if (dense_target_.empty()) {
    return Status::FailedPrecondition(
        "deployment '", name_, "' was created without dense scoring; pass "
        "DeployOptions{.enable_dense_scoring = true} at deploy time");
  }
  AMALUR_RETURN_NOT_OK(ValidateBatch(batch));
  la::DenseMatrix out(batch.size(), 1);
  common::ParallelFor(
      0, batch.size(), kBatchGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const double* row = dense_target_.RowPtr(batch[i].row);
          double acc = 0.0;
          // The label weight is 0, so the full-width dot product scores
          // features only.
          for (size_t j = 0; j < dense_target_.cols(); ++j) {
            acc += row[j] * target_weights_.At(j, 0);
          }
          out.At(i, 0) = acc;
        }
      });
  if (task_ == core::TrainingTask::kLogisticRegression) out = ml::Sigmoid(out);
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_served_.fetch_add(batch.size(), std::memory_order_relaxed);
  return out;
}

Result<core::EvaluationReport> DeployedModel::EvaluateBatch(
    common::Span<RowRef> batch) const {
  if (batch.empty()) {
    return Status::InvalidArgument(
        "cannot evaluate an empty batch: the all-zero report of a zero-row "
        "evaluation impersonates a perfect model");
  }
  AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix predictions, PredictBatch(batch));
  la::DenseMatrix labels(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    labels.At(i, 0) = labels_.At(batch[i].row, 0);
  }
  core::EvaluationReport report;
  report.rows = batch.size();
  report.mse = ml::MeanSquaredError(predictions, labels);
  if (task_ == core::TrainingTask::kLogisticRegression) {
    report.log_loss = ml::LogLoss(predictions, labels);
    report.accuracy = ml::BinaryAccuracy(predictions, labels);
    report.primary = report.accuracy;
  } else {
    report.primary = report.mse;
  }
  return report;
}

ServingStats DeployedModel::stats() const {
  ServingStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.rows = rows_served_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serving
}  // namespace amalur
