#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "serving/deployed_model.h"

/// \file model_registry.h
/// The read-mostly deployment catalog of the serving tier. Lookups (the hot
/// path — every request resolves a name) take a shared lock and copy one
/// `shared_ptr`; deployment mutations build the new snapshot *outside* the
/// lock, then swap a copy-on-write map under the exclusive lock. Readers
/// therefore never wait on snapshot construction, and an in-flight request
/// keeps scoring the version it resolved even while a redeploy publishes
/// the next one.
///
/// Registration semantics mirror `core::Catalog`: names are unique
/// (`kAlreadyExists` on re-deploy without `Redeploy`), missing names are
/// `kNotFound`, the empty name is `kInvalidArgument` — never a silent
/// overwrite. Versions are per-name and monotonic: first `Deploy` is
/// version 1, each `Redeploy` increments.

namespace amalur {
namespace serving {

/// Thread-safe deployed-model catalog.
class ModelRegistry {
 public:
  /// Name → deployment snapshot (the COW map readers copy a pointer to).
  using DeploymentMap =
      std::map<std::string, std::shared_ptr<const DeployedModel>>;

  /// Builds a snapshot of `model` and publishes it under `name` (version
  /// 1). `kAlreadyExists` when the name is live (use `Redeploy`);
  /// `kInvalidArgument` for the empty name; `Create`'s errors pass through.
  Result<std::shared_ptr<const DeployedModel>> Deploy(
      const std::string& name, const core::ModelHandle& model,
      const DeployOptions& options = {});

  /// Replaces the deployment under `name` with a fresh snapshot of `model`
  /// at version +1. `kNotFound` when nothing is deployed under the name.
  /// In-flight batches on the previous snapshot are unaffected — they hold
  /// their own `shared_ptr`.
  Result<std::shared_ptr<const DeployedModel>> Redeploy(
      const std::string& name, const core::ModelHandle& model,
      const DeployOptions& options = {});

  /// Removes the deployment under `name` (`kNotFound` otherwise). The
  /// snapshot itself lives on until the last in-flight holder drops it.
  Status Undeploy(const std::string& name);

  /// Resolves a live deployment (`kNotFound` otherwise). The returned
  /// snapshot is immune to later registry mutations.
  Result<std::shared_ptr<const DeployedModel>> Get(
      const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> DeployedNames() const;

  /// The full deployment map as of now — one atomic read; iterating it
  /// never blocks or observes a mutation.
  std::shared_ptr<const DeploymentMap> Snapshot() const;

 private:
  mutable common::SharedMutex mu_;
  /// COW: mutations replace the map wholesale; readers share the old one.
  /// The *pointer* is what the lock guards — the pointed-to map is immutable
  /// once published.
  std::shared_ptr<const DeploymentMap> deployments_ GUARDED_BY(mu_) =
      std::make_shared<const DeploymentMap>();
};

}  // namespace serving
}  // namespace amalur
