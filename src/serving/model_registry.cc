#include "serving/model_registry.h"

#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace amalur {
namespace serving {

Result<std::shared_ptr<const DeployedModel>> ModelRegistry::Deploy(
    const std::string& name, const core::ModelHandle& model,
    const DeployOptions& options) {
  // Build the snapshot outside the lock — partial-score extraction is the
  // expensive part and must never stall readers. The optimistic build can
  // lose a deploy race; the name check under the lock is authoritative.
  AMALUR_ASSIGN_OR_RETURN(std::shared_ptr<DeployedModel> snapshot,
                          DeployedModel::Create(name, model, options));
  common::MutexLock lock(mu_);
  if (deployments_->count(name) > 0) {
    return Status::AlreadyExists("deployment '", name,
                                 "'; use Redeploy to replace it");
  }
  // Version is stamped before publication: the snapshot is not yet visible
  // to any reader, so the non-const write is race-free.
  snapshot->version_ = 1;
  auto next = std::make_shared<DeploymentMap>(*deployments_);
  (*next)[name] = snapshot;
  deployments_ = std::move(next);
  return std::shared_ptr<const DeployedModel>(std::move(snapshot));
}

Result<std::shared_ptr<const DeployedModel>> ModelRegistry::Redeploy(
    const std::string& name, const core::ModelHandle& model,
    const DeployOptions& options) {
  AMALUR_ASSIGN_OR_RETURN(std::shared_ptr<DeployedModel> snapshot,
                          DeployedModel::Create(name, model, options));
  common::MutexLock lock(mu_);
  auto it = deployments_->find(name);
  if (it == deployments_->end()) {
    return Status::NotFound("deployment '", name, "'");
  }
  snapshot->version_ = it->second->version() + 1;
  auto next = std::make_shared<DeploymentMap>(*deployments_);
  (*next)[name] = snapshot;
  deployments_ = std::move(next);
  return std::shared_ptr<const DeployedModel>(std::move(snapshot));
}

Status ModelRegistry::Undeploy(const std::string& name) {
  common::MutexLock lock(mu_);
  if (deployments_->count(name) == 0) {
    return Status::NotFound("deployment '", name, "'");
  }
  auto next = std::make_shared<DeploymentMap>(*deployments_);
  next->erase(name);
  deployments_ = std::move(next);
  return Status::OK();
}

Result<std::shared_ptr<const DeployedModel>> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_ptr<const DeploymentMap> snapshot = Snapshot();
  auto it = snapshot->find(name);
  if (it == snapshot->end()) {
    return Status::NotFound("deployment '", name, "'");
  }
  return it->second;
}

bool ModelRegistry::Has(const std::string& name) const {
  return Snapshot()->count(name) > 0;
}

std::vector<std::string> ModelRegistry::DeployedNames() const {
  std::shared_ptr<const DeploymentMap> snapshot = Snapshot();
  std::vector<std::string> names;
  names.reserve(snapshot->size());
  for (const auto& [name, model] : *snapshot) names.push_back(name);
  return names;
}

std::shared_ptr<const ModelRegistry::DeploymentMap> ModelRegistry::Snapshot()
    const {
  common::SharedLock lock(mu_);
  return deployments_;
}

}  // namespace serving

namespace core {

// Defined here rather than in core/amalur.cc: core is layered below serving
// and only forward-declares these types.
Result<std::shared_ptr<const serving::DeployedModel>> ModelHandle::Deploy(
    serving::ModelRegistry* registry, const std::string& name) const {
  return Deploy(registry, name, serving::DeployOptions{});
}

Result<std::shared_ptr<const serving::DeployedModel>> ModelHandle::Deploy(
    serving::ModelRegistry* registry, const std::string& name,
    const serving::DeployOptions& options) const {
  AMALUR_CHECK(registry != nullptr) << "null registry";
  // Default the deployment name to the model's catalog name.
  return registry->Deploy(name.empty() ? name_ : name, *this, options);
}

}  // namespace core
}  // namespace amalur
