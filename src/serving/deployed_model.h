#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/status.h"
#include "core/amalur.h"
#include "factorized/factorized_table.h"
#include "la/dense_matrix.h"

/// \file deployed_model.h
/// The serving tier's unit of deployment: an immutable snapshot of a trained
/// model, captured once at deploy time and shared read-only (behind a
/// `shared_ptr`) by any number of concurrent scoring threads. The snapshot
/// copies everything serving needs — weights, training schema, the
/// factorized view, and a per-dimension partial-score cache
/// (`factorized::PartialScores`) — so fact rows are scored by indicator
/// lookup instead of re-multiplying the dimension blocks, and no request
/// ever touches live catalog or registry storage.
///
/// Determinism: `PredictBatch` partitions the batch across the shared
/// thread pool with the house fixed-order-merge pattern (each chunk writes
/// disjoint output rows), and every row's score is an independent
/// lookup-and-add — results are bitwise-identical to a serial pass at any
/// thread count, and unaffected by concurrent redeploys (a redeploy swaps
/// the registry's pointer; in-flight batches keep their snapshot).

namespace amalur {
namespace serving {

/// A batched scoring request addresses target rows of the deployed model's
/// integration scenario by index (the serving tier's row handle).
struct RowRef {
  size_t row = 0;
};

/// Deploy-time knobs.
struct DeployOptions {
  /// Also materialize the dense target matrix into the snapshot so the
  /// model can serve through `PredictBatchDense` (the benchmark baseline).
  /// Costs an rT × cT copy at deploy time; off by default.
  bool enable_dense_scoring = false;
};

/// Monotonic per-model serving counters (relaxed atomics — stats, not
/// synchronization). Snapshot via `DeployedModel::stats()`.
struct ServingStats {
  uint64_t requests = 0;    ///< PredictBatch/PredictBatchDense/EvaluateBatch calls
  uint64_t rows = 0;        ///< rows scored across all requests
  uint64_t cache_hits = 0;  ///< partial-score lookups served (factorized path)
};

/// An immutable deployed-model snapshot. Create via `Create` (or
/// `core::ModelHandle::Deploy` / `ModelRegistry::Deploy`, which call it);
/// thereafter the object is logically const — safe to share across threads
/// without locks. Serving counters are relaxed atomics and do not affect
/// scoring results.
class DeployedModel {
 public:
  /// Builds a snapshot of `model` under `name`. Requires the handle to
  /// carry integration data (`factorized_table()` or `metadata()` — models
  /// trained through `Amalur::Train` always do); a default-constructed
  /// handle is `kFailedPrecondition`. Non-factorized plans get a factorized
  /// view built from the metadata copy here, so every deployment serves
  /// through the partial-score cache. Returns a mutable pointer so the
  /// registry can stamp the version before publication; after publication
  /// the object is shared as `const`.
  static Result<std::shared_ptr<DeployedModel>> Create(
      const std::string& name, const core::ModelHandle& model,
      const DeployOptions& options = {});

  /// Deployment identity.
  const std::string& name() const { return name_; }
  /// Monotonic per-name version, stamped by the registry (1 on first
  /// deploy, +1 per redeploy; 0 for snapshots created outside a registry).
  uint64_t version() const { return version_; }

  core::TrainingTask task() const { return task_; }
  const std::string& label_column() const { return label_column_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::string>& source_names() const {
    return source_names_;
  }

  /// Scorable target rows of the integration scenario.
  size_t rows() const { return table_->rows(); }
  bool dense_scoring_enabled() const { return !dense_target_.empty(); }

  /// Scores the referenced target rows through the partial-score cache:
  /// y-hat = T·w for regression, sigma(T·w) for classification (n × 1, in
  /// request order). Any out-of-range row is `kInvalidArgument` (checked
  /// before scoring starts — no partial result escapes). An empty batch
  /// returns an empty 0 × 1 matrix. Bitwise-deterministic: equal batches
  /// give bit-equal scores at any thread count, concurrent redeploys
  /// notwithstanding; for factorized-plan models each row additionally
  /// matches the training-time `ModelHandle::Predict()` score bit for bit.
  Result<la::DenseMatrix> PredictBatch(common::Span<RowRef> batch) const;

  /// The dense baseline: gathers the referenced rows from the materialized
  /// target snapshot and scores them with a plain dot product. Requires
  /// `DeployOptions::enable_dense_scoring` (`kFailedPrecondition`
  /// otherwise). Same validation contract as `PredictBatch`; results agree
  /// with it to summation-order rounding (pinned at 1e-12 by the
  /// equivalence suite).
  Result<la::DenseMatrix> PredictBatchDense(common::Span<RowRef> batch) const;

  /// Predicts the batch and scores it against the snapshot's own labels
  /// (gathered from the silos at deploy time). An empty batch is
  /// `kInvalidArgument` — an all-zero report would impersonate a perfect
  /// model.
  Result<core::EvaluationReport> EvaluateBatch(common::Span<RowRef> batch) const;

  /// Snapshot of the serving counters.
  ServingStats stats() const;

 private:
  friend class ModelRegistry;

  DeployedModel() = default;

  /// Shared batch validation: every row reference must be in range.
  Status ValidateBatch(common::Span<RowRef> batch) const;

  std::string name_;
  uint64_t version_ = 0;
  core::TrainingTask task_ = core::TrainingTask::kLinearRegression;
  std::string label_column_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> source_names_;

  /// The factorized view the snapshot scores through (owns the metadata the
  /// partial-score cache points into).
  std::shared_ptr<const factorized::FactorizedTable> table_;
  /// Deploy-time partial scores of the padded weight vector (label weight
  /// 0) — the factorized serving fast path.
  factorized::PartialScores partials_;
  /// Target labels (rT × 1), for EvaluateBatch.
  la::DenseMatrix labels_;
  /// Materialized target (rT × cT), only with `enable_dense_scoring`.
  la::DenseMatrix dense_target_;
  /// Padded weights (cT × 1, 0 at the label position) for the dense path.
  la::DenseMatrix target_weights_;

  mutable std::atomic<uint64_t> requests_{0};
  mutable std::atomic<uint64_t> rows_served_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
};

}  // namespace serving
}  // namespace amalur
