#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace amalur {
namespace ml {

double MeanSquaredError(const la::DenseMatrix& predictions,
                        const la::DenseMatrix& labels) {
  AMALUR_CHECK(predictions.rows() == labels.rows() && predictions.cols() == 1 &&
               labels.cols() == 1)
      << "MSE expects n×1 vectors";
  if (predictions.rows() == 0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < predictions.rows(); ++i) {
    const double d = predictions.At(i, 0) - labels.At(i, 0);
    acc += d * d;
  }
  return acc / static_cast<double>(predictions.rows());
}

double LogLoss(const la::DenseMatrix& probabilities,
               const la::DenseMatrix& labels) {
  AMALUR_CHECK(probabilities.rows() == labels.rows() &&
               probabilities.cols() == 1 && labels.cols() == 1)
      << "log-loss expects n×1 vectors";
  if (probabilities.rows() == 0) return 0.0;
  constexpr double kEps = 1e-12;
  double acc = 0.0;
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    const double p =
        std::clamp(probabilities.At(i, 0), kEps, 1.0 - kEps);
    const double y = labels.At(i, 0);
    acc -= y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
  }
  return acc / static_cast<double>(probabilities.rows());
}

double BinaryAccuracy(const la::DenseMatrix& probabilities,
                      const la::DenseMatrix& labels) {
  AMALUR_CHECK(probabilities.rows() == labels.rows()) << "accuracy shape";
  if (probabilities.rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < probabilities.rows(); ++i) {
    const double predicted = probabilities.At(i, 0) >= 0.5 ? 1.0 : 0.0;
    correct += predicted == labels.At(i, 0) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(probabilities.rows());
}

la::DenseMatrix Sigmoid(const la::DenseMatrix& x) {
  // Statically-dispatched (and parallel) transform instead of Map's
  // std::function-per-element: this is the logistic-regression training hot
  // path, applied to every prediction every iteration.
  la::DenseMatrix out = x;
  out.TransformInPlace([](double v) {
    // Branching form avoids overflow in exp for large |v|.
    if (v >= 0) {
      const double e = std::exp(-v);
      return 1.0 / (1.0 + e);
    }
    const double e = std::exp(v);
    return e / (1.0 + e);
  });
  return out;
}

}  // namespace ml
}  // namespace amalur
