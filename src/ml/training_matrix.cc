#include "ml/training_matrix.h"

#include "common/parallel_for.h"

namespace amalur {
namespace ml {

la::DenseMatrix MaterializedMatrix::RowSquaredNorms() const {
  la::DenseMatrix out(data_.rows(), 1);
  common::ParallelFor(
      0, data_.rows(), 256, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* row = data_.RowPtr(i);
          double acc = 0.0;
          for (size_t j = 0; j < data_.cols(); ++j) acc += row[j] * row[j];
          out.At(i, 0) = acc;
        }
      });
  return out;
}

la::DenseMatrix SparseMaterializedMatrix::RowSquaredNorms() const {
  la::DenseMatrix out(data_.rows(), 1);
  const auto& offsets = data_.row_offsets();
  const auto& values = data_.values();
  common::ParallelFor(
      0, data_.rows(), 256, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          double acc = 0.0;
          for (size_t p = offsets[i]; p < offsets[i + 1]; ++p) {
            acc += values[p] * values[p];
          }
          out.At(i, 0) = acc;
        }
      });
  return out;
}

FactorizedFeatures::FactorizedFeatures(
    std::shared_ptr<const factorized::FactorizedTable> table, size_t label_column)
    : table_(std::move(table)), label_column_(label_column) {
  AMALUR_CHECK(table_ != nullptr) << "null table";
  AMALUR_CHECK(label_column_ == kNoLabel || label_column_ < table_->cols())
      << "label column out of range";
}

la::DenseMatrix FactorizedFeatures::PadToTarget(const la::DenseMatrix& x) const {
  if (label_column_ == kNoLabel) return x;
  la::DenseMatrix padded(table_->cols(), x.cols());
  for (size_t i = 0, src = 0; i < table_->cols(); ++i) {
    if (i == label_column_) continue;
    for (size_t c = 0; c < x.cols(); ++c) padded.At(i, c) = x.At(src, c);
    ++src;
  }
  return padded;
}

la::DenseMatrix FactorizedFeatures::DropLabelRow(const la::DenseMatrix& x) const {
  if (label_column_ == kNoLabel) return x;
  la::DenseMatrix out(x.rows() - 1, x.cols());
  for (size_t i = 0, dst = 0; i < x.rows(); ++i) {
    if (i == label_column_) continue;
    for (size_t c = 0; c < x.cols(); ++c) out.At(dst, c) = x.At(i, c);
    ++dst;
  }
  return out;
}

la::DenseMatrix FactorizedFeatures::LeftMultiply(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), cols()) << "feature LMM shape";
  return table_->LeftMultiply(PadToTarget(x));
}

la::DenseMatrix FactorizedFeatures::TransposeLeftMultiply(
    const la::DenseMatrix& x) const {
  return DropLabelRow(table_->TransposeLeftMultiply(x));
}

la::DenseMatrix FactorizedFeatures::RowSquaredNorms() const {
  la::DenseMatrix norms = table_->RowSquaredNorms();
  if (label_column_ == kNoLabel) return norms;
  // Subtract the label column's contribution: ||t_i||² - y_i².
  la::DenseMatrix labels = Labels();
  for (size_t i = 0; i < norms.rows(); ++i) {
    norms.At(i, 0) -= labels.At(i, 0) * labels.At(i, 0);
  }
  return norms;
}

la::DenseMatrix FactorizedFeatures::ColSums() const {
  la::DenseMatrix sums = table_->ColSums();  // 1 x cT
  if (label_column_ == kNoLabel) return sums;
  la::DenseMatrix out(1, cols());
  for (size_t i = 0, dst = 0; i < table_->cols(); ++i) {
    if (i == label_column_) continue;
    out.At(0, dst++) = sums.At(0, i);
  }
  return out;
}

la::DenseMatrix FactorizedFeatures::Labels() const {
  AMALUR_CHECK(label_column_ != kNoLabel) << "no label column configured";
  la::DenseMatrix selector(table_->cols(), 1);
  selector.At(label_column_, 0) = 1.0;
  return table_->LeftMultiply(selector);
}

}  // namespace ml
}  // namespace amalur
