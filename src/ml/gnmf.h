#pragma once

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "ml/training_matrix.h"

/// \file gnmf.h
/// Gaussian non-negative matrix factorization T ≈ W·H with multiplicative
/// updates (Lee & Seung). The data-touching products T·Hᵀ and Wᵀ·T are the
/// factorizable operators; everything else is rank-r small. The fourth
/// Morpheus workload class ([27]).

namespace amalur {
namespace ml {

/// Hyper-parameters for GNMF.
struct GnmfOptions {
  size_t rank = 4;
  size_t iterations = 30;
  uint64_t seed = 11;
  /// Update denominators are clamped to this floor for stability.
  double epsilon = 1e-12;
};

/// A fitted factorization.
struct GnmfModel {
  la::DenseMatrix w;  // rows × rank, non-negative
  la::DenseMatrix h;  // rank × cols, non-negative
  /// Squared Frobenius reconstruction error per iteration.
  std::vector<double> loss_history;
};

/// Runs multiplicative-update GNMF. The input should be non-negative for the
/// classic convergence guarantees; updates clamp at zero regardless.
GnmfModel TrainGnmf(const TrainingMatrix& data, const GnmfOptions& options);

}  // namespace ml
}  // namespace amalur
