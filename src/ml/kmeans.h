#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "la/dense_matrix.h"
#include "ml/training_matrix.h"

/// \file kmeans.h
/// Lloyd's k-means over a `TrainingMatrix`. The distance computation is
/// expressed as ||x−c||² = ||x||² − 2·x·cᵀ + ||c||², whose data-dependent
/// terms are one factorizable LMM (X·Cᵀ) and the row-norm aggregate — the
/// classic factorized k-means formulation of [27].

namespace amalur {
namespace ml {

/// Hyper-parameters for k-means.
struct KMeansOptions {
  size_t clusters = 4;
  size_t iterations = 20;
  /// Seed for centroid initialization (random distinct rows).
  uint64_t seed = 7;
};

/// A fitted clustering.
struct KMeansModel {
  /// clusters × cols centroid matrix.
  la::DenseMatrix centroids;
  /// Per-row cluster assignment.
  std::vector<size_t> assignments;
  /// Within-cluster sum of squares per iteration.
  std::vector<double> inertia_history;
};

/// Runs Lloyd's algorithm. Initial centroids are distinct data rows chosen
/// by seeded sampling; empty clusters keep their previous centroid.
KMeansModel TrainKMeans(const TrainingMatrix& data, const KMeansOptions& options);

}  // namespace ml
}  // namespace amalur
