#pragma once

#include "la/dense_matrix.h"

/// \file metrics.h
/// Evaluation metrics for the ML workloads.

namespace amalur {
namespace ml {

/// Mean squared error between predictions and labels (both n×1).
double MeanSquaredError(const la::DenseMatrix& predictions,
                        const la::DenseMatrix& labels);

/// Binary log-loss for probabilities in (0,1) against 0/1 labels (both n×1);
/// probabilities are clamped away from {0,1} for stability.
double LogLoss(const la::DenseMatrix& probabilities, const la::DenseMatrix& labels);

/// Fraction of correct 0/1 predictions at threshold 0.5.
double BinaryAccuracy(const la::DenseMatrix& probabilities,
                      const la::DenseMatrix& labels);

/// Numerically stable logistic function applied element-wise.
la::DenseMatrix Sigmoid(const la::DenseMatrix& x);

}  // namespace ml
}  // namespace amalur
