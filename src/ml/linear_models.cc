#include "ml/linear_models.h"

#include "common/logging.h"
#include "ml/metrics.h"

namespace amalur {
namespace ml {

namespace {

void CheckLabels(const TrainingMatrix& features, const la::DenseMatrix& labels) {
  AMALUR_CHECK(labels.rows() == features.rows() && labels.cols() == 1)
      << "labels must be rows×1";
}

}  // namespace

LinearModel TrainLinearRegression(const TrainingMatrix& features,
                                  const la::DenseMatrix& labels,
                                  const GradientDescentOptions& options) {
  CheckLabels(features, labels);
  const double n = static_cast<double>(features.rows());
  LinearModel model{la::DenseMatrix(features.cols(), 1), {}};
  model.loss_history.reserve(options.iterations);
  for (size_t it = 0; it < options.iterations; ++it) {
    la::DenseMatrix predictions = features.LeftMultiply(model.weights);
    la::DenseMatrix residual = predictions.Subtract(labels);
    model.loss_history.push_back(MeanSquaredError(predictions, labels));
    la::DenseMatrix gradient = features.TransposeLeftMultiply(residual);
    gradient.ScaleInPlace(1.0 / n);
    if (options.l2 > 0.0) gradient.AddScaled(model.weights, options.l2);
    model.weights.AddScaled(gradient, -options.learning_rate);
  }
  return model;
}

LinearModel TrainLogisticRegression(const TrainingMatrix& features,
                                    const la::DenseMatrix& labels,
                                    const GradientDescentOptions& options) {
  CheckLabels(features, labels);
  const double n = static_cast<double>(features.rows());
  LinearModel model{la::DenseMatrix(features.cols(), 1), {}};
  model.loss_history.reserve(options.iterations);
  for (size_t it = 0; it < options.iterations; ++it) {
    la::DenseMatrix probabilities =
        Sigmoid(features.LeftMultiply(model.weights));
    model.loss_history.push_back(LogLoss(probabilities, labels));
    la::DenseMatrix residual = probabilities.Subtract(labels);
    la::DenseMatrix gradient = features.TransposeLeftMultiply(residual);
    gradient.ScaleInPlace(1.0 / n);
    if (options.l2 > 0.0) gradient.AddScaled(model.weights, options.l2);
    model.weights.AddScaled(gradient, -options.learning_rate);
  }
  return model;
}

la::DenseMatrix PredictLinear(const TrainingMatrix& features,
                              const la::DenseMatrix& weights) {
  return features.LeftMultiply(weights);
}

la::DenseMatrix PredictLogistic(const TrainingMatrix& features,
                                const la::DenseMatrix& weights) {
  return Sigmoid(features.LeftMultiply(weights));
}

}  // namespace ml
}  // namespace amalur
