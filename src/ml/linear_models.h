#pragma once

#include <vector>

#include "la/dense_matrix.h"
#include "ml/training_matrix.h"

/// \file linear_models.h
/// Gradient-descent linear and logistic regression over a `TrainingMatrix`.
/// These are the canonical factorized-learning workloads ([27], [51]): every
/// training step is one LMM (forward) and one transpose-LMM (gradient), so
/// the factorization rewrites apply end to end.

namespace amalur {
namespace ml {

/// Shared hyper-parameters for the GD trainers.
struct GradientDescentOptions {
  size_t iterations = 100;
  double learning_rate = 0.1;
  /// L2 regularization strength (0 = off).
  double l2 = 0.0;
};

/// A trained linear model: weights (cols×1) and the per-iteration loss.
struct LinearModel {
  la::DenseMatrix weights;
  std::vector<double> loss_history;
};

/// Least-squares linear regression:
///   w ← w − η ( Fᵀ(Fw − y)/n + λw ).
/// `labels` is rows×1. Loss history records MSE per iteration.
LinearModel TrainLinearRegression(const TrainingMatrix& features,
                                  const la::DenseMatrix& labels,
                                  const GradientDescentOptions& options = {});

/// Binary logistic regression:
///   w ← w − η ( Fᵀ(σ(Fw) − y)/n + λw ).
/// `labels` must be 0/1. Loss history records log-loss per iteration.
LinearModel TrainLogisticRegression(const TrainingMatrix& features,
                                    const la::DenseMatrix& labels,
                                    const GradientDescentOptions& options = {});

/// Predictions Fw (rows×1).
la::DenseMatrix PredictLinear(const TrainingMatrix& features,
                              const la::DenseMatrix& weights);

/// Probabilities σ(Fw) (rows×1).
la::DenseMatrix PredictLogistic(const TrainingMatrix& features,
                                const la::DenseMatrix& weights);

}  // namespace ml
}  // namespace amalur
