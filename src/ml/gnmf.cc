#include "ml/gnmf.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace amalur {
namespace ml {

GnmfModel TrainGnmf(const TrainingMatrix& data, const GnmfOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t r = options.rank;
  AMALUR_CHECK(r > 0) << "rank must be positive";

  Rng rng(options.seed);
  GnmfModel model{la::DenseMatrix::RandomUniform(n, r, 0.1, 1.0, &rng),
                  la::DenseMatrix::RandomUniform(r, d, 0.1, 1.0, &rng),
                  {}};
  model.loss_history.reserve(options.iterations);

  for (size_t it = 0; it < options.iterations; ++it) {
    // ---- W update: W ∘ (T Hᵀ) / (W H Hᵀ).
    la::DenseMatrix t_ht = data.LeftMultiply(model.h.Transpose());      // n × r
    la::DenseMatrix hht = model.h.MultiplyTranspose(model.h);           // r × r
    la::DenseMatrix w_hht = model.w.Multiply(hht);                      // n × r
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < r; ++j) {
        const double denom = std::max(w_hht.At(i, j), options.epsilon);
        model.w.At(i, j) =
            std::max(0.0, model.w.At(i, j) * t_ht.At(i, j) / denom);
      }
    }
    // ---- H update: H ∘ (Wᵀ T) / (Wᵀ W H).
    la::DenseMatrix wt_t = data.TransposeLeftMultiply(model.w).Transpose();
    la::DenseMatrix wtw = model.w.TransposeMultiply(model.w);           // r × r
    la::DenseMatrix wtw_h = wtw.Multiply(model.h);                      // r × d
    for (size_t i = 0; i < r; ++i) {
      for (size_t j = 0; j < d; ++j) {
        const double denom = std::max(wtw_h.At(i, j), options.epsilon);
        model.h.At(i, j) =
            std::max(0.0, model.h.At(i, j) * wt_t.At(i, j) / denom);
      }
    }
    // ---- Loss ||T − WH||²_F = ||T||² − 2⟨T, WH⟩ + ||WH||², computed
    // without materializing T: ⟨T, WH⟩ = ⟨THᵀ', W⟩ with the fresh H.
    la::DenseMatrix t_ht_fresh = data.LeftMultiply(model.h.Transpose());
    const double t_norm = data.RowSquaredNorms().Sum();
    const double cross = t_ht_fresh.Hadamard(model.w).Sum();
    la::DenseMatrix hht_fresh = model.h.MultiplyTranspose(model.h);
    const double wh_norm =
        model.w.Multiply(hht_fresh).Hadamard(model.w).Sum();
    model.loss_history.push_back(t_norm - 2.0 * cross + wh_norm);
  }
  return model;
}

}  // namespace ml
}  // namespace amalur
