#pragma once

#include <memory>

#include "common/status.h"
#include "factorized/factorized_table.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

/// \file training_matrix.h
/// The abstraction that lets one ML implementation train over either backend:
/// a `TrainingMatrix` exposes exactly the linear-algebra operators the
/// paper's factorization rewrites cover (LMM, transpose-LMM, aggregates), so
/// gradient-descent models are oblivious to whether the data is a
/// materialized dense matrix or a factorized view over silos. Equal inputs
/// produce bit-comparable results — factorization does not change accuracy
/// (§IV: "factorized learning does not affect model training accuracy").

namespace amalur {
namespace ml {

/// Read-only matrix interface for training-time linear algebra.
class TrainingMatrix {
 public:
  virtual ~TrainingMatrix() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;

  /// M · X for X (cols × n).
  virtual la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const = 0;

  /// Mᵀ · X for X (rows × n).
  virtual la::DenseMatrix TransposeLeftMultiply(
      const la::DenseMatrix& x) const = 0;

  /// Per-row squared norms (rows × 1).
  virtual la::DenseMatrix RowSquaredNorms() const = 0;

  /// Column sums (1 × cols).
  virtual la::DenseMatrix ColSums() const = 0;
};

/// Backend over an ordinary dense matrix (the materialized path).
class MaterializedMatrix : public TrainingMatrix {
 public:
  explicit MaterializedMatrix(la::DenseMatrix data) : data_(std::move(data)) {}

  size_t rows() const override { return data_.rows(); }
  size_t cols() const override { return data_.cols(); }
  la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const override {
    return data_.Multiply(x);
  }
  la::DenseMatrix TransposeLeftMultiply(const la::DenseMatrix& x) const override {
    return data_.TransposeMultiply(x);
  }
  la::DenseMatrix RowSquaredNorms() const override;
  la::DenseMatrix ColSums() const override { return data_.ColSums(); }

  const la::DenseMatrix& data() const { return data_; }

 private:
  la::DenseMatrix data_;
};

/// Backend over a CSR sparse matrix: the middle ground between dense
/// materialization and factorization for null-heavy targets (outer joins
/// pad absent cells with zeros that a dense kernel multiplies through but
/// CSR skips). Used by the backend ablation study.
class SparseMaterializedMatrix : public TrainingMatrix {
 public:
  explicit SparseMaterializedMatrix(la::SparseMatrix data)
      : data_(std::move(data)) {}

  /// Builds from a dense matrix, dropping exact zeros.
  static SparseMaterializedMatrix FromDense(const la::DenseMatrix& dense) {
    return SparseMaterializedMatrix(la::SparseMatrix::FromDense(dense));
  }

  size_t rows() const override { return data_.rows(); }
  size_t cols() const override { return data_.cols(); }
  la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const override {
    return data_.Multiply(x);
  }
  la::DenseMatrix TransposeLeftMultiply(const la::DenseMatrix& x) const override {
    return data_.TransposeMultiply(x);
  }
  la::DenseMatrix RowSquaredNorms() const override;
  la::DenseMatrix ColSums() const override { return data_.ColSums(); }

  const la::SparseMatrix& data() const { return data_; }

 private:
  la::SparseMatrix data_;
};

/// Backend over a factorized target table (the pushed-down path). Operates
/// on a *feature view*: the label column of the target schema is excluded
/// from the virtual matrix, without materializing anything.
class FactorizedFeatures : public TrainingMatrix {
 public:
  /// Wraps `table`, excluding target column `label_column` from the view.
  /// Pass `kNoLabel` to expose every column (unsupervised workloads).
  static constexpr size_t kNoLabel = static_cast<size_t>(-1);
  FactorizedFeatures(std::shared_ptr<const factorized::FactorizedTable> table,
                     size_t label_column);

  size_t rows() const override { return table_->rows(); }
  size_t cols() const override {
    return table_->cols() - (label_column_ == kNoLabel ? 0 : 1);
  }
  la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const override;
  la::DenseMatrix TransposeLeftMultiply(const la::DenseMatrix& x) const override;
  la::DenseMatrix RowSquaredNorms() const override;
  la::DenseMatrix ColSums() const override;

  /// The label column as a dense rows×1 vector (one cheap factorized LMM).
  la::DenseMatrix Labels() const;

  const factorized::FactorizedTable& table() const { return *table_; }

 private:
  /// Pads X (features-space, cols()×n) to target-space (cT×n) with a zero
  /// row at the label position.
  la::DenseMatrix PadToTarget(const la::DenseMatrix& x) const;
  /// Drops the label row from a target-space (cT×n) matrix.
  la::DenseMatrix DropLabelRow(const la::DenseMatrix& x) const;

  std::shared_ptr<const factorized::FactorizedTable> table_;
  size_t label_column_;
};

}  // namespace ml
}  // namespace amalur
