#include "ml/kmeans.h"

#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace amalur {
namespace ml {

KMeansModel TrainKMeans(const TrainingMatrix& data, const KMeansOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = options.clusters;
  AMALUR_CHECK(k > 0 && k <= n) << "clusters must be in [1, rows]";

  // Initial centroids: k distinct rows, extracted via one-hot LMMᵀ probes.
  Rng rng(options.seed);
  const std::vector<size_t> seeds = rng.SampleWithoutReplacement(n, k);
  la::DenseMatrix selector(n, k);
  for (size_t j = 0; j < k; ++j) selector.At(seeds[j], j) = 1.0;
  // centroids = (Dᵀ · selector)ᵀ: k × d.
  la::DenseMatrix centroids = data.TransposeLeftMultiply(selector).Transpose();

  KMeansModel model{std::move(centroids), std::vector<size_t>(n, 0), {}};
  const la::DenseMatrix row_norms = data.RowSquaredNorms();  // n × 1

  for (size_t it = 0; it < options.iterations; ++it) {
    // Cross term: D · Cᵀ (n × k) — the factorizable LMM.
    la::DenseMatrix cross = data.LeftMultiply(model.centroids.Transpose());
    // Centroid norms (k × 1).
    std::vector<double> centroid_norms(k, 0.0);
    for (size_t j = 0; j < k; ++j) {
      const double* c = model.centroids.RowPtr(j);
      for (size_t f = 0; f < d; ++f) centroid_norms[j] += c[f] * c[f];
    }
    // Assignment + inertia.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      size_t best_j = 0;
      for (size_t j = 0; j < k; ++j) {
        const double dist =
            row_norms.At(i, 0) - 2.0 * cross.At(i, j) + centroid_norms[j];
        if (dist < best) {
          best = dist;
          best_j = j;
        }
      }
      model.assignments[i] = best_j;
      inertia += best < 0.0 ? 0.0 : best;  // clamp tiny negative round-off
    }
    model.inertia_history.push_back(inertia);

    // Update: C = (Dᵀ A)ᵀ / counts, A = one-hot assignment matrix (n × k).
    la::DenseMatrix assignment(n, k);
    std::vector<double> counts(k, 0.0);
    for (size_t i = 0; i < n; ++i) {
      assignment.At(i, model.assignments[i]) = 1.0;
      counts[model.assignments[i]] += 1.0;
    }
    la::DenseMatrix sums = data.TransposeLeftMultiply(assignment);  // d × k
    for (size_t j = 0; j < k; ++j) {
      if (counts[j] == 0.0) continue;  // empty cluster keeps its centroid
      for (size_t f = 0; f < d; ++f) {
        model.centroids.At(j, f) = sums.At(f, j) / counts[j];
      }
    }
  }
  return model;
}

}  // namespace ml
}  // namespace amalur
