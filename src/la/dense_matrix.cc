#include "la/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/parallel_for.h"
#include "common/rng.h"

namespace amalur {
namespace la {

namespace {
// Micro-kernel block size; tuned for ~32KiB L1 caches but not critical.
constexpr size_t kBlock = 64;
// Minimum elements per ParallelFor chunk for element-wise reductions; below
// this the scheduling overhead beats the arithmetic.
constexpr size_t kReduceGrain = 1 << 14;
}  // namespace

DenseMatrix::DenseMatrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  AMALUR_CHECK_EQ(data_.size(), rows * cols) << "bad data length for shape";
}

DenseMatrix::DenseMatrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    AMALUR_CHECK_EQ(row.size(), cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::Constant(size_t rows, size_t cols, double value) {
  DenseMatrix out(rows, cols);
  std::fill(out.data_.begin(), out.data_.end(), value);
  return out;
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.data_[i * n + i] = 1.0;
  return out;
}

DenseMatrix DenseMatrix::RandomGaussian(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix out(rows, cols);
  for (double& v : out.data_) v = rng->NextGaussian();
  return out;
}

DenseMatrix DenseMatrix::RandomUniform(size_t rows, size_t cols, double lo,
                                       double hi, Rng* rng) {
  DenseMatrix out(rows, cols);
  for (double& v : out.data_) v = rng->NextDouble(lo, hi);
  return out;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  AMALUR_CHECK_EQ(cols_, other.rows_) << "gemm shape mismatch";
  DenseMatrix out(rows_, other.cols_);
  const size_t m = rows_, k = cols_, n = other.cols_;
  // i-k-j loop order with blocking on all three extents: streams through
  // `other` rows (cache-friendly for row-major storage) and tiles `n` so the
  // active `out`/`b` row segments stay in L1 for wide right-hand sides.
  // Parallel over output row blocks — chunks write disjoint `out` rows and
  // each element accumulates its k-terms in ascending order, so the result
  // is bitwise-equal to the serial kernel at any thread count.
  common::ParallelFor(0, m, kBlock, [&](size_t row_begin, size_t row_end) {
    for (size_t ii = row_begin; ii < row_end; ii += kBlock) {
      const size_t i_end = std::min(ii + kBlock, row_end);
      for (size_t jj = 0; jj < n; jj += kBlock) {
        const size_t j_end = std::min(jj + kBlock, n);
        for (size_t kk = 0; kk < k; kk += kBlock) {
          const size_t k_end = std::min(kk + kBlock, k);
          for (size_t i = ii; i < i_end; ++i) {
            const double* a_row = RowPtr(i);
            double* out_row = out.RowPtr(i);
            for (size_t p = kk; p < k_end; ++p) {
              // No zero-skipping: this is the dense-BLAS reference the
              // materialized path is priced against; structural-zero skipping
              // is the factorized kernels' prerogative.
              const double a = a_row[p];
              const double* b_row = other.RowPtr(p);
              for (size_t j = jj; j < j_end; ++j) out_row[j] += a * b_row[j];
            }
          }
        }
      }
    }
  });
  return out;
}

DenseMatrix DenseMatrix::TransposeMultiply(const DenseMatrix& other) const {
  AMALUR_CHECK_EQ(rows_, other.rows_) << "gemm(Aᵀ,B) shape mismatch";
  DenseMatrix out(cols_, other.cols_);
  const size_t m = cols_, k = rows_, n = other.cols_;
  // Partitioning the *output* rows (this-columns) instead of the shared k
  // extent keeps writes disjoint — no per-thread accumulators or merge — and
  // every out element still sums its k-terms in ascending order, so the
  // result is bitwise-equal to the serial kernel at any thread count. Each
  // chunk streams all of `other` but only its own column band of `this`.
  common::ParallelFor(0, m, 8, [&](size_t col_begin, size_t col_end) {
    for (size_t p = 0; p < k; ++p) {
      const double* a_row = RowPtr(p);
      const double* b_row = other.RowPtr(p);
      for (size_t i = col_begin; i < col_end; ++i) {
        const double a = a_row[i];
        double* out_row = out.RowPtr(i);
        for (size_t j = 0; j < n; ++j) out_row[j] += a * b_row[j];
      }
    }
  });
  return out;
}

DenseMatrix DenseMatrix::MultiplyTranspose(const DenseMatrix& other) const {
  AMALUR_CHECK_EQ(cols_, other.cols_) << "gemm(A,Bᵀ) shape mismatch";
  DenseMatrix out(rows_, other.rows_);
  const size_t k = cols_, n = other.rows_;
  common::ParallelFor(0, rows_, 8, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const double* a_row = RowPtr(i);
      double* out_row = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) {
        const double* b_row = other.RowPtr(j);
        double acc = 0.0;
        for (size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        out_row[j] = acc;
      }
    }
  });
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  // Partition output rows: chunk writes are disjoint and contiguous.
  common::ParallelFor(0, cols_, 16, [&](size_t col_begin, size_t col_end) {
    for (size_t j = col_begin; j < col_end; ++j) {
      double* out_row = out.RowPtr(j);
      for (size_t i = 0; i < rows_; ++i) out_row[i] = data_[i * cols_ + j];
    }
  });
  return out;
}

DenseMatrix DenseMatrix::Add(const DenseMatrix& other) const {
  DenseMatrix out = *this;
  out.AddInPlace(other);
  return out;
}

DenseMatrix DenseMatrix::Subtract(const DenseMatrix& other) const {
  DenseMatrix out = *this;
  out.SubtractInPlace(other);
  return out;
}

DenseMatrix DenseMatrix::Hadamard(const DenseMatrix& other) const {
  DenseMatrix out = *this;
  out.HadamardInPlace(other);
  return out;
}

DenseMatrix DenseMatrix::Scale(double factor) const {
  DenseMatrix out = *this;
  out.ScaleInPlace(factor);
  return out;
}

void DenseMatrix::AddInPlace(const DenseMatrix& other) {
  AMALUR_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "add shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::SubtractInPlace(const DenseMatrix& other) {
  AMALUR_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "sub shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void DenseMatrix::HadamardInPlace(const DenseMatrix& other) {
  AMALUR_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "hadamard shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void DenseMatrix::ScaleInPlace(double factor) {
  for (double& v : data_) v *= factor;
}

void DenseMatrix::AddScaled(const DenseMatrix& other, double factor) {
  AMALUR_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "axpy shape mismatch";
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

DenseMatrix DenseMatrix::Map(const std::function<double(double)>& f) const {
  DenseMatrix out = *this;
  out.MapInPlace(f);
  return out;
}

void DenseMatrix::MapInPlace(const std::function<double(double)>& f) {
  // Deliberately serial: callers may pass stateful functors (accumulating
  // side channels), which the parallel TransformInPlace would race on.
  for (double& v : data_) v = f(v);
}

DenseMatrix DenseMatrix::RowSums() const {
  DenseMatrix out(rows_, 1);
  const size_t grain = std::max<size_t>(1, kReduceGrain / std::max<size_t>(cols_, 1));
  common::ParallelFor(0, rows_, grain, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const double* row = RowPtr(i);
      double acc = 0.0;
      for (size_t j = 0; j < cols_; ++j) acc += row[j];
      out.data_[i] = acc;
    }
  });
  return out;
}

DenseMatrix DenseMatrix::ColSums() const {
  DenseMatrix out(1, cols_);
  // Per-chunk partial row vectors merged in chunk order: each column still
  // accumulates its rows in ascending-chunk order, run-stable at a given
  // thread count.
  const size_t grain = std::max<size_t>(1, kReduceGrain / std::max<size_t>(cols_, 1));
  const size_t num_chunks = common::ParallelChunkCount(rows_, grain);
  if (num_chunks <= 1) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* row = RowPtr(i);
      for (size_t j = 0; j < cols_; ++j) out.data_[j] += row[j];
    }
    return out;
  }
  std::vector<DenseMatrix> partials(num_chunks);
  common::ParallelForChunks(
      0, rows_, grain, [&](size_t chunk, size_t row_begin, size_t row_end) {
        DenseMatrix partial(1, cols_);
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* row = RowPtr(i);
          for (size_t j = 0; j < cols_; ++j) partial.data_[j] += row[j];
        }
        partials[chunk] = std::move(partial);
      });
  for (const DenseMatrix& partial : partials) {
    if (!partial.empty()) out.AddInPlace(partial);
  }
  return out;
}

double DenseMatrix::Sum() const {
  const size_t num_chunks = common::ParallelChunkCount(data_.size(), kReduceGrain);
  if (num_chunks <= 1) {
    double acc = 0.0;
    for (double v : data_) acc += v;
    return acc;
  }
  std::vector<double> partials(num_chunks, 0.0);
  common::ParallelForChunks(
      0, data_.size(), kReduceGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) acc += data_[i];
        partials[chunk] = acc;
      });
  double total = 0.0;
  for (double partial : partials) total += partial;  // fixed chunk order
  return total;
}

double DenseMatrix::FrobeniusNorm() const {
  const size_t num_chunks = common::ParallelChunkCount(data_.size(), kReduceGrain);
  if (num_chunks <= 1) {
    double acc = 0.0;
    for (double v : data_) acc += v * v;
    return std::sqrt(acc);
  }
  std::vector<double> partials(num_chunks, 0.0);
  common::ParallelForChunks(
      0, data_.size(), kReduceGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) acc += data_[i] * data_[i];
        partials[chunk] = acc;
      });
  double total = 0.0;
  for (double partial : partials) total += partial;
  return std::sqrt(total);
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  AMALUR_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "diff shape mismatch";
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

DenseMatrix DenseMatrix::SliceRows(size_t begin, size_t end) const {
  AMALUR_CHECK(begin <= end && end <= rows_) << "bad row slice";
  DenseMatrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

DenseMatrix DenseMatrix::SelectColumns(const std::vector<size_t>& columns) const {
  DenseMatrix out(rows_, columns.size());
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t j = 0; j < columns.size(); ++j) {
      AMALUR_CHECK_LT(columns[j], cols_) << "column index out of range";
      out_row[j] = row[columns[j]];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::SelectRows(const std::vector<size_t>& rows) const {
  DenseMatrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    AMALUR_CHECK_LT(rows[i], rows_) << "row index out of range";
    std::copy(RowPtr(rows[i]), RowPtr(rows[i]) + cols_, out.RowPtr(i));
  }
  return out;
}

DenseMatrix DenseMatrix::ConcatColumns(const DenseMatrix& other) const {
  AMALUR_CHECK_EQ(rows_, other.rows_) << "hconcat row mismatch";
  DenseMatrix out(rows_, cols_ + other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    std::copy(RowPtr(i), RowPtr(i) + cols_, out.RowPtr(i));
    std::copy(other.RowPtr(i), other.RowPtr(i) + other.cols_,
              out.RowPtr(i) + cols_);
  }
  return out;
}

DenseMatrix DenseMatrix::ConcatRows(const DenseMatrix& other) const {
  AMALUR_CHECK_EQ(cols_, other.cols_) << "vconcat column mismatch";
  DenseMatrix out(rows_ + other.rows_, cols_);
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + data_.size());
  return out;
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::string DenseMatrix::ToString(int max_rows) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " matrix\n";
  const size_t shown = std::min<size_t>(rows_, static_cast<size_t>(max_rows));
  for (size_t i = 0; i < shown; ++i) {
    out << "  [";
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) out << ", ";
      out << At(i, j);
    }
    out << "]\n";
  }
  if (shown < rows_) out << "  ... (" << rows_ - shown << " more rows)\n";
  return out.str();
}

}  // namespace la
}  // namespace amalur
