#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "common/rng.h"

/// \file dense_matrix.h
/// Row-major dense matrix of doubles — the workhorse value type for data
/// matrices (`D_k`), model weights and intermediate results. Dimension
/// mismatches are programmer errors and are enforced with AMALUR_CHECK rather
/// than Status: a silent wrong-shape multiply would corrupt results.

namespace amalur {
namespace la {

/// Dense row-major matrix.
class DenseMatrix {
 public:
  /// An empty 0x0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  /// Uninitialized-to-zero matrix of the given shape.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix from row-major data; `data.size()` must equal `rows * cols`.
  DenseMatrix(size_t rows, size_t cols, std::vector<double> data);

  /// Matrix from nested initializer lists: `DenseMatrix({{1,2},{3,4}})`.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  static DenseMatrix Zeros(size_t rows, size_t cols) {
    return DenseMatrix(rows, cols);
  }
  static DenseMatrix Constant(size_t rows, size_t cols, double value);
  static DenseMatrix Identity(size_t n);
  /// I.i.d. N(0,1) entries.
  static DenseMatrix RandomGaussian(size_t rows, size_t cols, Rng* rng);
  /// I.i.d. U[lo, hi) entries.
  static DenseMatrix RandomUniform(size_t rows, size_t cols, double lo, double hi,
                                   Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t i, size_t j) {
    AMALUR_CHECK(i < rows_ && j < cols_)
        << "(" << i << "," << j << ") out of " << rows_ << "x" << cols_;
    return data_[i * cols_ + j];
  }
  double At(size_t i, size_t j) const {
    AMALUR_CHECK(i < rows_ && j < cols_)
        << "(" << i << "," << j << ") out of " << rows_ << "x" << cols_;
    return data_[i * cols_ + j];
  }
  double& operator()(size_t i, size_t j) { return At(i, j); }
  double operator()(size_t i, size_t j) const { return At(i, j); }

  /// Pointer to the start of row `i` (row-major contiguous).
  double* RowPtr(size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(size_t i) const { return data_.data() + i * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// `this * other` (standard GEMM, blocked for cache locality).
  DenseMatrix Multiply(const DenseMatrix& other) const;
  /// `thisᵀ * other` without forming the transpose.
  DenseMatrix TransposeMultiply(const DenseMatrix& other) const;
  /// `this * otherᵀ` without forming the transpose.
  DenseMatrix MultiplyTranspose(const DenseMatrix& other) const;

  DenseMatrix Transpose() const;

  DenseMatrix Add(const DenseMatrix& other) const;
  DenseMatrix Subtract(const DenseMatrix& other) const;
  /// Element-wise (Hadamard) product.
  DenseMatrix Hadamard(const DenseMatrix& other) const;
  DenseMatrix Scale(double factor) const;

  void AddInPlace(const DenseMatrix& other);
  void SubtractInPlace(const DenseMatrix& other);
  void HadamardInPlace(const DenseMatrix& other);
  void ScaleInPlace(double factor);
  /// `this += factor * other` (axpy).
  void AddScaled(const DenseMatrix& other, double factor);

  /// Applies `f` to every element, returning a new matrix. Serial, and `f`
  /// may be stateful; hot paths with a pure `f` use `TransformInPlace`.
  DenseMatrix Map(const std::function<double(double)>& f) const;
  /// Applies `f` to every element in place. Serial, and `f` may be stateful.
  void MapInPlace(const std::function<double(double)>& f);

  /// Hot-path variant of `MapInPlace`: `f` is a functor/lambda inlined at
  /// the call site (no `std::function` virtual-call per element) and the
  /// loop runs parallel over disjoint element ranges — `f` must therefore be
  /// pure (no shared mutable state). Cold or stateful callers keep using the
  /// `std::function` API above.
  template <typename F>
  void TransformInPlace(F f) {
    double* data = data_.data();
    common::ParallelFor(0, data_.size(), size_t{1} << 13,
                        [data, &f](size_t begin, size_t end) {
                          for (size_t i = begin; i < end; ++i) {
                            data[i] = f(data[i]);
                          }
                        });
  }

  /// Per-row sums as an rows()x1 column vector.
  DenseMatrix RowSums() const;
  /// Per-column sums as a 1xcols() row vector.
  DenseMatrix ColSums() const;
  double Sum() const;
  double FrobeniusNorm() const;
  /// max_ij |this - other|; shapes must agree.
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// New matrix keeping rows [begin, end).
  DenseMatrix SliceRows(size_t begin, size_t end) const;
  /// New matrix with the given columns, in the given order.
  DenseMatrix SelectColumns(const std::vector<size_t>& columns) const;
  /// New matrix with the given rows, in the given order.
  DenseMatrix SelectRows(const std::vector<size_t>& rows) const;
  /// Horizontal concatenation [this | other]; row counts must agree.
  DenseMatrix ConcatColumns(const DenseMatrix& other) const;
  /// Vertical concatenation [this ; other]; column counts must agree.
  DenseMatrix ConcatRows(const DenseMatrix& other) const;

  /// True when shapes match and all entries differ by at most `tolerance`.
  bool ApproxEquals(const DenseMatrix& other, double tolerance = 1e-9) const;

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  /// Compact human-readable rendering (for tests and debugging).
  std::string ToString(int max_rows = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace la
}  // namespace amalur
