#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "la/dense_matrix.h"

/// \file sparse_matrix.h
/// Compressed sparse row (CSR) matrix. The paper's mapping matrices `M_k`,
/// indicator matrices `I_k` and redundancy masks are extremely sparse binary
/// matrices (at most one nonzero per row/column block); CSR keeps both their
/// storage and the rewrite-rule multiplications proportional to nnz.

namespace amalur {
namespace la {

/// One (row, col, value) entry used to build a sparse matrix.
struct Triplet {
  size_t row;
  size_t col;
  double value;
};

/// Immutable CSR sparse matrix of doubles.
class SparseMatrix {
 public:
  /// An empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_offsets_{0} {}

  /// Builds from coordinate triplets; duplicate coordinates are summed and
  /// explicit zeros dropped.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  /// Builds from a dense matrix, keeping entries with |v| > `epsilon`.
  static SparseMatrix FromDense(const DenseMatrix& dense, double epsilon = 0.0);

  /// Sparse identity of size n.
  static SparseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Fraction of nonzero cells (0 for an empty matrix).
  double Density() const {
    const size_t cells = rows_ * cols_;
    return cells == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(cells);
  }

  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<size_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at (i, j); O(log nnz(row i)).
  double At(size_t i, size_t j) const;

  /// `this * dense` -> dense (SpMM).
  DenseMatrix Multiply(const DenseMatrix& dense) const;
  /// `thisᵀ * dense` -> dense, without materializing the transpose.
  DenseMatrix TransposeMultiply(const DenseMatrix& dense) const;
  /// `dense * this` -> dense.
  DenseMatrix LeftMultiply(const DenseMatrix& dense) const;
  /// `dense * thisᵀ` -> dense.
  DenseMatrix LeftMultiplyTranspose(const DenseMatrix& dense) const;
  /// `this * other` -> sparse (SpGEMM, row-by-row accumulation).
  SparseMatrix MultiplySparse(const SparseMatrix& other) const;

  SparseMatrix Transpose() const;

  /// Element-wise scaling.
  SparseMatrix Scale(double factor) const;

  /// Per-row sums as an rows()x1 dense column vector.
  DenseMatrix RowSums() const;
  /// Per-column sums as a 1xcols() dense row vector.
  DenseMatrix ColSums() const;
  double Sum() const;

  DenseMatrix ToDense() const;

  bool ApproxEquals(const SparseMatrix& other, double tolerance = 1e-9) const;

  /// Compact rendering of the triplet list (for tests and debugging).
  std::string ToString(int max_entries = 16) const;

 private:
  SparseMatrix(size_t rows, size_t cols, std::vector<size_t> row_offsets,
               std::vector<size_t> col_indices, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_offsets_(std::move(row_offsets)),
        col_indices_(std::move(col_indices)),
        values_(std::move(values)) {}

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_offsets_;  // size rows_ + 1
  std::vector<size_t> col_indices_;  // size nnz, sorted within each row
  std::vector<double> values_;       // size nnz
};

}  // namespace la
}  // namespace amalur
