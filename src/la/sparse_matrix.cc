#include "la/sparse_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/parallel_for.h"

namespace amalur {
namespace la {

namespace {
// Minimum CSR/dense rows per ParallelFor chunk for the SpMM kernels.
constexpr size_t kSpmmGrain = 64;
}  // namespace

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    AMALUR_CHECK(t.row < rows && t.col < cols)
        << "triplet (" << t.row << "," << t.col << ") out of " << rows << "x"
        << cols;
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<size_t> row_offsets(rows + 1, 0);
  std::vector<size_t> col_indices;
  std::vector<double> values;
  col_indices.reserve(triplets.size());
  values.reserve(triplets.size());

  size_t i = 0;
  while (i < triplets.size()) {
    // Sum duplicates at the same coordinate.
    double acc = triplets[i].value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      acc += triplets[j].value;
      ++j;
    }
    if (acc != 0.0) {
      col_indices.push_back(triplets[i].col);
      values.push_back(acc);
      ++row_offsets[triplets[i].row + 1];
    }
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) row_offsets[r + 1] += row_offsets[r];
  return SparseMatrix(rows, cols, std::move(row_offsets), std::move(col_indices),
                      std::move(values));
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense, double epsilon) {
  std::vector<Triplet> triplets;
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.At(i, j);
      if (std::fabs(v) > epsilon) triplets.push_back({i, j, v});
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
}

SparseMatrix SparseMatrix::Identity(size_t n) {
  std::vector<Triplet> triplets;
  triplets.reserve(n);
  for (size_t i = 0; i < n; ++i) triplets.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(triplets));
}

double SparseMatrix::At(size_t i, size_t j) const {
  AMALUR_CHECK(i < rows_ && j < cols_) << "sparse At out of range";
  const size_t begin = row_offsets_[i], end = row_offsets_[i + 1];
  auto it = std::lower_bound(col_indices_.begin() + begin,
                             col_indices_.begin() + end, j);
  if (it != col_indices_.begin() + end && *it == j) {
    return values_[static_cast<size_t>(it - col_indices_.begin())];
  }
  return 0.0;
}

DenseMatrix SparseMatrix::Multiply(const DenseMatrix& dense) const {
  AMALUR_CHECK_EQ(cols_, dense.rows()) << "spmm shape mismatch";
  DenseMatrix out(rows_, dense.cols());
  const size_t n = dense.cols();
  // Chunks own disjoint CSR (= output) row ranges: bitwise-equal to serial.
  common::ParallelFor(0, rows_, kSpmmGrain, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      double* out_row = out.RowPtr(i);
      for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
        const double v = values_[p];
        const double* d_row = dense.RowPtr(col_indices_[p]);
        for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
      }
    }
  });
  return out;
}

DenseMatrix SparseMatrix::TransposeMultiply(const DenseMatrix& dense) const {
  AMALUR_CHECK_EQ(rows_, dense.rows()) << "spmmᵀ shape mismatch";
  DenseMatrix out(cols_, dense.cols());
  const size_t n = dense.cols();
  // The scatter by column index spans all output rows, so chunks over the
  // CSR rows accumulate into per-chunk scatter buffers merged in fixed chunk
  // order — run-stable at a given thread count.
  const size_t num_chunks = common::ParallelChunkCount(rows_, kSpmmGrain);
  if (num_chunks <= 1) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* d_row = dense.RowPtr(i);
      for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
        const double v = values_[p];
        double* out_row = out.RowPtr(col_indices_[p]);
        for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
      }
    }
    return out;
  }
  std::vector<DenseMatrix> partials(num_chunks);
  common::ParallelForChunks(
      0, rows_, kSpmmGrain, [&](size_t chunk, size_t row_begin, size_t row_end) {
        DenseMatrix partial(cols_, n);
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* d_row = dense.RowPtr(i);
          for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
            const double v = values_[p];
            double* out_row = partial.RowPtr(col_indices_[p]);
            for (size_t j = 0; j < n; ++j) out_row[j] += v * d_row[j];
          }
        }
        partials[chunk] = std::move(partial);
      });
  for (const DenseMatrix& partial : partials) {
    if (!partial.empty()) out.AddInPlace(partial);
  }
  return out;
}

DenseMatrix SparseMatrix::LeftMultiply(const DenseMatrix& dense) const {
  AMALUR_CHECK_EQ(dense.cols(), rows_) << "dense*sparse shape mismatch";
  DenseMatrix out(dense.rows(), cols_);
  // Disjoint output rows per chunk: bitwise-equal to serial.
  common::ParallelFor(
      0, dense.rows(), 4, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* d_row = dense.RowPtr(i);
          double* out_row = out.RowPtr(i);
          for (size_t r = 0; r < rows_; ++r) {
            const double d = d_row[r];
            if (d == 0.0) continue;
            for (size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
              out_row[col_indices_[p]] += d * values_[p];
            }
          }
        }
      });
  return out;
}

DenseMatrix SparseMatrix::LeftMultiplyTranspose(const DenseMatrix& dense) const {
  AMALUR_CHECK_EQ(dense.cols(), cols_) << "dense*sparseᵀ shape mismatch";
  DenseMatrix out(dense.rows(), rows_);
  common::ParallelFor(
      0, dense.rows(), 4, [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          const double* d_row = dense.RowPtr(i);
          double* out_row = out.RowPtr(i);
          for (size_t r = 0; r < rows_; ++r) {
            double acc = 0.0;
            for (size_t p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
              acc += d_row[col_indices_[p]] * values_[p];
            }
            out_row[r] = acc;
          }
        }
      });
  return out;
}

SparseMatrix SparseMatrix::MultiplySparse(const SparseMatrix& other) const {
  AMALUR_CHECK_EQ(cols_, other.rows_) << "spgemm shape mismatch";
  std::vector<Triplet> triplets;
  std::vector<double> accumulator(other.cols_, 0.0);
  std::vector<size_t> touched;
  for (size_t i = 0; i < rows_; ++i) {
    touched.clear();
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      const double v = values_[p];
      const size_t r = col_indices_[p];
      for (size_t q = other.row_offsets_[r]; q < other.row_offsets_[r + 1]; ++q) {
        const size_t c = other.col_indices_[q];
        if (accumulator[c] == 0.0) touched.push_back(c);
        accumulator[c] += v * other.values_[q];
      }
    }
    for (size_t c : touched) {
      if (accumulator[c] != 0.0) triplets.push_back({i, c, accumulator[c]});
      accumulator[c] = 0.0;
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(triplets));
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      triplets.push_back({col_indices_[p], i, values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

SparseMatrix SparseMatrix::Scale(double factor) const {
  SparseMatrix out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

DenseMatrix SparseMatrix::RowSums() const {
  DenseMatrix out(rows_, 1);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) acc += values_[p];
    out.At(i, 0) = acc;
  }
  return out;
}

DenseMatrix SparseMatrix::ColSums() const {
  DenseMatrix out(1, cols_);
  for (size_t p = 0; p < values_.size(); ++p) {
    out.At(0, col_indices_[p]) += values_[p];
  }
  return out;
}

double SparseMatrix::Sum() const {
  double acc = 0.0;
  for (double v : values_) acc += v;
  return acc;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_offsets_[i]; p < row_offsets_[i + 1]; ++p) {
      out.At(i, col_indices_[p]) = values_[p];
    }
  }
  return out;
}

bool SparseMatrix::ApproxEquals(const SparseMatrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Nonzero structures may differ (explicit zeros); compare via dense walk of
  // both triplet lists.
  return ToDense().ApproxEquals(other.ToDense(), tolerance);
}

std::string SparseMatrix::ToString(int max_entries) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " sparse, nnz=" << nnz() << "\n";
  int shown = 0;
  for (size_t i = 0; i < rows_ && shown < max_entries; ++i) {
    for (size_t p = row_offsets_[i];
         p < row_offsets_[i + 1] && shown < max_entries; ++p, ++shown) {
      out << "  (" << i << "," << col_indices_[p] << ") = " << values_[p] << "\n";
    }
  }
  if (static_cast<size_t>(shown) < nnz()) {
    out << "  ... (" << nnz() - static_cast<size_t>(shown) << " more)\n";
  }
  return out.str();
}

}  // namespace la
}  // namespace amalur
