#include "federated/vfl.h"

#include <cmath>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/status.h"
#include "federated/paillier.h"
#include "ml/metrics.h"

namespace amalur {
namespace federated {

namespace {

/// Homomorphic Xᵀ·[[d]]: for each column j, Π_i CipherScale([[d_i]], x_ij)
/// with fixed-point-encoded scalars (negatives via the upper half-space).
/// The result's fixed-point scale is scale² (both factors scaled).
std::vector<PaillierCiphertext> HomomorphicTransposeDot(
    const Paillier& paillier, const la::DenseMatrix& x,
    const std::vector<PaillierCiphertext>& encrypted_d, double scale,
    Rng* rng) {
  const uint64_t n = paillier.public_key().n;
  std::vector<PaillierCiphertext> out;
  out.reserve(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    // Start from a fresh encryption of zero so even all-zero columns yield
    // a randomized ciphertext.
    PaillierCiphertext acc = paillier.EncryptRaw(0, rng);
    for (size_t i = 0; i < x.rows(); ++i) {
      const int64_t fixed = std::llround(x.At(i, j) * scale);
      if (fixed == 0) continue;
      const uint64_t scalar =
          fixed > 0 ? static_cast<uint64_t>(fixed)
                    : n - static_cast<uint64_t>(-fixed);
      acc = paillier.CipherAdd(acc,
                               paillier.CipherScale(encrypted_d[i], scalar));
    }
    out.push_back(acc);
  }
  return out;
}

/// Decodes a plaintext in [0, n) produced by scale²-scaled homomorphic
/// arithmetic back to a double.
double DecodeScaled(uint64_t message, uint64_t n, double scale_squared) {
  if (message > n / 2) {
    return -static_cast<double>(n - message) / scale_squared;
  }
  return static_cast<double>(message) / scale_squared;
}

std::string DefaultPartyName(size_t k) { return "P" + std::to_string(k); }

}  // namespace

Result<NaryVflResult> TrainVerticalFlrNary(const std::vector<VflParty>& parties,
                                           const la::DenseMatrix& labels,
                                           const VflOptions& options,
                                           MessageBus* bus) {
  if (bus == nullptr) return Status::InvalidArgument("bus must not be null");
  const size_t n_parties = parties.size();
  if (n_parties < 2) {
    return Status::InvalidArgument(
        "vertical FLR needs at least two parties, got ", n_parties,
        "; a single party holds every feature — train locally instead of "
        "federating");
  }
  const size_t n_rows = parties[0].x.rows();
  if (labels.rows() != n_rows || labels.cols() != 1) {
    return Status::InvalidArgument(
        "party blocks and labels must be row-aligned; labels must be n×1");
  }
  for (size_t k = 1; k < n_parties; ++k) {
    if (parties[k].x.rows() != n_rows) {
      return Status::InvalidArgument(
          "party ", k, "'s feature block has ", parties[k].x.rows(),
          " rows; every party must be row-aligned with party 0's ", n_rows);
    }
  }
  if (n_rows == 0) return Status::InvalidArgument("no training rows");
  const double inv_n = 1.0 / static_cast<double>(n_rows);

  std::vector<std::string> names(n_parties);
  for (size_t k = 0; k < n_parties; ++k) {
    names[k] = parties[k].name.empty() ? DefaultPartyName(k) : parties[k].name;
  }

  NaryVflResult result;
  result.thetas.reserve(n_parties);
  for (size_t k = 0; k < n_parties; ++k) {
    result.thetas.emplace_back(parties[k].x.cols(), 1);
  }
  result.rounds = options.iterations;
  bus->Reset();
  Rng rng(options.seed);

  // Reliable-delivery context. VFL has no quorum to fall back on — every
  // party owns feature columns the model cannot do without — so a transfer
  // that exhausts its retry budget ends the run with `kUnavailable`. The
  // blamed silo is the non-coordinator endpoint of the dead channel: when a
  // message to/from the label party (or the Paillier coordinator "C") dies,
  // the data party on the other end is the one presumed lost.
  WireTelemetry wire;
  auto blame = [&](const std::string& from, const std::string& to) {
    return (to == names[0] || to == "C") ? from : to;
  };

  // Coordinator C owns the Paillier keys in the secure mode; the data
  // parties use the public key only. (GenerateKeys is deterministic in the
  // seed.)
  Paillier paillier(Paillier::GenerateKeys(options.seed ^ 0xC0FFEE,
                                           options.paillier_prime_bits),
                    options.fractional_bits);
  const double scale =
      static_cast<double>(uint64_t{1} << options.fractional_bits);
  const double scale_squared = scale * scale;
  const uint64_t n_pub = paillier.public_key().n;

  std::vector<la::DenseMatrix> u(n_parties);
  std::vector<la::DenseMatrix> gradients(n_parties);
  for (size_t it = 0; it < options.iterations; ++it) {
    bus->BeginRound(it);
    wire.round_ms = 0;
    if (options.privacy == VflPrivacy::kPlaintext) {
      // Local forward passes, one silo per slot — fixed-order merge keeps
      // the round bitwise-reproducible at any thread count.
      common::ParallelForChunks(
          0, n_parties, 1, [&](size_t, size_t begin, size_t end) {
            for (size_t k = begin; k < end; ++k) {
              u[k] = parties[k].x.Multiply(result.thetas[k]);
            }
          });

      // Parties -> label party: u_k; the label party forms the residual d
      // and the loss, then broadcasts d. Each hop is a reliable transfer —
      // on a healthy wire exactly one send + one receive per channel, so
      // the traffic is byte-identical to the unhardened protocol.
      la::DenseMatrix predictions = u[0];
      for (size_t k = 1; k < n_parties; ++k) {
        AMALUR_ASSIGN_OR_RETURN(
            la::DenseMatrix u_at_root,
            TransferDense(bus, options.policy, names[k], names[0],
                          blame(names[k], names[0]), u[k], &wire));
        predictions = predictions.Add(u_at_root);
      }
      la::DenseMatrix d = predictions.Subtract(labels);
      result.loss_history.push_back(ml::MeanSquaredError(predictions, labels));
      std::vector<la::DenseMatrix> d_at(n_parties);
      for (size_t k = 1; k < n_parties; ++k) {
        AMALUR_ASSIGN_OR_RETURN(
            d_at[k], TransferDense(bus, options.policy, names[0], names[k],
                                   blame(names[0], names[k]), d, &wire));
      }
      d_at[0] = std::move(d);

      // Local gradient steps, again one silo per slot.
      common::ParallelForChunks(
          0, n_parties, 1, [&](size_t, size_t begin, size_t end) {
            for (size_t k = begin; k < end; ++k) {
              gradients[k] =
                  parties[k].x.TransposeMultiply(d_at[k]).Scale(inv_n);
            }
          });
      for (size_t k = 0; k < n_parties; ++k) {
        if (options.l2 > 0.0) {
          gradients[k].AddScaled(result.thetas[k], options.l2);
        }
        result.thetas[k].AddScaled(gradients[k], -options.learning_rate);
      }
      continue;
    }

    // ---- Paillier protocol (semi-honest, coordinator C holds the keys).
    // The encrypted partial-prediction sum travels a ring: party 0 sends
    // [[u_0 − y]] to party 1, each party k adds [[u_k]], and the last party
    // holds [[d]] = [[Σ_k u_k − y]]. Serial: the shared RNG threads through
    // every encryption in protocol order.
    for (size_t k = 0; k < n_parties; ++k) {
      u[k] = parties[k].x.Multiply(result.thetas[k]);
    }
    la::DenseMatrix u0_minus_y = u[0].Subtract(labels);
    std::vector<PaillierCiphertext> enc_sum =
        paillier.EncryptMatrix(u0_minus_y, &rng);
    // Ring hops are reliable transfers of the *packed* ciphertexts: a
    // retransmission resends the same words, never re-encrypts, so wire
    // faults cannot shift the protocol's RNG schedule.
    for (size_t k = 1; k < n_parties; ++k) {
      AMALUR_ASSIGN_OR_RETURN(
          std::vector<uint64_t> words,
          TransferCiphertextWords(bus, options.policy, names[k - 1], names[k],
                                  blame(names[k - 1], names[k]),
                                  PackCiphertexts(enc_sum), &wire));
      enc_sum = UnpackCiphertexts(words);
      for (size_t i = 0; i < n_rows; ++i) {
        enc_sum[i] = paillier.CipherAdd(
            enc_sum[i], paillier.EncryptDouble(u[k].At(i, 0), &rng));
      }
    }
    // The last party broadcasts [[d]] so every silo can compute its
    // gradient homomorphically.
    const size_t last = n_parties - 1;
    std::vector<std::vector<PaillierCiphertext>> enc_d_at(n_parties);
    {
      const std::vector<uint64_t> packed_d = PackCiphertexts(enc_sum);
      for (size_t k = 0; k < last; ++k) {
        AMALUR_ASSIGN_OR_RETURN(
            std::vector<uint64_t> words,
            TransferCiphertextWords(bus, options.policy, names[last], names[k],
                                    blame(names[last], names[k]), packed_d,
                                    &wire));
        enc_d_at[k] = UnpackCiphertexts(words);
      }
    }
    enc_d_at[last] = enc_sum;

    // Each party computes its masked encrypted gradient and routes it
    // through C for decryption; C only ever sees gradient + mask.
    auto masked_gradient =
        [&](const la::DenseMatrix& x,
            const std::vector<PaillierCiphertext>& d_cipher,
            const std::string& party) -> Result<la::DenseMatrix> {
      std::vector<PaillierCiphertext> enc_grad =
          HomomorphicTransposeDot(paillier, x, d_cipher, scale, &rng);
      la::DenseMatrix mask(x.cols(), 1);
      for (size_t j = 0; j < x.cols(); ++j) mask.At(j, 0) = rng.NextDouble(-8, 8);
      for (size_t j = 0; j < x.cols(); ++j) {
        // Mask enters at scale², matching the gradient's fixed-point scale.
        const int64_t fixed = std::llround(mask.At(j, 0) * scale_squared);
        const uint64_t message =
            fixed >= 0 ? static_cast<uint64_t>(fixed)
                       : n_pub - static_cast<uint64_t>(-fixed);
        enc_grad[j] =
            paillier.CipherAdd(enc_grad[j], paillier.EncryptRaw(message, &rng));
      }
      AMALUR_ASSIGN_OR_RETURN(
          std::vector<uint64_t> at_c,
          TransferCiphertextWords(bus, options.policy, party, "C",
                                  blame(party, "C"), PackCiphertexts(enc_grad),
                                  &wire));
      std::vector<PaillierCiphertext> ciphers = UnpackCiphertexts(at_c);
      la::DenseMatrix decrypted(x.cols(), 1);
      for (size_t j = 0; j < x.cols(); ++j) {
        decrypted.At(j, 0) =
            DecodeScaled(paillier.DecryptRaw(ciphers[j]), n_pub, scale_squared);
      }
      AMALUR_ASSIGN_OR_RETURN(
          la::DenseMatrix back,
          TransferDense(bus, options.policy, "C", party, blame("C", party),
                        decrypted, &wire));
      back.SubtractInPlace(mask);  // party removes its own mask
      return back;
    };

    for (size_t k = 0; k < n_parties; ++k) {
      AMALUR_ASSIGN_OR_RETURN(
          la::DenseMatrix gradient,
          masked_gradient(parties[k].x, enc_d_at[k], names[k]));
      gradient.ScaleInPlace(inv_n);
      if (options.l2 > 0.0) {
        gradient.AddScaled(result.thetas[k], options.l2);
      }
      result.thetas[k].AddScaled(gradient, -options.learning_rate);
    }

    // Telemetry: C decrypts the residual to report the training loss. This
    // is an observability concession of the harness (documented), not part
    // of the privacy protocol.
    double loss = 0.0;
    for (size_t i = 0; i < n_rows; ++i) {
      const double di = paillier.DecryptDouble(enc_sum[i]);
      loss += di * di;
    }
    result.loss_history.push_back(loss * inv_n);
  }

  result.bytes_transferred = bus->TotalBytes();
  result.messages = bus->TotalMessages();
  result.retries = wire.retries;
  result.bytes_wasted = bus->WastedBytes();
  return result;
}

Result<VflResult> TrainVerticalFlr(const la::DenseMatrix& xa,
                                   const la::DenseMatrix& labels,
                                   const la::DenseMatrix& xb,
                                   const VflOptions& options, MessageBus* bus) {
  std::vector<VflParty> parties(2);
  parties[0].name = "A";
  parties[0].x = xa;
  parties[1].name = "B";
  parties[1].x = xb;
  AMALUR_ASSIGN_OR_RETURN(NaryVflResult nary,
                          TrainVerticalFlrNary(parties, labels, options, bus));
  VflResult result;
  result.theta_a = std::move(nary.thetas[0]);
  result.theta_b = std::move(nary.thetas[1]);
  result.loss_history = std::move(nary.loss_history);
  result.bytes_transferred = nary.bytes_transferred;
  result.messages = nary.messages;
  return result;
}

Result<NaryVflAlignment> AlignForVflNary(const metadata::DiMetadata& metadata,
                                         size_t label_column) {
  const size_t n_sources = metadata.num_sources();
  if (n_sources < 2) {
    return Status::InvalidArgument(
        "VFL alignment needs >= 2 sources, got ", n_sources,
        n_sources == 1
            ? "; a single source holds every feature and the label — train "
              "locally (or factorized) instead of federating"
            : "");
  }
  if (label_column >= metadata.target_cols()) {
    return Status::OutOfRange("label column out of range");
  }
  // The VFL setting requires a shared sample space: every target row must be
  // contributed by every silo (Example 2's inner join generalized to fully
  // covering stars and snowflakes, whose composed indicators DeriveGraph
  // assigned per silo).
  for (size_t k = 0; k < n_sources; ++k) {
    if (metadata.source(k).indicator.ContributedRows() !=
        metadata.target_rows()) {
      return Status::FailedPrecondition(
          "source ", k, " does not cover the full sample space; VFL needs an "
          "inner-join scenario (or a fully covering star/snowflake)");
    }
  }
  // The label lives with the fact root (party 0).
  if (metadata.source(0).mapping.At(label_column) < 0) {
    return Status::FailedPrecondition("base party does not hold the label");
  }

  NaryVflAlignment alignment;
  alignment.parties.resize(n_sources);
  // Which silo owns each target column: the redundancy chain guarantees
  // that under full row coverage every column is provided by exactly one
  // silo (earlier sources mask later copies everywhere); -1 = unclaimed.
  std::vector<int64_t> owner(metadata.target_cols(), -1);
  for (size_t k = 0; k < n_sources; ++k) {
    VflParty& party = alignment.parties[k];
    party.name = DefaultPartyName(k);
    // Masked contribution: T_k ∘ R_k — built silo-locally from the silo's
    // own (composed) indicator/mapping/redundancy triple.
    la::DenseMatrix t_k = metadata.SourceContribution(k);
    metadata.source(k).redundancy.ApplyInPlace(&t_k);
    if (k == 0) {
      alignment.labels = la::DenseMatrix(metadata.target_rows(), 1);
      for (size_t i = 0; i < metadata.target_rows(); ++i) {
        alignment.labels.At(i, 0) = t_k.At(i, label_column);
      }
    }
    for (size_t c : metadata.source(k).mapping.MappedTargetColumns()) {
      if (c == label_column) continue;
      bool contributes = false;
      for (size_t i = 0; i < metadata.target_rows() && !contributes; ++i) {
        contributes = !metadata.source(k).redundancy.IsRedundant(i, c);
      }
      if (!contributes) continue;  // fully redundant: provided upstream
      if (owner[c] != -1) {
        return Status::FailedPrecondition(
            "target column ", c, " is contributed by silos ", owner[c],
            " and ", k,
            "; vertical federation needs each feature column owned by "
            "exactly one silo");
      }
      owner[c] = static_cast<int64_t>(k);
      party.columns.push_back(c);
    }
    party.x = t_k.SelectColumns(party.columns);
  }
  return alignment;
}

Result<VflAlignment> AlignForVfl(const metadata::DiMetadata& metadata,
                                 size_t label_column) {
  if (metadata.num_sources() != 2) {
    return Status::Unimplemented("VFL alignment handles two parties");
  }
  AMALUR_ASSIGN_OR_RETURN(NaryVflAlignment nary,
                          AlignForVflNary(metadata, label_column));
  VflAlignment alignment;
  alignment.xa = std::move(nary.parties[0].x);
  alignment.xb = std::move(nary.parties[1].x);
  alignment.labels = std::move(nary.labels);
  alignment.a_columns = std::move(nary.parties[0].columns);
  alignment.b_columns = std::move(nary.parties[1].columns);
  return alignment;
}

}  // namespace federated
}  // namespace amalur
