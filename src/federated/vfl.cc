#include "federated/vfl.h"

#include <cmath>

#include "common/rng.h"
#include "federated/paillier.h"
#include "ml/metrics.h"

namespace amalur {
namespace federated {

namespace {

/// Homomorphic Xᵀ·[[d]]: for each column j, Π_i CipherScale([[d_i]], x_ij)
/// with fixed-point-encoded scalars (negatives via the upper half-space).
/// The result's fixed-point scale is scale² (both factors scaled).
std::vector<PaillierCiphertext> HomomorphicTransposeDot(
    const Paillier& paillier, const la::DenseMatrix& x,
    const std::vector<PaillierCiphertext>& encrypted_d, double scale,
    Rng* rng) {
  const uint64_t n = paillier.public_key().n;
  std::vector<PaillierCiphertext> out;
  out.reserve(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) {
    // Start from a fresh encryption of zero so even all-zero columns yield
    // a randomized ciphertext.
    PaillierCiphertext acc = paillier.EncryptRaw(0, rng);
    for (size_t i = 0; i < x.rows(); ++i) {
      const int64_t fixed = std::llround(x.At(i, j) * scale);
      if (fixed == 0) continue;
      const uint64_t scalar =
          fixed > 0 ? static_cast<uint64_t>(fixed)
                    : n - static_cast<uint64_t>(-fixed);
      acc = paillier.CipherAdd(acc,
                               paillier.CipherScale(encrypted_d[i], scalar));
    }
    out.push_back(acc);
  }
  return out;
}

/// Decodes a plaintext in [0, n) produced by scale²-scaled homomorphic
/// arithmetic back to a double.
double DecodeScaled(uint64_t message, uint64_t n, double scale_squared) {
  if (message > n / 2) {
    return -static_cast<double>(n - message) / scale_squared;
  }
  return static_cast<double>(message) / scale_squared;
}

}  // namespace

Result<VflResult> TrainVerticalFlr(const la::DenseMatrix& xa,
                                   const la::DenseMatrix& labels,
                                   const la::DenseMatrix& xb,
                                   const VflOptions& options, MessageBus* bus) {
  if (bus == nullptr) return Status::InvalidArgument("bus must not be null");
  if (xa.rows() != xb.rows() || labels.rows() != xa.rows() ||
      labels.cols() != 1) {
    return Status::InvalidArgument(
        "xa, xb and labels must be row-aligned; labels must be n×1");
  }
  const size_t n_rows = xa.rows();
  if (n_rows == 0) return Status::InvalidArgument("no training rows");
  const double inv_n = 1.0 / static_cast<double>(n_rows);

  VflResult result{la::DenseMatrix(xa.cols(), 1), la::DenseMatrix(xb.cols(), 1),
                   {}, 0, 0};
  bus->Reset();
  Rng rng(options.seed);

  // Coordinator C owns the Paillier keys in the secure mode; A and B use
  // the public key only. (GenerateKeys is deterministic in the seed.)
  Paillier paillier(Paillier::GenerateKeys(options.seed ^ 0xC0FFEE,
                                           options.paillier_prime_bits),
                    options.fractional_bits);
  const double scale =
      static_cast<double>(uint64_t{1} << options.fractional_bits);
  const double scale_squared = scale * scale;
  const uint64_t n_pub = paillier.public_key().n;

  for (size_t it = 0; it < options.iterations; ++it) {
    // Local forward passes.
    la::DenseMatrix ua = xa.Multiply(result.theta_a);  // at A
    la::DenseMatrix ub = xb.Multiply(result.theta_b);  // at B

    if (options.privacy == VflPrivacy::kPlaintext) {
      // B -> A: u_B; A forms the residual d and the loss, A -> B: d.
      bus->Send("B", "A", ub);
      AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix ub_at_a, bus->Receive("B", "A"));
      la::DenseMatrix predictions = ua.Add(ub_at_a);
      la::DenseMatrix d = predictions.Subtract(labels);
      result.loss_history.push_back(ml::MeanSquaredError(predictions, labels));
      bus->Send("A", "B", d);
      AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix d_at_b, bus->Receive("A", "B"));

      la::DenseMatrix grad_a = xa.TransposeMultiply(d).Scale(inv_n);
      la::DenseMatrix grad_b = xb.TransposeMultiply(d_at_b).Scale(inv_n);
      if (options.l2 > 0.0) {
        grad_a.AddScaled(result.theta_a, options.l2);
        grad_b.AddScaled(result.theta_b, options.l2);
      }
      result.theta_a.AddScaled(grad_a, -options.learning_rate);
      result.theta_b.AddScaled(grad_b, -options.learning_rate);
      continue;
    }

    // ---- Paillier protocol (semi-honest, coordinator C holds the keys).
    // A -> B: [[u_A − y]]; B forms [[d]] = [[u_A − y]] ⊕ [[u_B]].
    la::DenseMatrix ua_minus_y = ua.Subtract(labels);
    std::vector<PaillierCiphertext> enc_ua_y =
        paillier.EncryptMatrix(ua_minus_y, &rng);
    bus->SendBytes("A", "B", PackCiphertexts(enc_ua_y));
    AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words_at_b,
                            bus->ReceiveBytes("A", "B"));
    std::vector<PaillierCiphertext> enc_d = UnpackCiphertexts(words_at_b);
    for (size_t i = 0; i < n_rows; ++i) {
      enc_d[i] = paillier.CipherAdd(
          enc_d[i], paillier.EncryptDouble(ub.At(i, 0), &rng));
    }
    // B -> A: [[d]] so A can also compute its gradient homomorphically.
    bus->SendBytes("B", "A", PackCiphertexts(enc_d));
    AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words_at_a,
                            bus->ReceiveBytes("B", "A"));
    std::vector<PaillierCiphertext> enc_d_at_a = UnpackCiphertexts(words_at_a);

    // Each party computes its masked encrypted gradient and routes it
    // through C for decryption; C only ever sees gradient + mask.
    auto masked_gradient =
        [&](const la::DenseMatrix& x,
            const std::vector<PaillierCiphertext>& d_cipher,
            const std::string& party) -> Result<la::DenseMatrix> {
      std::vector<PaillierCiphertext> enc_grad =
          HomomorphicTransposeDot(paillier, x, d_cipher, scale, &rng);
      la::DenseMatrix mask(x.cols(), 1);
      for (size_t j = 0; j < x.cols(); ++j) mask.At(j, 0) = rng.NextDouble(-8, 8);
      for (size_t j = 0; j < x.cols(); ++j) {
        // Mask enters at scale², matching the gradient's fixed-point scale.
        const int64_t fixed = std::llround(mask.At(j, 0) * scale_squared);
        const uint64_t message =
            fixed >= 0 ? static_cast<uint64_t>(fixed)
                       : n_pub - static_cast<uint64_t>(-fixed);
        enc_grad[j] =
            paillier.CipherAdd(enc_grad[j], paillier.EncryptRaw(message, &rng));
      }
      bus->SendBytes(party, "C", PackCiphertexts(enc_grad));
      AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> at_c,
                              bus->ReceiveBytes(party, "C"));
      std::vector<PaillierCiphertext> ciphers = UnpackCiphertexts(at_c);
      la::DenseMatrix decrypted(x.cols(), 1);
      for (size_t j = 0; j < x.cols(); ++j) {
        decrypted.At(j, 0) =
            DecodeScaled(paillier.DecryptRaw(ciphers[j]), n_pub, scale_squared);
      }
      bus->Send("C", party, decrypted);
      AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix back, bus->Receive("C", party));
      back.SubtractInPlace(mask);  // party removes its own mask
      return back;
    };

    AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix grad_a,
                            masked_gradient(xa, enc_d_at_a, "A"));
    AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix grad_b,
                            masked_gradient(xb, enc_d, "B"));
    grad_a.ScaleInPlace(inv_n);
    grad_b.ScaleInPlace(inv_n);
    if (options.l2 > 0.0) {
      grad_a.AddScaled(result.theta_a, options.l2);
      grad_b.AddScaled(result.theta_b, options.l2);
    }
    result.theta_a.AddScaled(grad_a, -options.learning_rate);
    result.theta_b.AddScaled(grad_b, -options.learning_rate);

    // Telemetry: C decrypts the residual to report the training loss. This
    // is an observability concession of the harness (documented), not part
    // of the privacy protocol.
    double loss = 0.0;
    for (size_t i = 0; i < n_rows; ++i) {
      const double di = paillier.DecryptDouble(enc_d[i]);
      loss += di * di;
    }
    result.loss_history.push_back(loss * inv_n);
  }

  result.bytes_transferred = bus->TotalBytes();
  result.messages = bus->TotalMessages();
  return result;
}

Result<VflAlignment> AlignForVfl(const metadata::DiMetadata& metadata,
                                 size_t label_column) {
  if (metadata.num_sources() != 2) {
    return Status::Unimplemented("VFL alignment handles two parties");
  }
  if (label_column >= metadata.target_cols()) {
    return Status::OutOfRange("label column out of range");
  }
  // The VFL setting requires a shared sample space: every target row must be
  // contributed by both parties (Example 2, inner join).
  for (size_t k = 0; k < 2; ++k) {
    if (metadata.source(k).indicator.ContributedRows() !=
        metadata.target_rows()) {
      return Status::FailedPrecondition(
          "source ", k, " does not cover the full sample space; VFL needs an "
          "inner-join scenario");
    }
  }

  // Masked contributions: overlapping columns are provided by the base
  // party only, so the two feature blocks are disjoint by construction.
  la::DenseMatrix t0 = metadata.SourceContribution(0);
  la::DenseMatrix t1 = metadata.SourceContribution(1);
  metadata.source(0).redundancy.ApplyInPlace(&t0);
  metadata.source(1).redundancy.ApplyInPlace(&t1);

  VflAlignment alignment;
  // Label comes from the base party.
  const auto label_source = metadata.source(0).mapping.At(label_column);
  if (label_source < 0) {
    return Status::FailedPrecondition("base party does not hold the label");
  }
  alignment.labels = la::DenseMatrix(metadata.target_rows(), 1);
  for (size_t i = 0; i < metadata.target_rows(); ++i) {
    alignment.labels.At(i, 0) = t0.At(i, label_column);
  }

  // Party A: base-mapped feature columns; party B: its mapped columns that
  // are not masked everywhere (i.e. not fully redundant).
  for (size_t c : metadata.source(0).mapping.MappedTargetColumns()) {
    if (c != label_column) alignment.a_columns.push_back(c);
  }
  for (size_t c : metadata.source(1).mapping.MappedTargetColumns()) {
    if (c == label_column) continue;
    bool contributes = false;
    for (size_t i = 0; i < metadata.target_rows() && !contributes; ++i) {
      contributes = !metadata.source(1).redundancy.IsRedundant(i, c);
    }
    if (contributes) alignment.b_columns.push_back(c);
  }
  alignment.xa = t0.SelectColumns(alignment.a_columns);
  alignment.xb = t1.SelectColumns(alignment.b_columns);
  return alignment;
}

}  // namespace federated
}  // namespace amalur
