#ifndef AMALUR_FEDERATED_VFL_H_
#define AMALUR_FEDERATED_VFL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "federated/message_bus.h"
#include "la/dense_matrix.h"
#include "metadata/di_metadata.h"

/// \file vfl.h
/// Vertical federated linear regression (FLR) after Yang et al. [35] and
/// §V.A of the paper: party A holds features X_A and the labels, party B
/// holds X_B over the *same aligned rows*; the objective is
///
///     min_{Θ_A, Θ_B} Σ_i (Θ_A X_A⁽ⁱ⁾ + Θ_B X_B⁽ⁱ⁾ − Y⁽ⁱ⁾)².
///
/// Two wire modes: plaintext (baseline) and Paillier (the secure protocol:
/// residuals travel encrypted, gradients are computed homomorphically by
/// the data parties and decrypted by a coordinator that only ever sees
/// masked gradients). All traffic flows through the `MessageBus`, so the
/// encryption blow-up of §V.B is directly measurable.

namespace amalur {
namespace federated {

/// Wire protection for the VFL protocol.
enum class VflPrivacy : int8_t {
  /// Residuals and intermediate sums travel in the clear (baseline).
  kPlaintext = 0,
  /// Paillier-encrypted residual exchange with masked coordinator
  /// decryption.
  kPaillier = 1,
};

/// Hyper-parameters of the federated trainer.
struct VflOptions {
  size_t iterations = 100;
  double learning_rate = 0.1;
  double l2 = 0.0;
  VflPrivacy privacy = VflPrivacy::kPlaintext;
  /// Paillier key size (prime bits) and fixed-point precision.
  int paillier_prime_bits = 30;
  int fractional_bits = 12;
  uint64_t seed = 99;
};

/// A trained federated model plus communication accounting.
struct VflResult {
  la::DenseMatrix theta_a;  // pA × 1 (party A's local weights)
  la::DenseMatrix theta_b;  // pB × 1 (party B's local weights)
  std::vector<double> loss_history;
  size_t bytes_transferred = 0;
  size_t messages = 0;
};

/// Trains vertical FLR. `xa` (n × pA) and `labels` (n × 1) live at party A;
/// `xb` (n × pB) lives at party B; rows are pre-aligned (see `AlignForVfl`).
Result<VflResult> TrainVerticalFlr(const la::DenseMatrix& xa,
                                   const la::DenseMatrix& labels,
                                   const la::DenseMatrix& xb,
                                   const VflOptions& options, MessageBus* bus);

/// Row-aligned VFL inputs derived from DI metadata (§V.A: X_A = I₁D₁M₁ᵀ,
/// X_B = I₂D₂M₂ᵀ restricted to feature columns, redundancy-masked so
/// overlapping columns are provided by exactly one party).
struct VflAlignment {
  la::DenseMatrix xa;
  la::DenseMatrix xb;
  la::DenseMatrix labels;
  /// Target column indices each party's local weights correspond to.
  std::vector<size_t> a_columns;
  std::vector<size_t> b_columns;
};

/// Builds the alignment. `label_column` is the target column holding Y
/// (owned by the base source). Requires every target row to be contributed
/// by both parties (the inner-join / VFL setting, Example 2 of Table I).
Result<VflAlignment> AlignForVfl(const metadata::DiMetadata& metadata,
                                 size_t label_column);

}  // namespace federated
}  // namespace amalur

#endif  // AMALUR_FEDERATED_VFL_H_
