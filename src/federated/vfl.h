#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "federated/fault_injection.h"
#include "federated/message_bus.h"
#include "la/dense_matrix.h"
#include "metadata/di_metadata.h"

/// \file vfl.h
/// Vertical federated linear regression (FLR) after Yang et al. [35] and
/// §V.A of the paper, generalized to N feature-holding silos: party 0 holds
/// features X_0 and the labels, parties 1..N−1 hold X_1..X_{N−1} over the
/// *same aligned rows*; the objective is
///
///     min_{Θ_0..Θ_{N−1}} Σ_i (Σ_k Θ_k X_k⁽ⁱ⁾ − Y⁽ⁱ⁾)².
///
/// Two wire modes: plaintext (baseline — partial predictions are summed at
/// the label party, the residual is broadcast back) and Paillier (the
/// secure protocol: the encrypted partial-prediction sum travels a ring
/// through every party, the residual stays encrypted, gradients are
/// computed homomorphically by the data parties and decrypted by a
/// coordinator that only ever sees masked gradients). All traffic flows
/// through the `MessageBus`, so the encryption blow-up of §V.B is directly
/// measurable. At N = 2 both wire modes reproduce the historical pairwise
/// protocol bit for bit (messages, RNG schedule and arithmetic order are
/// unchanged); `TrainVerticalFlr` keeps the two-party signature as a thin
/// wrapper.

namespace amalur {
namespace federated {

/// Wire protection for the VFL protocol.
enum class VflPrivacy : int8_t {
  /// Residuals and intermediate sums travel in the clear (baseline).
  kPlaintext = 0,
  /// Paillier-encrypted residual exchange with masked coordinator
  /// decryption.
  kPaillier = 1,
};

/// Hyper-parameters of the federated trainer.
struct VflOptions {
  size_t iterations = 100;
  double learning_rate = 0.1;
  double l2 = 0.0;
  VflPrivacy privacy = VflPrivacy::kPlaintext;
  /// Paillier key size (prime bits) and fixed-point precision.
  int paillier_prime_bits = 30;
  int fractional_bits = 12;
  uint64_t seed = 99;
  /// Reliability policy: retry/timeout budgets per transfer. Vertical FLR
  /// cannot shed a feature-owning party, so `on_silo_loss = kDegrade` does
  /// not change VFL behavior — an unreachable data party (or coordinator)
  /// always ends the run with `kUnavailable` naming the lost silo.
  FederatedPolicy policy;
};

/// One silo of the n-ary vertical protocol: its aligned local feature block
/// plus bookkeeping for reassembling the global model.
struct VflParty {
  /// Wire name on the bus (defaults to "P<k>" when empty; the two-party
  /// wrapper uses the historical "A"/"B").
  std::string name;
  /// n × p_k local feature block (rows aligned across all parties).
  la::DenseMatrix x;
  /// Target column index of each local feature (used by the executor to
  /// scatter θ_k back into target-feature order; may be empty for callers
  /// that train on raw blocks).
  std::vector<size_t> columns;
};

/// A trained n-ary federated model plus communication accounting.
struct NaryVflResult {
  /// θ_k per party (p_k × 1), in party order.
  std::vector<la::DenseMatrix> thetas;
  std::vector<double> loss_history;
  size_t rounds = 0;
  size_t bytes_transferred = 0;
  size_t messages = 0;
  /// Reliability telemetry. VFL cannot degrade, so `silos_dropped` is
  /// always empty and `rounds_degraded` 0 on success — the fields exist so
  /// the executor reports one shape for both federated strategies.
  std::vector<std::string> silos_dropped;
  size_t rounds_degraded = 0;
  /// Retransmissions performed by the reliable-delivery layer.
  size_t retries = 0;
  /// Bytes burnt on transmissions that never arrived (`MessageBus::WastedBytes`).
  size_t bytes_wasted = 0;
};

/// Trains n-ary vertical FLR. `parties[0]` is the label party (it also
/// coordinates rounds); `labels` (n × 1) live with it. Every party's block
/// must be row-aligned. Party-local forward/gradient work fans out over the
/// shared pool (`ParallelForChunks`, fixed-order merge) in the plaintext
/// mode; the Paillier mode is serial because the protocol threads one RNG
/// through the encryption schedule.
Result<NaryVflResult> TrainVerticalFlrNary(const std::vector<VflParty>& parties,
                                           const la::DenseMatrix& labels,
                                           const VflOptions& options,
                                           MessageBus* bus);

/// A trained two-party federated model plus communication accounting
/// (legacy shape of `NaryVflResult`).
struct VflResult {
  la::DenseMatrix theta_a;  // pA × 1 (party A's local weights)
  la::DenseMatrix theta_b;  // pB × 1 (party B's local weights)
  std::vector<double> loss_history;
  size_t bytes_transferred = 0;
  size_t messages = 0;
};

/// Two-party convenience wrapper over `TrainVerticalFlrNary` (parties "A"
/// and "B"); bitwise-identical to the historical pairwise trainer.
Result<VflResult> TrainVerticalFlr(const la::DenseMatrix& xa,
                                   const la::DenseMatrix& labels,
                                   const la::DenseMatrix& xb,
                                   const VflOptions& options, MessageBus* bus);

/// Row-aligned n-ary VFL inputs derived from DI metadata (§V.A: silo k's
/// block is I_k D_k M_kᵀ restricted to its feature columns — for snowflake
/// silos I_k is the *composed* indicator `DeriveGraph` assigned along the
/// dimension chain — redundancy-masked so every target column is provided
/// by exactly one silo).
struct NaryVflAlignment {
  /// One party per silo, in source order; party 0 (the fact root) holds the
  /// labels.
  std::vector<VflParty> parties;
  la::DenseMatrix labels;
};

/// Builds the n-ary alignment. `label_column` is the target column holding
/// Y (owned by the fact root). Requires every target row to be contributed
/// by every silo (the shared-sample-space / inner-join setting of Example 2
/// generalized: fully-covering stars and snowflakes qualify).
Result<NaryVflAlignment> AlignForVflNary(const metadata::DiMetadata& metadata,
                                         size_t label_column);

/// Legacy two-party alignment (pairwise scenarios only).
struct VflAlignment {
  la::DenseMatrix xa;
  la::DenseMatrix xb;
  la::DenseMatrix labels;
  /// Target column indices each party's local weights correspond to.
  std::vector<size_t> a_columns;
  std::vector<size_t> b_columns;
};

/// Two-party wrapper over `AlignForVflNary`; rejects scenarios with more
/// than two sources.
Result<VflAlignment> AlignForVfl(const metadata::DiMetadata& metadata,
                                 size_t label_column);

}  // namespace federated
}  // namespace amalur
