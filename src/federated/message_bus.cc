#include "federated/message_bus.h"

#include "common/logging.h"

namespace amalur {
namespace federated {

void MessageBus::Account(const Channel& channel, size_t payload_bytes) {
  TransferStats& stats = stats_[channel];
  stats.messages += 1;
  stats.bytes += payload_bytes + kEnvelopeBytes;
  total_bytes_ += payload_bytes + kEnvelopeBytes;
  total_messages_ += 1;
}

void MessageBus::Send(const std::string& from, const std::string& to,
                      la::DenseMatrix payload) {
  const Channel channel{from, to};
  Account(channel, payload.size() * sizeof(double));
  dense_queues_[channel].push_back(std::move(payload));
}

void MessageBus::SendBytes(const std::string& from, const std::string& to,
                           std::vector<uint64_t> payload) {
  const Channel channel{from, to};
  Account(channel, payload.size() * sizeof(uint64_t));
  byte_queues_[channel].push_back(std::move(payload));
}

void MessageBus::SendCiphertextWords(const std::string& from,
                                     const std::string& to,
                                     std::vector<uint64_t> packed) {
  AMALUR_CHECK_EQ(packed.size() % 2, 0u)
      << "ciphertext payloads are (lo, hi) word pairs";
  const size_t ciphertexts = packed.size() / 2;
  const Channel channel{from, to};
  Account(channel, ciphertexts * kCiphertextWireBytes);
  byte_queues_[channel].push_back(std::move(packed));
}

Result<la::DenseMatrix> MessageBus::Receive(const std::string& from,
                                            const std::string& to) {
  auto it = dense_queues_.find({from, to});
  if (it == dense_queues_.end() || it->second.empty()) {
    return Status::NotFound("no pending message on channel ", from, " -> ", to);
  }
  la::DenseMatrix payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

Result<std::vector<uint64_t>> MessageBus::ReceiveBytes(const std::string& from,
                                                       const std::string& to) {
  auto it = byte_queues_.find({from, to});
  if (it == byte_queues_.end() || it->second.empty()) {
    return Status::NotFound("no pending bytes on channel ", from, " -> ", to);
  }
  std::vector<uint64_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

TransferStats MessageBus::ChannelStats(const std::string& from,
                                       const std::string& to) const {
  auto it = stats_.find({from, to});
  return it == stats_.end() ? TransferStats{} : it->second;
}

void MessageBus::Reset() {
  dense_queues_.clear();
  byte_queues_.clear();
  stats_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace federated
}  // namespace amalur
