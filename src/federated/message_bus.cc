#include "federated/message_bus.h"

#include "common/logging.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace amalur {
namespace federated {

void MessageBus::AccountLocked(const Channel& channel, size_t payload_bytes) {
  TransferStats& stats = stats_[channel];
  stats.messages += 1;
  stats.bytes += payload_bytes + kEnvelopeBytes;
  total_bytes_ += payload_bytes + kEnvelopeBytes;
  total_messages_ += 1;
}

void MessageBus::MeterTransfer(const Channel& channel, size_t payload_bytes) {
  common::MutexLock lock(mu_);
  AccountLocked(channel, payload_bytes);
}

void MessageBus::EnqueueDense(const Channel& channel, la::DenseMatrix payload) {
  common::MutexLock lock(mu_);
  dense_queues_[channel].push_back(std::move(payload));
}

void MessageBus::EnqueueWords(const Channel& channel,
                              std::vector<uint64_t> payload) {
  common::MutexLock lock(mu_);
  byte_queues_[channel].push_back(std::move(payload));
}

void MessageBus::Send(const std::string& from, const std::string& to,
                      la::DenseMatrix payload) {
  const Channel channel{from, to};
  common::MutexLock lock(mu_);
  AccountLocked(channel, DensePayloadBytes(payload));
  dense_queues_[channel].push_back(std::move(payload));
}

void MessageBus::SendBytes(const std::string& from, const std::string& to,
                           std::vector<uint64_t> payload) {
  const Channel channel{from, to};
  common::MutexLock lock(mu_);
  AccountLocked(channel, WordPayloadBytes(payload));
  byte_queues_[channel].push_back(std::move(payload));
}

void MessageBus::SendCiphertextWords(const std::string& from,
                                     const std::string& to,
                                     std::vector<uint64_t> packed) {
  AMALUR_CHECK_EQ(packed.size() % 2, 0u)
      << "ciphertext payloads are (lo, hi) word pairs";
  const Channel channel{from, to};
  common::MutexLock lock(mu_);
  AccountLocked(channel, CiphertextPayloadBytes(packed));
  byte_queues_[channel].push_back(std::move(packed));
}

Result<la::DenseMatrix> MessageBus::Receive(const std::string& from,
                                            const std::string& to) {
  common::MutexLock lock(mu_);
  auto it = dense_queues_.find({from, to});
  if (it == dense_queues_.end() || it->second.empty()) {
    return Status::NotFound("no pending message on channel ", from, " -> ", to);
  }
  la::DenseMatrix payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

Result<std::vector<uint64_t>> MessageBus::ReceiveBytes(const std::string& from,
                                                       const std::string& to) {
  common::MutexLock lock(mu_);
  auto it = byte_queues_.find({from, to});
  if (it == byte_queues_.end() || it->second.empty()) {
    return Status::NotFound("no pending bytes on channel ", from, " -> ", to);
  }
  std::vector<uint64_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

TransferStats MessageBus::ChannelStats(const std::string& from,
                                       const std::string& to) const {
  common::MutexLock lock(mu_);
  auto it = stats_.find({from, to});
  return it == stats_.end() ? TransferStats{} : it->second;
}

size_t MessageBus::TotalBytes() const {
  common::MutexLock lock(mu_);
  return total_bytes_;
}

size_t MessageBus::TotalMessages() const {
  common::MutexLock lock(mu_);
  return total_messages_;
}

void MessageBus::Reset() {
  common::MutexLock lock(mu_);
  dense_queues_.clear();
  byte_queues_.clear();
  stats_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace federated
}  // namespace amalur
