#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "federated/message_bus.h"
#include "la/dense_matrix.h"

/// \file fault_injection.h
/// The fault layer of the federated runtime: deterministic chaos for the
/// `MessageBus` plus the retry/timeout/quorum policy the hardened protocols
/// (`vfl.cc`, `hfl.cc`) train under.
///
/// A `FaultSchedule` describes, per silo, which faults its links suffer —
/// random message drops, delivery delays, duplicated transmissions, and
/// crash-at-round / rejoin-at-round lifecycle events. `FaultyMessageBus`
/// applies the schedule to every transfer while keeping byte metering
/// honest: delivered payloads (including successful retransmissions) land
/// in `TotalBytes()` exactly as on the plain bus, while transmissions that
/// never arrive — dropped messages, payloads addressed to a crashed silo,
/// redundant retransmissions of a delayed message — accumulate in
/// `WastedBytes()` instead of silently disappearing.
///
/// Everything is seeded through `common::Rng` and consumed on the protocol
/// round thread only, so a chaos run is bitwise-reproducible: the same seed
/// yields the same drops, the same retransmissions, the same byte counts
/// and the same final weights at any thread count.

namespace amalur {
namespace federated {

/// Fault behavior of one silo's links (and its crash lifecycle). All link
/// faults apply to the silo's *outbound* messages; the crash window applies
/// to both directions (a dead silo neither sends nor receives).
struct SiloFaultProfile {
  /// Probability that an outbound message is lost on the wire.
  double drop_rate = 0.0;
  /// Probability that an outbound message is delayed: the receiver's next
  /// `delay_attempts` receive attempts miss it before it surfaces.
  double delay_rate = 0.0;
  size_t delay_attempts = 1;
  /// Probability that an outbound message is transmitted twice; the bus's
  /// delivery layer deduplicates, metering the redundant copy as waste.
  double duplicate_rate = 0.0;
  /// The silo is down for rounds in [crash_at_round, rejoin_at_round).
  /// -1 = never crashes / never rejoins.
  int64_t crash_at_round = -1;
  int64_t rejoin_at_round = -1;
};

/// A deterministic, seeded chaos plan: one default profile applied to every
/// silo plus per-silo overrides (an override *replaces* the default for
/// that silo, it does not merge).
class FaultSchedule {
 public:
  explicit FaultSchedule(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// Profile for every silo without an explicit override.
  void SetDefault(const SiloFaultProfile& profile) { default_ = profile; }
  /// Per-silo override (replaces the default for `silo`).
  void Set(const std::string& silo, const SiloFaultProfile& profile) {
    overrides_[silo] = profile;
  }

  const SiloFaultProfile& ProfileFor(const std::string& silo) const {
    auto it = overrides_.find(silo);
    return it == overrides_.end() ? default_ : it->second;
  }

  /// Whether `silo` is inside its crash window at `round`.
  bool IsDownAt(const std::string& silo, size_t round) const;

 private:
  uint64_t seed_ = 0;
  SiloFaultProfile default_;
  std::map<std::string, SiloFaultProfile> overrides_;
};

/// A `MessageBus` that routes every transfer through a `FaultSchedule`.
///
/// Fault semantics per send, decided by one deterministic draw from the
/// schedule's RNG (in protocol order — bus calls happen only on the round
/// thread, so the fault stream is reproducible):
///
///  * **suppressed** — the sender is crashed: nothing is transmitted and
///    nothing is metered (a dead silo spends no bytes).
///  * **dropped** — the receiver is crashed, or the sender's `drop_rate`
///    fired: the payload is transmitted but never delivered; its bytes
///    (payload + envelope) count toward `WastedBytes()`, not `TotalBytes()`.
///  * **delayed** — metered normally at send time (it will arrive), but the
///    receiver's next `delay_attempts` receive attempts return `kNotFound`
///    before it surfaces. A retransmission sent while a delayed copy is
///    pending is recognized as redundant and metered as waste — the
///    delivery layer deduplicates, so the receiver never sees stale extras.
///  * **duplicated** — delivered once; the redundant wire copy is waste.
///
/// `Reset()` (called by every protocol at training start) re-seeds the RNG
/// from the schedule, so each training run over the same bus replays the
/// same fault stream.
class FaultyMessageBus : public MessageBus {
 public:
  explicit FaultyMessageBus(FaultSchedule schedule)
      : schedule_(std::move(schedule)), rng_(schedule_.seed()) {}

  void Send(const std::string& from, const std::string& to,
            la::DenseMatrix payload) override;
  void SendBytes(const std::string& from, const std::string& to,
                 std::vector<uint64_t> payload) override;
  void SendCiphertextWords(const std::string& from, const std::string& to,
                           std::vector<uint64_t> packed) override;
  Result<la::DenseMatrix> Receive(const std::string& from,
                                  const std::string& to) override;
  Result<std::vector<uint64_t>> ReceiveBytes(const std::string& from,
                                             const std::string& to) override;

  void BeginRound(size_t round) override;
  void Reset() override;

  size_t WastedBytes() const override;
  size_t MessagesDropped() const override;
  size_t MessagesSuppressed() const;
  size_t MessagesDuplicated() const;

  /// Whether `silo` is crashed at the current round.
  bool IsDown(const std::string& silo) const;
  size_t current_round() const;

 private:
  enum class Outcome { kDeliver, kDrop, kDelay, kDuplicate, kSuppress };

  template <typename Payload>
  struct Delayed {
    Payload payload;
    size_t remaining_attempts = 0;
  };

  /// Classifies one send; consumes exactly one RNG draw unless an endpoint
  /// is crashed.
  Outcome ClassifyLocked(const std::string& from, const std::string& to,
                         size_t* delay_attempts) REQUIRES(fault_mu_);

  /// Shared send path for all three payload kinds. Selects the in-flight
  /// queue for `Payload` under the lock (tag overloads below), so guarded
  /// state is never passed by reference from an unlocked context.
  template <typename Payload>
  void ApplySendFaults(const Channel& channel, Payload payload,
                       size_t payload_bytes,
                       void (FaultyMessageBus::*enqueue)(const Channel&,
                                                         Payload))
      EXCLUDES(fault_mu_);

  /// Payload-type → delayed-queue member selection (the tag pointer is only
  /// a compile-time discriminator and is always null).
  std::map<Channel, std::deque<Delayed<la::DenseMatrix>>>& DelayedQueue(
      const la::DenseMatrix*) REQUIRES(fault_mu_) {
    return delayed_dense_;
  }
  std::map<Channel, std::deque<Delayed<std::vector<uint64_t>>>>& DelayedQueue(
      const std::vector<uint64_t>*) REQUIRES(fault_mu_) {
    return delayed_words_;
  }

  void EnqueueDensePayload(const Channel& channel, la::DenseMatrix payload) {
    EnqueueDense(channel, std::move(payload));
  }
  void EnqueueWordPayload(const Channel& channel,
                          std::vector<uint64_t> payload) {
    EnqueueWords(channel, std::move(payload));
  }

  FaultSchedule schedule_;

  mutable common::Mutex fault_mu_;
  Rng rng_ GUARDED_BY(fault_mu_);
  size_t round_ GUARDED_BY(fault_mu_) = 0;
  size_t bytes_wasted_ GUARDED_BY(fault_mu_) = 0;
  size_t messages_dropped_ GUARDED_BY(fault_mu_) = 0;
  size_t messages_suppressed_ GUARDED_BY(fault_mu_) = 0;
  size_t messages_duplicated_ GUARDED_BY(fault_mu_) = 0;
  std::map<Channel, std::deque<Delayed<la::DenseMatrix>>> delayed_dense_
      GUARDED_BY(fault_mu_);
  std::map<Channel, std::deque<Delayed<std::vector<uint64_t>>>> delayed_words_
      GUARDED_BY(fault_mu_);
};

/// How the coordinator reacts when a silo stops answering.
enum class SiloLossAction : int8_t {
  /// Abort the run with `kUnavailable` naming the lost silo.
  kFail = 0,
  /// Keep going on the surviving quorum: HFL re-weights FedAvg over the
  /// reachable shards (lost silos may rejoin at a later round boundary);
  /// VFL cannot shed a feature-owning party and still fails with
  /// `kUnavailable` — vertical degradation is structurally impossible.
  kDegrade = 1,
};

const char* SiloLossActionToString(SiloLossAction action);

/// Per-message reliability knobs: how hard a transfer tries before the
/// remote end is presumed lost. Time is *simulated* (accumulated in
/// `WireTelemetry`), never slept — chaos runs stay fast and deterministic.
struct RetryPolicy {
  /// Retransmissions after the initial send (so max_retries + 1 delivery
  /// attempts in total).
  size_t max_retries = 3;
  /// Simulated cost of one failed receive attempt.
  size_t message_timeout_ms = 50;
  /// Exponential backoff between attempts: min(base << attempt, max).
  size_t base_backoff_ms = 25;
  size_t max_backoff_ms = 400;
};

/// Coordinator policy for a fault-tolerant federated run. The defaults are
/// transparent for healthy runs: retries only fire on a fault, so a
/// no-fault run's traffic, RNG schedule and weights are bitwise-identical
/// to the pre-policy protocols.
struct FederatedPolicy {
  /// Minimum reachable participants a round may proceed with (HFL). Falling
  /// below it is `kUnavailable` even under `kDegrade`.
  size_t min_quorum = 1;
  /// Simulated per-round budget: once a round has burnt this much virtual
  /// time on timeouts/backoffs, remaining unresponsive silos are declared
  /// lost without consuming the rest of their retry budget.
  size_t max_round_timeout_ms = 60000;
  SiloLossAction on_silo_loss = SiloLossAction::kFail;
  RetryPolicy retry;
};

/// Accumulated reliability telemetry of one training run. `round_ms` is
/// reset by the protocol at each round boundary; the rest only grows.
struct WireTelemetry {
  size_t retries = 0;
  size_t virtual_ms = 0;
  size_t round_ms = 0;
};

/// Reliable-delivery helpers: send + receive on (`from` -> `to`) with
/// retransmission, simulated timeout and bounded exponential backoff per
/// `policy.retry`, charging virtual time to `wire`. On a healthy channel
/// each performs exactly one send and one receive — byte-for-byte what the
/// unhardened protocols did. When the budget (retries or the round's
/// `max_round_timeout_ms`) is exhausted, returns `kUnavailable` naming
/// `blame` (the remote silo from the caller's perspective) and the channel.
Result<la::DenseMatrix> TransferDense(MessageBus* bus,
                                      const FederatedPolicy& policy,
                                      const std::string& from,
                                      const std::string& to,
                                      const std::string& blame,
                                      const la::DenseMatrix& payload,
                                      WireTelemetry* wire);
Result<std::vector<uint64_t>> TransferWords(MessageBus* bus,
                                            const FederatedPolicy& policy,
                                            const std::string& from,
                                            const std::string& to,
                                            const std::string& blame,
                                            const std::vector<uint64_t>& payload,
                                            WireTelemetry* wire);
/// Ciphertext payloads retransmit the *same* packed words — a resend never
/// re-encrypts, so wire faults cannot perturb the protocol's RNG schedule.
Result<std::vector<uint64_t>> TransferCiphertextWords(
    MessageBus* bus, const FederatedPolicy& policy, const std::string& from,
    const std::string& to, const std::string& blame,
    const std::vector<uint64_t>& packed, WireTelemetry* wire);

}  // namespace federated
}  // namespace amalur
