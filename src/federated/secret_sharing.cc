#include "federated/secret_sharing.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace amalur {
namespace federated {

uint64_t AdditiveSecretSharing::Encode(double value) const {
  // Round-to-nearest fixed point; negatives wrap via two's complement.
  const double scaled = value * scale_;
  AMALUR_CHECK(std::fabs(scaled) < 9.0e18) << "fixed-point overflow: " << value;
  return static_cast<uint64_t>(static_cast<int64_t>(std::llround(scaled)));
}

double AdditiveSecretSharing::Decode(uint64_t encoded) const {
  return static_cast<double>(static_cast<int64_t>(encoded)) / scale_;
}

std::vector<ShareMatrix> AdditiveSecretSharing::Share(
    const la::DenseMatrix& values, size_t parties, Rng* rng) const {
  AMALUR_CHECK_GE(parties, 2u) << "need at least two parties";
  std::vector<ShareMatrix> shares(parties);
  for (ShareMatrix& share : shares) {
    share.rows = values.rows();
    share.cols = values.cols();
    share.data.assign(values.size(), 0);
  }
  for (size_t cell = 0; cell < values.size(); ++cell) {
    const uint64_t secret = Encode(values.data()[cell]);
    uint64_t acc = 0;
    for (size_t p = 0; p + 1 < parties; ++p) {
      const uint64_t r = rng->Next();
      shares[p].data[cell] = r;
      acc += r;  // wrap-around is the ring addition
    }
    shares[parties - 1].data[cell] = secret - acc;  // wrap-around subtraction
  }
  return shares;
}

la::DenseMatrix AdditiveSecretSharing::Reconstruct(
    const std::vector<ShareMatrix>& shares) const {
  AMALUR_CHECK(!shares.empty()) << "no shares";
  const size_t rows = shares[0].rows, cols = shares[0].cols;
  la::DenseMatrix out(rows, cols);
  for (size_t cell = 0; cell < rows * cols; ++cell) {
    uint64_t acc = 0;
    for (const ShareMatrix& share : shares) {
      AMALUR_CHECK(share.rows == rows && share.cols == cols)
          << "share shape mismatch";
      acc += share.data[cell];
    }
    out.data()[cell] = Decode(acc);
  }
  return out;
}

ShareMatrix AdditiveSecretSharing::AddShares(const ShareMatrix& a,
                                             const ShareMatrix& b) {
  AMALUR_CHECK(a.rows == b.rows && a.cols == b.cols) << "share shape mismatch";
  ShareMatrix out = a;
  for (size_t cell = 0; cell < out.data.size(); ++cell) {
    out.data[cell] += b.data[cell];
  }
  return out;
}

}  // namespace federated
}  // namespace amalur
