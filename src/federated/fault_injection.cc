#include "federated/fault_injection.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace amalur {
namespace federated {

bool FaultSchedule::IsDownAt(const std::string& silo, size_t round) const {
  const SiloFaultProfile& profile = ProfileFor(silo);
  if (profile.crash_at_round < 0) return false;
  if (static_cast<int64_t>(round) < profile.crash_at_round) return false;
  return profile.rejoin_at_round < 0 ||
         static_cast<int64_t>(round) < profile.rejoin_at_round;
}

void FaultyMessageBus::BeginRound(size_t round) {
  common::MutexLock lock(fault_mu_);
  round_ = round;
}

void FaultyMessageBus::Reset() {
  {
    common::MutexLock lock(fault_mu_);
    rng_ = Rng(schedule_.seed());
    round_ = 0;
    bytes_wasted_ = 0;
    messages_dropped_ = 0;
    messages_suppressed_ = 0;
    messages_duplicated_ = 0;
    delayed_dense_.clear();
    delayed_words_.clear();
  }
  MessageBus::Reset();
}

size_t FaultyMessageBus::WastedBytes() const {
  common::MutexLock lock(fault_mu_);
  return bytes_wasted_;
}

size_t FaultyMessageBus::MessagesDropped() const {
  common::MutexLock lock(fault_mu_);
  return messages_dropped_;
}

size_t FaultyMessageBus::MessagesSuppressed() const {
  common::MutexLock lock(fault_mu_);
  return messages_suppressed_;
}

size_t FaultyMessageBus::MessagesDuplicated() const {
  common::MutexLock lock(fault_mu_);
  return messages_duplicated_;
}

bool FaultyMessageBus::IsDown(const std::string& silo) const {
  common::MutexLock lock(fault_mu_);
  return schedule_.IsDownAt(silo, round_);
}

size_t FaultyMessageBus::current_round() const {
  common::MutexLock lock(fault_mu_);
  return round_;
}

FaultyMessageBus::Outcome FaultyMessageBus::ClassifyLocked(
    const std::string& from, const std::string& to, size_t* delay_attempts) {
  if (schedule_.IsDownAt(from, round_)) return Outcome::kSuppress;
  if (schedule_.IsDownAt(to, round_)) return Outcome::kDrop;
  // Link faults follow the *sender's* profile. One draw per send keeps the
  // fault stream aligned with the protocol's message sequence, so the same
  // seed reproduces the same faults regardless of thread count.
  const SiloFaultProfile& profile = schedule_.ProfileFor(from);
  const double draw = rng_.NextDouble();
  if (draw < profile.drop_rate) return Outcome::kDrop;
  if (draw < profile.drop_rate + profile.delay_rate) {
    *delay_attempts = std::max<size_t>(profile.delay_attempts, 1);
    return Outcome::kDelay;
  }
  if (draw <
      profile.drop_rate + profile.delay_rate + profile.duplicate_rate) {
    return Outcome::kDuplicate;
  }
  return Outcome::kDeliver;
}

template <typename Payload>
void FaultyMessageBus::ApplySendFaults(
    const Channel& channel, Payload payload, size_t payload_bytes,
    void (FaultyMessageBus::*enqueue)(const Channel&, Payload)) {
  const size_t wire_bytes = payload_bytes + kEnvelopeBytes;
  Outcome outcome;
  size_t delay_attempts = 0;
  {
    common::MutexLock lock(fault_mu_);
    auto& delayed = DelayedQueue(static_cast<const Payload*>(nullptr));
    // A send on a channel that still has a delayed message in flight is a
    // retransmission of that message: the original *will* arrive, so the
    // resend is redundant wire traffic — metered as waste, never enqueued
    // (the receiver must not see stale duplicates). No RNG is consumed, so
    // retries cannot shift the fault stream of later messages.
    auto it = delayed.find(channel);
    if (it != delayed.end() && !it->second.empty()) {
      bytes_wasted_ += wire_bytes;
      messages_duplicated_ += 1;
      return;
    }
    outcome = ClassifyLocked(channel.first, channel.second, &delay_attempts);
    switch (outcome) {
      case Outcome::kSuppress:
        messages_suppressed_ += 1;
        return;
      case Outcome::kDrop:
        bytes_wasted_ += wire_bytes;
        messages_dropped_ += 1;
        return;
      case Outcome::kDelay:
        delayed[channel].push_back(
            Delayed<Payload>{std::move(payload), delay_attempts});
        break;
      case Outcome::kDuplicate:
        // Delivered once below; the redundant wire copy is pure waste.
        bytes_wasted_ += wire_bytes;
        messages_duplicated_ += 1;
        break;
      case Outcome::kDeliver:
        break;
    }
  }
  // The message will arrive (now or after the delay), so it is metered as
  // delivered traffic — `TotalBytes()` stays the honest transfer volume.
  MeterTransfer(channel, payload_bytes);
  if (outcome != Outcome::kDelay) {
    (this->*enqueue)(channel, std::move(payload));
  }
}

void FaultyMessageBus::Send(const std::string& from, const std::string& to,
                           la::DenseMatrix payload) {
  const size_t payload_bytes = DensePayloadBytes(payload);
  ApplySendFaults(Channel{from, to}, std::move(payload), payload_bytes,
                  &FaultyMessageBus::EnqueueDensePayload);
}

void FaultyMessageBus::SendBytes(const std::string& from, const std::string& to,
                                 std::vector<uint64_t> payload) {
  const size_t payload_bytes = WordPayloadBytes(payload);
  ApplySendFaults(Channel{from, to}, std::move(payload), payload_bytes,
                  &FaultyMessageBus::EnqueueWordPayload);
}

void FaultyMessageBus::SendCiphertextWords(const std::string& from,
                                           const std::string& to,
                                           std::vector<uint64_t> packed) {
  AMALUR_CHECK_EQ(packed.size() % 2, 0u)
      << "ciphertext payloads are (lo, hi) word pairs";
  const size_t payload_bytes = CiphertextPayloadBytes(packed);
  ApplySendFaults(Channel{from, to}, std::move(packed), payload_bytes,
                  &FaultyMessageBus::EnqueueWordPayload);
}

Result<la::DenseMatrix> FaultyMessageBus::Receive(const std::string& from,
                                                  const std::string& to) {
  const Channel channel{from, to};
  {
    common::MutexLock lock(fault_mu_);
    auto it = delayed_dense_.find(channel);
    if (it != delayed_dense_.end() && !it->second.empty()) {
      Delayed<la::DenseMatrix>& head = it->second.front();
      if (head.remaining_attempts > 0) {
        head.remaining_attempts -= 1;
        return Status::NotFound("message on channel ", from, " -> ", to,
                                " still in flight");
      }
      la::DenseMatrix payload = std::move(head.payload);
      it->second.pop_front();
      EnqueueDense(channel, std::move(payload));
    }
  }
  return MessageBus::Receive(from, to);
}

Result<std::vector<uint64_t>> FaultyMessageBus::ReceiveBytes(
    const std::string& from, const std::string& to) {
  const Channel channel{from, to};
  {
    common::MutexLock lock(fault_mu_);
    auto it = delayed_words_.find(channel);
    if (it != delayed_words_.end() && !it->second.empty()) {
      Delayed<std::vector<uint64_t>>& head = it->second.front();
      if (head.remaining_attempts > 0) {
        head.remaining_attempts -= 1;
        return Status::NotFound("message on channel ", from, " -> ", to,
                                " still in flight");
      }
      std::vector<uint64_t> payload = std::move(head.payload);
      it->second.pop_front();
      EnqueueWords(channel, std::move(payload));
    }
  }
  return MessageBus::ReceiveBytes(from, to);
}

const char* SiloLossActionToString(SiloLossAction action) {
  switch (action) {
    case SiloLossAction::kFail:
      return "fail";
    case SiloLossAction::kDegrade:
      return "degrade";
  }
  return "unknown";
}

namespace {

/// Simulated backoff before retransmission attempt `attempt` (0-based):
/// min(base << attempt, max), with the shift clamped so it cannot overflow.
size_t BackoffMs(const RetryPolicy& retry, size_t attempt) {
  const size_t shift = std::min<size_t>(attempt, 20);
  return std::min(retry.base_backoff_ms << shift, retry.max_backoff_ms);
}

/// Generic reliable transfer: `send(payload)` + `receive()` with
/// retransmission, simulated timeouts and capped exponential backoff. The
/// same payload object is resent verbatim on every attempt, so retries
/// never consume protocol randomness.
template <typename Payload, typename SendFn, typename ReceiveFn>
Result<Payload> ReliableTransfer(const FederatedPolicy& policy,
                                 const std::string& from,
                                 const std::string& to,
                                 const std::string& blame, SendFn&& send,
                                 ReceiveFn&& receive, WireTelemetry* wire) {
  const RetryPolicy& retry = policy.retry;
  for (size_t attempt = 0;; ++attempt) {
    send();
    auto received = receive();
    if (received.ok()) return std::move(received).ValueOrDie();
    // Failed receive: the message never surfaced within the (simulated)
    // timeout window. Charge the timeout, then either give up or back off
    // and retransmit.
    wire->virtual_ms += retry.message_timeout_ms;
    wire->round_ms += retry.message_timeout_ms;
    const bool budget_spent = attempt >= retry.max_retries;
    const bool round_expired = wire->round_ms > policy.max_round_timeout_ms;
    if (budget_spent || round_expired) {
      return Status::Unavailable(
          "silo ", blame, " unreachable: channel ", from, " -> ", to,
          " dead after ", attempt + 1, " delivery attempts (",
          round_expired && !budget_spent ? "round timeout budget exhausted"
                                         : "retry budget exhausted",
          ", ", wire->round_ms, " ms of simulated round time)");
    }
    const size_t backoff = BackoffMs(retry, attempt);
    wire->virtual_ms += backoff;
    wire->round_ms += backoff;
    wire->retries += 1;
  }
}

}  // namespace

Result<la::DenseMatrix> TransferDense(MessageBus* bus,
                                      const FederatedPolicy& policy,
                                      const std::string& from,
                                      const std::string& to,
                                      const std::string& blame,
                                      const la::DenseMatrix& payload,
                                      WireTelemetry* wire) {
  return ReliableTransfer<la::DenseMatrix>(
      policy, from, to, blame, [&] { bus->Send(from, to, payload); },
      [&] { return bus->Receive(from, to); }, wire);
}

Result<std::vector<uint64_t>> TransferWords(MessageBus* bus,
                                            const FederatedPolicy& policy,
                                            const std::string& from,
                                            const std::string& to,
                                            const std::string& blame,
                                            const std::vector<uint64_t>& payload,
                                            WireTelemetry* wire) {
  return ReliableTransfer<std::vector<uint64_t>>(
      policy, from, to, blame, [&] { bus->SendBytes(from, to, payload); },
      [&] { return bus->ReceiveBytes(from, to); }, wire);
}

Result<std::vector<uint64_t>> TransferCiphertextWords(
    MessageBus* bus, const FederatedPolicy& policy, const std::string& from,
    const std::string& to, const std::string& blame,
    const std::vector<uint64_t>& packed, WireTelemetry* wire) {
  return ReliableTransfer<std::vector<uint64_t>>(
      policy, from, to, blame,
      [&] { bus->SendCiphertextWords(from, to, packed); },
      [&] { return bus->ReceiveBytes(from, to); }, wire);
}

}  // namespace federated
}  // namespace amalur
