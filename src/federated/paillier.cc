#include "federated/paillier.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace amalur {
namespace federated {

namespace {

using uint128 = unsigned __int128;

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t mod) {
  return static_cast<uint64_t>(static_cast<uint128>(a) * b % mod);
}

uint64_t PowMod(uint64_t base, uint64_t exponent, uint64_t mod) {
  uint64_t result = 1 % mod;
  base %= mod;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, base, mod);
    base = MulMod(base, base, mod);
    exponent >>= 1;
  }
  return result;
}

/// Multiply mod n² where n² < 2¹²⁴: shift-and-add keeps every intermediate
/// below 2¹²⁵, inside the 128-bit range.
uint128 MulMod128(uint128 a, uint128 b, uint128 mod) {
  a %= mod;
  b %= mod;
  uint128 result = 0;
  while (b > 0) {
    if (b & 1) {
      result += a;
      if (result >= mod) result -= mod;
    }
    a <<= 1;
    if (a >= mod) a -= mod;
    b >>= 1;
  }
  return result;
}

uint128 PowMod128(uint128 base, uint128 exponent, uint128 mod) {
  uint128 result = 1 % mod;
  base %= mod;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod128(result, base, mod);
    base = MulMod128(base, base, mod);
    exponent >>= 1;
  }
  return result;
}

uint64_t ModInverse(uint64_t value, uint64_t mod) {
  // Extended Euclid on signed 128-bit accumulators.
  __int128 t = 0, new_t = 1;
  __int128 r = mod, new_r = value % mod;
  while (new_r != 0) {
    const __int128 q = r / new_r;
    const __int128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const __int128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  AMALUR_CHECK_EQ(static_cast<int64_t>(r), 1) << "value not invertible";
  if (t < 0) t += mod;
  return static_cast<uint64_t>(t);
}

}  // namespace

bool IsPrime64(uint64_t value) {
  if (value < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    if (value == p) return true;
    if (value % p == 0) return false;
  }
  // Deterministic Miller–Rabin for 64-bit with the standard witness set.
  uint64_t d = value - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    uint64_t x = PowMod(a, d, value);
    if (x == 1 || x == value - 1) continue;
    bool witness = true;
    for (int i = 0; i < r - 1; ++i) {
      x = MulMod(x, x, value);
      if (x == value - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

PaillierKeyPair Paillier::GenerateKeys(uint64_t seed, int prime_bits) {
  AMALUR_CHECK(prime_bits >= 16 && prime_bits <= 31) << "prime_bits in [16,31]";
  Rng rng(seed);
  auto next_prime = [&rng, prime_bits]() {
    while (true) {
      uint64_t candidate = (rng.Next() >> (64 - prime_bits)) | 1ULL |
                           (uint64_t{1} << (prime_bits - 1));
      if (IsPrime64(candidate)) return candidate;
    }
  };
  uint64_t p = next_prime();
  uint64_t q = next_prime();
  while (q == p) q = next_prime();

  PaillierKeyPair keys;
  keys.public_key.n = p * q;
  keys.public_key.n_squared =
      static_cast<uint128>(keys.public_key.n) * keys.public_key.n;
  const uint64_t lambda = std::lcm(p - 1, q - 1);
  keys.private_key.lambda = lambda;
  // With g = n+1: L(g^λ mod n²) = λ mod n, so μ = λ⁻¹ mod n.
  keys.private_key.mu =
      ModInverse(lambda % keys.public_key.n, keys.public_key.n);
  return keys;
}

Paillier::Paillier(PaillierKeyPair keys, int fractional_bits)
    : keys_(keys), scale_(static_cast<double>(uint64_t{1} << fractional_bits)) {}

PaillierCiphertext Paillier::EncryptRaw(uint64_t message, Rng* rng) const {
  const uint64_t n = keys_.public_key.n;
  const uint128 n2 = keys_.public_key.n_squared;
  AMALUR_CHECK_LT(message, n) << "plaintext out of range";
  uint64_t r = 1 + rng->NextUint64(n - 1);
  while (std::gcd(r, n) != 1) r = 1 + rng->NextUint64(n - 1);
  // c = (1 + m·n) · rⁿ mod n²  (g = n+1 shortcut).
  const uint128 g_m = (1 + static_cast<uint128>(message) * n) % n2;
  const uint128 r_n = PowMod128(r, n, n2);
  return MulMod128(g_m, r_n, n2);
}

uint64_t Paillier::DecryptRaw(PaillierCiphertext ciphertext) const {
  const uint64_t n = keys_.public_key.n;
  const uint128 n2 = keys_.public_key.n_squared;
  // m = L(c^λ mod n²) · μ mod n with L(x) = (x − 1) / n.
  const uint128 c_lambda = PowMod128(ciphertext, keys_.private_key.lambda, n2);
  const uint64_t l = static_cast<uint64_t>((c_lambda - 1) / n);
  return MulMod(l % n, keys_.private_key.mu, n);
}

PaillierCiphertext Paillier::CipherAdd(PaillierCiphertext a,
                                       PaillierCiphertext b) const {
  return MulMod128(a, b, keys_.public_key.n_squared);
}

PaillierCiphertext Paillier::CipherScale(PaillierCiphertext ciphertext,
                                         uint64_t scalar) const {
  return PowMod128(ciphertext, scalar, keys_.public_key.n_squared);
}

PaillierCiphertext Paillier::EncryptDouble(double value, Rng* rng) const {
  const uint64_t n = keys_.public_key.n;
  const double scaled = value * scale_;
  AMALUR_CHECK(std::fabs(scaled) < static_cast<double>(n / 2))
      << "fixed-point overflow for plaintext space";
  const int64_t fixed = std::llround(scaled);
  const uint64_t message =
      fixed >= 0 ? static_cast<uint64_t>(fixed)
                 : n - static_cast<uint64_t>(-fixed);  // upper half = negative
  return EncryptRaw(message, rng);
}

double Paillier::DecryptDouble(PaillierCiphertext ciphertext) const {
  const uint64_t n = keys_.public_key.n;
  const uint64_t message = DecryptRaw(ciphertext);
  if (message > n / 2) {
    return -static_cast<double>(n - message) / scale_;
  }
  return static_cast<double>(message) / scale_;
}

std::vector<PaillierCiphertext> Paillier::EncryptMatrix(
    const la::DenseMatrix& values, Rng* rng) const {
  std::vector<PaillierCiphertext> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out.push_back(EncryptDouble(values.data()[i], rng));
  }
  return out;
}

la::DenseMatrix Paillier::DecryptMatrix(
    const std::vector<PaillierCiphertext>& ciphertexts, size_t rows,
    size_t cols) const {
  AMALUR_CHECK_EQ(ciphertexts.size(), rows * cols) << "ciphertext count";
  la::DenseMatrix out(rows, cols);
  for (size_t i = 0; i < ciphertexts.size(); ++i) {
    out.data()[i] = DecryptDouble(ciphertexts[i]);
  }
  return out;
}

std::vector<uint64_t> PackCiphertexts(
    const std::vector<PaillierCiphertext>& ciphertexts) {
  std::vector<uint64_t> words;
  words.reserve(ciphertexts.size() * 2);
  for (PaillierCiphertext c : ciphertexts) {
    words.push_back(static_cast<uint64_t>(c));
    words.push_back(static_cast<uint64_t>(c >> 64));
  }
  return words;
}

std::vector<PaillierCiphertext> UnpackCiphertexts(
    const std::vector<uint64_t>& words) {
  AMALUR_CHECK_EQ(words.size() % 2, 0u) << "odd ciphertext word count";
  std::vector<PaillierCiphertext> out;
  out.reserve(words.size() / 2);
  for (size_t i = 0; i < words.size(); i += 2) {
    out.push_back(static_cast<uint128>(words[i]) |
                  (static_cast<uint128>(words[i + 1]) << 64));
  }
  return out;
}

}  // namespace federated
}  // namespace amalur
