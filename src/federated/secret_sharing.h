#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "la/dense_matrix.h"

/// \file secret_sharing.h
/// Additive secret sharing over ℤ_{2⁶⁴} with fixed-point encoding — one of
/// the §V privacy primitives. A value matrix is split into n random shares
/// whose wrap-around sum reconstructs the fixed-point encoding; any n−1
/// shares are uniformly random and reveal nothing. Addition is homomorphic:
/// summing the share-wise sums of two sharings reconstructs the sum.

namespace amalur {
namespace federated {

/// A matrix of 64-bit ring elements (one share of a secret matrix).
struct ShareMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<uint64_t> data;  // row-major, size rows*cols

  uint64_t At(size_t i, size_t j) const { return data[i * cols + j]; }
};

/// Fixed-point additive secret sharing.
class AdditiveSecretSharing {
 public:
  /// `fractional_bits` controls precision: values are scaled by
  /// 2^fractional_bits before rounding. 24 bits keeps ~1e-7 absolute error
  /// for gradient-scale magnitudes.
  explicit AdditiveSecretSharing(int fractional_bits = 24)
      : scale_(static_cast<double>(uint64_t{1} << fractional_bits)) {}

  /// Splits `values` into `parties` shares (parties >= 2).
  std::vector<ShareMatrix> Share(const la::DenseMatrix& values, size_t parties,
                                 Rng* rng) const;

  /// Reconstructs the secret from all shares.
  la::DenseMatrix Reconstruct(const std::vector<ShareMatrix>& shares) const;

  /// Share-wise addition: Add(a, b)[p] = a[p] + b[p] (mod 2⁶⁴); the
  /// reconstruction of the result is the sum of the two secrets.
  static ShareMatrix AddShares(const ShareMatrix& a, const ShareMatrix& b);

  /// Fixed-point encoding of one double (two's-complement wrap for
  /// negatives).
  uint64_t Encode(double value) const;
  /// Inverse of `Encode`.
  double Decode(uint64_t encoded) const;

 private:
  double scale_;
};

}  // namespace federated
}  // namespace amalur
