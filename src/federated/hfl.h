#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "federated/fault_injection.h"
#include "federated/message_bus.h"
#include "la/dense_matrix.h"
#include "metadata/di_metadata.h"

/// \file hfl.h
/// Horizontal federated learning (FedAvg) for the union scenario (Example 4
/// of Table I): parties hold row partitions over a shared feature space.
/// Each round every party runs local gradient steps and the server averages
/// the models, optionally through *secure aggregation* built on additive
/// secret sharing — the server only ever sees the sum of the updates, never
/// an individual party's model. Union-of-stars integrations are naturally
/// horizontally partitioned — one FedAvg participant per fact shard
/// (`AlignForHfl`) — and per-party local work fans out over the shared pool
/// with a fixed-order merge, so rounds are bitwise-reproducible at any
/// thread count.

namespace amalur {
namespace federated {

/// One party's horizontal partition.
struct HflPartition {
  la::DenseMatrix features;  // n_p × d
  la::DenseMatrix labels;    // n_p × 1
};

/// Hyper-parameters for FedAvg.
struct HflOptions {
  size_t rounds = 30;
  size_t local_epochs = 1;
  double learning_rate = 0.1;
  /// L2 regularization strength of the local gradient steps (0 = off).
  double l2 = 0.0;
  /// Aggregate updates via additive secret sharing instead of plaintext.
  bool secure_aggregation = true;
  uint64_t seed = 7;
  /// Reliability policy. Under `on_silo_loss = kDegrade` a party whose
  /// round broadcast exhausts its retry budget is marked down and FedAvg
  /// re-weights over the surviving shards (the round average divides by the
  /// survivors' rows, not the global total); a down party is probed once
  /// per round boundary and re-admitted when it answers again. Falling
  /// below `min_quorum` reachable participants is `kUnavailable` even when
  /// degrading.
  FederatedPolicy policy;
};

/// A trained global model plus communication accounting.
struct HflResult {
  la::DenseMatrix weights;  // d × 1
  /// Global training MSE after each round (over the round's participants).
  std::vector<double> loss_history;
  size_t bytes_transferred = 0;
  size_t messages = 0;
  /// Parties that were declared lost at least once (degrade mode only; a
  /// silo appears once even if it later rejoined).
  std::vector<std::string> silos_dropped;
  /// Rounds that ran with fewer participants than parties.
  size_t rounds_degraded = 0;
  /// Retransmissions performed by the reliable-delivery layer.
  size_t retries = 0;
  /// Bytes burnt on transmissions that never arrived (`MessageBus::WastedBytes`).
  size_t bytes_wasted = 0;
};

/// Runs FedAvg linear regression over the partitions.
Result<HflResult> TrainHorizontalFlr(const std::vector<HflPartition>& parties,
                                     const HflOptions& options, MessageBus* bus);

/// Builds one horizontal partition per *non-empty* fact shard of a union
/// (pairwise) or union-of-stars integration: shard s's partition covers its
/// contiguous target-row block, assembled only from the silos whose
/// indicators reach that block (its fact, that fact's dimension subgraph,
/// and any conformed dimension shared between shards) — no cross-shard
/// data is materialized. A shard with zero target rows (an empty fact
/// silo, or every row dropped by an inner-join edge) is skipped rather
/// than becoming a 0/0 FedAvg participant; fewer than two non-empty shards
/// is `kFailedPrecondition`. Features are the target schema minus
/// `label_column`, in target order, so the FedAvg global model lands
/// directly in target-feature order.
Result<std::vector<HflPartition>> AlignForHfl(
    const metadata::DiMetadata& metadata, size_t label_column);

}  // namespace federated
}  // namespace amalur
