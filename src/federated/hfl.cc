#include "federated/hfl.h"

#include "common/rng.h"
#include "federated/secret_sharing.h"
#include "ml/metrics.h"

namespace amalur {
namespace federated {

namespace {

std::string PartyName(size_t p) { return "P" + std::to_string(p); }

}  // namespace

Result<HflResult> TrainHorizontalFlr(const std::vector<HflPartition>& parties,
                                     const HflOptions& options,
                                     MessageBus* bus) {
  if (bus == nullptr) return Status::InvalidArgument("bus must not be null");
  if (parties.size() < 2) {
    return Status::InvalidArgument("HFL needs at least two parties");
  }
  const size_t d = parties[0].features.cols();
  size_t total_rows = 0;
  for (size_t p = 0; p < parties.size(); ++p) {
    if (parties[p].features.cols() != d) {
      return Status::InvalidArgument("party ", p,
                                     " has a different feature width");
    }
    if (parties[p].labels.rows() != parties[p].features.rows() ||
        parties[p].labels.cols() != 1) {
      return Status::InvalidArgument("party ", p, " labels must be n×1");
    }
    total_rows += parties[p].features.rows();
  }
  if (total_rows == 0) return Status::InvalidArgument("no training rows");

  bus->Reset();
  Rng rng(options.seed);
  AdditiveSecretSharing sharing;
  HflResult result{la::DenseMatrix(d, 1), {}, 0, 0};

  for (size_t round = 0; round < options.rounds; ++round) {
    // Server broadcasts the global model.
    for (size_t p = 0; p < parties.size(); ++p) {
      bus->Send("server", PartyName(p), result.weights);
    }

    // Each party: local GD epochs from the broadcast model, then submit the
    // row-weighted model n_p·w_p (so the server average is weighted).
    std::vector<la::DenseMatrix> weighted_models;
    for (size_t p = 0; p < parties.size(); ++p) {
      AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix local,
                              bus->Receive("server", PartyName(p)));
      const la::DenseMatrix& x = parties[p].features;
      const la::DenseMatrix& y = parties[p].labels;
      const double inv_rows = 1.0 / static_cast<double>(x.rows());
      for (size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
        la::DenseMatrix residual = x.Multiply(local).Subtract(y);
        la::DenseMatrix gradient = x.TransposeMultiply(residual);
        gradient.ScaleInPlace(inv_rows);
        local.AddScaled(gradient, -options.learning_rate);
      }
      local.ScaleInPlace(static_cast<double>(x.rows()));
      weighted_models.push_back(std::move(local));
    }

    // Aggregation.
    la::DenseMatrix aggregate(d, 1);
    if (options.secure_aggregation) {
      // Each party splits its weighted model into one share per party and
      // routes share q to party q; every party forwards only the *sum* of
      // the shares it received; the server reconstructs the global sum and
      // learns nothing about any individual model.
      std::vector<std::vector<ShareMatrix>> outgoing(parties.size());
      for (size_t p = 0; p < parties.size(); ++p) {
        outgoing[p] = sharing.Share(weighted_models[p], parties.size(), &rng);
        for (size_t q = 0; q < parties.size(); ++q) {
          if (q == p) continue;
          // Ship the share as raw 64-bit words.
          bus->SendBytes(PartyName(p), PartyName(q), outgoing[p][q].data);
        }
      }
      std::vector<ShareMatrix> share_sums(parties.size());
      for (size_t q = 0; q < parties.size(); ++q) {
        ShareMatrix sum = outgoing[q][q];  // own share stays local
        for (size_t p = 0; p < parties.size(); ++p) {
          if (p == q) continue;
          AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                                  bus->ReceiveBytes(PartyName(p), PartyName(q)));
          ShareMatrix received{sum.rows, sum.cols, std::move(words)};
          sum = AdditiveSecretSharing::AddShares(sum, received);
        }
        bus->SendBytes(PartyName(q), "server", sum.data);
        share_sums[q] = std::move(sum);
      }
      std::vector<ShareMatrix> at_server;
      for (size_t q = 0; q < parties.size(); ++q) {
        AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                                bus->ReceiveBytes(PartyName(q), "server"));
        at_server.push_back(ShareMatrix{d, 1, std::move(words)});
      }
      aggregate = sharing.Reconstruct(at_server);
    } else {
      for (size_t p = 0; p < parties.size(); ++p) {
        bus->Send(PartyName(p), "server", weighted_models[p]);
        AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix at_server,
                                bus->Receive(PartyName(p), "server"));
        aggregate.AddInPlace(at_server);
      }
    }
    aggregate.ScaleInPlace(1.0 / static_cast<double>(total_rows));
    result.weights = std::move(aggregate);

    // Telemetry: global MSE under the fresh model (plaintext scalars, as in
    // standard FedAvg evaluation).
    double squared_error = 0.0;
    for (const HflPartition& party : parties) {
      la::DenseMatrix residual =
          party.features.Multiply(result.weights).Subtract(party.labels);
      for (size_t i = 0; i < residual.rows(); ++i) {
        squared_error += residual.At(i, 0) * residual.At(i, 0);
      }
    }
    result.loss_history.push_back(squared_error /
                                  static_cast<double>(total_rows));
  }

  result.bytes_transferred = bus->TotalBytes();
  result.messages = bus->TotalMessages();
  return result;
}

}  // namespace federated
}  // namespace amalur
