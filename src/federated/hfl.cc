#include "federated/hfl.h"

#include <algorithm>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/status.h"
#include "federated/secret_sharing.h"
#include "ml/metrics.h"

namespace amalur {
namespace federated {

namespace {

std::string PartyName(size_t p) { return "P" + std::to_string(p); }

}  // namespace

Result<HflResult> TrainHorizontalFlr(const std::vector<HflPartition>& parties,
                                     const HflOptions& options,
                                     MessageBus* bus) {
  if (bus == nullptr) return Status::InvalidArgument("bus must not be null");
  if (parties.size() < 2) {
    return Status::InvalidArgument("HFL needs at least two parties");
  }
  const size_t d = parties[0].features.cols();
  size_t total_rows = 0;
  for (size_t p = 0; p < parties.size(); ++p) {
    if (parties[p].features.cols() != d) {
      return Status::InvalidArgument("party ", p,
                                     " has a different feature width");
    }
    if (parties[p].labels.rows() != parties[p].features.rows() ||
        parties[p].labels.cols() != 1) {
      return Status::InvalidArgument("party ", p, " labels must be n×1");
    }
    total_rows += parties[p].features.rows();
  }
  if (total_rows == 0) return Status::InvalidArgument("no training rows");

  bus->Reset();
  Rng rng(options.seed);
  AdditiveSecretSharing sharing;
  HflResult result;
  result.weights = la::DenseMatrix(d, 1);

  const FederatedPolicy& policy = options.policy;
  const size_t quorum = std::max<size_t>(policy.min_quorum, 1);
  // Liveness per party. A live party's broadcast gets the full retry
  // budget; once declared lost (degrade mode) it receives a single cheap
  // probe per round boundary and is re-admitted the first round it answers
  // again — by then it resumes from the *current* global model, exactly as
  // a FedAvg straggler rejoining would.
  std::vector<bool> live(parties.size(), true);
  std::vector<la::DenseMatrix> local_models(parties.size());
  WireTelemetry wire;

  for (size_t round = 0; round < options.rounds; ++round) {
    bus->BeginRound(round);
    wire.round_ms = 0;

    // Server broadcasts the global model; delivery doubles as the round's
    // health check. On a healthy wire each transfer is exactly one send +
    // one receive per channel — byte-identical to the unhardened protocol,
    // and the protocol RNG is only consumed for the participants' shares,
    // so a full-strength round is bitwise-identical to the pre-policy code.
    std::vector<size_t> participants;
    participants.reserve(parties.size());
    for (size_t p = 0; p < parties.size(); ++p) {
      FederatedPolicy attempt = policy;
      if (!live[p]) attempt.retry.max_retries = 0;  // single rejoin probe
      auto delivered = TransferDense(bus, attempt, "server", PartyName(p),
                                     PartyName(p), result.weights, &wire);
      if (delivered.ok()) {
        local_models[p] = std::move(delivered).ValueOrDie();
        live[p] = true;
        participants.push_back(p);
        continue;
      }
      if (!live[p]) continue;  // still down; probe again next round
      if (policy.on_silo_loss == SiloLossAction::kFail) {
        return Status::Unavailable("silo ", PartyName(p), " lost at round ",
                                   round, ": ", delivered.status().message());
      }
      live[p] = false;
      if (std::find(result.silos_dropped.begin(), result.silos_dropped.end(),
                    PartyName(p)) == result.silos_dropped.end()) {
        result.silos_dropped.push_back(PartyName(p));
      }
    }
    if (participants.size() < quorum) {
      return Status::Unavailable(
          "quorum lost at round ", round, ": ", participants.size(),
          " reachable participants < min_quorum ", quorum, " (",
          parties.size() - participants.size(), " silo(s) down)");
    }
    const size_t m = participants.size();
    if (m < parties.size()) result.rounds_degraded += 1;
    size_t round_rows = 0;
    for (size_t p : participants) round_rows += parties[p].features.rows();
    if (round_rows == 0) {
      // Every reachable participant is an empty partition: no evidence
      // this round, the global model simply carries over.
      result.loss_history.push_back(result.loss_history.empty()
                                        ? 0.0
                                        : result.loss_history.back());
      continue;
    }

    // Each participant: local GD epochs from the broadcast model, then
    // submit the row-weighted model n_p·w_p (so the server average is
    // weighted). Bus transfers are serial; the per-party epochs —
    // independent by construction — fan out over the shared pool, one
    // participant per slot (fixed-order merge), so rounds are
    // bitwise-reproducible at any thread count.
    common::ParallelForChunks(0, m, 1, [&](size_t, size_t begin, size_t end) {
      for (size_t idx = begin; idx < end; ++idx) {
        const size_t p = participants[idx];
        la::DenseMatrix& local = local_models[p];
        const la::DenseMatrix& x = parties[p].features;
        const la::DenseMatrix& y = parties[p].labels;
        if (x.rows() == 0) {
          // An empty partition holds no evidence: its weighted model is
          // exactly 0 (weight n_p = 0 in the fixed-order merge), never
          // a NaN from the 1/0 local average below.
          local = la::DenseMatrix(local.rows(), local.cols());
          continue;
        }
        const double inv_rows = 1.0 / static_cast<double>(x.rows());
        for (size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
          la::DenseMatrix residual = x.Multiply(local).Subtract(y);
          la::DenseMatrix gradient = x.TransposeMultiply(residual);
          gradient.ScaleInPlace(inv_rows);
          if (options.l2 > 0.0) gradient.AddScaled(local, options.l2);
          local.AddScaled(gradient, -options.learning_rate);
        }
        local.ScaleInPlace(static_cast<double>(x.rows()));
      }
    });

    // Aggregation over the round's participants. Degraded rounds re-weight:
    // the average divides by the survivors' rows, so the global model stays
    // an unbiased FedAvg over the data that actually participated.
    la::DenseMatrix aggregate(d, 1);
    if (options.secure_aggregation && m >= 2) {
      // Each participant splits its weighted model into one share per
      // participant and routes share q to participant q; every participant
      // forwards only the *sum* of the shares it received; the server
      // reconstructs the global sum and learns nothing about any
      // individual model.
      std::vector<std::vector<ShareMatrix>> outgoing(m);
      for (size_t i = 0; i < m; ++i) {
        outgoing[i] = sharing.Share(local_models[participants[i]], m, &rng);
      }
      std::vector<ShareMatrix> share_sums(m);
      for (size_t q = 0; q < m; ++q) {
        ShareMatrix sum = outgoing[q][q];  // own share stays local
        for (size_t i = 0; i < m; ++i) {
          if (i == q) continue;
          // Ship the share as raw 64-bit words (reliable transfer).
          AMALUR_ASSIGN_OR_RETURN(
              std::vector<uint64_t> words,
              TransferWords(bus, policy, PartyName(participants[i]),
                            PartyName(participants[q]),
                            PartyName(participants[q]), outgoing[i][q].data,
                            &wire));
          ShareMatrix received{sum.rows, sum.cols, std::move(words)};
          sum = AdditiveSecretSharing::AddShares(sum, received);
        }
        share_sums[q] = std::move(sum);
      }
      std::vector<ShareMatrix> at_server;
      at_server.reserve(m);
      for (size_t q = 0; q < m; ++q) {
        AMALUR_ASSIGN_OR_RETURN(
            std::vector<uint64_t> words,
            TransferWords(bus, policy, PartyName(participants[q]), "server",
                          PartyName(participants[q]), share_sums[q].data,
                          &wire));
        at_server.push_back(ShareMatrix{d, 1, std::move(words)});
      }
      aggregate = sharing.Reconstruct(at_server);
    } else {
      // Plaintext (or a lone survivor, where sharing protects nothing):
      // each participant uploads its weighted model directly.
      for (size_t p : participants) {
        AMALUR_ASSIGN_OR_RETURN(
            la::DenseMatrix at_server,
            TransferDense(bus, policy, PartyName(p), "server", PartyName(p),
                          local_models[p], &wire));
        aggregate.AddInPlace(at_server);
      }
    }
    aggregate.ScaleInPlace(1.0 / static_cast<double>(round_rows));
    result.weights = std::move(aggregate);

    // Telemetry: MSE over the round's participants under the fresh model
    // (plaintext scalars, as in standard FedAvg evaluation).
    double squared_error = 0.0;
    for (size_t p : participants) {
      la::DenseMatrix residual =
          parties[p].features.Multiply(result.weights).Subtract(
              parties[p].labels);
      for (size_t i = 0; i < residual.rows(); ++i) {
        squared_error += residual.At(i, 0) * residual.At(i, 0);
      }
    }
    result.loss_history.push_back(squared_error /
                                  static_cast<double>(round_rows));
  }

  result.bytes_transferred = bus->TotalBytes();
  result.messages = bus->TotalMessages();
  result.retries = wire.retries;
  result.bytes_wasted = bus->WastedBytes();
  return result;
}

Result<std::vector<HflPartition>> AlignForHfl(
    const metadata::DiMetadata& metadata, size_t label_column) {
  if (metadata.num_shards() < 2) {
    return Status::FailedPrecondition(
        "horizontal federation needs >= 2 fact shards (a union or "
        "union-of-stars scenario)");
  }
  if (label_column >= metadata.target_cols()) {
    return Status::OutOfRange("label column out of range");
  }
  std::vector<size_t> feature_columns;
  for (size_t j = 0; j < metadata.target_cols(); ++j) {
    if (j != label_column) feature_columns.push_back(j);
  }

  // One dense block per shard, covering exactly that shard's target rows.
  std::vector<la::DenseMatrix> shard_blocks;
  shard_blocks.reserve(metadata.num_shards());
  for (size_t s = 0; s < metadata.num_shards(); ++s) {
    shard_blocks.emplace_back(
        metadata.ShardRowEnd(s) - metadata.ShardRowBegin(s),
        metadata.target_cols());
  }
  // Each silo adds its masked contribution T_k ∘ R_k into every shard block
  // its indicator reaches — `shards_reaching(k)`, a singleton for every
  // non-conformed silo, so assembly stays O(rows of the own block) in the
  // common case — built at the block's height: D_k M_kᵀ is silo-sized,
  // rows route through CI_k restricted to [begin, end), and
  // redundancy-masked cells are simply not added. A conformed dimension
  // shared between shards serves each referencing block from its single
  // silo. No full-target temporary, no cross-shard data.
  for (size_t k = 0; k < metadata.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata.source(k);
    const la::DenseMatrix expanded = source.mapping.ExpandColumns(source.data);
    const auto& masked_sets = source.redundancy.column_sets();
    for (size_t s : metadata.shards_reaching(k)) {
      const size_t begin = metadata.ShardRowBegin(s);
      const size_t end = metadata.ShardRowEnd(s);
      la::DenseMatrix& block = shard_blocks[s];
      for (size_t i = begin; i < end; ++i) {
        const int64_t source_row = source.indicator.At(i);
        if (source_row < 0) continue;
        const double* in = expanded.RowPtr(static_cast<size_t>(source_row));
        double* out = block.RowPtr(i - begin);
        for (size_t j = 0; j < metadata.target_cols(); ++j) out[j] += in[j];
        const int32_t set_id = source.redundancy.row_set(i);
        if (set_id >= 0) {
          for (size_t j : masked_sets[static_cast<size_t>(set_id)]) {
            out[j] -= in[j];  // masked cell: contributed upstream, not here
          }
        }
      }
    }
  }

  // A shard with zero target rows (an empty fact silo, or every row of the
  // shard dropped by an inner-join edge) must not become a FedAvg
  // participant: its local average is 0/0. Skip it — a participant that
  // holds no rows contributes weight 0 to the merge anyway. The surviving
  // participant count is exactly `metadata.num_active_shards()`, which the
  // optimizer's explanation reports.
  std::vector<HflPartition> partitions;
  partitions.reserve(metadata.num_shards());
  for (la::DenseMatrix& block : shard_blocks) {
    if (block.rows() == 0) continue;
    HflPartition partition;
    partition.features = block.SelectColumns(feature_columns);
    partition.labels = block.SelectColumns({label_column});
    partitions.push_back(std::move(partition));
  }
  if (partitions.size() < 2) {
    return Status::FailedPrecondition(
        "horizontal federation needs >= 2 non-empty fact shards, got ",
        partitions.size());
  }
  return partitions;
}

}  // namespace federated
}  // namespace amalur

