#include "federated/hfl.h"

#include "common/parallel_for.h"
#include "common/rng.h"
#include "federated/secret_sharing.h"
#include "ml/metrics.h"

namespace amalur {
namespace federated {

namespace {

std::string PartyName(size_t p) { return "P" + std::to_string(p); }

}  // namespace

Result<HflResult> TrainHorizontalFlr(const std::vector<HflPartition>& parties,
                                     const HflOptions& options,
                                     MessageBus* bus) {
  if (bus == nullptr) return Status::InvalidArgument("bus must not be null");
  if (parties.size() < 2) {
    return Status::InvalidArgument("HFL needs at least two parties");
  }
  const size_t d = parties[0].features.cols();
  size_t total_rows = 0;
  for (size_t p = 0; p < parties.size(); ++p) {
    if (parties[p].features.cols() != d) {
      return Status::InvalidArgument("party ", p,
                                     " has a different feature width");
    }
    if (parties[p].labels.rows() != parties[p].features.rows() ||
        parties[p].labels.cols() != 1) {
      return Status::InvalidArgument("party ", p, " labels must be n×1");
    }
    total_rows += parties[p].features.rows();
  }
  if (total_rows == 0) return Status::InvalidArgument("no training rows");

  bus->Reset();
  Rng rng(options.seed);
  AdditiveSecretSharing sharing;
  HflResult result{la::DenseMatrix(d, 1), {}, 0, 0};

  for (size_t round = 0; round < options.rounds; ++round) {
    // Server broadcasts the global model.
    for (size_t p = 0; p < parties.size(); ++p) {
      bus->Send("server", PartyName(p), result.weights);
    }

    // Each party: local GD epochs from the broadcast model, then submit the
    // row-weighted model n_p·w_p (so the server average is weighted). Bus
    // receives are serial; the per-party epochs — independent by
    // construction — fan out over the shared pool, one party per slot
    // (fixed-order merge), so rounds are bitwise-reproducible at any
    // thread count.
    std::vector<la::DenseMatrix> weighted_models(parties.size());
    for (size_t p = 0; p < parties.size(); ++p) {
      AMALUR_ASSIGN_OR_RETURN(weighted_models[p],
                              bus->Receive("server", PartyName(p)));
    }
    common::ParallelForChunks(
        0, parties.size(), 1, [&](size_t, size_t begin, size_t end) {
          for (size_t p = begin; p < end; ++p) {
            la::DenseMatrix& local = weighted_models[p];
            const la::DenseMatrix& x = parties[p].features;
            const la::DenseMatrix& y = parties[p].labels;
            if (x.rows() == 0) {
              // An empty partition holds no evidence: its weighted model is
              // exactly 0 (weight n_p = 0 in the fixed-order merge), never
              // a NaN from the 1/0 local average below.
              local = la::DenseMatrix(local.rows(), local.cols());
              continue;
            }
            const double inv_rows = 1.0 / static_cast<double>(x.rows());
            for (size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
              la::DenseMatrix residual = x.Multiply(local).Subtract(y);
              la::DenseMatrix gradient = x.TransposeMultiply(residual);
              gradient.ScaleInPlace(inv_rows);
              if (options.l2 > 0.0) gradient.AddScaled(local, options.l2);
              local.AddScaled(gradient, -options.learning_rate);
            }
            local.ScaleInPlace(static_cast<double>(x.rows()));
          }
        });

    // Aggregation.
    la::DenseMatrix aggregate(d, 1);
    if (options.secure_aggregation) {
      // Each party splits its weighted model into one share per party and
      // routes share q to party q; every party forwards only the *sum* of
      // the shares it received; the server reconstructs the global sum and
      // learns nothing about any individual model.
      std::vector<std::vector<ShareMatrix>> outgoing(parties.size());
      for (size_t p = 0; p < parties.size(); ++p) {
        outgoing[p] = sharing.Share(weighted_models[p], parties.size(), &rng);
        for (size_t q = 0; q < parties.size(); ++q) {
          if (q == p) continue;
          // Ship the share as raw 64-bit words.
          bus->SendBytes(PartyName(p), PartyName(q), outgoing[p][q].data);
        }
      }
      std::vector<ShareMatrix> share_sums(parties.size());
      for (size_t q = 0; q < parties.size(); ++q) {
        ShareMatrix sum = outgoing[q][q];  // own share stays local
        for (size_t p = 0; p < parties.size(); ++p) {
          if (p == q) continue;
          AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                                  bus->ReceiveBytes(PartyName(p), PartyName(q)));
          ShareMatrix received{sum.rows, sum.cols, std::move(words)};
          sum = AdditiveSecretSharing::AddShares(sum, received);
        }
        bus->SendBytes(PartyName(q), "server", sum.data);
        share_sums[q] = std::move(sum);
      }
      std::vector<ShareMatrix> at_server;
      for (size_t q = 0; q < parties.size(); ++q) {
        AMALUR_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                                bus->ReceiveBytes(PartyName(q), "server"));
        at_server.push_back(ShareMatrix{d, 1, std::move(words)});
      }
      aggregate = sharing.Reconstruct(at_server);
    } else {
      for (size_t p = 0; p < parties.size(); ++p) {
        bus->Send(PartyName(p), "server", weighted_models[p]);
        AMALUR_ASSIGN_OR_RETURN(la::DenseMatrix at_server,
                                bus->Receive(PartyName(p), "server"));
        aggregate.AddInPlace(at_server);
      }
    }
    aggregate.ScaleInPlace(1.0 / static_cast<double>(total_rows));
    result.weights = std::move(aggregate);

    // Telemetry: global MSE under the fresh model (plaintext scalars, as in
    // standard FedAvg evaluation).
    double squared_error = 0.0;
    for (const HflPartition& party : parties) {
      la::DenseMatrix residual =
          party.features.Multiply(result.weights).Subtract(party.labels);
      for (size_t i = 0; i < residual.rows(); ++i) {
        squared_error += residual.At(i, 0) * residual.At(i, 0);
      }
    }
    result.loss_history.push_back(squared_error /
                                  static_cast<double>(total_rows));
  }

  result.bytes_transferred = bus->TotalBytes();
  result.messages = bus->TotalMessages();
  return result;
}

Result<std::vector<HflPartition>> AlignForHfl(
    const metadata::DiMetadata& metadata, size_t label_column) {
  if (metadata.num_shards() < 2) {
    return Status::FailedPrecondition(
        "horizontal federation needs >= 2 fact shards (a union or "
        "union-of-stars scenario)");
  }
  if (label_column >= metadata.target_cols()) {
    return Status::OutOfRange("label column out of range");
  }
  std::vector<size_t> feature_columns;
  for (size_t j = 0; j < metadata.target_cols(); ++j) {
    if (j != label_column) feature_columns.push_back(j);
  }

  // One dense block per shard, covering exactly that shard's target rows.
  std::vector<la::DenseMatrix> shard_blocks;
  shard_blocks.reserve(metadata.num_shards());
  for (size_t s = 0; s < metadata.num_shards(); ++s) {
    shard_blocks.emplace_back(
        metadata.ShardRowEnd(s) - metadata.ShardRowBegin(s),
        metadata.target_cols());
  }
  // Each silo adds its masked contribution T_k ∘ R_k into every shard block
  // its indicator reaches — `shards_reaching(k)`, a singleton for every
  // non-conformed silo, so assembly stays O(rows of the own block) in the
  // common case — built at the block's height: D_k M_kᵀ is silo-sized,
  // rows route through CI_k restricted to [begin, end), and
  // redundancy-masked cells are simply not added. A conformed dimension
  // shared between shards serves each referencing block from its single
  // silo. No full-target temporary, no cross-shard data.
  for (size_t k = 0; k < metadata.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata.source(k);
    const la::DenseMatrix expanded = source.mapping.ExpandColumns(source.data);
    const auto& masked_sets = source.redundancy.column_sets();
    for (size_t s : metadata.shards_reaching(k)) {
      const size_t begin = metadata.ShardRowBegin(s);
      const size_t end = metadata.ShardRowEnd(s);
      la::DenseMatrix& block = shard_blocks[s];
      for (size_t i = begin; i < end; ++i) {
        const int64_t source_row = source.indicator.At(i);
        if (source_row < 0) continue;
        const double* in = expanded.RowPtr(static_cast<size_t>(source_row));
        double* out = block.RowPtr(i - begin);
        for (size_t j = 0; j < metadata.target_cols(); ++j) out[j] += in[j];
        const int32_t set_id = source.redundancy.row_set(i);
        if (set_id >= 0) {
          for (size_t j : masked_sets[static_cast<size_t>(set_id)]) {
            out[j] -= in[j];  // masked cell: contributed upstream, not here
          }
        }
      }
    }
  }

  // A shard with zero target rows (an empty fact silo, or every row of the
  // shard dropped by an inner-join edge) must not become a FedAvg
  // participant: its local average is 0/0. Skip it — a participant that
  // holds no rows contributes weight 0 to the merge anyway. The surviving
  // participant count is exactly `metadata.num_active_shards()`, which the
  // optimizer's explanation reports.
  std::vector<HflPartition> partitions;
  partitions.reserve(metadata.num_shards());
  for (la::DenseMatrix& block : shard_blocks) {
    if (block.rows() == 0) continue;
    HflPartition partition;
    partition.features = block.SelectColumns(feature_columns);
    partition.labels = block.SelectColumns({label_column});
    partitions.push_back(std::move(partition));
  }
  if (partitions.size() < 2) {
    return Status::FailedPrecondition(
        "horizontal federation needs >= 2 non-empty fact shards, got ",
        partitions.size());
  }
  return partitions;
}

}  // namespace federated
}  // namespace amalur

