#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "la/dense_matrix.h"

/// \file paillier.h
/// The Paillier additively homomorphic cryptosystem [67], the workhorse of
/// vertical-FL gradient exchange (§V.B). This is a *real* implementation of
/// the scheme — key generation with deterministic Miller–Rabin primes,
/// g = n+1 encryption, L-function decryption — at a deliberately small key
/// size (n ≤ 62 bits so ciphertexts fit `unsigned __int128`). Small keys
/// keep the experiments laptop-fast while exercising the genuine
/// encrypt → homomorphic-aggregate → decrypt code path; the key size is an
/// experiment parameter, not a structural difference. NOT cryptographically
/// secure at this size — research harness only.

namespace amalur {
namespace federated {

/// Ciphertexts live in [0, n²), up to 124 bits.
using PaillierCiphertext = unsigned __int128;

/// Public key (n, n²); g is fixed to n+1.
struct PaillierPublicKey {
  uint64_t n = 0;
  PaillierCiphertext n_squared = 0;
};

/// Private key (λ = lcm(p−1, q−1), μ = λ⁻¹ mod n).
struct PaillierPrivateKey {
  uint64_t lambda = 0;
  uint64_t mu = 0;
};

/// A Paillier key pair.
struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Paillier cryptosystem with fixed-point encoding of doubles.
class Paillier {
 public:
  /// Generates a key pair from two random `prime_bits`-bit primes
  /// (prime_bits in [16, 31]); deterministic in `seed`.
  static PaillierKeyPair GenerateKeys(uint64_t seed, int prime_bits = 30);

  /// `fractional_bits` of fixed-point precision for double encoding.
  explicit Paillier(PaillierKeyPair keys, int fractional_bits = 16);

  /// Encrypts one plaintext in [0, n).
  PaillierCiphertext EncryptRaw(uint64_t message, Rng* rng) const;
  /// Decrypts to a plaintext in [0, n).
  uint64_t DecryptRaw(PaillierCiphertext ciphertext) const;

  /// Homomorphic addition: Dec(CipherAdd(Enc(a), Enc(b))) = a + b mod n.
  PaillierCiphertext CipherAdd(PaillierCiphertext a, PaillierCiphertext b) const;
  /// Homomorphic scalar multiply: Dec(CipherScale(Enc(a), k)) = k·a mod n.
  PaillierCiphertext CipherScale(PaillierCiphertext ciphertext,
                                 uint64_t scalar) const;

  /// Encrypts a double: fixed-point, negatives mapped to the upper
  /// half-space [n/2, n).
  PaillierCiphertext EncryptDouble(double value, Rng* rng) const;
  /// Decrypts a double.
  double DecryptDouble(PaillierCiphertext ciphertext) const;

  /// Encrypts every cell of a matrix (row-major ciphertext vector).
  std::vector<PaillierCiphertext> EncryptMatrix(const la::DenseMatrix& values,
                                                Rng* rng) const;
  /// Decrypts a ciphertext vector back into a rows×cols matrix.
  la::DenseMatrix DecryptMatrix(const std::vector<PaillierCiphertext>& ciphertexts,
                                size_t rows, size_t cols) const;

  const PaillierPublicKey& public_key() const { return keys_.public_key; }

 private:
  PaillierKeyPair keys_;
  double scale_;
};

/// Serializes ciphertexts as (lo, hi) word pairs for bus transmission.
std::vector<uint64_t> PackCiphertexts(
    const std::vector<PaillierCiphertext>& ciphertexts);
/// Inverse of `PackCiphertexts`.
std::vector<PaillierCiphertext> UnpackCiphertexts(
    const std::vector<uint64_t>& words);

/// Deterministic Miller–Rabin primality for 64-bit integers (exposed for
/// tests).
bool IsPrime64(uint64_t value);

}  // namespace federated
}  // namespace amalur
