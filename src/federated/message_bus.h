#ifndef AMALUR_FEDERATED_MESSAGE_BUS_H_
#define AMALUR_FEDERATED_MESSAGE_BUS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/dense_matrix.h"

/// \file message_bus.h
/// In-process network simulation for the federated runtime. Parties never
/// touch each other's memory: every exchanged tensor goes through the bus,
/// which meters exact transfer volumes per channel — the quantity the §V
/// discussion (and the communication-cost analysis) needs. Latency is not
/// simulated; cost models multiply bytes by a configurable cost-per-byte.

namespace amalur {
namespace federated {

/// One directed transfer record.
struct TransferStats {
  size_t messages = 0;
  size_t bytes = 0;
};

/// Synchronous in-process message bus with byte accounting.
class MessageBus {
 public:
  /// Serialized wire size of one Paillier ciphertext: the (lo, hi) word
  /// pair `PackCiphertexts` emits — 16 bytes, 2x the plaintext-double rate.
  /// Ciphertext traffic is metered per *ciphertext* at this constant (via
  /// `SendCiphertextWords`, which also CHECKs the payload shape), never per
  /// value at the plaintext-double rate — a protocol metering encrypted
  /// payloads as if they were doubles would under-count and hide the §V.B
  /// encryption blow-up from `bytes_transferred`.
  static constexpr size_t kCiphertextWireBytes = 16;

  /// Sends a dense payload from `from` to `to`. Payload bytes are
  /// 8 per cell plus a fixed 32-byte envelope.
  void Send(const std::string& from, const std::string& to,
            la::DenseMatrix payload);

  /// Sends an opaque byte payload (already-encrypted data).
  void SendBytes(const std::string& from, const std::string& to,
                 std::vector<uint64_t> payload);

  /// Sends a packed ciphertext payload (`PackCiphertexts` output: 2 words
  /// per ciphertext). Accounted at `kCiphertextWireBytes` per ciphertext —
  /// the serialized ciphertext size — and rejects payloads that are not
  /// whole (lo, hi) pairs, so a protocol cannot accidentally ship (and
  /// meter) half-width ciphertexts at the plaintext-double rate. For a
  /// well-formed packing this coincides with `SendBytes`'s raw word rate;
  /// the typed path exists to keep that true by construction (the shape
  /// CHECK plus one named constant) rather than by caller discipline.
  void SendCiphertextWords(const std::string& from, const std::string& to,
                           std::vector<uint64_t> packed);

  /// Pops the oldest dense payload on the channel; error when empty.
  Result<la::DenseMatrix> Receive(const std::string& from, const std::string& to);

  /// Pops the oldest byte payload on the channel; error when empty.
  Result<std::vector<uint64_t>> ReceiveBytes(const std::string& from,
                                             const std::string& to);

  /// Stats of one directed channel.
  TransferStats ChannelStats(const std::string& from, const std::string& to) const;

  /// Total bytes moved over all channels.
  size_t TotalBytes() const { return total_bytes_; }
  /// Total messages moved over all channels.
  size_t TotalMessages() const { return total_messages_; }

  /// Clears queues and statistics.
  void Reset();

 private:
  static constexpr size_t kEnvelopeBytes = 32;

  using Channel = std::pair<std::string, std::string>;

  void Account(const Channel& channel, size_t payload_bytes);

  std::map<Channel, std::deque<la::DenseMatrix>> dense_queues_;
  std::map<Channel, std::deque<std::vector<uint64_t>>> byte_queues_;
  std::map<Channel, TransferStats> stats_;
  size_t total_bytes_ = 0;
  size_t total_messages_ = 0;
};

}  // namespace federated
}  // namespace amalur

#endif  // AMALUR_FEDERATED_MESSAGE_BUS_H_
