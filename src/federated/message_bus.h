#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "la/dense_matrix.h"

/// \file message_bus.h
/// In-process network simulation for the federated runtime. Parties never
/// touch each other's memory: every exchanged tensor goes through the bus,
/// which meters exact transfer volumes per channel — the quantity the §V
/// discussion (and the communication-cost analysis) needs. Latency is not
/// simulated; cost models multiply bytes by a configurable cost-per-byte.
///
/// **Threading contract.** The protocols drive the bus exclusively from the
/// round-loop thread — the `ParallelForChunks` regions inside `vfl.cc` /
/// `hfl.cc` only do silo-local math and never reach the bus. The bus is
/// nevertheless *internally synchronized* (one mutex guards queues and
/// accounting, including `TotalBytes()`/`TotalMessages()`), so a monitor or
/// test thread reading the stats while a protocol runs is clean under
/// ThreadSanitizer by construction, not by call-site discipline.
///
/// The transfer entry points are virtual so a fault layer
/// (`federated::FaultyMessageBus`, fault_injection.h) can interpose
/// drop/delay/duplicate/crash behavior without protocols knowing: they keep
/// programming against `MessageBus*`.

namespace amalur {
namespace federated {

/// One directed transfer record.
struct TransferStats {
  size_t messages = 0;
  size_t bytes = 0;
};

/// Synchronous in-process message bus with byte accounting.
class MessageBus {
 public:
  /// Serialized wire size of one Paillier ciphertext: the (lo, hi) word
  /// pair `PackCiphertexts` emits — 16 bytes, 2x the plaintext-double rate.
  /// Ciphertext traffic is metered per *ciphertext* at this constant (via
  /// `SendCiphertextWords`, which also CHECKs the payload shape), never per
  /// value at the plaintext-double rate — a protocol metering encrypted
  /// payloads as if they were doubles would under-count and hide the §V.B
  /// encryption blow-up from `bytes_transferred`.
  static constexpr size_t kCiphertextWireBytes = 16;

  MessageBus() = default;
  virtual ~MessageBus() = default;
  // The mutex makes the bus non-copyable — protocols share one by pointer.
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Sends a dense payload from `from` to `to`. Payload bytes are
  /// 8 per cell plus a fixed 32-byte envelope.
  virtual void Send(const std::string& from, const std::string& to,
                    la::DenseMatrix payload);

  /// Sends an opaque byte payload (already-encrypted data).
  virtual void SendBytes(const std::string& from, const std::string& to,
                         std::vector<uint64_t> payload);

  /// Sends a packed ciphertext payload (`PackCiphertexts` output: 2 words
  /// per ciphertext). Accounted at `kCiphertextWireBytes` per ciphertext —
  /// the serialized ciphertext size — and rejects payloads that are not
  /// whole (lo, hi) pairs, so a protocol cannot accidentally ship (and
  /// meter) half-width ciphertexts at the plaintext-double rate. For a
  /// well-formed packing this coincides with `SendBytes`'s raw word rate;
  /// the typed path exists to keep that true by construction (the shape
  /// CHECK plus one named constant) rather than by caller discipline.
  virtual void SendCiphertextWords(const std::string& from,
                                   const std::string& to,
                                   std::vector<uint64_t> packed);

  /// Pops the oldest dense payload on the channel; error when empty.
  virtual Result<la::DenseMatrix> Receive(const std::string& from,
                                          const std::string& to);

  /// Pops the oldest byte payload on the channel; error when empty.
  virtual Result<std::vector<uint64_t>> ReceiveBytes(const std::string& from,
                                                     const std::string& to);

  /// Stats of one directed channel.
  TransferStats ChannelStats(const std::string& from,
                             const std::string& to) const;

  /// Total bytes successfully *delivered* over all channels. Bytes burnt on
  /// transmissions that never arrived are reported by `WastedBytes()`.
  size_t TotalBytes() const;
  /// Total messages delivered over all channels.
  size_t TotalMessages() const;

  /// Bytes spent on transmissions that were never delivered (dropped,
  /// addressed to a crashed silo, or redundant retransmissions). Always 0 on
  /// the plain bus; `FaultyMessageBus` overrides.
  virtual size_t WastedBytes() const { return 0; }
  /// Messages lost on the wire (subset of the waste). 0 on the plain bus.
  virtual size_t MessagesDropped() const { return 0; }

  /// Round boundary notification. Protocols call this once per round so a
  /// fault layer can evaluate crash-at-round / rejoin-at-round schedules;
  /// the plain bus ignores it.
  virtual void BeginRound(size_t round) { (void)round; }

  /// Clears queues and statistics.
  virtual void Reset();

 protected:
  static constexpr size_t kEnvelopeBytes = 32;

  using Channel = std::pair<std::string, std::string>;

  static size_t DensePayloadBytes(const la::DenseMatrix& payload) {
    return payload.size() * sizeof(double);
  }
  static size_t WordPayloadBytes(const std::vector<uint64_t>& payload) {
    return payload.size() * sizeof(uint64_t);
  }
  static size_t CiphertextPayloadBytes(const std::vector<uint64_t>& packed) {
    return (packed.size() / 2) * kCiphertextWireBytes;
  }

  /// Fault-layer hooks: metering and delivery are split so a derived bus
  /// can meter a payload at send time yet deliver it later (delay faults),
  /// or deliver without re-metering. Each takes the lock itself.
  void MeterTransfer(const Channel& channel, size_t payload_bytes)
      EXCLUDES(mu_);
  void EnqueueDense(const Channel& channel, la::DenseMatrix payload)
      EXCLUDES(mu_);
  void EnqueueWords(const Channel& channel, std::vector<uint64_t> payload)
      EXCLUDES(mu_);

 private:
  void AccountLocked(const Channel& channel, size_t payload_bytes)
      REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::map<Channel, std::deque<la::DenseMatrix>> dense_queues_ GUARDED_BY(mu_);
  std::map<Channel, std::deque<std::vector<uint64_t>>> byte_queues_
      GUARDED_BY(mu_);
  std::map<Channel, TransferStats> stats_ GUARDED_BY(mu_);
  size_t total_bytes_ GUARDED_BY(mu_) = 0;
  size_t total_messages_ GUARDED_BY(mu_) = 0;
};

}  // namespace federated
}  // namespace amalur
