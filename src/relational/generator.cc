#include "relational/generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace amalur {
namespace rel {

std::vector<std::string> SiloPair::TargetFeatureNames() const {
  std::vector<std::string> names = shared_feature_names;
  names.insert(names.end(), base_feature_names.begin(), base_feature_names.end());
  names.insert(names.end(), other_feature_names.begin(),
               other_feature_names.end());
  return names;
}

namespace {

/// Appends `count` feature columns named `<prefix>0..` filled by `filler`.
std::vector<std::string> FeatureNames(const std::string& prefix, size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) names.push_back(prefix + std::to_string(i));
  return names;
}

}  // namespace

SiloPair GenerateSiloPair(const SiloPairSpec& spec) {
  Rng rng(spec.seed);
  SiloPair pair;
  pair.spec = spec;
  pair.shared_feature_names = FeatureNames("s", spec.shared_features);
  pair.base_feature_names = FeatureNames("x", spec.base_features);
  pair.other_feature_names = FeatureNames("z", spec.other_features);

  const size_t matched_other = std::min<size_t>(
      spec.other_rows,
      static_cast<size_t>(std::llround(spec.row_overlap *
                                       static_cast<double>(spec.other_rows))));
  const size_t matched_base = static_cast<size_t>(std::llround(
      spec.match_fraction * static_cast<double>(spec.base_rows)));

  // Entity-level shared feature values: shared columns must agree between the
  // two silos for the same entity (they describe the same real-world fact).
  // Key space: [0, other_rows) are S2 entities; keys >= other_rows are
  // S1-only entities.
  const size_t total_entities = spec.other_rows + spec.base_rows;  // upper bound
  la::DenseMatrix shared_values(total_entities, spec.shared_features);
  for (size_t e = 0; e < total_entities; ++e) {
    for (size_t j = 0; j < spec.shared_features; ++j) {
      shared_values.At(e, j) = rng.NextGaussian();
    }
  }

  // ---- S2 ("other"): distinct entity rows, then within-source duplicates.
  std::vector<int64_t> other_keys;
  other_keys.reserve(spec.other_rows);
  for (size_t i = 0; i < spec.other_rows; ++i) {
    other_keys.push_back(static_cast<int64_t>(i));
  }
  const size_t dup_count = static_cast<size_t>(
      std::llround(spec.other_dup_rate * static_cast<double>(spec.other_rows)));
  std::vector<size_t> other_source_entity;  // per S2 row -> entity id
  for (size_t i = 0; i < spec.other_rows; ++i) other_source_entity.push_back(i);
  for (size_t d = 0; d < dup_count; ++d) {
    other_source_entity.push_back(rng.NextUint64(spec.other_rows));
  }

  Table other("S2");
  {
    std::vector<int64_t> keys;
    keys.reserve(other_source_entity.size());
    for (size_t e : other_source_entity) {
      keys.push_back(static_cast<int64_t>(e));
    }
    AMALUR_CHECK_OK(other.AddColumn(Column::FromInt64s("k", std::move(keys))));
  }
  // Entity-level private features for S2 so duplicates are exact copies.
  la::DenseMatrix other_private(spec.other_rows, spec.other_features);
  for (size_t e = 0; e < spec.other_rows; ++e) {
    for (size_t j = 0; j < spec.other_features; ++j) {
      other_private.At(e, j) = rng.NextGaussian();
    }
  }
  // Entity-level labels: a linear signal over the entity's shared and
  // S2-private features plus noise, so that feature augmentation genuinely
  // improves a downstream model (the paper's use case 1). Entities absent
  // from S2 draw their z-part from the same prior, keeping label variance
  // comparable across matched and unmatched rows.
  std::vector<double> label_weights_z(spec.other_features);
  for (double& w : label_weights_z) w = rng.NextGaussian();
  std::vector<double> label_weights_s(spec.shared_features);
  for (double& w : label_weights_s) w = rng.NextGaussian();
  const double z_norm =
      spec.other_features > 0 ? std::sqrt(static_cast<double>(spec.other_features))
                              : 1.0;
  const double s_norm = spec.shared_features > 0
                            ? std::sqrt(static_cast<double>(spec.shared_features))
                            : 1.0;
  std::vector<double> entity_label(total_entities, 0.0);
  for (size_t e = 0; e < total_entities; ++e) {
    double signal = 0.0;
    for (size_t j = 0; j < spec.shared_features; ++j) {
      signal += label_weights_s[j] * shared_values.At(e, j) / s_norm;
    }
    if (e < spec.other_rows) {
      for (size_t j = 0; j < spec.other_features; ++j) {
        signal += label_weights_z[j] * other_private.At(e, j) / z_norm;
      }
    } else {
      signal += rng.NextGaussian();  // unobserved z-part
    }
    entity_label[e] = signal + 0.2 * rng.NextGaussian();
  }
  if (spec.other_has_label) {
    std::vector<double> labels;
    labels.reserve(other_source_entity.size());
    for (size_t e : other_source_entity) labels.push_back(entity_label[e]);
    AMALUR_CHECK_OK(other.AddColumn(Column::FromDoubles("y", std::move(labels))));
  }
  for (size_t j = 0; j < spec.shared_features; ++j) {
    std::vector<double> values;
    values.reserve(other_source_entity.size());
    for (size_t e : other_source_entity) values.push_back(shared_values.At(e, j));
    AMALUR_CHECK_OK(other.AddColumn(
        Column::FromDoubles(pair.shared_feature_names[j], std::move(values))));
  }
  for (size_t j = 0; j < spec.other_features; ++j) {
    Column col(pair.other_feature_names[j], DataType::kDouble);
    for (size_t e : other_source_entity) {
      if (spec.null_ratio > 0.0 && rng.NextBernoulli(spec.null_ratio)) {
        col.AppendNull();
      } else {
        col.AppendDouble(other_private.At(e, j));
      }
    }
    AMALUR_CHECK_OK(other.AddColumn(std::move(col)));
  }

  // ---- S1 ("base"): matched rows reference matched S2 entities round-robin
  // (fan-out = matched_base / matched_other), the rest get fresh keys.
  Table base("S1");
  std::vector<size_t> base_entity(spec.base_rows);
  for (size_t i = 0; i < spec.base_rows; ++i) {
    if (i < matched_base && matched_other > 0) {
      base_entity[i] = i % matched_other;  // S2 entity ids [0, matched_other)
    } else {
      base_entity[i] = spec.other_rows + i;  // S1-only entity
    }
  }
  {
    std::vector<int64_t> keys;
    keys.reserve(spec.base_rows);
    for (size_t e : base_entity) keys.push_back(static_cast<int64_t>(e));
    AMALUR_CHECK_OK(base.AddColumn(Column::FromInt64s("k", std::move(keys))));
  }
  {
    std::vector<double> labels;
    labels.reserve(spec.base_rows);
    for (size_t e : base_entity) labels.push_back(entity_label[e]);
    AMALUR_CHECK_OK(base.AddColumn(Column::FromDoubles("y", std::move(labels))));
  }
  for (size_t j = 0; j < spec.shared_features; ++j) {
    std::vector<double> values;
    values.reserve(spec.base_rows);
    for (size_t e : base_entity) values.push_back(shared_values.At(e, j));
    AMALUR_CHECK_OK(base.AddColumn(
        Column::FromDoubles(pair.shared_feature_names[j], std::move(values))));
  }
  for (size_t j = 0; j < spec.base_features; ++j) {
    Column col(pair.base_feature_names[j], DataType::kDouble);
    for (size_t i = 0; i < spec.base_rows; ++i) {
      if (spec.null_ratio > 0.0 && rng.NextBernoulli(spec.null_ratio)) {
        col.AppendNull();
      } else {
        col.AppendDouble(rng.NextGaussian());
      }
    }
    AMALUR_CHECK_OK(base.AddColumn(std::move(col)));
  }

  pair.base = std::move(base);
  pair.other = std::move(other);
  return pair;
}

namespace {

/// Distinct single-letter feature prefixes per dimension level/shard; short
/// generic names (like the pair generator's x/z/s) that stay dissimilar
/// enough for the schema matcher at the bench/test threshold of 0.75.
constexpr const char* kLevelPrefixes[] = {"u", "v", "w", "p", "q", "r"};
constexpr size_t kNumLevelPrefixes =
    sizeof(kLevelPrefixes) / sizeof(kLevelPrefixes[0]);

/// One keyed dimension table `name(key, <prefix>0..)` with Gaussian
/// features; returns the feature matrix for label synthesis.
Table MakeKeyedDimension(const std::string& name, const std::string& key,
                         size_t rows, size_t features,
                         const std::string& prefix, Rng* rng,
                         la::DenseMatrix* values) {
  Table table(name);
  {
    std::vector<int64_t> keys(rows);
    for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(table.AddColumn(Column::FromInt64s(key, std::move(keys))));
  }
  *values = la::DenseMatrix::RandomGaussian(rows, features, rng);
  for (size_t j = 0; j < features; ++j) {
    std::vector<double> col(rows);
    for (size_t i = 0; i < rows; ++i) col[i] = values->At(i, j);
    AMALUR_CHECK_OK(table.AddColumn(
        Column::FromDoubles(prefix + std::to_string(j), std::move(col))));
  }
  return table;
}

/// Unit-scaled Gaussian weights for `count` features.
std::vector<double> LabelWeights(size_t count, Rng* rng) {
  std::vector<double> weights(count);
  const double norm =
      count > 0 ? std::sqrt(static_cast<double>(count)) : 1.0;
  for (double& w : weights) w = rng->NextGaussian() / norm;
  return weights;
}

}  // namespace

Snowflake GenerateSnowflake(const SnowflakeSpec& spec) {
  AMALUR_CHECK_EQ(spec.level_rows.size(), spec.level_features.size())
      << "snowflake spec: one feature count per chain level";
  AMALUR_CHECK(!spec.level_rows.empty()) << "snowflake spec: needs >= 1 level";
  Rng rng(spec.seed);
  Snowflake out;
  out.spec = spec;
  const size_t levels = spec.level_rows.size();

  // ---- The chain, leaf-most last. Level i references level i+1 round-robin.
  std::vector<la::DenseMatrix> level_values(levels);
  for (size_t level = 0; level < levels; ++level) {
    out.chain_keys.push_back("dim" + std::to_string(level) + "_id");
    Table dim = MakeKeyedDimension(
        "dim" + std::to_string(level), out.chain_keys.back(),
        spec.level_rows[level], spec.level_features[level],
        kLevelPrefixes[level % kNumLevelPrefixes], &rng, &level_values[level]);
    if (level + 1 < levels) {
      std::vector<int64_t> child_keys(spec.level_rows[level]);
      for (size_t i = 0; i < spec.level_rows[level]; ++i) {
        child_keys[i] = static_cast<int64_t>(i % spec.level_rows[level + 1]);
      }
      AMALUR_CHECK_OK(dim.AddColumn(Column::FromInt64s(
          "dim" + std::to_string(level + 1) + "_id", std::move(child_keys))));
    }
    out.tables.push_back(std::move(dim));
  }

  // ---- The fact: key into dim0 round-robin, label linear in the fact's
  // features plus every chain level's (resolved through the key chain).
  std::vector<std::vector<double>> level_weights(levels);
  for (size_t level = 0; level < levels; ++level) {
    level_weights[level] = LabelWeights(spec.level_features[level], &rng);
  }
  const std::vector<double> fact_weights =
      LabelWeights(spec.fact_features, &rng);
  la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(spec.fact_rows, spec.fact_features, &rng);

  Table fact("fact");
  {
    std::vector<int64_t> keys(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) {
      keys[i] = static_cast<int64_t>(i % spec.level_rows[0]);
    }
    AMALUR_CHECK_OK(
        fact.AddColumn(Column::FromInt64s(out.chain_keys[0], std::move(keys))));
  }
  {
    std::vector<double> y(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) {
      double signal = 0.0;
      for (size_t j = 0; j < spec.fact_features; ++j) {
        signal += fact_weights[j] * x.At(i, j);
      }
      size_t entity = i % spec.level_rows[0];
      for (size_t level = 0; level < levels; ++level) {
        for (size_t j = 0; j < spec.level_features[level]; ++j) {
          signal += level_weights[level][j] * level_values[level].At(entity, j);
        }
        if (level + 1 < levels) entity %= spec.level_rows[level + 1];
      }
      y[i] = signal + 0.1 * rng.NextGaussian();
    }
    AMALUR_CHECK_OK(fact.AddColumn(Column::FromDoubles("y", std::move(y))));
  }
  for (size_t j = 0; j < spec.fact_features; ++j) {
    std::vector<double> col(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) col[i] = x.At(i, j);
    AMALUR_CHECK_OK(fact.AddColumn(
        Column::FromDoubles("x" + std::to_string(j), std::move(col))));
  }
  out.tables.insert(out.tables.begin(), std::move(fact));
  return out;
}

ConformedSnowflake GenerateConformedSnowflake(
    const ConformedSnowflakeSpec& spec) {
  AMALUR_CHECK_GE(spec.branches, 2u)
      << "a conformed snowflake needs >= 2 branches sharing the dimension";
  // The shared dimension takes the prefix AFTER the branches; more branches
  // than prefixes would silently collide column names (duplicate target
  // fields resolve first-match in SchemaMapping and corrupt ground truth).
  AMALUR_CHECK_LT(spec.branches, kNumLevelPrefixes)
      << "at most " << kNumLevelPrefixes - 1
      << " branches (distinct feature prefixes)";
  AMALUR_CHECK_GE(spec.branch_rows, 1u) << "branches need rows";
  AMALUR_CHECK_GE(spec.shared_rows, 1u) << "the shared dimension needs rows";
  Rng rng(spec.seed);
  ConformedSnowflake out;
  out.spec = spec;
  out.shared_key = "shared_id";
  const size_t R = spec.branch_rows;
  const size_t S = spec.shared_rows;

  // ---- The shared (conformed) dimension, then the branches. Branch b's
  // row j references shared row ((j - b) mod R) mod S, and the fact
  // references branch b's row (i + b) mod R — so every parent chain
  // resolves fact row i to the SAME shared row (i mod R) mod S: the
  // conformed contract, by construction.
  la::DenseMatrix shared_values;
  Table shared = MakeKeyedDimension(
      "shared", out.shared_key, S, spec.shared_features,
      kLevelPrefixes[spec.branches % kNumLevelPrefixes], &rng, &shared_values);

  std::vector<la::DenseMatrix> branch_values(spec.branches);
  std::vector<Table> branch_tables;
  for (size_t b = 0; b < spec.branches; ++b) {
    out.branch_keys.push_back("branch" + std::to_string(b) + "_id");
    Table branch = MakeKeyedDimension(
        "branch" + std::to_string(b), out.branch_keys[b], R,
        spec.branch_features, kLevelPrefixes[b % kNumLevelPrefixes], &rng,
        &branch_values[b]);
    std::vector<int64_t> shared_refs(R);
    for (size_t j = 0; j < R; ++j) {
      shared_refs[j] = static_cast<int64_t>(((j + R - (b % R)) % R) % S);
    }
    AMALUR_CHECK_OK(branch.AddColumn(
        Column::FromInt64s(out.shared_key, std::move(shared_refs))));
    branch_tables.push_back(std::move(branch));
  }

  // ---- The fact: one key per branch, label linear in everything (the
  // shared features enter ONCE, through the conformed row).
  const size_t matched = std::min<size_t>(
      spec.fact_rows,
      static_cast<size_t>(std::llround(
          spec.match_fraction * static_cast<double>(spec.fact_rows))));
  const std::vector<double> fact_weights =
      LabelWeights(spec.fact_features, &rng);
  std::vector<std::vector<double>> branch_weights(spec.branches);
  for (size_t b = 0; b < spec.branches; ++b) {
    branch_weights[b] = LabelWeights(spec.branch_features, &rng);
  }
  const std::vector<double> shared_weights =
      LabelWeights(spec.shared_features, &rng);
  la::DenseMatrix x =
      la::DenseMatrix::RandomGaussian(spec.fact_rows, spec.fact_features, &rng);

  Table fact("fact");
  for (size_t b = 0; b < spec.branches; ++b) {
    std::vector<int64_t> keys(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) {
      keys[i] = i < matched
                    ? static_cast<int64_t>((i + b) % R)
                    // Dangling reference: a key no branch row carries.
                    : static_cast<int64_t>(R + i);
    }
    AMALUR_CHECK_OK(
        fact.AddColumn(Column::FromInt64s(out.branch_keys[b], std::move(keys))));
  }
  {
    std::vector<double> y(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) {
      double signal = 0.0;
      for (size_t j = 0; j < spec.fact_features; ++j) {
        signal += fact_weights[j] * x.At(i, j);
      }
      if (i < matched) {
        for (size_t b = 0; b < spec.branches; ++b) {
          const size_t row = (i + b) % R;
          for (size_t j = 0; j < spec.branch_features; ++j) {
            signal += branch_weights[b][j] * branch_values[b].At(row, j);
          }
        }
        const size_t shared_row = (i % R) % S;
        for (size_t j = 0; j < spec.shared_features; ++j) {
          signal += shared_weights[j] * shared_values.At(shared_row, j);
        }
      } else {
        signal += rng.NextGaussian();  // unobserved dimension part
      }
      y[i] = signal + 0.1 * rng.NextGaussian();
    }
    AMALUR_CHECK_OK(fact.AddColumn(Column::FromDoubles("y", std::move(y))));
  }
  for (size_t j = 0; j < spec.fact_features; ++j) {
    std::vector<double> col(spec.fact_rows);
    for (size_t i = 0; i < spec.fact_rows; ++i) col[i] = x.At(i, j);
    AMALUR_CHECK_OK(fact.AddColumn(
        Column::FromDoubles("x" + std::to_string(j), std::move(col))));
  }

  out.tables.push_back(std::move(fact));
  for (Table& branch : branch_tables) out.tables.push_back(std::move(branch));
  out.tables.push_back(std::move(shared));
  return out;
}

UnionOfStars GenerateUnionOfStars(const UnionOfStarsSpec& spec) {
  AMALUR_CHECK_GE(spec.shards, 2u) << "a union-of-stars needs >= 2 shards";
  Rng rng(spec.seed);
  UnionOfStars out;
  out.spec = spec;
  // One global weight vector over the shared fact features so every shard
  // draws its labels from the same underlying model (they are horizontal
  // partitions of one population).
  const std::vector<double> fact_weights =
      LabelWeights(spec.fact_features, &rng);
  const std::vector<double> dim_weights = LabelWeights(spec.dim_features, &rng);

  for (size_t s = 0; s < spec.shards; ++s) {
    const std::string key = "dim" + std::to_string(s) + "_id";
    la::DenseMatrix dim_values;
    Table dim = MakeKeyedDimension(
        "dim" + std::to_string(s), key, spec.dim_rows, spec.dim_features,
        kLevelPrefixes[s % kNumLevelPrefixes], &rng, &dim_values);

    la::DenseMatrix x =
        la::DenseMatrix::RandomGaussian(spec.fact_rows, spec.fact_features, &rng);
    Table fact("fact" + std::to_string(s));
    {
      std::vector<int64_t> keys(spec.fact_rows);
      for (size_t i = 0; i < spec.fact_rows; ++i) {
        keys[i] = static_cast<int64_t>(i % spec.dim_rows);
      }
      AMALUR_CHECK_OK(fact.AddColumn(Column::FromInt64s(key, std::move(keys))));
    }
    {
      std::vector<double> y(spec.fact_rows);
      for (size_t i = 0; i < spec.fact_rows; ++i) {
        double signal = 0.0;
        for (size_t j = 0; j < spec.fact_features; ++j) {
          signal += fact_weights[j] * x.At(i, j);
        }
        for (size_t j = 0; j < spec.dim_features; ++j) {
          signal += dim_weights[j] * dim_values.At(i % spec.dim_rows, j);
        }
        y[i] = signal + 0.1 * rng.NextGaussian();
      }
      AMALUR_CHECK_OK(fact.AddColumn(Column::FromDoubles("y", std::move(y))));
    }
    for (size_t j = 0; j < spec.fact_features; ++j) {
      std::vector<double> col(spec.fact_rows);
      for (size_t i = 0; i < spec.fact_rows; ++i) col[i] = x.At(i, j);
      AMALUR_CHECK_OK(fact.AddColumn(
          Column::FromDoubles("x" + std::to_string(j), std::move(col))));
    }
    out.tables.push_back(std::move(fact));
    out.tables.push_back(std::move(dim));
  }
  return out;
}

Table GenerateTable(const std::string& name, size_t rows, size_t features,
                    uint64_t seed) {
  Rng rng(seed);
  Table table(name);
  {
    std::vector<int64_t> keys(rows);
    for (size_t i = 0; i < rows; ++i) keys[i] = static_cast<int64_t>(i);
    AMALUR_CHECK_OK(table.AddColumn(Column::FromInt64s("k", std::move(keys))));
  }
  la::DenseMatrix x = la::DenseMatrix::RandomGaussian(rows, features, &rng);
  std::vector<double> theta(features);
  for (double& t : theta) t = rng.NextGaussian();
  std::vector<double> y(rows);
  for (size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < features; ++j) acc += x.At(i, j) * theta[j];
    y[i] = acc + 0.1 * rng.NextGaussian();
  }
  AMALUR_CHECK_OK(table.AddColumn(Column::FromDoubles("y", std::move(y))));
  for (size_t j = 0; j < features; ++j) {
    std::vector<double> col(rows);
    for (size_t i = 0; i < rows; ++i) col[i] = x.At(i, j);
    AMALUR_CHECK_OK(table.AddColumn(
        Column::FromDoubles("x" + std::to_string(j), std::move(col))));
  }
  return table;
}

}  // namespace rel
}  // namespace amalur
