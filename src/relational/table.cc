#include "relational/table.h"

#include <sstream>

#include "common/status.h"

namespace amalur {
namespace rel {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (const Column& col : columns_) {
    AMALUR_CHECK_EQ(col.size(), columns_[0].size())
        << "ragged columns in table " << name_;
  }
}

Table Table::FromSchema(std::string name, const Schema& schema) {
  Table table(std::move(name));
  for (const Field& field : schema.fields()) {
    table.columns_.emplace_back(field.name, field.type);
  }
  return table;
}

Schema Table::schema() const {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const Column& col : columns_) {
    fields.push_back({col.name(), col.type(), true});
  }
  return Schema(std::move(fields));
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("column '", name, "' in table '", name_, "'");
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  AMALUR_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
  return &columns_[index];
}

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != NumRows()) {
    return Status::InvalidArgument("column '", column.name(), "' has ",
                                   column.size(), " rows, table has ", NumRows());
  }
  for (const Column& existing : columns_) {
    if (existing.name() == column.name()) {
      return Status::AlreadyExists("column '", column.name(), "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row has ", values.size(), " values, table has ",
                                   columns_.size(), " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].AppendValue(values[i]);
  }
  return Status::OK();
}

Table Table::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> projected;
  projected.reserve(indices.size());
  for (size_t i : indices) {
    AMALUR_CHECK_LT(i, columns_.size()) << "projection index out of range";
    projected.push_back(columns_[i]);
  }
  return Table(name_, std::move(projected));
}

Result<Table> Table::ProjectNames(const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    AMALUR_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
    indices.push_back(index);
  }
  return Project(indices);
}

Table Table::GatherRows(const std::vector<size_t>& rows) const {
  std::vector<Column> gathered;
  gathered.reserve(columns_.size());
  for (const Column& col : columns_) gathered.push_back(col.Gather(rows));
  return Table(name_, std::move(gathered));
}

double Table::NullRatio() const {
  const size_t cells = NumRows() * NumColumns();
  if (cells == 0) return 0.0;
  size_t nulls = 0;
  for (const Column& col : columns_) nulls += col.NullCount();
  return static_cast<double>(nulls) / static_cast<double>(cells);
}

Result<la::DenseMatrix> Table::ToMatrix(const std::vector<size_t>& column_indices,
                                        double null_substitute) const {
  la::DenseMatrix out(NumRows(), column_indices.size());
  for (size_t j = 0; j < column_indices.size(); ++j) {
    const size_t c = column_indices[j];
    if (c >= columns_.size()) {
      return Status::OutOfRange("column index ", c, " out of ", columns_.size());
    }
    const Column& col = columns_[c];
    if (col.type() == DataType::kString) {
      return Status::InvalidArgument("column '", col.name(),
                                     "' is a string column; encode it first");
    }
    for (size_t i = 0; i < col.size(); ++i) {
      out.At(i, j) = col.GetDouble(i, null_substitute);
    }
  }
  return out;
}

Result<la::DenseMatrix> Table::ToMatrix() const {
  std::vector<size_t> all(columns_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return ToMatrix(all, 0.0);
}

Table Table::FromMatrix(std::string name, const la::DenseMatrix& matrix,
                        const std::vector<std::string>& column_names) {
  AMALUR_CHECK_EQ(column_names.size(), matrix.cols())
      << "column name count mismatch";
  std::vector<Column> columns;
  columns.reserve(matrix.cols());
  for (size_t j = 0; j < matrix.cols(); ++j) {
    std::vector<double> values(matrix.rows());
    for (size_t i = 0; i < matrix.rows(); ++i) values[i] = matrix.At(i, j);
    columns.push_back(Column::FromDoubles(column_names[j], std::move(values)));
  }
  return Table(std::move(name), std::move(columns));
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  out << name_ << " [" << NumRows() << " rows]\n  ";
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (j > 0) out << " | ";
    out << columns_[j].name();
  }
  out << "\n";
  const size_t shown = std::min(NumRows(), max_rows);
  for (size_t i = 0; i < shown; ++i) {
    out << "  ";
    for (size_t j = 0; j < columns_.size(); ++j) {
      if (j > 0) out << " | ";
      const Value v = columns_[j].GetValue(i);
      out << (v.is_null() ? "∅" : v.ToString());
    }
    out << "\n";
  }
  if (shown < NumRows()) out << "  ... (" << NumRows() - shown << " more rows)\n";
  return out.str();
}

}  // namespace rel
}  // namespace amalur
