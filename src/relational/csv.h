#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "relational/table.h"

/// \file csv.h
/// CSV import/export for silo data. The reader infers per-column types over
/// the whole file (int64 ⊂ double ⊂ string; empty fields are NULL) so that a
/// column with one stray string falls back to string rather than corrupting.

namespace amalur {
namespace rel {

/// Options for `ReadCsv`.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1, ...
  bool has_header = true;
};

/// Parses a CSV stream into a table named `table_name`.
Result<Table> ReadCsv(std::istream& input, const std::string& table_name,
                      const CsvOptions& options = {});

/// Reads a CSV file; the table is named after the file's basename.
Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Writes `table` as CSV (header row + data rows; NULL renders empty).
Status WriteCsv(const Table& table, std::ostream& output,
                const CsvOptions& options = {});

/// Writes `table` to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace rel
}  // namespace amalur
