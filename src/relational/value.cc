#include "relational/value.h"

#include <cstdio>

namespace amalur {
namespace rel {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", dbl());
    return buffer;
  }
  return str();
}

}  // namespace rel
}  // namespace amalur
