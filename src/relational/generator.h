#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/join.h"
#include "relational/table.h"

/// \file generator.h
/// Seeded synthetic silo generator. Substitutes for the paper's private
/// hospital/enterprise silos: every distribution property the cost model and
/// the Table III / Figure 5 experiments depend on (row counts, feature
/// counts, row overlap, join fan-out, within-source duplicates, null ratio,
/// shared feature columns) is an explicit knob, and ground-truth row matches
/// are recoverable by key equality.

namespace amalur {
namespace rel {

/// Specification of a synthetic two-silo scenario (base table S1 + new table
/// S2, in the paper's running-example roles).
struct SiloPairSpec {
  /// Dataset relationship this pair is destined for (Table I).
  JoinKind kind = JoinKind::kLeftJoin;
  /// Rows of the base table S1.
  size_t base_rows = 1000;
  /// Distinct entity rows of the new table S2 (before duplication).
  size_t other_rows = 200;
  /// Feature columns private to S1 (named x0, x1, ...).
  size_t base_features = 1;
  /// Feature columns private to S2 (named z0, z1, ...).
  size_t other_features = 100;
  /// Feature columns present in BOTH tables (named s0, s1, ...) with equal
  /// values for matched entities — the overlapping columns of §IV.A.
  size_t shared_features = 0;
  /// Fraction of S1 rows whose key exists in S2. Matched S1 rows are assigned
  /// round-robin over the matched S2 keys, so the join fan-out
  /// (target-table redundancy) is ≈ match_fraction·base_rows / matched keys.
  double match_fraction = 1.0;
  /// Fraction of S2 entity rows that are matched by at least one S1 row.
  double row_overlap = 1.0;
  /// Fraction of extra exact-duplicate rows appended to S2 (within-source
  /// redundancy; 0.5 means |S2| grows by 50% duplicates).
  double other_dup_rate = 0.0;
  /// Probability that a private feature cell is NULL.
  double null_ratio = 0.0;
  /// S2 also carries the label column (paper Examples 1, 2, 4).
  bool other_has_label = false;
  /// PRNG seed; equal specs with equal seeds generate identical data.
  uint64_t seed = 42;
};

/// A generated pair of silo tables.
///
/// Column layout: S1(k, y, s0.., x0..), S2(k, [y,] s0.., z0..). `k` is the
/// entity key (int64) used as ground truth for matching; `y` the label.
struct SiloPair {
  Table base;
  Table other;
  /// Private + shared feature names, per table, in target-schema order.
  std::vector<std::string> base_feature_names;
  std::vector<std::string> other_feature_names;
  std::vector<std::string> shared_feature_names;
  /// The spec that produced this pair.
  SiloPairSpec spec;

  /// Names of the feature columns of the target schema T (shared first, then
  /// S1-private, then S2-private) — the mediated schema of the scenario.
  std::vector<std::string> TargetFeatureNames() const;
};

/// Generates a silo pair per `spec`. Deterministic in `spec.seed`.
SiloPair GenerateSiloPair(const SiloPairSpec& spec);

/// Specification of a synthetic *snowflake* scenario: a fact table joined
/// to a chain of dimensions fact → dim0 → dim1 → ... Each level carries a
/// surrogate key `dim<i>_id` referenced round-robin by the level above, so
/// every edge fans out and redundancy compounds along the chain. The label
/// `y` lives on the fact and is linear in the fact's and every level's
/// features (plus noise), so chained feature augmentation genuinely helps.
struct SnowflakeSpec {
  size_t fact_rows = 1000;
  /// Fact feature columns (named x0, x1, ...).
  size_t fact_features = 2;
  /// Distinct rows per chain level (dim0, dim1, ...); each level must be no
  /// larger than the one above for the round-robin referencing to fan out.
  std::vector<size_t> level_rows = {100, 10};
  /// Feature columns per chain level, named with a distinct per-level
  /// prefix letter (u0..., v0..., w0...).
  std::vector<size_t> level_features = {3, 2};
  uint64_t seed = 42;
};

/// A generated snowflake. `tables[0]` is the fact, then the chain in order;
/// `chain_keys[i]` is the key column joining tables[i] to tables[i + 1].
struct Snowflake {
  std::vector<Table> tables;
  std::vector<std::string> chain_keys;
  SnowflakeSpec spec;
};

/// Generates a snowflake per `spec`. Deterministic in `spec.seed`.
Snowflake GenerateSnowflake(const SnowflakeSpec& spec);

/// Specification of a synthetic *conformed-snowflake* scenario: one fact
/// table referencing `branches` intermediate dimensions, all of which
/// reference ONE shared ("conformed") dimension — the classic warehouse
/// shape of a single `date`/`customer` table serving several parents. The
/// per-branch key assignments are constructed so every parent chain
/// resolves a fact row to the *same* shared row (the conformed contract),
/// and the label is linear in the fact's, every branch's and the shared
/// dimension's features — the shared features count once.
struct ConformedSnowflakeSpec {
  size_t fact_rows = 1000;
  /// Fact feature columns (named x0, x1, ...).
  size_t fact_features = 2;
  /// Intermediate dimensions referencing the shared one.
  size_t branches = 2;
  /// Distinct rows per intermediate dimension.
  size_t branch_rows = 50;
  /// Feature columns per intermediate dimension (distinct per-branch prefix
  /// letters, as in `SnowflakeSpec`).
  size_t branch_features = 2;
  /// Distinct rows of the shared (conformed) dimension.
  size_t shared_rows = 10;
  /// Feature columns of the shared dimension.
  size_t shared_features = 2;
  /// Fraction of fact rows whose branch references resolve; the rest carry
  /// dangling keys absent from every branch — exactly the rows an
  /// inner-join edge drops from the target.
  double match_fraction = 1.0;
  uint64_t seed = 42;
};

/// A generated conformed snowflake: tables = [fact, branch0, ...,
/// branch<B-1>, shared]. The fact references branch b on
/// `branch_keys[b]` ("branch<b>_id"); every branch references the shared
/// dimension on `shared_key` ("shared_id").
struct ConformedSnowflake {
  std::vector<Table> tables;
  std::vector<std::string> branch_keys;
  std::string shared_key;
  ConformedSnowflakeSpec spec;
};

/// Generates a conformed snowflake per `spec`. Deterministic in `spec.seed`.
ConformedSnowflake GenerateConformedSnowflake(const ConformedSnowflakeSpec& spec);

/// Specification of a synthetic *union-of-stars* scenario: `shards`
/// horizontally partitioned fact silos with a common schema (y, x0, ...),
/// each referencing a private dimension table through its own surrogate key
/// `dim<i>_id` — paper Table I's union relationship between the shards plus
/// one left-join star edge per shard.
struct UnionOfStarsSpec {
  size_t shards = 2;
  /// Rows per fact shard.
  size_t fact_rows = 500;
  /// Fact feature columns shared by every shard (named x0, x1, ...).
  size_t fact_features = 2;
  /// Distinct rows of each shard's private dimension.
  size_t dim_rows = 50;
  /// Feature columns of each shard's dimension (distinct per-shard prefix
  /// letters, as in `SnowflakeSpec`).
  size_t dim_features = 3;
  uint64_t seed = 42;
};

/// A generated union-of-stars, shard-major: tables = [fact0, dim0, fact1,
/// dim1, ...]. Shard i's fact joins its dimension on `dim<i>_id`.
struct UnionOfStars {
  std::vector<Table> tables;
  UnionOfStarsSpec spec;
};

/// Generates a union-of-stars per `spec`. Deterministic in `spec.seed`.
UnionOfStars GenerateUnionOfStars(const UnionOfStarsSpec& spec);

/// Single-table generator: `rows` x `features` Gaussian features plus a label
/// column `y` = Θᵀx + ε and an int64 key column `k` = 0..rows-1.
Table GenerateTable(const std::string& name, size_t rows, size_t features,
                    uint64_t seed);

}  // namespace rel
}  // namespace amalur
