#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "relational/value.h"

/// \file column.h
/// Typed columnar storage. One vector of the physical type plus a validity
/// byte-vector (1 = present). Cell-level `Value` boxing only happens at API
/// boundaries; bulk paths (`ToMatrix`, joins) read the typed vectors directly.

namespace amalur {
namespace rel {

/// A single named, typed, nullable column.
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  /// Pre-sized all-null column (rows are filled by position later).
  static Column Nulls(std::string name, DataType type, size_t rows);
  /// Column of doubles with all values present.
  static Column FromDoubles(std::string name, std::vector<double> values);
  /// Column of int64s with all values present.
  static Column FromInt64s(std::string name, std::vector<int64_t> values);
  /// Column of strings with all values present.
  static Column FromStrings(std::string name, std::vector<std::string> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  bool IsNull(size_t row) const {
    AMALUR_CHECK_LT(row, size()) << "column row out of range";
    return validity_[row] == 0;
  }

  /// Number of NULL cells.
  size_t NullCount() const;
  /// Fraction of NULL cells (0 for an empty column).
  double NullRatio() const {
    return size() == 0 ? 0.0
                       : static_cast<double>(NullCount()) /
                             static_cast<double>(size());
  }

  void AppendNull();
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  /// Appends a boxed value; its type must match the column type (or be null).
  void AppendValue(const Value& v);

  /// Overwrites row `row` (used when assembling join outputs).
  void SetValue(size_t row, const Value& v);

  /// Boxed read of one cell.
  Value GetValue(size_t row) const;

  /// Numeric read of one cell; NULL returns `null_substitute`. Only valid for
  /// int64/double columns.
  double GetDouble(size_t row, double null_substitute = 0.0) const;

  /// Direct typed access for bulk kernels; only valid for the matching type.
  const std::vector<int64_t>& int64_data() const { return ints_; }
  const std::vector<double>& double_data() const { return doubles_; }
  const std::vector<std::string>& string_data() const { return strings_; }

  /// A key usable for hashing/equality in joins and entity resolution:
  /// the canonical string rendering of the cell ("" for NULL).
  std::string KeyString(size_t row) const { return GetValue(row).ToString(); }

  /// New column with the given rows, in the given order; `kNullRow` emits NULL.
  static constexpr size_t kNullRow = static_cast<size_t>(-1);
  Column Gather(const std::vector<size_t>& rows) const;

 private:
  std::string name_;
  DataType type_;
  std::vector<uint8_t> validity_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace rel
}  // namespace amalur
