#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

/// \file schema.h
/// Relational schemas: ordered, named, typed fields. Source and target
/// schemas of the paper (`S_k`, `T`) are instances of this class.

namespace amalur {
namespace rel {

/// One field of a schema.
struct Field {
  std::string name;
  DataType type = DataType::kDouble;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && nullable == other.nullable;
  }
};

/// An ordered collection of uniquely named fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Convenience: all-double schema from names (the common ML case).
  static Schema AllDouble(const std::vector<std::string>& names);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with `name`, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// True when a field with `name` exists.
  bool Contains(const std::string& name) const { return IndexOf(name).has_value(); }

  /// Schema with only the given field indices, in the given order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// All field names in order.
  std::vector<std::string> Names() const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  /// "name:type, name:type, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace rel
}  // namespace amalur
