#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

/// \file join.h
/// Hash-based join machinery. Two layers:
///
///  * `MatchRowsOnKeys` — produces the *row matching* between two tables
///    (matched pairs + per-side unmatched rows). This is the relational ground
///    truth that entity resolution approximates, and the raw material of the
///    paper's indicator matrices.
///  * `HashJoin` / `UnionAll` — conventional operators used by the
///    materialization path, with provenance (source row per output row) so the
///    metadata layer can derive `CI_k` vectors from an executed plan.

namespace amalur {
namespace rel {

/// The four dataset relationships of paper Table I.
enum class JoinKind : int8_t {
  kInnerJoin = 0,
  kLeftJoin = 1,
  kFullOuterJoin = 2,
  kUnion = 3,
};

const char* JoinKindToString(JoinKind kind);

/// Row-level matching between two tables.
struct RowMatching {
  /// (left row, right row) pairs with equal keys.
  std::vector<std::pair<size_t, size_t>> matched;
  /// Left rows with no partner.
  std::vector<size_t> left_only;
  /// Right rows with no partner.
  std::vector<size_t> right_only;
};

/// Matches rows whose key columns are equal (NULL keys never match).
/// Duplicate keys produce the full cross product of the matching groups,
/// i.e. standard join semantics.
Result<RowMatching> MatchRowsOnKeys(const Table& left, const Table& right,
                                    const std::vector<std::string>& left_keys,
                                    const std::vector<std::string>& right_keys);

/// A joined table plus provenance: for each output row, the contributing row
/// in each input (`Column::kNullRow` when the side is padded with NULLs).
struct JoinResult {
  Table table;
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
};

/// Hash join on equal key columns. Output columns are all left columns
/// followed by the right table's non-key columns; a right column whose name
/// collides with a left column is suffixed with "_<right table name>".
/// `kUnion` is not a join; use `UnionAll`.
Result<JoinResult> HashJoin(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            JoinKind kind);

/// Concatenates two tables over a shared output schema given by
/// `left_to_out[j]` = output index of left column j (same for right);
/// unmapped output columns are NULL-filled. Provenance as in `JoinResult`.
Result<JoinResult> UnionAll(const Table& left, const Table& right,
                            const Schema& output_schema,
                            const std::vector<size_t>& left_to_out,
                            const std::vector<size_t>& right_to_out);

}  // namespace rel
}  // namespace amalur
