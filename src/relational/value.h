#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

/// \file value.h
/// Cell-level value model for the relational substrate. Columns store data in
/// typed vectors (see column.h); `Value` is the boxed form used at API
/// boundaries — CSV parsing, row construction, tests.

namespace amalur {
namespace rel {

/// Physical type of a column.
enum class DataType : int8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Human-readable type name ("int64", "double", "string").
const char* DataTypeToString(DataType type);

/// A single nullable cell value.
class Value {
 public:
  /// The NULL value.
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}            // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t int64() const {
    AMALUR_CHECK(is_int64()) << "value is not int64";
    return std::get<int64_t>(repr_);
  }
  double dbl() const {
    AMALUR_CHECK(is_double()) << "value is not double";
    return std::get<double>(repr_);
  }
  const std::string& str() const {
    AMALUR_CHECK(is_string()) << "value is not string";
    return std::get<std::string>(repr_);
  }

  /// Numeric view: int64 and double cells as double. NULL and string are
  /// programmer errors here — callers must check first.
  double AsDouble() const {
    if (is_int64()) return static_cast<double>(std::get<int64_t>(repr_));
    return dbl();
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Rendering used by CSV output and test messages; NULL renders empty.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace rel
}  // namespace amalur
