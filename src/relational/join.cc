#include "relational/join.h"

#include <unordered_map>

#include "common/status.h"

namespace amalur {
namespace rel {

const char* JoinKindToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInnerJoin:
      return "inner join";
    case JoinKind::kLeftJoin:
      return "left join";
    case JoinKind::kFullOuterJoin:
      return "full outer join";
    case JoinKind::kUnion:
      return "union";
  }
  return "?";
}

namespace {

/// Composite key of one row over the key columns; empty optional when any key
/// cell is NULL (SQL semantics: NULL keys never match).
std::optional<std::string> RowKey(const Table& table,
                                  const std::vector<size_t>& key_columns,
                                  size_t row) {
  std::string key;
  for (size_t c : key_columns) {
    const Value v = table.column(c).GetValue(row);
    if (v.is_null()) return std::nullopt;
    key += v.ToString();
    key.push_back('\x1f');  // unit separator: avoids "a"+"bc" == "ab"+"c"
  }
  return key;
}

Result<std::vector<size_t>> ResolveColumns(const Table& table,
                                           const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    AMALUR_ASSIGN_OR_RETURN(size_t index, table.ColumnIndex(name));
    indices.push_back(index);
  }
  return indices;
}

}  // namespace

Result<RowMatching> MatchRowsOnKeys(const Table& left, const Table& right,
                                    const std::vector<std::string>& left_keys,
                                    const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::InvalidArgument("key lists must be equal-sized and non-empty");
  }
  AMALUR_ASSIGN_OR_RETURN(std::vector<size_t> left_cols,
                          ResolveColumns(left, left_keys));
  AMALUR_ASSIGN_OR_RETURN(std::vector<size_t> right_cols,
                          ResolveColumns(right, right_keys));

  std::unordered_map<std::string, std::vector<size_t>> right_index;
  right_index.reserve(right.NumRows());
  for (size_t r = 0; r < right.NumRows(); ++r) {
    auto key = RowKey(right, right_cols, r);
    if (key.has_value()) right_index[*key].push_back(r);
  }

  RowMatching matching;
  std::vector<uint8_t> right_hit(right.NumRows(), 0);
  for (size_t l = 0; l < left.NumRows(); ++l) {
    auto key = RowKey(left, left_cols, l);
    auto it = key.has_value() ? right_index.find(*key) : right_index.end();
    if (it == right_index.end()) {
      matching.left_only.push_back(l);
      continue;
    }
    for (size_t r : it->second) {
      matching.matched.emplace_back(l, r);
      right_hit[r] = 1;
    }
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if (!right_hit[r]) matching.right_only.push_back(r);
  }
  return matching;
}

Result<JoinResult> HashJoin(const Table& left, const Table& right,
                            const std::vector<std::string>& left_keys,
                            const std::vector<std::string>& right_keys,
                            JoinKind kind) {
  if (kind == JoinKind::kUnion) {
    return Status::InvalidArgument("union is not a join; use UnionAll");
  }
  AMALUR_ASSIGN_OR_RETURN(RowMatching matching,
                          MatchRowsOnKeys(left, right, left_keys, right_keys));

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  left_rows.reserve(matching.matched.size());
  right_rows.reserve(matching.matched.size());
  for (const auto& [l, r] : matching.matched) {
    left_rows.push_back(l);
    right_rows.push_back(r);
  }
  if (kind == JoinKind::kLeftJoin || kind == JoinKind::kFullOuterJoin) {
    for (size_t l : matching.left_only) {
      left_rows.push_back(l);
      right_rows.push_back(Column::kNullRow);
    }
  }
  if (kind == JoinKind::kFullOuterJoin) {
    for (size_t r : matching.right_only) {
      left_rows.push_back(Column::kNullRow);
      right_rows.push_back(r);
    }
  }

  // Assemble output: left columns, then right non-key columns.
  Table out(left.name() + "_join_" + right.name());
  for (size_t c = 0; c < left.NumColumns(); ++c) {
    Column gathered = left.column(c).Gather(left_rows);
    AMALUR_RETURN_NOT_OK(out.AddColumn(std::move(gathered)));
  }
  AMALUR_ASSIGN_OR_RETURN(std::vector<size_t> right_key_cols,
                          ResolveColumns(right, right_keys));
  for (size_t c = 0; c < right.NumColumns(); ++c) {
    bool is_key = false;
    for (size_t k : right_key_cols) is_key |= (k == c);
    if (is_key) continue;
    Column gathered = right.column(c).Gather(right_rows);
    if (out.schema().Contains(gathered.name())) {
      gathered.set_name(gathered.name() + "_" + right.name());
    }
    AMALUR_RETURN_NOT_OK(out.AddColumn(std::move(gathered)));
  }
  return JoinResult{std::move(out), std::move(left_rows), std::move(right_rows)};
}

Result<JoinResult> UnionAll(const Table& left, const Table& right,
                            const Schema& output_schema,
                            const std::vector<size_t>& left_to_out,
                            const std::vector<size_t>& right_to_out) {
  if (left_to_out.size() != left.NumColumns() ||
      right_to_out.size() != right.NumColumns()) {
    return Status::InvalidArgument("column mapping size mismatch");
  }
  const size_t rows_left = left.NumRows();
  const size_t rows_right = right.NumRows();
  Table out = Table::FromSchema(left.name() + "_union_" + right.name(),
                                output_schema);

  // Output column -> (input side column), or kNullRow for "not mapped".
  auto build_side = [&](const Table& side, const std::vector<size_t>& to_out,
                        Table* target) -> Status {
    std::vector<size_t> out_to_in(output_schema.num_fields(), Column::kNullRow);
    for (size_t c = 0; c < to_out.size(); ++c) {
      if (to_out[c] == Column::kNullRow) continue;  // dropped column (e.g. dd)
      if (to_out[c] >= output_schema.num_fields()) {
        return Status::OutOfRange("output index ", to_out[c]);
      }
      out_to_in[to_out[c]] = c;
    }
    for (size_t r = 0; r < side.NumRows(); ++r) {
      std::vector<Value> row(output_schema.num_fields());
      for (size_t j = 0; j < out_to_in.size(); ++j) {
        row[j] = out_to_in[j] == Column::kNullRow
                     ? Value::Null()
                     : side.column(out_to_in[j]).GetValue(r);
      }
      AMALUR_RETURN_NOT_OK(target->AppendRow(row));
    }
    return Status::OK();
  };
  AMALUR_RETURN_NOT_OK(build_side(left, left_to_out, &out));
  AMALUR_RETURN_NOT_OK(build_side(right, right_to_out, &out));

  std::vector<size_t> left_rows(rows_left + rows_right, Column::kNullRow);
  std::vector<size_t> right_rows(rows_left + rows_right, Column::kNullRow);
  for (size_t i = 0; i < rows_left; ++i) left_rows[i] = i;
  for (size_t i = 0; i < rows_right; ++i) right_rows[rows_left + i] = i;
  return JoinResult{std::move(out), std::move(left_rows), std::move(right_rows)};
}

}  // namespace rel
}  // namespace amalur
