#include "relational/schema.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace amalur {
namespace rel {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields_) {
    AMALUR_CHECK(seen.insert(f.name).second) << "duplicate field name: " << f.name;
  }
}

Schema Schema::AllDouble(const std::vector<std::string>& names) {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const std::string& name : names) {
    fields.push_back({name, DataType::kDouble, true});
  }
  return Schema(std::move(fields));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Field> projected;
  projected.reserve(indices.size());
  for (size_t i : indices) {
    AMALUR_CHECK_LT(i, fields_.size()) << "projection index out of range";
    projected.push_back(fields_[i]);
  }
  return Schema(std::move(projected));
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const Field& f : fields_) names.push_back(f.name);
  return names;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ", ";
    out << fields_[i].name << ":" << DataTypeToString(fields_[i].type);
  }
  return out.str();
}

}  // namespace rel
}  // namespace amalur
