#include "relational/column.h"

namespace amalur {
namespace rel {

Column Column::Nulls(std::string name, DataType type, size_t rows) {
  Column col(std::move(name), type);
  for (size_t i = 0; i < rows; ++i) col.AppendNull();
  return col;
}

Column Column::FromDoubles(std::string name, std::vector<double> values) {
  Column col(std::move(name), DataType::kDouble);
  col.validity_.assign(values.size(), 1);
  col.doubles_ = std::move(values);
  return col;
}

Column Column::FromInt64s(std::string name, std::vector<int64_t> values) {
  Column col(std::move(name), DataType::kInt64);
  col.validity_.assign(values.size(), 1);
  col.ints_ = std::move(values);
  return col;
}

Column Column::FromStrings(std::string name, std::vector<std::string> values) {
  Column col(std::move(name), DataType::kString);
  col.validity_.assign(values.size(), 1);
  col.strings_ = std::move(values);
  return col;
}

size_t Column::NullCount() const {
  size_t count = 0;
  for (uint8_t v : validity_) count += (v == 0);
  return count;
}

void Column::AppendNull() {
  validity_.push_back(0);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
}

void Column::AppendInt64(int64_t v) {
  AMALUR_CHECK(type_ == DataType::kInt64) << "append int64 to " << name_;
  validity_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  AMALUR_CHECK(type_ == DataType::kDouble) << "append double to " << name_;
  validity_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(std::string v) {
  AMALUR_CHECK(type_ == DataType::kString) << "append string to " << name_;
  validity_.push_back(1);
  strings_.push_back(std::move(v));
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(v.int64());
      break;
    case DataType::kDouble:
      // Accept int64 boxes into double columns (CSV type widening).
      AppendDouble(v.is_int64() ? static_cast<double>(v.int64()) : v.dbl());
      break;
    case DataType::kString:
      AppendString(v.str());
      break;
  }
}

void Column::SetValue(size_t row, const Value& v) {
  AMALUR_CHECK_LT(row, size()) << "SetValue out of range";
  if (v.is_null()) {
    validity_[row] = 0;
    return;
  }
  validity_[row] = 1;
  switch (type_) {
    case DataType::kInt64:
      ints_[row] = v.int64();
      break;
    case DataType::kDouble:
      doubles_[row] = v.is_int64() ? static_cast<double>(v.int64()) : v.dbl();
      break;
    case DataType::kString:
      strings_[row] = v.str();
      break;
  }
}

Value Column::GetValue(size_t row) const {
  AMALUR_CHECK_LT(row, size()) << "GetValue out of range";
  if (validity_[row] == 0) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[row]);
    case DataType::kDouble:
      return Value(doubles_[row]);
    case DataType::kString:
      return Value(strings_[row]);
  }
  return Value::Null();
}

double Column::GetDouble(size_t row, double null_substitute) const {
  AMALUR_CHECK_LT(row, size()) << "GetDouble out of range";
  if (validity_[row] == 0) return null_substitute;
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      AMALUR_LOG(Fatal) << "GetDouble on string column " << name_;
  }
  return null_substitute;
}

Column Column::Gather(const std::vector<size_t>& rows) const {
  Column out(name_, type_);
  for (size_t row : rows) {
    if (row == kNullRow) {
      out.AppendNull();
      continue;
    }
    AMALUR_CHECK_LT(row, size()) << "gather index out of range";
    if (validity_[row] == 0) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case DataType::kInt64:
        out.AppendInt64(ints_[row]);
        break;
      case DataType::kDouble:
        out.AppendDouble(doubles_[row]);
        break;
      case DataType::kString:
        out.AppendString(strings_[row]);
        break;
    }
  }
  return out;
}

}  // namespace rel
}  // namespace amalur
