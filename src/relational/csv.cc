#include "relational/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/status.h"
#include "common/string_util.h"

namespace amalur {
namespace rel {

namespace {

/// What a single text field could parse as.
enum class FieldKind { kEmpty, kInt64, kDouble, kString };

FieldKind ClassifyField(std::string_view field) {
  if (field.empty()) return FieldKind::kEmpty;
  int64_t int_value;
  auto [int_end, int_err] =
      std::from_chars(field.data(), field.data() + field.size(), int_value);
  if (int_err == std::errc() && int_end == field.data() + field.size()) {
    return FieldKind::kInt64;
  }
  // std::from_chars<double> is not universally available on older stdlibs;
  // strtod via a bounded copy is portable and exact enough here.
  std::string buffer(field);
  char* end = nullptr;
  errno = 0;
  (void)std::strtod(buffer.c_str(), &end);
  if (errno == 0 && end == buffer.c_str() + buffer.size()) {
    return FieldKind::kDouble;
  }
  return FieldKind::kString;
}

Value ParseField(std::string_view field, DataType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      int64_t v = 0;
      std::from_chars(field.data(), field.data() + field.size(), v);
      return Value(v);
    }
    case DataType::kDouble: {
      std::string buffer(field);
      return Value(std::strtod(buffer.c_str(), nullptr));
    }
    case DataType::kString:
      return Value(std::string(field));
  }
  return Value::Null();
}

}  // namespace

Result<Table> ReadCsv(std::istream& input, const std::string& table_name,
                      const CsvOptions& options) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(input, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  // A trailing blank line is a file artifact, not an empty record.
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> header;
  size_t first_data_row = 0;
  if (options.has_header) {
    header = Split(lines[0], options.delimiter);
    first_data_row = 1;
  } else {
    const size_t width = Split(lines[0], options.delimiter).size();
    for (size_t i = 0; i < width; ++i) header.push_back("c" + std::to_string(i));
  }
  const size_t width = header.size();

  // Pass 1: tokenize and infer column types (int64 -> double -> string).
  std::vector<std::vector<std::string>> rows;
  rows.reserve(lines.size() - first_data_row);
  std::vector<FieldKind> column_kind(width, FieldKind::kEmpty);
  for (size_t i = first_data_row; i < lines.size(); ++i) {
    std::vector<std::string> fields = Split(lines[i], options.delimiter);
    if (fields.size() != width) {
      return Status::InvalidArgument("row ", i + 1, " has ", fields.size(),
                                     " fields, expected ", width);
    }
    for (size_t j = 0; j < width; ++j) {
      const FieldKind kind = ClassifyField(std::string_view(Trim(fields[j])));
      if (static_cast<int>(kind) > static_cast<int>(column_kind[j])) {
        column_kind[j] = kind;
      }
      fields[j] = std::string(Trim(fields[j]));
    }
    rows.push_back(std::move(fields));
  }

  Table table(table_name);
  std::vector<DataType> types(width);
  for (size_t j = 0; j < width; ++j) {
    switch (column_kind[j]) {
      case FieldKind::kInt64:
        types[j] = DataType::kInt64;
        break;
      case FieldKind::kEmpty:  // all-null column defaults to double
      case FieldKind::kDouble:
        types[j] = DataType::kDouble;
        break;
      case FieldKind::kString:
        types[j] = DataType::kString;
        break;
    }
    AMALUR_RETURN_NOT_OK(
        table.AddColumn(Column(std::string(Trim(header[j])), types[j])));
  }
  for (const auto& fields : rows) {
    std::vector<Value> row(width);
    for (size_t j = 0; j < width; ++j) row[j] = ParseField(fields[j], types[j]);
    AMALUR_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream input(path);
  if (!input.is_open()) return Status::IOError("cannot open ", path);
  std::string basename = path;
  const size_t slash = basename.find_last_of('/');
  if (slash != std::string::npos) basename = basename.substr(slash + 1);
  const size_t dot = basename.find_last_of('.');
  if (dot != std::string::npos) basename = basename.substr(0, dot);
  return ReadCsv(input, basename, options);
}

Status WriteCsv(const Table& table, std::ostream& output,
                const CsvOptions& options) {
  const auto names = table.schema().Names();
  for (size_t j = 0; j < names.size(); ++j) {
    if (j > 0) output << options.delimiter;
    output << names[j];
  }
  output << "\n";
  for (size_t i = 0; i < table.NumRows(); ++i) {
    for (size_t j = 0; j < table.NumColumns(); ++j) {
      if (j > 0) output << options.delimiter;
      output << table.column(j).GetValue(i).ToString();
    }
    output << "\n";
  }
  if (!output.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream output(path);
  if (!output.is_open()) return Status::IOError("cannot open ", path);
  return WriteCsv(table, output, options);
}

}  // namespace rel
}  // namespace amalur
