#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "la/dense_matrix.h"
#include "relational/column.h"
#include "relational/schema.h"

/// \file table.h
/// In-memory columnar table — the representation of source tables `S_k` and
/// the materialized target table `T`. Tables are the boundary between the
/// relational world (joins, CSV) and the linear-algebra world (`ToMatrix`).

namespace amalur {
namespace rel {

/// A named columnar table.
class Table {
 public:
  /// Empty table with no columns.
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}
  Table(std::string name, std::vector<Column> columns);

  /// Empty table shaped after `schema` (zero rows).
  static Table FromSchema(std::string name, const Schema& schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// The schema derived from the columns.
  Schema schema() const;

  const Column& column(size_t i) const {
    AMALUR_CHECK_LT(i, columns_.size()) << "column index out of range";
    return columns_[i];
  }
  Column* mutable_column(size_t i) {
    AMALUR_CHECK_LT(i, columns_.size()) << "column index out of range";
    return &columns_[i];
  }
  const std::vector<Column>& columns() const { return columns_; }

  /// Column lookup by name.
  Result<size_t> ColumnIndex(const std::string& name) const;
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends a column; its length must match the current row count (unless the
  /// table has no columns yet).
  Status AddColumn(Column column);

  /// Appends one row of boxed values (one per column, in order).
  Status AppendRow(const std::vector<Value>& values);

  /// New table with only the given columns, in the given order.
  Table Project(const std::vector<size_t>& indices) const;
  Result<Table> ProjectNames(const std::vector<std::string>& names) const;

  /// New table with the given rows (kNullRow emits an all-NULL row).
  Table GatherRows(const std::vector<size_t>& rows) const;

  /// Overall fraction of NULL cells.
  double NullRatio() const;

  /// Converts the given columns (must be numeric) to a dense matrix.
  /// NULL cells become `null_substitute` — the convention the paper's data
  /// matrices `D_k` and target `T` use (Figure 4 renders absent cells as 0).
  Result<la::DenseMatrix> ToMatrix(const std::vector<size_t>& column_indices,
                                   double null_substitute = 0.0) const;
  /// All-columns overload (NULL -> 0). Deliberately parameterless: a
  /// `ToMatrix(double)` overload would capture brace-initialized index lists
  /// like `ToMatrix({2})` via narrowing.
  Result<la::DenseMatrix> ToMatrix() const;

  /// Builds a table from a dense matrix with the given column names.
  static Table FromMatrix(std::string name, const la::DenseMatrix& matrix,
                          const std::vector<std::string>& column_names);

  /// Human-readable rendering of the first `max_rows` rows.
  std::string ToString(size_t max_rows = 10) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace rel
}  // namespace amalur
