#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "integration/schema_matching.h"
#include "relational/join.h"
#include "relational/table.h"

/// \file entity_resolution.h
/// Entity resolution (record linkage): finds rows of two silos that describe
/// the same real-world entity. The output row matching is the raw material of
/// the paper's indicator matrices (§II: "row matching from entity
/// resolution"). Classic blocking + pairwise-similarity + greedy 1:1
/// assignment pipeline.

namespace amalur {
namespace integration {

/// Knobs for `ResolveEntities`.
struct EntityResolverOptions {
  /// Minimum mean per-column similarity to accept a pair.
  double threshold = 0.85;
  /// Compare at most this many candidate pairs per block (guards the
  /// quadratic worst case when blocking degenerates).
  size_t max_block_size = 4096;
  /// Use blocking (first character / rounded numeric of the best matched
  /// column). Disable to compare all pairs (exact but quadratic).
  bool use_blocking = true;
};

/// One scored entity match.
struct EntityMatch {
  size_t left_row;
  size_t right_row;
  double score;
};

/// Resolves entities between `left` and `right`, comparing only the column
/// pairs in `column_matches` (the schema-matching output). Each row matches
/// at most one row of the other table (greedy by descending score). Returns
/// a `RowMatching` with the same contract as key-equality matching.
Result<rel::RowMatching> ResolveEntities(
    const rel::Table& left, const rel::Table& right,
    const std::vector<ColumnMatch>& column_matches,
    const EntityResolverOptions& options = {});

/// Scored variant returning the accepted pairs with their similarities.
Result<std::vector<EntityMatch>> ResolveEntityPairs(
    const rel::Table& left, const rel::Table& right,
    const std::vector<ColumnMatch>& column_matches,
    const EntityResolverOptions& options = {});

/// Exact-duplicate detection within one table over the given columns:
/// returns for each row the id of its duplicate cluster (cluster id = lowest
/// member row). Rows with NULL in all key columns are their own cluster.
std::vector<size_t> DeduplicateRows(const rel::Table& table,
                                    const std::vector<size_t>& columns);

/// Fraction of rows that are duplicates of an earlier row (0 = all distinct).
double DuplicateRatio(const rel::Table& table, const std::vector<size_t>& columns);

}  // namespace integration
}  // namespace amalur
