#include "integration/tgd.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace amalur {
namespace integration {

std::string TgdAtom::ToString() const {
  std::ostringstream out;
  out << relation << "(";
  for (size_t i = 0; i < variables.size(); ++i) {
    if (i > 0) out << ", ";
    out << variables[i];
  }
  out << ")";
  return out.str();
}

std::vector<std::string> Tgd::UniversalVariables() const {
  std::vector<std::string> ordered;
  std::set<std::string> seen;
  for (const TgdAtom& atom : body_) {
    for (const std::string& var : atom.variables) {
      if (seen.insert(var).second) ordered.push_back(var);
    }
  }
  return ordered;
}

std::vector<std::string> Tgd::ExistentialVariables() const {
  std::set<std::string> universal;
  for (const TgdAtom& atom : body_) {
    universal.insert(atom.variables.begin(), atom.variables.end());
  }
  std::vector<std::string> existential;
  std::set<std::string> seen;
  for (const std::string& var : head_.variables) {
    if (universal.count(var) == 0 && seen.insert(var).second) {
      existential.push_back(var);
    }
  }
  return existential;
}

std::vector<std::string> Tgd::JoinVariables() const {
  std::vector<std::string> joined;
  std::set<std::string> seen;
  for (size_t i = 0; i < body_.size(); ++i) {
    std::set<std::string> vars_i(body_[i].variables.begin(),
                                 body_[i].variables.end());
    for (size_t j = i + 1; j < body_.size(); ++j) {
      for (const std::string& var : body_[j].variables) {
        if (vars_i.count(var) > 0 && seen.insert(var).second) {
          joined.push_back(var);
        }
      }
    }
  }
  return joined;
}

std::string Tgd::ToString() const {
  std::ostringstream out;
  out << "∀ ";
  const auto universal = UniversalVariables();
  for (size_t i = 0; i < universal.size(); ++i) {
    if (i > 0) out << ", ";
    out << universal[i];
  }
  out << " (";
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out << " ∧ ";
    out << body_[i].ToString();
  }
  out << " → ";
  const auto existential = ExistentialVariables();
  if (!existential.empty()) {
    out << "∃ ";
    for (size_t i = 0; i < existential.size(); ++i) {
      if (i > 0) out << ", ";
      out << existential[i];
    }
    out << " ";
  }
  out << head_.ToString() << ")";
  return out.str();
}

}  // namespace integration
}  // namespace amalur
