#include "integration/running_example.h"

namespace amalur {
namespace integration {

RunningExample MakeRunningExample() {
  RunningExample ex;

  ex.s1 = rel::Table("S1");
  AMALUR_CHECK_OK(ex.s1.AddColumn(rel::Column::FromInt64s("m", {0, 0, 0, 1})));
  AMALUR_CHECK_OK(ex.s1.AddColumn(
      rel::Column::FromStrings("n", {"Jack", "Sam", "Ruby", "Jane"})));
  AMALUR_CHECK_OK(ex.s1.AddColumn(rel::Column::FromInt64s("a", {20, 35, 22, 37})));
  AMALUR_CHECK_OK(
      ex.s1.AddColumn(rel::Column::FromInt64s("hr", {60, 58, 65, 70})));

  ex.s2 = rel::Table("S2");
  AMALUR_CHECK_OK(ex.s2.AddColumn(rel::Column::FromInt64s("m", {1, 0, 1})));
  AMALUR_CHECK_OK(ex.s2.AddColumn(
      rel::Column::FromStrings("n", {"Rose", "Castiel", "Jane"})));
  AMALUR_CHECK_OK(ex.s2.AddColumn(rel::Column::FromInt64s("a", {45, 20, 37})));
  AMALUR_CHECK_OK(ex.s2.AddColumn(rel::Column::FromInt64s("o", {95, 97, 92})));
  AMALUR_CHECK_OK(ex.s2.AddColumn(
      rel::Column::FromStrings("dd", {"1/4/21", "3/8/22", "11/5/21"})));

  ex.target_schema = rel::Schema({{"m", rel::DataType::kInt64, true},
                                  {"a", rel::DataType::kInt64, true},
                                  {"hr", rel::DataType::kInt64, true},
                                  {"o", rel::DataType::kInt64, true}});

  auto mapping = SchemaMapping::Create(
      rel::JoinKind::kFullOuterJoin,
      {SchemaMapping::SourceSpec{
           "S1", ex.s1.schema(), {{"m", "m"}, {"a", "a"}, {"hr", "hr"}}},
       SchemaMapping::SourceSpec{
           "S2", ex.s2.schema(), {{"m", "m"}, {"a", "a"}, {"o", "o"}}}},
      ex.target_schema,
      // n is matched between the sources (join variable) but not in T.
      {{0, "n", 1, "n"}});
  AMALUR_CHECK(mapping.ok()) << mapping.status();
  ex.mapping = std::move(mapping).ValueOrDie();

  ex.matching.matched = {{3, 2}};  // Jane
  ex.matching.left_only = {0, 1, 2};
  ex.matching.right_only = {0, 1};
  return ex;
}

la::DenseMatrix RunningExampleTargetMatrix() {
  // Matched rows first, then S1-only, then S2-only (Figure 4c ordering);
  // absent cells are 0 in matrix form.
  return la::DenseMatrix({{1, 37, 70, 92},    // Jane
                          {0, 20, 60, 0},     // Jack
                          {0, 35, 58, 0},     // Sam
                          {0, 22, 65, 0},     // Ruby
                          {1, 45, 0, 95},     // Rose
                          {0, 20, 0, 97}});   // Castiel
}

}  // namespace integration
}  // namespace amalur
