#include "integration/schema_matching.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace amalur {
namespace integration {

namespace {

double NameSimilarity(const std::string& a, const std::string& b) {
  const std::string ca = CanonicalizeIdentifier(a);
  const std::string cb = CanonicalizeIdentifier(b);
  if (ca.empty() || cb.empty()) return 0.0;
  if (ca == cb) return 1.0;
  // Abbreviation heuristic: "hr" vs "heartrate" — prefix/containment counts.
  double containment = 0.0;
  if (ca.find(cb) != std::string::npos || cb.find(ca) != std::string::npos) {
    containment = 0.8;
  }
  return std::max({EditSimilarity(ca, cb), TrigramJaccard(ca, cb), containment});
}

double TypeCompatibility(rel::DataType a, rel::DataType b) {
  if (a == b) return 1.0;
  const bool a_numeric = a != rel::DataType::kString;
  const bool b_numeric = b != rel::DataType::kString;
  if (a_numeric && b_numeric) return 0.8;  // int64 vs double
  return 0.0;
}

/// Summary of a numeric column sample.
struct NumericProfile {
  double lo = 0.0, hi = 0.0, mean = 0.0;
  size_t count = 0;
};

NumericProfile ProfileNumeric(const rel::Column& col,
                              const std::vector<size_t>& sample) {
  NumericProfile p;
  p.lo = 1e300;
  p.hi = -1e300;
  double sum = 0.0;
  for (size_t row : sample) {
    if (col.IsNull(row)) continue;
    const double v = col.GetDouble(row);
    p.lo = std::min(p.lo, v);
    p.hi = std::max(p.hi, v);
    sum += v;
    ++p.count;
  }
  if (p.count > 0) p.mean = sum / static_cast<double>(p.count);
  return p;
}

double NumericInstanceSimilarity(const rel::Column& a, const rel::Column& b,
                                 const std::vector<size_t>& sample_a,
                                 const std::vector<size_t>& sample_b) {
  const NumericProfile pa = ProfileNumeric(a, sample_a);
  const NumericProfile pb = ProfileNumeric(b, sample_b);
  if (pa.count == 0 || pb.count == 0) return 0.0;
  // Interval overlap of the observed ranges.
  const double lo = std::max(pa.lo, pb.lo);
  const double hi = std::min(pa.hi, pb.hi);
  const double span = std::max(pa.hi, pb.hi) - std::min(pa.lo, pb.lo);
  double overlap = 0.0;
  if (span <= 0.0) {
    overlap = pa.lo == pb.lo ? 1.0 : 0.0;  // both constant
  } else {
    overlap = std::max(0.0, hi - lo) / span;
  }
  // Mean closeness relative to the joint span.
  const double mean_gap =
      span <= 0.0 ? 0.0 : std::fabs(pa.mean - pb.mean) / span;
  return 0.7 * overlap + 0.3 * (1.0 - std::min(1.0, mean_gap));
}

double StringInstanceSimilarity(const rel::Column& a, const rel::Column& b,
                                const std::vector<size_t>& sample_a,
                                const std::vector<size_t>& sample_b) {
  std::set<std::string> values_a, values_b;
  for (size_t row : sample_a) {
    if (!a.IsNull(row)) values_a.insert(ToLower(a.KeyString(row)));
  }
  for (size_t row : sample_b) {
    if (!b.IsNull(row)) values_b.insert(ToLower(b.KeyString(row)));
  }
  if (values_a.empty() || values_b.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& v : values_a) intersection += values_b.count(v);
  const size_t unioned = values_a.size() + values_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unioned);
}

std::vector<size_t> SampleRows(size_t rows, size_t sample_size, Rng* rng) {
  if (rows <= sample_size) {
    std::vector<size_t> all(rows);
    for (size_t i = 0; i < rows; ++i) all[i] = i;
    return all;
  }
  return rng->SampleWithoutReplacement(rows, sample_size);
}

}  // namespace

double ScoreColumnPair(const rel::Column& left, const rel::Column& right,
                       const SchemaMatcherOptions& options) {
  const double type_score = TypeCompatibility(left.type(), right.type());
  if (type_score == 0.0) return 0.0;  // string vs numeric never matches
  const double name_score = NameSimilarity(left.name(), right.name());

  Rng rng(options.seed);
  const auto sample_left = SampleRows(left.size(), options.sample_size, &rng);
  const auto sample_right = SampleRows(right.size(), options.sample_size, &rng);
  double instance_score = 0.0;
  if (left.type() == rel::DataType::kString) {
    instance_score =
        StringInstanceSimilarity(left, right, sample_left, sample_right);
  } else {
    instance_score =
        NumericInstanceSimilarity(left, right, sample_left, sample_right);
  }

  const double total_weight =
      options.name_weight + options.type_weight + options.instance_weight;
  return (options.name_weight * name_score + options.type_weight * type_score +
          options.instance_weight * instance_score) /
         total_weight;
}

std::vector<ColumnMatch> MatchSchemas(const rel::Table& left,
                                      const rel::Table& right,
                                      const SchemaMatcherOptions& options) {
  std::vector<ColumnMatch> candidates;
  for (size_t i = 0; i < left.NumColumns(); ++i) {
    for (size_t j = 0; j < right.NumColumns(); ++j) {
      const double score = ScoreColumnPair(left.column(i), right.column(j),
                                           options);
      if (score >= options.threshold) candidates.push_back({i, j, score});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ColumnMatch& a, const ColumnMatch& b) {
              return a.score > b.score;
            });
  std::vector<uint8_t> left_used(left.NumColumns(), 0);
  std::vector<uint8_t> right_used(right.NumColumns(), 0);
  std::vector<ColumnMatch> matches;
  for (const ColumnMatch& c : candidates) {
    if (left_used[c.left_column] || right_used[c.right_column]) continue;
    left_used[c.left_column] = 1;
    right_used[c.right_column] = 1;
    matches.push_back(c);
  }
  std::sort(matches.begin(), matches.end(),
            [](const ColumnMatch& a, const ColumnMatch& b) {
              return a.left_column < b.left_column;
            });
  return matches;
}

}  // namespace integration
}  // namespace amalur
