#include "integration/schema_mapping.h"

#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "common/status.h"

namespace amalur {
namespace integration {

namespace {

/// Union-find over column nodes; used to group columns into tgd variables.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<SchemaMapping> SchemaMapping::Create(
    rel::JoinKind kind, std::vector<SourceSpec> sources, rel::Schema target_schema,
    std::vector<SourceColumnMatch> source_matches) {
  if (sources.size() < 2) {
    return Status::InvalidArgument("a mapping needs at least two sources");
  }
  // Validate correspondences and matches.
  for (size_t k = 0; k < sources.size(); ++k) {
    for (const ColumnCorrespondence& c : sources[k].to_target) {
      if (!sources[k].schema.Contains(c.source_column)) {
        return Status::NotFound("source column '", c.source_column, "' in ",
                                sources[k].name);
      }
      if (!target_schema.Contains(c.target_column)) {
        return Status::NotFound("target column '", c.target_column, "'");
      }
    }
  }
  for (const SourceColumnMatch& m : source_matches) {
    if (m.first_source >= sources.size() || m.second_source >= sources.size()) {
      return Status::OutOfRange("source index in match");
    }
    if (!sources[m.first_source].schema.Contains(m.first_column) ||
        !sources[m.second_source].schema.Contains(m.second_column)) {
      return Status::NotFound("matched column missing from source schema");
    }
  }

  SchemaMapping mapping;
  mapping.kind_ = kind;
  mapping.sources_ = std::move(sources);
  mapping.target_schema_ = std::move(target_schema);

  // ---- Group columns into variable classes with union-find.
  // Node layout: [0, cT) target columns; then each source's columns.
  const size_t num_target = mapping.target_schema_.num_fields();
  std::vector<size_t> source_base(mapping.sources_.size());
  size_t total = num_target;
  for (size_t k = 0; k < mapping.sources_.size(); ++k) {
    source_base[k] = total;
    total += mapping.sources_[k].schema.num_fields();
  }
  UnionFind classes(total);
  auto source_node = [&](size_t k, const std::string& column) {
    return source_base[k] + *mapping.sources_[k].schema.IndexOf(column);
  };
  for (size_t k = 0; k < mapping.sources_.size(); ++k) {
    for (const ColumnCorrespondence& c : mapping.sources_[k].to_target) {
      classes.Union(source_node(k, c.source_column),
                    *mapping.target_schema_.IndexOf(c.target_column));
    }
  }
  for (const SourceColumnMatch& m : source_matches) {
    classes.Union(source_node(m.first_source, m.first_column),
                  source_node(m.second_source, m.second_column));
  }

  // ---- Name each class: target column name wins; else first source column
  // name; disambiguate duplicates with a numeric suffix.
  std::map<size_t, std::string> class_name;
  std::set<std::string> used_names;
  auto claim_name = [&](const std::string& base) {
    std::string name = base;
    int suffix = 1;
    while (used_names.count(name) > 0) {
      name = base + "_" + std::to_string(suffix++);
    }
    used_names.insert(name);
    return name;
  };
  for (size_t i = 0; i < num_target; ++i) {
    const size_t root = classes.Find(i);
    if (class_name.count(root) == 0) {
      class_name[root] = claim_name(mapping.target_schema_.field(i).name);
    }
  }
  for (size_t k = 0; k < mapping.sources_.size(); ++k) {
    const rel::Schema& schema = mapping.sources_[k].schema;
    for (size_t j = 0; j < schema.num_fields(); ++j) {
      const size_t root = classes.Find(source_base[k] + j);
      if (class_name.count(root) == 0) {
        class_name[root] = claim_name(schema.field(j).name);
      }
    }
  }

  mapping.target_variables_.resize(num_target);
  for (size_t i = 0; i < num_target; ++i) {
    mapping.target_variables_[i] = class_name[classes.Find(i)];
  }
  mapping.source_variables_.resize(mapping.sources_.size());
  for (size_t k = 0; k < mapping.sources_.size(); ++k) {
    const rel::Schema& schema = mapping.sources_[k].schema;
    mapping.source_variables_[k].resize(schema.num_fields());
    for (size_t j = 0; j < schema.num_fields(); ++j) {
      mapping.source_variables_[k][j] = class_name[classes.Find(source_base[k] + j)];
    }
  }

  // ---- Generate the tgds per Table I.
  auto source_atom = [&](size_t k) {
    return TgdAtom{mapping.sources_[k].name, mapping.source_variables_[k]};
  };
  const TgdAtom head{"T", mapping.target_variables_};
  auto joint_tgd = [&]() {
    std::vector<TgdAtom> body;
    for (size_t k = 0; k < mapping.sources_.size(); ++k) {
      body.push_back(source_atom(k));
    }
    return Tgd(std::move(body), head);
  };
  auto single_tgd = [&](size_t k) { return Tgd({source_atom(k)}, head); };

  switch (kind) {
    case rel::JoinKind::kInnerJoin:
      mapping.tgds_ = {joint_tgd()};
      break;
    case rel::JoinKind::kLeftJoin:
      mapping.tgds_ = {joint_tgd(), single_tgd(0)};
      break;
    case rel::JoinKind::kFullOuterJoin: {
      mapping.tgds_.push_back(joint_tgd());
      for (size_t k = 0; k < mapping.sources_.size(); ++k) {
        mapping.tgds_.push_back(single_tgd(k));
      }
      break;
    }
    case rel::JoinKind::kUnion: {
      for (size_t k = 0; k < mapping.sources_.size(); ++k) {
        mapping.tgds_.push_back(single_tgd(k));
      }
      break;
    }
  }

  // A joint tgd without a shared variable would be a cross product, which
  // none of the Table I relationships intend.
  if (kind != rel::JoinKind::kUnion && mapping.tgds_[0].JoinVariables().empty()) {
    return Status::InvalidArgument(
        "join scenario has no shared variables between sources; declare "
        "source matches or map sources to common target columns");
  }
  return mapping;
}

std::vector<int64_t> SchemaMapping::TargetToSourceColumns(size_t k) const {
  AMALUR_CHECK_LT(k, sources_.size()) << "source index";
  std::vector<int64_t> out(target_schema_.num_fields(), -1);
  for (size_t i = 0; i < target_schema_.num_fields(); ++i) {
    const std::string& var = target_variables_[i];
    for (size_t j = 0; j < source_variables_[k].size(); ++j) {
      if (source_variables_[k][j] == var) {
        out[i] = static_cast<int64_t>(j);
        break;  // 1:n mappings take the first column (paper: future work)
      }
    }
  }
  return out;
}

std::vector<std::string> SchemaMapping::MappedColumns(size_t k) const {
  const auto target_to_source = TargetToSourceColumns(k);
  std::set<int64_t> mapped(target_to_source.begin(), target_to_source.end());
  std::vector<std::string> out;
  const rel::Schema& schema = sources_[k].schema;
  for (size_t j = 0; j < schema.num_fields(); ++j) {
    if (mapped.count(static_cast<int64_t>(j)) > 0) {
      out.push_back(schema.field(j).name);
    }
  }
  return out;
}

std::vector<std::string> SchemaMapping::JoinColumns(size_t k) const {
  AMALUR_CHECK_LT(k, sources_.size()) << "source index";
  if (kind_ == rel::JoinKind::kUnion || tgds_.empty()) return {};
  std::set<std::string> join_vars;
  for (const Tgd& tgd : tgds_) {
    if (!tgd.IsJoint()) continue;
    for (const std::string& var : tgd.JoinVariables()) join_vars.insert(var);
  }
  std::vector<std::string> out;
  const rel::Schema& schema = sources_[k].schema;
  for (size_t j = 0; j < schema.num_fields(); ++j) {
    if (join_vars.count(source_variables_[k][j]) > 0) {
      out.push_back(schema.field(j).name);
    }
  }
  return out;
}

bool SchemaMapping::AllTgdsFull() const {
  for (const Tgd& tgd : tgds_) {
    if (!tgd.IsFull()) return false;
  }
  return true;
}

Result<rel::JoinKind> SchemaMapping::ClassifyTgds(const std::vector<Tgd>& tgds) {
  if (tgds.empty()) return Status::InvalidArgument("no tgds");
  size_t joint = 0;
  size_t joint_body_size = 0;
  std::set<std::string> single_relations;
  for (const Tgd& tgd : tgds) {
    if (tgd.IsJoint()) {
      ++joint;
      joint_body_size = tgd.body().size();
    } else {
      single_relations.insert(tgd.body()[0].relation);
    }
  }
  if (joint > 1) return Status::InvalidArgument("multiple joint tgds");
  if (joint == 1) {
    if (single_relations.empty()) return rel::JoinKind::kInnerJoin;
    if (single_relations.size() >= joint_body_size) {
      return rel::JoinKind::kFullOuterJoin;
    }
    return rel::JoinKind::kLeftJoin;
  }
  if (single_relations.size() >= 2) return rel::JoinKind::kUnion;
  return Status::InvalidArgument("single-source tgd set is not an integration");
}

std::string SchemaMapping::ToString() const {
  std::ostringstream out;
  out << "SchemaMapping[" << rel::JoinKindToString(kind_) << "]\n";
  for (size_t i = 0; i < tgds_.size(); ++i) {
    out << "  m" << i + 1 << ": " << tgds_[i].ToString() << "\n";
  }
  return out.str();
}

}  // namespace integration
}  // namespace amalur
