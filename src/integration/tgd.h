#pragma once

#include <string>
#include <vector>

/// \file tgd.h
/// Source-to-target tuple-generating dependencies (s-t tgds), the mapping
/// language of §III.A: first-order sentences ∀x (ϕ(x) → ∃y ψ(x, y)) where
/// ϕ is a conjunction of source atoms and ψ a target atom. Mapped attributes
/// share variable names across atoms (the paper's convention in Table I).

namespace amalur {
namespace integration {

/// One relational atom, e.g. S1(m, n, a, hr).
struct TgdAtom {
  std::string relation;
  std::vector<std::string> variables;

  bool operator==(const TgdAtom& other) const {
    return relation == other.relation && variables == other.variables;
  }

  /// "S1(m, n, a, hr)".
  std::string ToString() const;
};

/// A source-to-target tgd with a conjunctive body and a single target head.
class Tgd {
 public:
  Tgd(std::vector<TgdAtom> body, TgdAtom head)
      : body_(std::move(body)), head_(std::move(head)) {}

  const std::vector<TgdAtom>& body() const { return body_; }
  const TgdAtom& head() const { return head_; }

  /// Variables universally quantified: every variable occurring in the body.
  std::vector<std::string> UniversalVariables() const;

  /// Variables existentially quantified: head variables absent from the body.
  std::vector<std::string> ExistentialVariables() const;

  /// A *full* tgd has no existentially quantified variables (Example IV.1):
  /// every target attribute is copied from some source attribute.
  bool IsFull() const { return ExistentialVariables().empty(); }

  /// True when the body joins two or more source relations.
  bool IsJoint() const { return body_.size() >= 2; }

  /// Variables shared by at least two body atoms — the join variables.
  std::vector<std::string> JoinVariables() const;

  bool operator==(const Tgd& other) const {
    return body_ == other.body_ && head_ == other.head_;
  }

  /// Logic rendering, e.g.
  /// "∀ m, n, a, hr (S1(m, n, a, hr) → ∃ o T(m, a, hr, o))".
  std::string ToString() const;

 private:
  std::vector<TgdAtom> body_;
  TgdAtom head_;
};

}  // namespace integration
}  // namespace amalur
