#include "integration/entity_resolution.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/status.h"
#include "common/string_util.h"

namespace amalur {
namespace integration {

namespace {

/// Similarity of two cells in matched columns, in [0, 1].
double CellSimilarity(const rel::Column& a, size_t row_a, const rel::Column& b,
                      size_t row_b) {
  const bool null_a = a.IsNull(row_a);
  const bool null_b = b.IsNull(row_b);
  if (null_a && null_b) return 1.0;  // jointly missing: no evidence against
  if (null_a || null_b) return 0.0;
  const bool str_a = a.type() == rel::DataType::kString;
  const bool str_b = b.type() == rel::DataType::kString;
  if (str_a != str_b) return 0.0;
  if (str_a) {
    return EditSimilarity(ToLower(a.KeyString(row_a)),
                          ToLower(b.KeyString(row_b)));
  }
  const double va = a.GetDouble(row_a);
  const double vb = b.GetDouble(row_b);
  if (va == vb) return 1.0;
  const double scale = std::fabs(va) + std::fabs(vb);
  return std::max(0.0, 1.0 - std::fabs(va - vb) / (scale > 0 ? scale : 1.0));
}

/// Blocking key of one row: lower-cased first character for strings,
/// magnitude bucket for numerics, "" for NULL (null keys block together).
std::string BlockKey(const rel::Column& col, size_t row) {
  if (col.IsNull(row)) return "";
  if (col.type() == rel::DataType::kString) {
    const std::string v = ToLower(col.KeyString(row));
    return v.empty() ? "" : v.substr(0, 1);
  }
  // Numeric: bucket by rounded value so near-equal values collide.
  return std::to_string(static_cast<int64_t>(std::llround(col.GetDouble(row))));
}

/// Chooses the matched column pair used for blocking: prefer strings (more
/// selective first characters), else the first pair.
size_t ChooseBlockingPair(const rel::Table& left,
                          const std::vector<ColumnMatch>& matches) {
  for (size_t i = 0; i < matches.size(); ++i) {
    if (left.column(matches[i].left_column).type() == rel::DataType::kString) {
      return i;
    }
  }
  return 0;
}

}  // namespace

Result<std::vector<EntityMatch>> ResolveEntityPairs(
    const rel::Table& left, const rel::Table& right,
    const std::vector<ColumnMatch>& column_matches,
    const EntityResolverOptions& options) {
  if (column_matches.empty()) {
    return Status::InvalidArgument("entity resolution needs matched columns");
  }
  for (const ColumnMatch& m : column_matches) {
    if (m.left_column >= left.NumColumns() ||
        m.right_column >= right.NumColumns()) {
      return Status::OutOfRange("column match out of range");
    }
  }

  // Candidate generation.
  std::vector<std::pair<size_t, size_t>> candidates;
  if (options.use_blocking && !column_matches.empty() && left.NumRows() > 0) {
    const size_t pair_index = ChooseBlockingPair(left, column_matches);
    const rel::Column& block_left = left.column(column_matches[pair_index].left_column);
    const rel::Column& block_right =
        right.column(column_matches[pair_index].right_column);
    std::unordered_map<std::string, std::vector<size_t>> right_blocks;
    for (size_t r = 0; r < right.NumRows(); ++r) {
      right_blocks[BlockKey(block_right, r)].push_back(r);
    }
    for (size_t l = 0; l < left.NumRows(); ++l) {
      auto it = right_blocks.find(BlockKey(block_left, l));
      if (it == right_blocks.end()) continue;
      size_t taken = 0;
      for (size_t r : it->second) {
        if (++taken > options.max_block_size) break;
        candidates.emplace_back(l, r);
      }
    }
  } else {
    for (size_t l = 0; l < left.NumRows(); ++l) {
      for (size_t r = 0; r < right.NumRows(); ++r) candidates.emplace_back(l, r);
    }
  }

  // Pairwise scoring.
  std::vector<EntityMatch> scored;
  for (const auto& [l, r] : candidates) {
    double sum = 0.0;
    for (const ColumnMatch& m : column_matches) {
      sum += CellSimilarity(left.column(m.left_column), l,
                            right.column(m.right_column), r);
    }
    const double score = sum / static_cast<double>(column_matches.size());
    if (score >= options.threshold) scored.push_back({l, r, score});
  }

  // Greedy 1:1 assignment by descending score (entity semantics: a row
  // represents one entity and matches at most once).
  std::sort(scored.begin(), scored.end(),
            [](const EntityMatch& a, const EntityMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.left_row != b.left_row) return a.left_row < b.left_row;
              return a.right_row < b.right_row;
            });
  std::vector<uint8_t> left_used(left.NumRows(), 0);
  std::vector<uint8_t> right_used(right.NumRows(), 0);
  std::vector<EntityMatch> accepted;
  for (const EntityMatch& m : scored) {
    if (left_used[m.left_row] || right_used[m.right_row]) continue;
    left_used[m.left_row] = 1;
    right_used[m.right_row] = 1;
    accepted.push_back(m);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const EntityMatch& a, const EntityMatch& b) {
              return a.left_row < b.left_row;
            });
  return accepted;
}

Result<rel::RowMatching> ResolveEntities(
    const rel::Table& left, const rel::Table& right,
    const std::vector<ColumnMatch>& column_matches,
    const EntityResolverOptions& options) {
  AMALUR_ASSIGN_OR_RETURN(
      std::vector<EntityMatch> pairs,
      ResolveEntityPairs(left, right, column_matches, options));
  rel::RowMatching matching;
  std::vector<uint8_t> left_used(left.NumRows(), 0);
  std::vector<uint8_t> right_used(right.NumRows(), 0);
  for (const EntityMatch& m : pairs) {
    matching.matched.emplace_back(m.left_row, m.right_row);
    left_used[m.left_row] = 1;
    right_used[m.right_row] = 1;
  }
  for (size_t l = 0; l < left.NumRows(); ++l) {
    if (!left_used[l]) matching.left_only.push_back(l);
  }
  for (size_t r = 0; r < right.NumRows(); ++r) {
    if (!right_used[r]) matching.right_only.push_back(r);
  }
  return matching;
}

std::vector<size_t> DeduplicateRows(const rel::Table& table,
                                    const std::vector<size_t>& columns) {
  std::unordered_map<std::string, size_t> first_seen;
  std::vector<size_t> cluster(table.NumRows());
  for (size_t row = 0; row < table.NumRows(); ++row) {
    std::string key;
    bool all_null = true;
    for (size_t c : columns) {
      const rel::Value v = table.column(c).GetValue(row);
      all_null &= v.is_null();
      key += v.ToString();
      key.push_back('\x1f');
    }
    if (all_null) {
      cluster[row] = row;  // no evidence of duplication
      continue;
    }
    auto [it, inserted] = first_seen.try_emplace(key, row);
    cluster[row] = it->second;
  }
  return cluster;
}

double DuplicateRatio(const rel::Table& table,
                      const std::vector<size_t>& columns) {
  if (table.NumRows() == 0) return 0.0;
  const std::vector<size_t> clusters = DeduplicateRows(table, columns);
  size_t duplicates = 0;
  for (size_t row = 0; row < clusters.size(); ++row) {
    duplicates += clusters[row] != row ? 1 : 0;
  }
  return static_cast<double>(duplicates) / static_cast<double>(table.NumRows());
}

}  // namespace integration
}  // namespace amalur
