#pragma once

#include "integration/schema_mapping.h"
#include "relational/join.h"
#include "relational/table.h"

/// \file running_example.h
/// The paper's running example (Figures 2 and 4), verbatim: hospital tables
/// S1(m, n, a, hr) from the ER department and S2(m, n, a, o, dd) from the
/// pulmonary department, integrated into T(m, a, hr, o) by a full outer
/// join. Jane (S1 row 3, S2 row 2) is the one shared entity. Used as the
/// golden fixture across tests, examples and the Figure 4 bench.

namespace amalur {
namespace integration {

/// The full running-example fixture.
struct RunningExample {
  rel::Table s1;
  rel::Table s2;
  rel::Schema target_schema;  // T(m, a, hr, o)
  SchemaMapping mapping;      // the three tgds m1, m2, m3 of Figure 2c
  rel::RowMatching matching;  // ground truth: S1[3] ≡ S2[2] (Jane)
};

/// Builds the fixture. Data matches the paper figures exactly.
RunningExample MakeRunningExample();

/// The expected materialized target table of Figure 4c's `T`:
/// rows [Jane, Jack, Sam, Ruby, Rose, Castiel] over columns (m, a, hr, o),
/// with absent cells rendered as 0 — the paper's matrix form.
la::DenseMatrix RunningExampleTargetMatrix();

}  // namespace integration
}  // namespace amalur
