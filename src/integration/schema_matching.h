#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/table.h"

/// \file schema_matching.h
/// Automatic schema matching: given two tables, score column pairs with
/// name-, type- and instance-based signals and return a 1:1 set of column
/// matches. This is the DI process whose output feeds the mapping matrices
/// (§II: "column relationships from schema matching").

namespace amalur {
namespace integration {

/// One matched column pair with its combined score in [0, 1].
struct ColumnMatch {
  size_t left_column;
  size_t right_column;
  double score;
};

/// Knobs for `MatchSchemas`.
struct SchemaMatcherOptions {
  /// Minimum combined score for a pair to count as a match.
  double threshold = 0.55;
  /// Signal weights (need not sum to 1; they are normalized).
  double name_weight = 0.5;
  double type_weight = 0.15;
  double instance_weight = 0.35;
  /// Rows sampled per column for the instance-based signal.
  size_t sample_size = 200;
  /// Seed for sampling.
  uint64_t seed = 0xA3A1;
};

/// Scores one column pair (exposed for tests and for matcher ensembles).
double ScoreColumnPair(const rel::Column& left, const rel::Column& right,
                       const SchemaMatcherOptions& options);

/// Returns a 1:1 matching between columns of `left` and `right`: all pairs
/// scoring >= threshold, chosen greedily by descending score. Output is
/// sorted by left column index.
std::vector<ColumnMatch> MatchSchemas(const rel::Table& left,
                                      const rel::Table& right,
                                      const SchemaMatcherOptions& options = {});

}  // namespace integration
}  // namespace amalur
