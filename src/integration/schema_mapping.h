#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "integration/tgd.h"
#include "relational/join.h"
#include "relational/schema.h"

/// \file schema_mapping.h
/// Schema mappings M = ⟨S, T, Σ⟩ (§III.A): source schemas, a target schema,
/// and a set of s-t tgds Σ. A `SchemaMapping` is constructed declaratively
/// from column correspondences and a dataset relationship (Table I), and the
/// tgds are generated with the paper's variable-naming convention (mapped
/// attributes share variable names). The inverse direction — classifying a
/// tgd set back into a dataset relationship — feeds the cost model's logic
/// rules (Example IV.1).

namespace amalur {
namespace integration {

/// A source-column → target-column correspondence for one source table.
struct ColumnCorrespondence {
  std::string source_column;
  std::string target_column;
};

/// An inter-source column match (schema matching output), e.g. S1.n ≈ S2.n.
struct SourceColumnMatch {
  size_t first_source;
  std::string first_column;
  size_t second_source;
  std::string second_column;
};

/// A fully specified schema mapping.
class SchemaMapping {
 public:
  /// An empty mapping (no sources, no tgds); fill via `Create`.
  SchemaMapping() = default;

  /// One source relation and its correspondences into the target.
  struct SourceSpec {
    std::string name;
    rel::Schema schema;
    std::vector<ColumnCorrespondence> to_target;
  };

  /// Builds the mapping and generates its tgds.
  ///
  /// `source_matches` declares columns matched *between* sources (join
  /// variables that need not appear in the target, like `n` in the running
  /// example). Columns of different sources mapped to the same target column
  /// are join variables implicitly.
  static Result<SchemaMapping> Create(rel::JoinKind kind,
                                      std::vector<SourceSpec> sources,
                                      rel::Schema target_schema,
                                      std::vector<SourceColumnMatch>
                                          source_matches = {});

  rel::JoinKind kind() const { return kind_; }
  size_t num_sources() const { return sources_.size(); }
  const SourceSpec& source(size_t k) const { return sources_[k]; }
  const rel::Schema& target_schema() const { return target_schema_; }
  const std::vector<Tgd>& tgds() const { return tgds_; }

  /// For source `k`: element `i` is the index (within source k's schema) of
  /// the column mapped to target column `i`, or -1 when target column `i`
  /// has no correspondent in source k. This is the schema-level raw material
  /// of the paper's compressed mapping matrix `CM_k`.
  std::vector<int64_t> TargetToSourceColumns(size_t k) const;

  /// Names of source k's mapped columns in *source schema order* — the
  /// column layout of the processed data matrix `D_k` (§III.B: "only include
  /// the mapped columns").
  std::vector<std::string> MappedColumns(size_t k) const;

  /// Source columns participating in the join condition (shared variables),
  /// for source `k` in schema order. Empty for unions.
  std::vector<std::string> JoinColumns(size_t k) const;

  /// True when every tgd is full (no existential variables) — the
  /// materialize-fast-path precondition of Example IV.1.
  bool AllTgdsFull() const;

  /// Infers the dataset relationship from a tgd set's structure:
  /// single joint tgd → inner join; joint + base-only → left join;
  /// joint + one per source → full outer; per-source only → union.
  static Result<rel::JoinKind> ClassifyTgds(const std::vector<Tgd>& tgds);

  /// Multi-line rendering: one tgd per line (matches Table I's style).
  std::string ToString() const;

 private:
  rel::JoinKind kind_ = rel::JoinKind::kInnerJoin;
  std::vector<SourceSpec> sources_;
  rel::Schema target_schema_;
  std::vector<Tgd> tgds_;
  /// variable_of_[k][j] = tgd variable naming column j of source k.
  std::vector<std::vector<std::string>> source_variables_;
  /// Variable naming each target column.
  std::vector<std::string> target_variables_;
};

}  // namespace integration
}  // namespace amalur
