#include "factorized/scenario_builder.h"

#include "relational/join.h"

namespace amalur {
namespace factorized {

Result<integration::SchemaMapping> BuildPairMapping(const rel::SiloPair& pair) {
  std::vector<std::string> target_names{"y"};
  const std::vector<std::string> features = pair.TargetFeatureNames();
  target_names.insert(target_names.end(), features.begin(), features.end());
  rel::Schema target = rel::Schema::AllDouble(target_names);

  std::vector<integration::ColumnCorrespondence> base_corr{{"y", "y"}};
  for (const std::string& s : pair.shared_feature_names) base_corr.push_back({s, s});
  for (const std::string& x : pair.base_feature_names) base_corr.push_back({x, x});

  std::vector<integration::ColumnCorrespondence> other_corr;
  if (pair.other.schema().Contains("y")) other_corr.push_back({"y", "y"});
  for (const std::string& s : pair.shared_feature_names) {
    other_corr.push_back({s, s});
  }
  for (const std::string& z : pair.other_feature_names) other_corr.push_back({z, z});

  std::vector<integration::SourceColumnMatch> source_matches;
  if (pair.spec.kind != rel::JoinKind::kUnion) {
    source_matches.push_back({0, "k", 1, "k"});
  }
  return integration::SchemaMapping::Create(
      pair.spec.kind,
      {integration::SchemaMapping::SourceSpec{"S1", pair.base.schema(),
                                              std::move(base_corr)},
       integration::SchemaMapping::SourceSpec{"S2", pair.other.schema(),
                                              std::move(other_corr)}},
      std::move(target), std::move(source_matches));
}

Result<metadata::DiMetadata> DerivePairMetadata(const rel::SiloPair& pair) {
  AMALUR_ASSIGN_OR_RETURN(integration::SchemaMapping mapping,
                          BuildPairMapping(pair));
  rel::RowMatching matching;
  if (pair.spec.kind != rel::JoinKind::kUnion) {
    AMALUR_ASSIGN_OR_RETURN(
        matching, rel::MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"}));
  }
  return metadata::DiMetadata::Derive(mapping, {&pair.base, &pair.other},
                                      matching);
}

}  // namespace factorized
}  // namespace amalur
