#include "factorized/scenario_builder.h"

#include <set>

#include "common/status.h"
#include "relational/join.h"

namespace amalur {
namespace factorized {

namespace {

/// Numeric non-key columns of `table`, in schema order — the columns a
/// graph scenario carries into the target under their own names.
std::vector<std::string> FeatureColumns(const rel::Table& table,
                                        const std::set<std::string>& keys) {
  std::vector<std::string> out;
  for (size_t j = 0; j < table.NumColumns(); ++j) {
    const rel::Column& column = table.column(j);
    if (column.type() == rel::DataType::kString || keys.count(column.name())) {
      continue;
    }
    out.push_back(column.name());
  }
  return out;
}

/// Identity correspondences for `columns`.
std::vector<integration::ColumnCorrespondence> SelfCorrespondences(
    const std::vector<std::string>& columns) {
  std::vector<integration::ColumnCorrespondence> corr;
  corr.reserve(columns.size());
  for (const std::string& name : columns) corr.push_back({name, name});
  return corr;
}

}  // namespace

Result<integration::SchemaMapping> BuildPairMapping(const rel::SiloPair& pair) {
  std::vector<std::string> target_names{"y"};
  const std::vector<std::string> features = pair.TargetFeatureNames();
  target_names.insert(target_names.end(), features.begin(), features.end());
  rel::Schema target = rel::Schema::AllDouble(target_names);

  std::vector<integration::ColumnCorrespondence> base_corr{{"y", "y"}};
  for (const std::string& s : pair.shared_feature_names) base_corr.push_back({s, s});
  for (const std::string& x : pair.base_feature_names) base_corr.push_back({x, x});

  std::vector<integration::ColumnCorrespondence> other_corr;
  if (pair.other.schema().Contains("y")) other_corr.push_back({"y", "y"});
  for (const std::string& s : pair.shared_feature_names) {
    other_corr.push_back({s, s});
  }
  for (const std::string& z : pair.other_feature_names) other_corr.push_back({z, z});

  std::vector<integration::SourceColumnMatch> source_matches;
  if (pair.spec.kind != rel::JoinKind::kUnion) {
    source_matches.push_back({0, "k", 1, "k"});
  }
  return integration::SchemaMapping::Create(
      pair.spec.kind,
      {integration::SchemaMapping::SourceSpec{"S1", pair.base.schema(),
                                              std::move(base_corr)},
       integration::SchemaMapping::SourceSpec{"S2", pair.other.schema(),
                                              std::move(other_corr)}},
      std::move(target), std::move(source_matches));
}

Result<metadata::DiMetadata> DerivePairMetadata(const rel::SiloPair& pair) {
  AMALUR_ASSIGN_OR_RETURN(integration::SchemaMapping mapping,
                          BuildPairMapping(pair));
  rel::RowMatching matching;
  if (pair.spec.kind != rel::JoinKind::kUnion) {
    AMALUR_ASSIGN_OR_RETURN(
        matching, rel::MatchRowsOnKeys(pair.base, pair.other, {"k"}, {"k"}));
  }
  return metadata::DiMetadata::Derive(mapping, {&pair.base, &pair.other},
                                      matching);
}

Result<metadata::DiMetadata> DeriveSnowflakeMetadata(
    const rel::Snowflake& snowflake) {
  const size_t n = snowflake.tables.size();
  const std::set<std::string> keys(snowflake.chain_keys.begin(),
                                   snowflake.chain_keys.end());

  std::vector<std::string> target_names;
  std::vector<integration::SchemaMapping::SourceSpec> sources;
  std::vector<integration::SourceColumnMatch> source_matches;
  std::vector<metadata::MetadataEdge> edges;
  std::vector<rel::RowMatching> matchings;
  for (size_t k = 0; k < n; ++k) {
    const rel::Table& table = snowflake.tables[k];
    const std::vector<std::string> features = FeatureColumns(table, keys);
    target_names.insert(target_names.end(), features.begin(), features.end());
    sources.push_back(
        {table.name(), table.schema(), SelfCorrespondences(features)});
    if (k + 1 < n) {
      const std::string& key = snowflake.chain_keys[k];
      source_matches.push_back({k, key, k + 1, key});
      edges.push_back({k, k + 1, rel::JoinKind::kLeftJoin});
      AMALUR_ASSIGN_OR_RETURN(
          rel::RowMatching matching,
          rel::MatchRowsOnKeys(table, snowflake.tables[k + 1], {key}, {key}));
      matchings.push_back(std::move(matching));
    }
  }
  AMALUR_ASSIGN_OR_RETURN(
      integration::SchemaMapping mapping,
      integration::SchemaMapping::Create(
          rel::JoinKind::kLeftJoin, std::move(sources),
          rel::Schema::AllDouble(target_names), std::move(source_matches)));
  std::vector<const rel::Table*> tables;
  for (const rel::Table& table : snowflake.tables) tables.push_back(&table);
  return metadata::DiMetadata::DeriveGraph(mapping, tables, edges, matchings);
}

Result<metadata::DiMetadata> DeriveConformedSnowflakeMetadata(
    const rel::ConformedSnowflake& scenario, size_t inner_branches) {
  const size_t branches = scenario.spec.branches;
  AMALUR_CHECK_LE(inner_branches, branches)
      << "cannot mark more inner edges than the scenario has branches";
  const size_t n = scenario.tables.size();  // fact + branches + shared
  std::set<std::string> keys(scenario.branch_keys.begin(),
                             scenario.branch_keys.end());
  keys.insert(scenario.shared_key);

  std::vector<std::string> target_names;
  std::vector<integration::SchemaMapping::SourceSpec> sources;
  for (size_t k = 0; k < n; ++k) {
    const rel::Table& table = scenario.tables[k];
    const std::vector<std::string> features = FeatureColumns(table, keys);
    // The shared dimension's features enter the target once, via its single
    // source entry — that IS the conformed-dimension contract.
    target_names.insert(target_names.end(), features.begin(), features.end());
    sources.push_back(
        {table.name(), table.schema(), SelfCorrespondences(features)});
  }

  // Edges: fact -> branch b (inner for the first `inner_branches`), then
  // branch b -> shared for EVERY branch — the DAG's conformed fan-in.
  std::vector<integration::SourceColumnMatch> source_matches;
  std::vector<metadata::MetadataEdge> edges;
  std::vector<rel::RowMatching> matchings;
  const size_t shared_index = n - 1;
  for (size_t b = 0; b < branches; ++b) {
    const std::string& key = scenario.branch_keys[b];
    source_matches.push_back({0, key, b + 1, key});
    edges.push_back({0, b + 1,
                     b < inner_branches ? rel::JoinKind::kInnerJoin
                                        : rel::JoinKind::kLeftJoin});
    AMALUR_ASSIGN_OR_RETURN(
        rel::RowMatching matching,
        rel::MatchRowsOnKeys(scenario.tables[0], scenario.tables[b + 1], {key},
                             {key}));
    matchings.push_back(std::move(matching));
  }
  for (size_t b = 0; b < branches; ++b) {
    source_matches.push_back(
        {b + 1, scenario.shared_key, shared_index, scenario.shared_key});
    edges.push_back({b + 1, shared_index, rel::JoinKind::kLeftJoin});
    AMALUR_ASSIGN_OR_RETURN(
        rel::RowMatching matching,
        rel::MatchRowsOnKeys(scenario.tables[b + 1],
                             scenario.tables[shared_index],
                             {scenario.shared_key}, {scenario.shared_key}));
    matchings.push_back(std::move(matching));
  }
  AMALUR_ASSIGN_OR_RETURN(
      integration::SchemaMapping mapping,
      integration::SchemaMapping::Create(
          rel::JoinKind::kLeftJoin, std::move(sources),
          rel::Schema::AllDouble(target_names), std::move(source_matches)));
  std::vector<const rel::Table*> tables;
  for (const rel::Table& table : scenario.tables) tables.push_back(&table);
  return metadata::DiMetadata::DeriveGraph(mapping, tables, edges, matchings);
}

Result<metadata::DiMetadata> DeriveUnionOfStarsMetadata(
    const rel::UnionOfStars& scenario) {
  const size_t shards = scenario.spec.shards;
  std::set<std::string> keys;
  for (size_t s = 0; s < shards; ++s) {
    keys.insert("dim" + std::to_string(s) + "_id");
  }

  // Shard facts share their y/x correspondences (one target column each);
  // every dimension's private features follow in shard order.
  std::vector<std::string> target_names;
  std::vector<integration::SchemaMapping::SourceSpec> sources(2 * shards);
  std::vector<integration::SourceColumnMatch> source_matches;
  std::vector<metadata::MetadataEdge> edges;
  std::vector<rel::RowMatching> matchings;
  for (size_t s = 0; s < shards; ++s) {
    const rel::Table& fact = scenario.tables[2 * s];
    const rel::Table& dim = scenario.tables[2 * s + 1];
    const std::vector<std::string> fact_features = FeatureColumns(fact, keys);
    if (s == 0) {
      target_names.insert(target_names.end(), fact_features.begin(),
                          fact_features.end());
    }
    sources[2 * s] = {fact.name(), fact.schema(),
                      SelfCorrespondences(fact_features)};
    const std::vector<std::string> dim_features = FeatureColumns(dim, keys);
    target_names.insert(target_names.end(), dim_features.begin(),
                        dim_features.end());
    sources[2 * s + 1] = {dim.name(), dim.schema(),
                          SelfCorrespondences(dim_features)};

    const std::string key = "dim" + std::to_string(s) + "_id";
    source_matches.push_back({2 * s, key, 2 * s + 1, key});
    if (s > 0) {
      edges.push_back({0, 2 * s, rel::JoinKind::kUnion});
      matchings.emplace_back();
    }
    edges.push_back({2 * s, 2 * s + 1, rel::JoinKind::kLeftJoin});
    AMALUR_ASSIGN_OR_RETURN(rel::RowMatching matching,
                            rel::MatchRowsOnKeys(fact, dim, {key}, {key}));
    matchings.push_back(std::move(matching));
  }
  AMALUR_ASSIGN_OR_RETURN(
      integration::SchemaMapping mapping,
      integration::SchemaMapping::Create(
          rel::JoinKind::kUnion, std::move(sources),
          rel::Schema::AllDouble(target_names), std::move(source_matches)));
  std::vector<const rel::Table*> tables;
  for (const rel::Table& table : scenario.tables) tables.push_back(&table);
  return metadata::DiMetadata::DeriveGraph(mapping, tables, edges, matchings);
}

}  // namespace factorized
}  // namespace amalur
