#pragma once

#include <functional>

#include "common/status.h"
#include "metadata/di_metadata.h"

/// \file aggregates.h
/// Redundancy-aware query aggregates over the *virtual* target table —
/// the paper's motivating example for the redundancy matrix (§III.C):
/// "when a user query asks how many patients aged above 30 are in S1 and
/// S2, the correct answer is three instead of four: the overlapped row of
/// Jane should be counted only once." These operators answer such queries
/// directly over the silo matrices, using `CI_k` to deduplicate entities
/// and `R_k`/`CM_k` to pick each cell's owning source — no materialization.

namespace amalur {
namespace factorized {

/// COUNT(*) over the virtual target: the number of target rows.
size_t CountRows(const metadata::DiMetadata& metadata);

/// COUNT of target rows whose `column` value satisfies `predicate`.
/// A target row's cell value comes from its owning (non-redundant) source;
/// rows where no source supplies the column (NULL padding) are not counted.
Result<size_t> CountWhere(const metadata::DiMetadata& metadata,
                          const std::string& column,
                          const std::function<bool(double)>& predicate);

/// SUM over a target column (absent cells contribute nothing).
Result<double> SumColumn(const metadata::DiMetadata& metadata,
                         const std::string& column);

/// AVG over a target column, averaging only rows where the value exists.
/// Returns NotFound when no row supplies the column.
Result<double> AvgColumn(const metadata::DiMetadata& metadata,
                         const std::string& column);

/// MIN/MAX over a target column (only rows where the value exists).
Result<double> MinColumn(const metadata::DiMetadata& metadata,
                         const std::string& column);
Result<double> MaxColumn(const metadata::DiMetadata& metadata,
                         const std::string& column);

}  // namespace factorized
}  // namespace amalur
