#include "factorized/factorized_table.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/parallel_for.h"

namespace amalur {
namespace factorized {

namespace {
// ParallelFor grains for the rewrite kernels. Plans are processed serially
// (different plans may touch the same target rows/columns); within a plan
// every parallel loop partitions disjoint output, so results are
// bitwise-equal to the serial kernels at any thread count.
constexpr size_t kUniqueGrain = 32;  // unique-source-row loops
constexpr size_t kExpandGrain = 512; // target-row fan-out loops
constexpr size_t kColumnGrain = 8;   // target-column band loops
}  // namespace

FactorizedTable::FactorizedTable(metadata::DiMetadata metadata)
    : metadata_(std::move(metadata)) {
  BuildPlans(/*ignore_redundancy=*/false);
}

void FactorizedTable::BuildPlans(bool ignore_redundancy) {
  plans_.clear();
  plans_.resize(metadata_.num_sources());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata_.source(k);

    // Mapped (D_k column, target column) pairs in D_k order.
    std::vector<size_t> all_dk_cols;
    std::vector<size_t> all_t_cols;
    for (size_t c = 0; c < source.mapping.target_cols(); ++c) {
      const int64_t j = source.mapping.At(c);
      if (j >= 0) {
        all_dk_cols.push_back(static_cast<size_t>(j));
        all_t_cols.push_back(c);
      }
    }

    // Group contributing target rows by redundancy set id, deduplicating
    // source rows within each class.
    std::map<int32_t, RowClassPlan> classes;
    std::map<int32_t, std::unordered_map<size_t, size_t>> unique_index;
    for (size_t i = 0; i < metadata_.target_rows(); ++i) {
      const int64_t s = source.indicator.At(i);
      if (s < 0) continue;
      const int32_t set_id =
          ignore_redundancy ? -1 : source.redundancy.row_set(i);
      RowClassPlan& plan = classes[set_id];
      auto& index = unique_index[set_id];
      const size_t source_row = static_cast<size_t>(s);
      auto [it, inserted] =
          index.try_emplace(source_row, plan.unique_source_rows.size());
      if (inserted) plan.unique_source_rows.push_back(source_row);
      plan.target_rows.push_back(i);
      plan.target_to_unique.push_back(it->second);
    }

    // Fill allowed column pairs per class (full set minus the masked cols).
    for (auto& [set_id, plan] : classes) {
      if (set_id < 0) {
        plan.dk_cols = all_dk_cols;
        plan.t_cols = all_t_cols;
      } else {
        const std::vector<size_t>& masked =
            source.redundancy.column_sets()[static_cast<size_t>(set_id)];
        for (size_t p = 0; p < all_dk_cols.size(); ++p) {
          if (!std::binary_search(masked.begin(), masked.end(), all_t_cols[p])) {
            plan.dk_cols.push_back(all_dk_cols[p]);
            plan.t_cols.push_back(all_t_cols[p]);
          }
        }
      }
      if (plan.dk_cols.empty()) continue;

      // Reverse fan-out index (unique row -> its target rows, class order).
      plan.fanout_offsets.assign(plan.unique_source_rows.size() + 1, 0);
      for (size_t u : plan.target_to_unique) ++plan.fanout_offsets[u + 1];
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        plan.fanout_offsets[u + 1] += plan.fanout_offsets[u];
      }
      plan.fanout_targets.resize(plan.target_rows.size());
      std::vector<size_t> cursor(plan.fanout_offsets.begin(),
                                 plan.fanout_offsets.end() - 1);
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        plan.fanout_targets[cursor[plan.target_to_unique[r]]++] =
            plan.target_rows[r];
      }
      plans_[k].push_back(std::move(plan));
    }
  }
}

la::DenseMatrix FactorizedTable::LeftMultiply(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), cols()) << "LMM: X must have cT rows";
  const size_t n = x.cols();
  la::DenseMatrix out(rows(), n);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Compute once per unique source row: U = D_k[rows, cols] · X[t_cols].
      // Parallel over unique rows — each chunk writes disjoint `unique` rows.
      la::DenseMatrix unique(plan.unique_source_rows.size(), n);
      common::ParallelFor(
          0, plan.unique_source_rows.size(), kUniqueGrain,
          [&](size_t u_begin, size_t u_end) {
            for (size_t u = u_begin; u < u_end; ++u) {
              const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
              double* u_row = unique.RowPtr(u);
              for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
                const double v = d_row[plan.dk_cols[p]];
                if (v == 0.0) continue;
                const double* x_row = x.RowPtr(plan.t_cols[p]);
                for (size_t c = 0; c < n; ++c) u_row[c] += v * x_row[c];
              }
            }
          });
      // Expand through the indicator (fan-out rows share one computation).
      // A class's target rows are distinct, so chunks write disjoint rows.
      common::ParallelFor(
          0, plan.target_rows.size(), kExpandGrain,
          [&](size_t r_begin, size_t r_end) {
            for (size_t r = r_begin; r < r_end; ++r) {
              const double* u_row = unique.RowPtr(plan.target_to_unique[r]);
              double* out_row = out.RowPtr(plan.target_rows[r]);
              for (size_t c = 0; c < n; ++c) out_row[c] += u_row[c];
            }
          });
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::TransposeLeftMultiply(
    const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), rows()) << "TᵀX: X must have rT rows";
  const size_t n = x.cols();
  la::DenseMatrix out(cols(), n);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Reduce X over fan-out first: one accumulated row per unique source
      // row (the Iᵀ step), then the D_kᵀ multiply-add pass. The reduce runs
      // parallel over unique rows via the reverse fan-out index (disjoint
      // `reduced` rows, same ascending accumulation order as the serial
      // walk); the multiply-add runs parallel over target-column bands
      // (disjoint `out` rows, u ascending per element in both orders).
      la::DenseMatrix reduced(plan.unique_source_rows.size(), n);
      common::ParallelFor(
          0, plan.unique_source_rows.size(), kUniqueGrain,
          [&](size_t u_begin, size_t u_end) {
            for (size_t u = u_begin; u < u_end; ++u) {
              double* acc = reduced.RowPtr(u);
              for (size_t q = plan.fanout_offsets[u];
                   q < plan.fanout_offsets[u + 1]; ++q) {
                const double* x_row = x.RowPtr(plan.fanout_targets[q]);
                for (size_t c = 0; c < n; ++c) acc[c] += x_row[c];
              }
            }
          });
      common::ParallelFor(
          0, plan.dk_cols.size(), kColumnGrain,
          [&](size_t p_begin, size_t p_end) {
            for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
              const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
              const double* acc = reduced.RowPtr(u);
              for (size_t p = p_begin; p < p_end; ++p) {
                const double v = d_row[plan.dk_cols[p]];
                if (v == 0.0) continue;
                double* out_row = out.RowPtr(plan.t_cols[p]);
                for (size_t c = 0; c < n; ++c) out_row[c] += v * acc[c];
              }
            }
          });
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RightMultiply(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.cols(), rows()) << "RMM: X must have rT columns";
  const size_t m = x.rows();
  la::DenseMatrix out(m, cols());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Aggregate X's fan-out columns per unique source row, then multiply.
      // Both passes touch only row i of `aggregated`/`out` for X row i, so
      // they fuse into one parallel loop over disjoint X-row chunks.
      la::DenseMatrix aggregated(m, plan.unique_source_rows.size());
      common::ParallelFor(0, m, 1, [&](size_t i_begin, size_t i_end) {
        for (size_t r = 0; r < plan.target_rows.size(); ++r) {
          const size_t t = plan.target_rows[r];
          const size_t u = plan.target_to_unique[r];
          for (size_t i = i_begin; i < i_end; ++i) {
            aggregated.At(i, u) += x.At(i, t);
          }
        }
        for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
          const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
          for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
            const double v = d_row[plan.dk_cols[p]];
            if (v == 0.0) continue;
            const size_t c = plan.t_cols[p];
            for (size_t i = i_begin; i < i_end; ++i) {
              out.At(i, c) += aggregated.At(i, u) * v;
            }
          }
        }
      });
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RowSums() const {
  la::DenseMatrix out(rows(), 1);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      std::vector<double> sums(plan.unique_source_rows.size(), 0.0);
      common::ParallelFor(
          0, plan.unique_source_rows.size(), kUniqueGrain,
          [&](size_t u_begin, size_t u_end) {
            for (size_t u = u_begin; u < u_end; ++u) {
              const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
              for (size_t j : plan.dk_cols) sums[u] += d_row[j];
            }
          });
      common::ParallelFor(
          0, plan.target_rows.size(), kExpandGrain,
          [&](size_t r_begin, size_t r_end) {
            for (size_t r = r_begin; r < r_end; ++r) {
              out.At(plan.target_rows[r], 0) += sums[plan.target_to_unique[r]];
            }
          });
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::ColSums() const {
  la::DenseMatrix out(1, cols());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Fan-out multiplies each unique source row's contribution; the
      // multiplicity comes straight off the reverse fan-out index. Parallel
      // over target-column bands (disjoint `out` cells within a plan).
      common::ParallelFor(
          0, plan.dk_cols.size(), kColumnGrain,
          [&](size_t p_begin, size_t p_end) {
            for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
              const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
              const double count = static_cast<double>(
                  plan.fanout_offsets[u + 1] - plan.fanout_offsets[u]);
              for (size_t p = p_begin; p < p_end; ++p) {
                out.At(0, plan.t_cols[p]) += count * d_row[plan.dk_cols[p]];
              }
            }
          });
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RowSquaredNorms() const {
  la::DenseMatrix out(rows(), 1);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      std::vector<double> sums(plan.unique_source_rows.size(), 0.0);
      common::ParallelFor(
          0, plan.unique_source_rows.size(), kUniqueGrain,
          [&](size_t u_begin, size_t u_end) {
            for (size_t u = u_begin; u < u_end; ++u) {
              const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
              for (size_t j : plan.dk_cols) sums[u] += d_row[j] * d_row[j];
            }
          });
      common::ParallelFor(
          0, plan.target_rows.size(), kExpandGrain,
          [&](size_t r_begin, size_t r_end) {
            for (size_t r = r_begin; r < r_end; ++r) {
              out.At(plan.target_rows[r], 0) += sums[plan.target_to_unique[r]];
            }
          });
    }
  }
  return out;
}

PartialScores FactorizedTable::ExtractPartialScores(
    const la::DenseMatrix& target_weights) const {
  AMALUR_CHECK(target_weights.rows() == cols() && target_weights.cols() == 1)
      << "partial scores: weights must be cT x 1";
  PartialScores out;
  out.metadata_ = &metadata_;
  out.by_set_.resize(metadata_.num_sources());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata_.source(k);
    const la::DenseMatrix& dk = source.data;

    // Mapped (D_k column, target column) pairs in D_k order — the same
    // construction (and therefore the same accumulation order) as
    // BuildPlans, which is what makes ScoreRow bitwise-equal to the LMM.
    std::vector<size_t> all_dk_cols;
    std::vector<size_t> all_t_cols;
    for (size_t c = 0; c < source.mapping.target_cols(); ++c) {
      const int64_t j = source.mapping.At(c);
      if (j >= 0) {
        all_dk_cols.push_back(static_cast<size_t>(j));
        all_t_cols.push_back(c);
      }
    }

    // One partial vector per masked-column set (index 0 = the all-ones
    // "nothing redundant" rows), covering every D_k row. The interned set
    // family is small, so an unreferenced (set, row) combination costs
    // little and keeps lookups branch-free.
    const std::vector<std::vector<size_t>>& sets =
        source.redundancy.column_sets();
    out.by_set_[k].resize(sets.size() + 1);
    for (size_t si = 0; si <= sets.size(); ++si) {
      std::vector<size_t> dk_cols;
      std::vector<size_t> t_cols;
      if (si == 0) {
        dk_cols = all_dk_cols;
        t_cols = all_t_cols;
      } else {
        const std::vector<size_t>& masked = sets[si - 1];
        for (size_t p = 0; p < all_dk_cols.size(); ++p) {
          if (!std::binary_search(masked.begin(), masked.end(),
                                  all_t_cols[p])) {
            dk_cols.push_back(all_dk_cols[p]);
            t_cols.push_back(all_t_cols[p]);
          }
        }
      }
      std::vector<double>& partial = out.by_set_[k][si];
      partial.assign(dk.rows(), 0.0);
      out.cached_values_ += dk.rows();
      common::ParallelFor(
          0, dk.rows(), kUniqueGrain, [&](size_t r_begin, size_t r_end) {
            for (size_t r = r_begin; r < r_end; ++r) {
              const double* d_row = dk.RowPtr(r);
              double acc = 0.0;
              for (size_t p = 0; p < dk_cols.size(); ++p) {
                const double v = d_row[dk_cols[p]];
                if (v == 0.0) continue;
                acc += v * target_weights.At(t_cols[p], 0);
              }
              partial[r] = acc;
            }
          });
    }
  }
  return out;
}

MorpheusReference::MorpheusReference(metadata::DiMetadata metadata)
    : table_(std::move(metadata)) {
  table_.BuildPlans(/*ignore_redundancy=*/true);
}

}  // namespace factorized
}  // namespace amalur
