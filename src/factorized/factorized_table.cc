#include "factorized/factorized_table.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace amalur {
namespace factorized {

FactorizedTable::FactorizedTable(metadata::DiMetadata metadata)
    : metadata_(std::move(metadata)) {
  BuildPlans(/*ignore_redundancy=*/false);
}

void FactorizedTable::BuildPlans(bool ignore_redundancy) {
  plans_.clear();
  plans_.resize(metadata_.num_sources());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata_.source(k);

    // Mapped (D_k column, target column) pairs in D_k order.
    std::vector<size_t> all_dk_cols;
    std::vector<size_t> all_t_cols;
    for (size_t c = 0; c < source.mapping.target_cols(); ++c) {
      const int64_t j = source.mapping.At(c);
      if (j >= 0) {
        all_dk_cols.push_back(static_cast<size_t>(j));
        all_t_cols.push_back(c);
      }
    }

    // Group contributing target rows by redundancy set id, deduplicating
    // source rows within each class.
    std::map<int32_t, RowClassPlan> classes;
    std::map<int32_t, std::unordered_map<size_t, size_t>> unique_index;
    for (size_t i = 0; i < metadata_.target_rows(); ++i) {
      const int64_t s = source.indicator.At(i);
      if (s < 0) continue;
      const int32_t set_id =
          ignore_redundancy ? -1 : source.redundancy.row_set(i);
      RowClassPlan& plan = classes[set_id];
      auto& index = unique_index[set_id];
      const size_t source_row = static_cast<size_t>(s);
      auto [it, inserted] =
          index.try_emplace(source_row, plan.unique_source_rows.size());
      if (inserted) plan.unique_source_rows.push_back(source_row);
      plan.target_rows.push_back(i);
      plan.target_to_unique.push_back(it->second);
    }

    // Fill allowed column pairs per class (full set minus the masked cols).
    for (auto& [set_id, plan] : classes) {
      if (set_id < 0) {
        plan.dk_cols = all_dk_cols;
        plan.t_cols = all_t_cols;
      } else {
        const std::vector<size_t>& masked =
            source.redundancy.column_sets()[static_cast<size_t>(set_id)];
        for (size_t p = 0; p < all_dk_cols.size(); ++p) {
          if (!std::binary_search(masked.begin(), masked.end(), all_t_cols[p])) {
            plan.dk_cols.push_back(all_dk_cols[p]);
            plan.t_cols.push_back(all_t_cols[p]);
          }
        }
      }
      if (!plan.dk_cols.empty()) plans_[k].push_back(std::move(plan));
    }
  }
}

la::DenseMatrix FactorizedTable::LeftMultiply(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), cols()) << "LMM: X must have cT rows";
  const size_t n = x.cols();
  la::DenseMatrix out(rows(), n);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Compute once per unique source row: U = D_k[rows, cols] · X[t_cols].
      la::DenseMatrix unique(plan.unique_source_rows.size(), n);
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        double* u_row = unique.RowPtr(u);
        for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
          const double v = d_row[plan.dk_cols[p]];
          if (v == 0.0) continue;
          const double* x_row = x.RowPtr(plan.t_cols[p]);
          for (size_t c = 0; c < n; ++c) u_row[c] += v * x_row[c];
        }
      }
      // Expand through the indicator (fan-out rows share one computation).
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        const double* u_row = unique.RowPtr(plan.target_to_unique[r]);
        double* out_row = out.RowPtr(plan.target_rows[r]);
        for (size_t c = 0; c < n; ++c) out_row[c] += u_row[c];
      }
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::TransposeLeftMultiply(
    const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), rows()) << "TᵀX: X must have rT rows";
  const size_t n = x.cols();
  la::DenseMatrix out(cols(), n);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Reduce X over fan-out first: one accumulated row per unique source
      // row (the Iᵀ step), then a single pass of multiply-adds per source
      // row (the D_kᵀ step).
      la::DenseMatrix reduced(plan.unique_source_rows.size(), n);
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        const double* x_row = x.RowPtr(plan.target_rows[r]);
        double* acc = reduced.RowPtr(plan.target_to_unique[r]);
        for (size_t c = 0; c < n; ++c) acc[c] += x_row[c];
      }
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        const double* acc = reduced.RowPtr(u);
        for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
          const double v = d_row[plan.dk_cols[p]];
          if (v == 0.0) continue;
          double* out_row = out.RowPtr(plan.t_cols[p]);
          for (size_t c = 0; c < n; ++c) out_row[c] += v * acc[c];
        }
      }
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RightMultiply(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.cols(), rows()) << "RMM: X must have rT columns";
  const size_t m = x.rows();
  la::DenseMatrix out(m, cols());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Aggregate X's fan-out columns per unique source row, then multiply.
      la::DenseMatrix aggregated(m, plan.unique_source_rows.size());
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        const size_t t = plan.target_rows[r];
        const size_t u = plan.target_to_unique[r];
        for (size_t i = 0; i < m; ++i) aggregated.At(i, u) += x.At(i, t);
      }
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
          const double v = d_row[plan.dk_cols[p]];
          if (v == 0.0) continue;
          const size_t c = plan.t_cols[p];
          for (size_t i = 0; i < m; ++i) out.At(i, c) += aggregated.At(i, u) * v;
        }
      }
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RowSums() const {
  la::DenseMatrix out(rows(), 1);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      std::vector<double> sums(plan.unique_source_rows.size(), 0.0);
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        for (size_t j : plan.dk_cols) sums[u] += d_row[j];
      }
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        out.At(plan.target_rows[r], 0) += sums[plan.target_to_unique[r]];
      }
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::ColSums() const {
  la::DenseMatrix out(1, cols());
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      // Fan-out multiplies each unique source row's contribution.
      std::vector<double> counts(plan.unique_source_rows.size(), 0.0);
      for (size_t u : plan.target_to_unique) counts[u] += 1.0;
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        for (size_t p = 0; p < plan.dk_cols.size(); ++p) {
          out.At(0, plan.t_cols[p]) += counts[u] * d_row[plan.dk_cols[p]];
        }
      }
    }
  }
  return out;
}

la::DenseMatrix FactorizedTable::RowSquaredNorms() const {
  la::DenseMatrix out(rows(), 1);
  for (size_t k = 0; k < metadata_.num_sources(); ++k) {
    const la::DenseMatrix& dk = metadata_.source(k).data;
    for (const RowClassPlan& plan : plans_[k]) {
      std::vector<double> sums(plan.unique_source_rows.size(), 0.0);
      for (size_t u = 0; u < plan.unique_source_rows.size(); ++u) {
        const double* d_row = dk.RowPtr(plan.unique_source_rows[u]);
        for (size_t j : plan.dk_cols) sums[u] += d_row[j] * d_row[j];
      }
      for (size_t r = 0; r < plan.target_rows.size(); ++r) {
        out.At(plan.target_rows[r], 0) += sums[plan.target_to_unique[r]];
      }
    }
  }
  return out;
}

MorpheusReference::MorpheusReference(metadata::DiMetadata metadata)
    : table_(std::move(metadata)) {
  table_.BuildPlans(/*ignore_redundancy=*/true);
}

}  // namespace factorized
}  // namespace amalur
