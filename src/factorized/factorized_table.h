#pragma once

#include <vector>

#include "la/dense_matrix.h"
#include "metadata/di_metadata.h"

/// \file factorized_table.h
/// The factorized target table: a virtual rT × cT matrix that is never
/// materialized. Every linear-algebra operator is rewritten over the source
/// matrices using the DI metadata — the Amalur rewrite rule (2) of §IV.A:
///
///     T X → I_1 D_1 M_1ᵀ X + ((I_2 D_2 M_2ᵀ) ∘ R_2) X + ...
///
/// implemented without materializing any rT × cT intermediate: target rows
/// are grouped into *row classes* by their redundancy mask, and each class
/// contributes a gather → small-GEMM → scatter. Compute is proportional to
/// Σ_k nnz-contributions, which is what makes factorized learning faster
/// than materialization when the target is redundant.

namespace amalur {
namespace factorized {

/// Per-source partial scores of one fixed weight vector w (cT × 1),
/// extracted once from the factorized view by
/// `FactorizedTable::ExtractPartialScores`. For source k and masked-column
/// set s (−1 = all-ones row), every D_k row j gets
///
///     partial_k[s][j] = Σ_{allowed (d, c) pairs of s} D_k[j, d] · w[c]
///
/// so scoring target row i degenerates to a lookup-and-add over the
/// compressed indicators — no dimension block is ever re-multiplied:
///
///     score(i) = Σ_k partial_k[ row_set_k(i) ][ CI_k(i) ]   (skip CI < 0)
///
/// Each row adds exactly one partial per contributing source, sources
/// ascending, and the partials are accumulated in the same column order
/// (with the same exact-zero skip) as `LeftMultiply`'s per-unique-row
/// kernel — `ScoreRow(i)` is therefore bitwise-equal to
/// `LeftMultiply(w).At(i, 0)`. This is the serving tier's deploy-time
/// cache: built once per deployed weight vector, shared read-only by every
/// concurrent scoring thread.
///
/// Non-owning: holds a pointer into the extracting table's metadata, so the
/// `FactorizedTable` must outlive the `PartialScores` (the serving snapshot
/// keeps both behind one shared_ptr).
class PartialScores {
 public:
  PartialScores() = default;

  /// Target rows scorable (rT).
  size_t rows() const {
    return metadata_ == nullptr ? 0 : metadata_->target_rows();
  }

  /// Number of cached partial values across all sources and sets.
  size_t cached_values() const { return cached_values_; }

  /// score(i) as above. When `lookups` is non-null it is incremented once
  /// per contributing source (indicator hit) — the serving cache-hit stat.
  double ScoreRow(size_t i, size_t* lookups = nullptr) const {
    double score = 0.0;
    for (size_t k = 0; k < by_set_.size(); ++k) {
      const metadata::SourceMetadata& source = metadata_->source(k);
      const int64_t j = source.indicator.At(i);
      if (j < 0) continue;
      const int32_t set = source.redundancy.row_set(i);
      score += by_set_[k][static_cast<size_t>(set + 1)][static_cast<size_t>(j)];
      if (lookups != nullptr) ++*lookups;
    }
    return score;
  }

 private:
  friend class FactorizedTable;

  const metadata::DiMetadata* metadata_ = nullptr;
  /// [source][set id + 1][D_k row]; index 0 holds the all-ones (−1) set.
  std::vector<std::vector<std::vector<double>>> by_set_;
  size_t cached_values_ = 0;
};

/// A linear-algebra view over an integration scenario's target table.
class FactorizedTable {
 public:
  /// Takes ownership of the derived metadata.
  explicit FactorizedTable(metadata::DiMetadata metadata);

  /// Target shape (rT × cT).
  size_t rows() const { return metadata_.target_rows(); }
  size_t cols() const { return metadata_.target_cols(); }
  const metadata::DiMetadata& metadata() const { return metadata_; }

  /// T · X for X (cT × n) — the paper's LMM, rewrite rule (2).
  la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const;

  /// Tᵀ · X for X (rT × n) — the transpose rewrite (gradients).
  la::DenseMatrix TransposeLeftMultiply(const la::DenseMatrix& x) const;

  /// X · T for X (m × rT) — the RMM rewrite.
  la::DenseMatrix RightMultiply(const la::DenseMatrix& x) const;

  /// Row sums T·1 (rT × 1).
  la::DenseMatrix RowSums() const;

  /// Column sums Tᵀ·1 as (1 × cT).
  la::DenseMatrix ColSums() const;

  /// Per-row squared norms Σ_j T[i,j]² (rT × 1). Valid because after
  /// masking, each target cell is contributed by exactly one source.
  la::DenseMatrix RowSquaredNorms() const;

  /// The dense target (tests / the materialized execution path).
  la::DenseMatrix Materialize() const { return metadata_.MaterializeTargetMatrix(); }

  /// Extracts the per-source partial scores of `target_weights` (cT × 1) —
  /// the serving tier's deploy-time computation (see `PartialScores`). The
  /// result points into this table's metadata and must not outlive it.
  PartialScores ExtractPartialScores(const la::DenseMatrix& target_weights) const;

  /// Reference (unrewritten) operators on an already-materialized T, used by
  /// equivalence tests and the materialized training path.
  static la::DenseMatrix MaterializedLeftMultiply(const la::DenseMatrix& t,
                                                  const la::DenseMatrix& x) {
    return t.Multiply(x);
  }

 private:
  friend class MorpheusReference;

  /// One redundancy row class of one source: these target rows share the
  /// same set of allowed (non-redundant) columns. Join fan-out is factored
  /// out: compute happens once per *unique source row* of the class and is
  /// then expanded to the class's target rows through the indicator — the
  /// mechanism that makes factorized learning cheaper than materialization
  /// on redundant targets.
  struct RowClassPlan {
    /// Distinct D_k rows used by this class.
    std::vector<size_t> unique_source_rows;
    /// Target rows of the class.
    std::vector<size_t> target_rows;
    /// Index into `unique_source_rows`, parallel to `target_rows`.
    std::vector<size_t> target_to_unique;
    /// Reverse fan-out index: for unique row u, the target rows it expands
    /// to are `fanout_targets[fanout_offsets[u] .. fanout_offsets[u+1])`, in
    /// class (ascending-row) order. Lets the transpose rewrites reduce over
    /// fan-out *per unique row* — disjoint writes under parallel execution
    /// and the same floating-point accumulation order as the serial walk.
    std::vector<size_t> fanout_offsets;  // size unique_source_rows.size() + 1
    std::vector<size_t> fanout_targets;  // size target_rows.size()
    /// Allowed (D_k column, target column) pairs for this class.
    std::vector<size_t> dk_cols;
    std::vector<size_t> t_cols;  // parallel to dk_cols
  };

  /// Plans per source; built once at construction.
  void BuildPlans(bool ignore_redundancy);

  metadata::DiMetadata metadata_;
  std::vector<std::vector<RowClassPlan>> plans_;  // [source][class]
};

/// The Morpheus-style baseline (rewrite rule (1) of §IV.A, after [27]):
/// identical pushdown but with *no redundancy handling* — local results are
/// simply added up via the indicator matrices. Correct only when sources do
/// not overlap on target cells (the single-database, disjoint-columns
/// setting Morpheus assumes); on overlapping silos it double-counts, which
/// is the gap rule (2) closes.
class MorpheusReference {
 public:
  explicit MorpheusReference(metadata::DiMetadata metadata);

  size_t rows() const { return table_.rows(); }
  size_t cols() const { return table_.cols(); }

  la::DenseMatrix LeftMultiply(const la::DenseMatrix& x) const {
    return table_.LeftMultiply(x);
  }
  la::DenseMatrix TransposeLeftMultiply(const la::DenseMatrix& x) const {
    return table_.TransposeLeftMultiply(x);
  }
  la::DenseMatrix RightMultiply(const la::DenseMatrix& x) const {
    return table_.RightMultiply(x);
  }
  la::DenseMatrix RowSums() const { return table_.RowSums(); }
  la::DenseMatrix ColSums() const { return table_.ColSums(); }

 private:
  FactorizedTable table_;  // with redundancy ignored in its plans
};

}  // namespace factorized
}  // namespace amalur
