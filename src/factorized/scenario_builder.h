#pragma once

#include "common/status.h"
#include "integration/schema_mapping.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"

/// \file scenario_builder.h
/// Glue for experiments: given a generated scenario (a `SiloPair`, a
/// `Snowflake` chain or a `UnionOfStars`), construct the schema mapping of
/// its relationship graph, recover the ground-truth row matchings from the
/// surrogate keys, and derive the DI metadata. Benches and tests build
/// factorized/materialized pipelines from the same scenario objects.

namespace amalur {
namespace factorized {

/// Builds the schema mapping of the pair's dataset relationship:
/// target schema = (y, shared..., base-private..., other-private...),
/// join variable = the entity key `k` (not part of the target).
Result<integration::SchemaMapping> BuildPairMapping(const rel::SiloPair& pair);

/// Full pipeline: mapping + ground-truth key matching + metadata derivation.
Result<metadata::DiMetadata> DerivePairMetadata(const rel::SiloPair& pair);

/// Full pipeline for a generated snowflake: chained left-join mapping
/// (target schema = y, fact features, then each level's features; the
/// `dim<i>_id` keys are join variables only), ground-truth key matchings per
/// chain edge, and `DiMetadata::DeriveGraph` with its composed indicators.
Result<metadata::DiMetadata> DeriveSnowflakeMetadata(
    const rel::Snowflake& snowflake);

/// Full pipeline for a generated union-of-stars: union mapping over the
/// shard facts (shared y/x columns merge into one target column each; every
/// shard dimension contributes its private features), key matchings per
/// star edge, and `DiMetadata::DeriveGraph` with its stacked shard blocks.
Result<metadata::DiMetadata> DeriveUnionOfStarsMetadata(
    const rel::UnionOfStars& scenario);

/// Full pipeline for a generated conformed snowflake: left-join DAG mapping
/// (target schema = y, fact features, each branch's features, then the
/// shared dimension's features ONCE), ground-truth key matchings per edge
/// — including one edge per branch into the shared dimension — and
/// `DiMetadata::DeriveGraph` with its merged conformed indicator. Pass
/// `inner_branches` > 0 to make the first that many fact→branch edges
/// inner joins (rows with dangling branch references drop from the target).
Result<metadata::DiMetadata> DeriveConformedSnowflakeMetadata(
    const rel::ConformedSnowflake& scenario, size_t inner_branches = 0);

}  // namespace factorized
}  // namespace amalur
