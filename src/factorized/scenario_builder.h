#ifndef AMALUR_FACTORIZED_SCENARIO_BUILDER_H_
#define AMALUR_FACTORIZED_SCENARIO_BUILDER_H_

#include "common/status.h"
#include "integration/schema_mapping.h"
#include "metadata/di_metadata.h"
#include "relational/generator.h"

/// \file scenario_builder.h
/// Glue for experiments: given a generated `SiloPair`, construct the schema
/// mapping of its Table I relationship, recover the ground-truth row matching
/// from the entity key, and derive the DI metadata. Benches and tests build
/// factorized/materialized pipelines from the same scenario object.

namespace amalur {
namespace factorized {

/// Builds the schema mapping of the pair's dataset relationship:
/// target schema = (y, shared..., base-private..., other-private...),
/// join variable = the entity key `k` (not part of the target).
Result<integration::SchemaMapping> BuildPairMapping(const rel::SiloPair& pair);

/// Full pipeline: mapping + ground-truth key matching + metadata derivation.
Result<metadata::DiMetadata> DerivePairMetadata(const rel::SiloPair& pair);

}  // namespace factorized
}  // namespace amalur

#endif  // AMALUR_FACTORIZED_SCENARIO_BUILDER_H_
