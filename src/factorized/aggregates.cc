#include "factorized/aggregates.h"

#include <algorithm>

#include "common/status.h"

namespace amalur {
namespace factorized {

namespace {

/// Resolves the owning source's value of target cell (row, column):
/// the first source (base-table order) that contributes the cell
/// non-redundantly. Returns false when no source supplies it (NULL padding
/// in the materialized view). Cell presence is structural — a contributed
/// cell whose original value was NULL carries 0, matching the paper's
/// matrix-form semantics (Figure 4 renders absent cells as 0).
bool ResolveCell(const metadata::DiMetadata& metadata, size_t row,
                 size_t column, double* value) {
  for (size_t k = 0; k < metadata.num_sources(); ++k) {
    const metadata::SourceMetadata& source = metadata.source(k);
    const int64_t source_row = source.indicator.At(row);
    if (source_row < 0) continue;
    const int64_t source_col = source.mapping.At(column);
    if (source_col < 0) continue;
    if (source.redundancy.IsRedundant(row, column)) continue;
    *value = source.data.At(static_cast<size_t>(source_row),
                            static_cast<size_t>(source_col));
    return true;
  }
  return false;
}

Result<size_t> ResolveColumn(const metadata::DiMetadata& metadata,
                             const std::string& column) {
  const auto index = metadata.target_schema().IndexOf(column);
  if (!index.has_value()) {
    return Status::NotFound("target column '", column, "'");
  }
  return *index;
}

}  // namespace

size_t CountRows(const metadata::DiMetadata& metadata) {
  return metadata.target_rows();
}

Result<size_t> CountWhere(const metadata::DiMetadata& metadata,
                          const std::string& column,
                          const std::function<bool(double)>& predicate) {
  AMALUR_ASSIGN_OR_RETURN(size_t col, ResolveColumn(metadata, column));
  size_t count = 0;
  for (size_t i = 0; i < metadata.target_rows(); ++i) {
    double value = 0.0;
    if (ResolveCell(metadata, i, col, &value) && predicate(value)) ++count;
  }
  return count;
}

Result<double> SumColumn(const metadata::DiMetadata& metadata,
                         const std::string& column) {
  AMALUR_ASSIGN_OR_RETURN(size_t col, ResolveColumn(metadata, column));
  double sum = 0.0;
  for (size_t i = 0; i < metadata.target_rows(); ++i) {
    double value = 0.0;
    if (ResolveCell(metadata, i, col, &value)) sum += value;
  }
  return sum;
}

Result<double> AvgColumn(const metadata::DiMetadata& metadata,
                         const std::string& column) {
  AMALUR_ASSIGN_OR_RETURN(size_t col, ResolveColumn(metadata, column));
  double sum = 0.0;
  size_t present = 0;
  for (size_t i = 0; i < metadata.target_rows(); ++i) {
    double value = 0.0;
    if (ResolveCell(metadata, i, col, &value)) {
      sum += value;
      ++present;
    }
  }
  if (present == 0) {
    return Status::NotFound("no row supplies column '", column, "'");
  }
  return sum / static_cast<double>(present);
}

namespace {

Result<double> Extremum(const metadata::DiMetadata& metadata,
                        const std::string& column, bool want_min) {
  AMALUR_ASSIGN_OR_RETURN(size_t col, ResolveColumn(metadata, column));
  bool any = false;
  double best = 0.0;
  for (size_t i = 0; i < metadata.target_rows(); ++i) {
    double value = 0.0;
    if (!ResolveCell(metadata, i, col, &value)) continue;
    if (!any || (want_min ? value < best : value > best)) best = value;
    any = true;
  }
  if (!any) return Status::NotFound("no row supplies column '", column, "'");
  return best;
}

}  // namespace

Result<double> MinColumn(const metadata::DiMetadata& metadata,
                         const std::string& column) {
  return Extremum(metadata, column, /*want_min=*/true);
}

Result<double> MaxColumn(const metadata::DiMetadata& metadata,
                         const std::string& column) {
  return Extremum(metadata, column, /*want_min=*/false);
}

}  // namespace factorized
}  // namespace amalur
