#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

/// \file indicator_matrix.h
/// The paper's indicator matrix and its compressed form (Definition III.3).
/// `I_k` is a binary rT × rS_k matrix with I_k[i, j] = 1 iff row j of source
/// k maps to row i of the target; `CI_k` is a row vector of size rT with
/// CI_k[i] = j (or -1). Join fan-out is naturally expressed: several target
/// rows may point at the same source row.

namespace amalur {
namespace metadata {

/// Compressed indicator matrix `CI_k` with expand/reduce kernels.
class CompressedIndicator {
 public:
  /// `target_to_source[i]` = D_k row mapped to target row i, or -1.
  /// `source_rows` = number of rows of D_k (rS_k).
  CompressedIndicator(std::vector<int64_t> target_to_source, size_t source_rows);

  /// Identity indicator: target row i ← source row i.
  static CompressedIndicator Identity(size_t rows);

  size_t target_rows() const { return target_to_source_.size(); }
  size_t source_rows() const { return source_rows_; }

  /// CI_k[i]: the D_k row mapped to target row i, or -1.
  int64_t At(size_t i) const {
    AMALUR_CHECK_LT(i, target_to_source_.size()) << "CI index";
    return target_to_source_[i];
  }
  const std::vector<int64_t>& values() const { return target_to_source_; }

  /// Number of target rows this source contributes to.
  size_t ContributedRows() const;

  /// The full binary indicator matrix `I_k` (rT × rS_k), Definition III.3.
  la::SparseMatrix ToMatrix() const;

  /// `I_k · Y` for Y (rS × c): routes source-row values to target rows,
  /// zero rows where the source contributes nothing. O(rT · c).
  la::DenseMatrix ExpandRows(const la::DenseMatrix& y) const;

  /// `I_kᵀ · X` for X (rT × c): accumulates target-row values back onto
  /// source rows (scatter-add; fan-out rows accumulate). The backward
  /// operation of factorized gradient computations.
  la::DenseMatrix ReduceRows(const la::DenseMatrix& x) const;

  std::string ToString() const;

 private:
  std::vector<int64_t> target_to_source_;
  size_t source_rows_;
};

}  // namespace metadata
}  // namespace amalur
