#include "metadata/di_metadata.h"

#include <algorithm>
#include <sstream>

#include "integration/entity_resolution.h"

namespace amalur {
namespace metadata {

namespace {

/// Builds D_k, its column names and CM_k for source k of the mapping.
Status BuildColumns(const integration::SchemaMapping& mapping, size_t k,
                    const rel::Table& table, la::DenseMatrix* data,
                    std::vector<std::string>* column_names,
                    std::vector<int64_t>* cm, std::vector<size_t>* schema_cols) {
  const std::vector<int64_t> target_to_schema = mapping.TargetToSourceColumns(k);
  const std::vector<std::string> mapped = mapping.MappedColumns(k);

  // D_k layout: mapped columns in source-schema order.
  std::vector<size_t> indices;
  std::vector<int64_t> schema_to_dk(table.NumColumns(), -1);
  for (const std::string& name : mapped) {
    AMALUR_ASSIGN_OR_RETURN(size_t index, table.ColumnIndex(name));
    schema_to_dk[index] = static_cast<int64_t>(indices.size());
    indices.push_back(index);
    column_names->push_back(name);
  }
  AMALUR_ASSIGN_OR_RETURN(*data, table.ToMatrix(indices));

  cm->assign(target_to_schema.size(), -1);
  for (size_t i = 0; i < target_to_schema.size(); ++i) {
    const int64_t schema_col = target_to_schema[i];
    if (schema_col >= 0) {
      (*cm)[i] = schema_to_dk[static_cast<size_t>(schema_col)];
    }
  }
  *schema_cols = indices;
  return Status::OK();
}

/// Shared tail of every derivation: given the per-source CI vectors, builds
/// D_k, CM_k, I_k and R_k for each source and appends them to `metadata`.
/// The redundancy chain follows source order (earlier sources cover later
/// ones), so callers must list the retained/base sources first.
Status FillSources(const integration::SchemaMapping& mapping,
                   const std::vector<const rel::Table*>& tables,
                   const std::vector<std::vector<int64_t>>& ci,
                   std::vector<SourceMetadata>* sources) {
  const size_t n_sources = tables.size();
  std::vector<CompressedMapping> mappings;
  std::vector<CompressedIndicator> indicators;
  std::vector<la::DenseMatrix> data(n_sources);
  std::vector<std::vector<std::string>> names(n_sources);
  std::vector<std::vector<size_t>> schema_cols(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    std::vector<int64_t> cm;
    AMALUR_RETURN_NOT_OK(BuildColumns(mapping, k, *tables[k], &data[k],
                                      &names[k], &cm, &schema_cols[k]));
    mappings.emplace_back(std::move(cm), data[k].cols());
    indicators.emplace_back(ci[k], data[k].rows());
  }
  for (size_t k = 0; k < n_sources; ++k) {
    SourceMetadata source{
        mapping.source(k).name,
        std::move(data[k]),
        std::move(names[k]),
        mappings[k],
        indicators[k],
        RedundancyMask::Derive(k, indicators, mappings),
        tables[k]->Project(schema_cols[k]).NullRatio(),
        integration::DuplicateRatio(*tables[k], schema_cols[k]),
    };
    sources->push_back(std::move(source));
  }
  return Status::OK();
}

}  // namespace

const char* IntegrationShapeToString(IntegrationShape shape) {
  switch (shape) {
    case IntegrationShape::kPairwise:
      return "pairwise";
    case IntegrationShape::kStar:
      return "star";
    case IntegrationShape::kSnowflake:
      return "snowflake";
    case IntegrationShape::kUnionOfStars:
      return "union-of-stars";
  }
  return "?";
}

Result<DiMetadata> DiMetadata::Derive(const integration::SchemaMapping& mapping,
                                      const std::vector<const rel::Table*>& tables,
                                      const rel::RowMatching& matching) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() != 2) {
    return Status::Unimplemented(
        "metadata derivation currently handles two-source scenarios");
  }
  const rel::Table& base = *tables[0];
  const rel::Table& other = *tables[1];
  for (const auto& [l, r] : matching.matched) {
    if (l >= base.NumRows() || r >= other.NumRows()) {
      return Status::OutOfRange("row match (", l, ",", r, ") out of range");
    }
  }

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();

  // ---- Target row layout (Figure 4 convention).
  std::vector<int64_t> ci_base;
  std::vector<int64_t> ci_other;
  const auto push = [&](int64_t b, int64_t o) {
    ci_base.push_back(b);
    ci_other.push_back(o);
  };
  switch (mapping.kind()) {
    case rel::JoinKind::kInnerJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      break;
    case rel::JoinKind::kLeftJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      break;
    case rel::JoinKind::kFullOuterJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      for (size_t r : matching.right_only) push(-1, static_cast<int64_t>(r));
      break;
    case rel::JoinKind::kUnion:
      for (size_t l = 0; l < base.NumRows(); ++l) {
        push(static_cast<int64_t>(l), -1);
      }
      for (size_t r = 0; r < other.NumRows(); ++r) {
        push(-1, static_cast<int64_t>(r));
      }
      break;
  }
  metadata.target_rows_ = ci_base.size();
  metadata.shape_ = IntegrationShape::kPairwise;
  if (mapping.kind() == rel::JoinKind::kUnion) {
    // A pairwise union is the 2-shard degenerate case: each source is its
    // own fact shard, blocks stacked base-first.
    metadata.num_shards_ = 2;
    metadata.join_depth_ = 0;
    metadata.source_shard_ = {0, 1};
    metadata.shard_offsets_ = {0, base.NumRows(), metadata.target_rows_};
  } else {
    metadata.num_shards_ = 1;
    metadata.join_depth_ = 1;
    metadata.source_shard_ = {0, 0};
    metadata.shard_offsets_ = {0, metadata.target_rows_};
  }

  // ---- Per-source metadata.
  AMALUR_RETURN_NOT_OK(
      FillSources(mapping, tables, {ci_base, ci_other}, &metadata.sources_));
  return metadata;
}

Result<DiMetadata> DiMetadata::DeriveStar(
    const integration::SchemaMapping& mapping,
    const std::vector<const rel::Table*>& tables,
    const std::vector<rel::RowMatching>& matchings) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() < 2) {
    return Status::InvalidArgument("a star scenario needs >= 2 sources");
  }
  if (matchings.size() != tables.size() - 1) {
    return Status::InvalidArgument("expected ", tables.size() - 1,
                                   " matchings, got ", matchings.size());
  }
  if (mapping.kind() != rel::JoinKind::kLeftJoin) {
    return Status::InvalidArgument(
        "star derivation is the left-join relationship (base retained)");
  }
  const size_t n_sources = tables.size();
  const size_t base_rows = tables[0]->NumRows();

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();
  metadata.target_rows_ = base_rows;
  metadata.shape_ = IntegrationShape::kStar;
  metadata.num_shards_ = 1;
  metadata.join_depth_ = 1;
  metadata.source_shard_.assign(n_sources, 0);
  metadata.shard_offsets_ = {0, base_rows};

  // CI vectors: base = identity; dimension k from its matching (functional).
  std::vector<std::vector<int64_t>> ci(n_sources);
  ci[0].resize(base_rows);
  for (size_t i = 0; i < base_rows; ++i) ci[0][i] = static_cast<int64_t>(i);
  for (size_t k = 1; k < n_sources; ++k) {
    ci[k].assign(base_rows, -1);
    for (const auto& [base_row, dim_row] : matchings[k - 1].matched) {
      if (base_row >= base_rows || dim_row >= tables[k]->NumRows()) {
        return Status::OutOfRange("row match out of range for source ", k);
      }
      if (ci[k][base_row] != -1) {
        return Status::FailedPrecondition(
            "base row ", base_row, " matches several rows of source ", k,
            "; star derivation requires a functional matching");
      }
      ci[k][base_row] = static_cast<int64_t>(dim_row);
    }
  }

  AMALUR_RETURN_NOT_OK(FillSources(mapping, tables, ci, &metadata.sources_));
  return metadata;
}

Result<DiMetadata> DiMetadata::DeriveGraph(
    const integration::SchemaMapping& mapping,
    const std::vector<const rel::Table*>& tables,
    const std::vector<MetadataEdge>& edges,
    const std::vector<rel::RowMatching>& matchings) {
  const size_t n_sources = tables.size();
  if (n_sources != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", n_sources);
  }
  if (n_sources < 2) {
    return Status::InvalidArgument("a graph scenario needs >= 2 sources");
  }
  if (edges.size() != n_sources - 1) {
    return Status::InvalidArgument("a tree over ", n_sources,
                                   " sources needs ", n_sources - 1,
                                   " edges, got ", edges.size());
  }
  if (matchings.size() != edges.size()) {
    return Status::InvalidArgument("expected ", edges.size(),
                                   " matchings, got ", matchings.size());
  }

  // ---- Structural validation. `parent < child` with exactly one parent per
  // non-root node makes the edge set a tree rooted at 0 in topological
  // order; union edges may only hang off fact nodes.
  std::vector<int64_t> parent_edge_of(n_sources, -1);
  for (size_t e = 0; e < edges.size(); ++e) {
    const MetadataEdge& edge = edges[e];
    if (edge.child >= n_sources || edge.parent >= edge.child) {
      return Status::InvalidArgument(
          "graph edge ", e, " must satisfy parent < child < ", n_sources,
          " (sources in topological order, root first)");
    }
    if (edge.kind != rel::JoinKind::kLeftJoin &&
        edge.kind != rel::JoinKind::kUnion) {
      return Status::InvalidArgument(
          "graph edges are left joins or unions, got ",
          rel::JoinKindToString(edge.kind), " on edge ", e);
    }
    if (parent_edge_of[edge.child] != -1) {
      return Status::InvalidArgument("source ", edge.child,
                                     " has several parent edges; integration "
                                     "graphs must form a tree");
    }
    parent_edge_of[edge.child] = static_cast<int64_t>(e);
  }

  // ---- Fact/shard/depth assignment. Facts are the root and every node
  // reached through union edges; a shard is one fact plus its dimension
  // subtree, stacked into the target in ascending fact order.
  std::vector<uint8_t> is_fact(n_sources, 0);
  std::vector<size_t> shard_of(n_sources, 0);
  std::vector<size_t> depth(n_sources, 0);
  is_fact[0] = 1;
  std::vector<size_t> fact_of_shard{0};
  bool any_union = false;
  size_t max_depth = 0;
  for (size_t e = 0; e < edges.size(); ++e) {
    const MetadataEdge& edge = edges[e];
    if (edge.kind == rel::JoinKind::kUnion) {
      if (!is_fact[edge.parent]) {
        return Status::InvalidArgument(
            "union edge ", e, " hangs off dimension source ", edge.parent,
            "; union edges stack fact shards only");
      }
      if (!matchings[e].matched.empty()) {
        return Status::InvalidArgument(
            "union edge ", e, " carries a row matching; unions match no rows");
      }
      any_union = true;
      is_fact[edge.child] = 1;
      shard_of[edge.child] = fact_of_shard.size();
      fact_of_shard.push_back(edge.child);
    } else {
      shard_of[edge.child] = shard_of[edge.parent];
      depth[edge.child] = depth[edge.parent] + 1;
      max_depth = std::max(max_depth, depth[edge.child]);
    }
  }

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();
  metadata.shape_ = any_union ? IntegrationShape::kUnionOfStars
                    : max_depth > 1 ? IntegrationShape::kSnowflake
                                    : IntegrationShape::kStar;
  metadata.num_shards_ = fact_of_shard.size();
  metadata.join_depth_ = max_depth;
  const rel::JoinKind expected_kind =
      any_union ? rel::JoinKind::kUnion : rel::JoinKind::kLeftJoin;
  if (mapping.kind() != expected_kind) {
    return Status::InvalidArgument(
        "graph derivation expects a ", rel::JoinKindToString(expected_kind),
        " mapping for this edge set, got ",
        rel::JoinKindToString(mapping.kind()));
  }

  // ---- Shard blocks: target rows are the fact shards stacked in order.
  std::vector<size_t> shard_offset(fact_of_shard.size() + 1, 0);
  for (size_t s = 0; s < fact_of_shard.size(); ++s) {
    shard_offset[s + 1] = shard_offset[s] + tables[fact_of_shard[s]]->NumRows();
  }
  metadata.target_rows_ = shard_offset.back();
  metadata.source_shard_ = shard_of;
  metadata.shard_offsets_ = shard_offset;

  // ---- Shard-local CI per node (fact rows of its shard -> node rows).
  // Facts are identities; a join child *composes* its parent's local CI with
  // the edge's functional matching, so a chained dimension still resolves in
  // one indirection — the snowflake derivation.
  std::vector<std::vector<int64_t>> local_ci(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    if (!is_fact[k]) continue;
    local_ci[k].resize(tables[k]->NumRows());
    for (size_t i = 0; i < local_ci[k].size(); ++i) {
      local_ci[k][i] = static_cast<int64_t>(i);
    }
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    const MetadataEdge& edge = edges[e];
    if (edge.kind != rel::JoinKind::kLeftJoin) continue;
    const size_t parent_rows = tables[edge.parent]->NumRows();
    std::vector<int64_t> parent_to_child(parent_rows, -1);
    for (const auto& [parent_row, child_row] : matchings[e].matched) {
      if (parent_row >= parent_rows ||
          child_row >= tables[edge.child]->NumRows()) {
        return Status::OutOfRange("row match out of range on graph edge ", e);
      }
      if (parent_to_child[parent_row] != -1) {
        return Status::FailedPrecondition(
            "row ", parent_row, " of source ", edge.parent,
            " matches several rows of source ", edge.child,
            "; graph derivation requires functional join matchings");
      }
      parent_to_child[parent_row] = static_cast<int64_t>(child_row);
    }
    const std::vector<int64_t>& up = local_ci[edge.parent];
    local_ci[edge.child].assign(up.size(), -1);
    for (size_t i = 0; i < up.size(); ++i) {
      if (up[i] >= 0) {
        local_ci[edge.child][i] = parent_to_child[static_cast<size_t>(up[i])];
      }
    }
  }

  // ---- Global CI: place each node's local CI into its shard's block.
  std::vector<std::vector<int64_t>> ci(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    ci[k].assign(metadata.target_rows_, -1);
    const size_t offset = shard_offset[shard_of[k]];
    for (size_t i = 0; i < local_ci[k].size(); ++i) {
      ci[k][offset + i] = local_ci[k][i];
    }
  }

  AMALUR_RETURN_NOT_OK(FillSources(mapping, tables, ci, &metadata.sources_));
  return metadata;
}

la::DenseMatrix DiMetadata::SourceContribution(size_t k) const {
  const SourceMetadata& s = source(k);
  // I_k (D_k M_kᵀ): expand columns to target layout, then route rows.
  return s.indicator.ExpandRows(s.mapping.ExpandColumns(s.data));
}

la::DenseMatrix DiMetadata::MaterializeTargetMatrix() const {
  la::DenseMatrix target(target_rows_, target_cols_);
  for (size_t k = 0; k < sources_.size(); ++k) {
    la::DenseMatrix contribution = SourceContribution(k);
    sources_[k].redundancy.ApplyInPlace(&contribution);
    target.AddInPlace(contribution);
  }
  return target;
}

double DiMetadata::TupleRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.rows() == 0
             ? 0.0
             : static_cast<double>(target_rows_) /
                   static_cast<double>(s.data.rows());
}

double DiMetadata::FeatureRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.cols() == 0
             ? 0.0
             : static_cast<double>(target_cols_) /
                   static_cast<double>(s.data.cols());
}

std::string DiMetadata::ToString() const {
  std::ostringstream out;
  out << "DiMetadata[" << rel::JoinKindToString(kind_) << ", "
      << IntegrationShapeToString(shape_) << ", T " << target_rows_ << "x"
      << target_cols_ << "]\n";
  for (size_t k = 0; k < sources_.size(); ++k) {
    const SourceMetadata& s = sources_[k];
    out << "  " << s.name << ": D " << s.data.rows() << "x" << s.data.cols()
        << ", " << s.mapping.ToString() << ", TR=" << TupleRatio(k)
        << ", FR=" << FeatureRatio(k) << ", null=" << s.null_ratio
        << ", dup=" << s.duplicate_ratio << "\n";
  }
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
