#include "metadata/di_metadata.h"

#include <sstream>

#include "integration/entity_resolution.h"

namespace amalur {
namespace metadata {

namespace {

/// Builds D_k, its column names and CM_k for source k of the mapping.
Status BuildColumns(const integration::SchemaMapping& mapping, size_t k,
                    const rel::Table& table, la::DenseMatrix* data,
                    std::vector<std::string>* column_names,
                    std::vector<int64_t>* cm, std::vector<size_t>* schema_cols) {
  const std::vector<int64_t> target_to_schema = mapping.TargetToSourceColumns(k);
  const std::vector<std::string> mapped = mapping.MappedColumns(k);

  // D_k layout: mapped columns in source-schema order.
  std::vector<size_t> indices;
  std::vector<int64_t> schema_to_dk(table.NumColumns(), -1);
  for (const std::string& name : mapped) {
    AMALUR_ASSIGN_OR_RETURN(size_t index, table.ColumnIndex(name));
    schema_to_dk[index] = static_cast<int64_t>(indices.size());
    indices.push_back(index);
    column_names->push_back(name);
  }
  AMALUR_ASSIGN_OR_RETURN(*data, table.ToMatrix(indices));

  cm->assign(target_to_schema.size(), -1);
  for (size_t i = 0; i < target_to_schema.size(); ++i) {
    const int64_t schema_col = target_to_schema[i];
    if (schema_col >= 0) {
      (*cm)[i] = schema_to_dk[static_cast<size_t>(schema_col)];
    }
  }
  *schema_cols = indices;
  return Status::OK();
}

}  // namespace

Result<DiMetadata> DiMetadata::Derive(const integration::SchemaMapping& mapping,
                                      const std::vector<const rel::Table*>& tables,
                                      const rel::RowMatching& matching) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() != 2) {
    return Status::Unimplemented(
        "metadata derivation currently handles two-source scenarios");
  }
  const rel::Table& base = *tables[0];
  const rel::Table& other = *tables[1];
  for (const auto& [l, r] : matching.matched) {
    if (l >= base.NumRows() || r >= other.NumRows()) {
      return Status::OutOfRange("row match (", l, ",", r, ") out of range");
    }
  }

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();

  // ---- Target row layout (Figure 4 convention).
  std::vector<int64_t> ci_base;
  std::vector<int64_t> ci_other;
  const auto push = [&](int64_t b, int64_t o) {
    ci_base.push_back(b);
    ci_other.push_back(o);
  };
  switch (mapping.kind()) {
    case rel::JoinKind::kInnerJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      break;
    case rel::JoinKind::kLeftJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      break;
    case rel::JoinKind::kFullOuterJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      for (size_t r : matching.right_only) push(-1, static_cast<int64_t>(r));
      break;
    case rel::JoinKind::kUnion:
      for (size_t l = 0; l < base.NumRows(); ++l) {
        push(static_cast<int64_t>(l), -1);
      }
      for (size_t r = 0; r < other.NumRows(); ++r) {
        push(-1, static_cast<int64_t>(r));
      }
      break;
  }
  metadata.target_rows_ = ci_base.size();

  // ---- Per-source metadata.
  std::vector<CompressedMapping> mappings;
  std::vector<CompressedIndicator> indicators;
  std::vector<la::DenseMatrix> data(2);
  std::vector<std::vector<std::string>> names(2);
  std::vector<std::vector<size_t>> schema_cols(2);
  for (size_t k = 0; k < 2; ++k) {
    std::vector<int64_t> cm;
    AMALUR_RETURN_NOT_OK(BuildColumns(mapping, k, *tables[k], &data[k],
                                      &names[k], &cm, &schema_cols[k]));
    mappings.emplace_back(std::move(cm), data[k].cols());
    indicators.emplace_back(k == 0 ? ci_base : ci_other, data[k].rows());
  }

  for (size_t k = 0; k < 2; ++k) {
    SourceMetadata source{
        mapping.source(k).name,
        std::move(data[k]),
        std::move(names[k]),
        mappings[k],
        indicators[k],
        RedundancyMask::Derive(k, indicators, mappings),
        tables[k]->Project(schema_cols[k]).NullRatio(),
        integration::DuplicateRatio(*tables[k], schema_cols[k]),
    };
    metadata.sources_.push_back(std::move(source));
  }
  return metadata;
}

Result<DiMetadata> DiMetadata::DeriveStar(
    const integration::SchemaMapping& mapping,
    const std::vector<const rel::Table*>& tables,
    const std::vector<rel::RowMatching>& matchings) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() < 2) {
    return Status::InvalidArgument("a star scenario needs >= 2 sources");
  }
  if (matchings.size() != tables.size() - 1) {
    return Status::InvalidArgument("expected ", tables.size() - 1,
                                   " matchings, got ", matchings.size());
  }
  if (mapping.kind() != rel::JoinKind::kLeftJoin) {
    return Status::InvalidArgument(
        "star derivation is the left-join relationship (base retained)");
  }
  const size_t n_sources = tables.size();
  const size_t base_rows = tables[0]->NumRows();

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();
  metadata.target_rows_ = base_rows;

  // CI vectors: base = identity; dimension k from its matching (functional).
  std::vector<std::vector<int64_t>> ci(n_sources);
  ci[0].resize(base_rows);
  for (size_t i = 0; i < base_rows; ++i) ci[0][i] = static_cast<int64_t>(i);
  for (size_t k = 1; k < n_sources; ++k) {
    ci[k].assign(base_rows, -1);
    for (const auto& [base_row, dim_row] : matchings[k - 1].matched) {
      if (base_row >= base_rows || dim_row >= tables[k]->NumRows()) {
        return Status::OutOfRange("row match out of range for source ", k);
      }
      if (ci[k][base_row] != -1) {
        return Status::FailedPrecondition(
            "base row ", base_row, " matches several rows of source ", k,
            "; star derivation requires a functional matching");
      }
      ci[k][base_row] = static_cast<int64_t>(dim_row);
    }
  }

  std::vector<CompressedMapping> mappings;
  std::vector<CompressedIndicator> indicators;
  std::vector<la::DenseMatrix> data(n_sources);
  std::vector<std::vector<std::string>> names(n_sources);
  std::vector<std::vector<size_t>> schema_cols(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    std::vector<int64_t> cm;
    AMALUR_RETURN_NOT_OK(BuildColumns(mapping, k, *tables[k], &data[k],
                                      &names[k], &cm, &schema_cols[k]));
    mappings.emplace_back(std::move(cm), data[k].cols());
    indicators.emplace_back(ci[k], data[k].rows());
  }
  for (size_t k = 0; k < n_sources; ++k) {
    SourceMetadata source{
        mapping.source(k).name,
        std::move(data[k]),
        std::move(names[k]),
        mappings[k],
        indicators[k],
        RedundancyMask::Derive(k, indicators, mappings),
        tables[k]->Project(schema_cols[k]).NullRatio(),
        integration::DuplicateRatio(*tables[k], schema_cols[k]),
    };
    metadata.sources_.push_back(std::move(source));
  }
  return metadata;
}

la::DenseMatrix DiMetadata::SourceContribution(size_t k) const {
  const SourceMetadata& s = source(k);
  // I_k (D_k M_kᵀ): expand columns to target layout, then route rows.
  return s.indicator.ExpandRows(s.mapping.ExpandColumns(s.data));
}

la::DenseMatrix DiMetadata::MaterializeTargetMatrix() const {
  la::DenseMatrix target(target_rows_, target_cols_);
  for (size_t k = 0; k < sources_.size(); ++k) {
    la::DenseMatrix contribution = SourceContribution(k);
    sources_[k].redundancy.ApplyInPlace(&contribution);
    target.AddInPlace(contribution);
  }
  return target;
}

double DiMetadata::TupleRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.rows() == 0
             ? 0.0
             : static_cast<double>(target_rows_) /
                   static_cast<double>(s.data.rows());
}

double DiMetadata::FeatureRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.cols() == 0
             ? 0.0
             : static_cast<double>(target_cols_) /
                   static_cast<double>(s.data.cols());
}

std::string DiMetadata::ToString() const {
  std::ostringstream out;
  out << "DiMetadata[" << rel::JoinKindToString(kind_) << ", T " << target_rows_
      << "x" << target_cols_ << "]\n";
  for (size_t k = 0; k < sources_.size(); ++k) {
    const SourceMetadata& s = sources_[k];
    out << "  " << s.name << ": D " << s.data.rows() << "x" << s.data.cols()
        << ", " << s.mapping.ToString() << ", TR=" << TupleRatio(k)
        << ", FR=" << FeatureRatio(k) << ", null=" << s.null_ratio
        << ", dup=" << s.duplicate_ratio << "\n";
  }
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
