#include "metadata/di_metadata.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/status.h"
#include "integration/entity_resolution.h"

namespace amalur {
namespace metadata {

namespace {

/// Builds D_k, its column names and CM_k for source k of the mapping.
Status BuildColumns(const integration::SchemaMapping& mapping, size_t k,
                    const rel::Table& table, la::DenseMatrix* data,
                    std::vector<std::string>* column_names,
                    std::vector<int64_t>* cm, std::vector<size_t>* schema_cols) {
  const std::vector<int64_t> target_to_schema = mapping.TargetToSourceColumns(k);
  const std::vector<std::string> mapped = mapping.MappedColumns(k);

  // D_k layout: mapped columns in source-schema order.
  std::vector<size_t> indices;
  std::vector<int64_t> schema_to_dk(table.NumColumns(), -1);
  for (const std::string& name : mapped) {
    AMALUR_ASSIGN_OR_RETURN(size_t index, table.ColumnIndex(name));
    schema_to_dk[index] = static_cast<int64_t>(indices.size());
    indices.push_back(index);
    column_names->push_back(name);
  }
  AMALUR_ASSIGN_OR_RETURN(*data, table.ToMatrix(indices));

  cm->assign(target_to_schema.size(), -1);
  for (size_t i = 0; i < target_to_schema.size(); ++i) {
    const int64_t schema_col = target_to_schema[i];
    if (schema_col >= 0) {
      (*cm)[i] = schema_to_dk[static_cast<size_t>(schema_col)];
    }
  }
  *schema_cols = indices;
  return Status::OK();
}

/// Shared tail of every derivation: given the per-source CI vectors, builds
/// D_k, CM_k, I_k and R_k for each source and appends them to `metadata`.
/// The redundancy chain follows source order (earlier sources cover later
/// ones), so callers must list the retained/base sources first.
Status FillSources(const integration::SchemaMapping& mapping,
                   const std::vector<const rel::Table*>& tables,
                   const std::vector<std::vector<int64_t>>& ci,
                   std::vector<SourceMetadata>* sources) {
  const size_t n_sources = tables.size();
  std::vector<CompressedMapping> mappings;
  std::vector<CompressedIndicator> indicators;
  std::vector<la::DenseMatrix> data(n_sources);
  std::vector<std::vector<std::string>> names(n_sources);
  std::vector<std::vector<size_t>> schema_cols(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    std::vector<int64_t> cm;
    AMALUR_RETURN_NOT_OK(BuildColumns(mapping, k, *tables[k], &data[k],
                                      &names[k], &cm, &schema_cols[k]));
    mappings.emplace_back(std::move(cm), data[k].cols());
    indicators.emplace_back(ci[k], data[k].rows());
  }
  for (size_t k = 0; k < n_sources; ++k) {
    SourceMetadata source{
        mapping.source(k).name,
        std::move(data[k]),
        std::move(names[k]),
        mappings[k],
        indicators[k],
        RedundancyMask::Derive(k, indicators, mappings),
        tables[k]->Project(schema_cols[k]).NullRatio(),
        integration::DuplicateRatio(*tables[k], schema_cols[k]),
    };
    sources->push_back(std::move(source));
  }
  return Status::OK();
}

}  // namespace

const char* IntegrationShapeToString(IntegrationShape shape) {
  switch (shape) {
    case IntegrationShape::kPairwise:
      return "pairwise";
    case IntegrationShape::kStar:
      return "star";
    case IntegrationShape::kSnowflake:
      return "snowflake";
    case IntegrationShape::kUnionOfStars:
      return "union-of-stars";
    case IntegrationShape::kConformedSnowflake:
      return "conformed-snowflake";
  }
  return "?";
}

Result<DiMetadata> DiMetadata::Derive(const integration::SchemaMapping& mapping,
                                      const std::vector<const rel::Table*>& tables,
                                      const rel::RowMatching& matching) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() != 2) {
    return Status::Unimplemented(
        "metadata derivation currently handles two-source scenarios");
  }
  const rel::Table& base = *tables[0];
  const rel::Table& other = *tables[1];
  for (const auto& [l, r] : matching.matched) {
    if (l >= base.NumRows() || r >= other.NumRows()) {
      return Status::OutOfRange("row match (", l, ",", r, ") out of range");
    }
  }

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();

  // ---- Target row layout (Figure 4 convention).
  std::vector<int64_t> ci_base;
  std::vector<int64_t> ci_other;
  const auto push = [&](int64_t b, int64_t o) {
    ci_base.push_back(b);
    ci_other.push_back(o);
  };
  switch (mapping.kind()) {
    case rel::JoinKind::kInnerJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      break;
    case rel::JoinKind::kLeftJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      break;
    case rel::JoinKind::kFullOuterJoin:
      for (const auto& [l, r] : matching.matched) {
        push(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
      for (size_t l : matching.left_only) push(static_cast<int64_t>(l), -1);
      for (size_t r : matching.right_only) push(-1, static_cast<int64_t>(r));
      break;
    case rel::JoinKind::kUnion:
      for (size_t l = 0; l < base.NumRows(); ++l) {
        push(static_cast<int64_t>(l), -1);
      }
      for (size_t r = 0; r < other.NumRows(); ++r) {
        push(-1, static_cast<int64_t>(r));
      }
      break;
  }
  metadata.target_rows_ = ci_base.size();
  metadata.shape_ = IntegrationShape::kPairwise;
  if (mapping.kind() == rel::JoinKind::kUnion) {
    // A pairwise union is the 2-shard degenerate case: each source is its
    // own fact shard, blocks stacked base-first.
    metadata.num_shards_ = 2;
    metadata.join_depth_ = 0;
    metadata.source_shard_ = {0, 1};
    metadata.source_shards_ = {{0}, {1}};
    metadata.shard_offsets_ = {0, base.NumRows(), metadata.target_rows_};
  } else {
    metadata.num_shards_ = 1;
    metadata.join_depth_ = 1;
    metadata.source_shard_ = {0, 0};
    metadata.source_shards_ = {{0}, {0}};
    metadata.shard_offsets_ = {0, metadata.target_rows_};
  }

  // ---- Per-source metadata.
  AMALUR_RETURN_NOT_OK(
      FillSources(mapping, tables, {ci_base, ci_other}, &metadata.sources_));
  return metadata;
}

Result<DiMetadata> DiMetadata::DeriveStar(
    const integration::SchemaMapping& mapping,
    const std::vector<const rel::Table*>& tables,
    const std::vector<rel::RowMatching>& matchings) {
  if (tables.size() != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", tables.size());
  }
  if (tables.size() < 2) {
    return Status::InvalidArgument("a star scenario needs >= 2 sources");
  }
  if (matchings.size() != tables.size() - 1) {
    return Status::InvalidArgument("expected ", tables.size() - 1,
                                   " matchings, got ", matchings.size());
  }
  if (mapping.kind() != rel::JoinKind::kLeftJoin) {
    return Status::InvalidArgument(
        "star derivation is the left-join relationship (base retained)");
  }
  const size_t n_sources = tables.size();
  const size_t base_rows = tables[0]->NumRows();

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();
  metadata.target_rows_ = base_rows;
  metadata.shape_ = IntegrationShape::kStar;
  metadata.num_shards_ = 1;
  metadata.join_depth_ = 1;
  metadata.source_shard_.assign(n_sources, 0);
  metadata.source_shards_.assign(n_sources, {0});
  metadata.shard_offsets_ = {0, base_rows};

  // CI vectors: base = identity; dimension k from its matching (functional).
  std::vector<std::vector<int64_t>> ci(n_sources);
  ci[0].resize(base_rows);
  for (size_t i = 0; i < base_rows; ++i) ci[0][i] = static_cast<int64_t>(i);
  for (size_t k = 1; k < n_sources; ++k) {
    ci[k].assign(base_rows, -1);
    for (const auto& [base_row, dim_row] : matchings[k - 1].matched) {
      if (base_row >= base_rows || dim_row >= tables[k]->NumRows()) {
        return Status::OutOfRange("row match out of range for source ", k);
      }
      if (ci[k][base_row] != -1) {
        return Status::FailedPrecondition(
            "base row ", base_row, " matches several rows of source ", k,
            "; star derivation requires a functional matching");
      }
      ci[k][base_row] = static_cast<int64_t>(dim_row);
    }
  }

  AMALUR_RETURN_NOT_OK(FillSources(mapping, tables, ci, &metadata.sources_));
  return metadata;
}

Result<DiMetadata> DiMetadata::DeriveGraph(
    const integration::SchemaMapping& mapping,
    const std::vector<const rel::Table*>& tables,
    const std::vector<MetadataEdge>& edges,
    const std::vector<rel::RowMatching>& matchings) {
  const size_t n_sources = tables.size();
  if (n_sources != mapping.num_sources()) {
    return Status::InvalidArgument("expected ", mapping.num_sources(),
                                   " tables, got ", n_sources);
  }
  if (n_sources < 2) {
    return Status::InvalidArgument("a graph scenario needs >= 2 sources");
  }
  if (matchings.size() != edges.size()) {
    return Status::InvalidArgument("expected ", edges.size(),
                                   " matchings, got ", matchings.size());
  }

  // ---- Structural validation. `parent < child` with at least one parent
  // per non-root node makes the edge set a connected DAG rooted at 0 in
  // topological order; several join parents are legal (a conformed
  // dimension), several parents of a *fact* are not, and union edges may
  // only hang off fact nodes.
  std::vector<std::vector<size_t>> parent_edges_of(n_sources);
  std::set<std::pair<size_t, size_t>> seen_pairs;
  for (size_t e = 0; e < edges.size(); ++e) {
    const MetadataEdge& edge = edges[e];
    if (edge.child >= n_sources || edge.parent >= edge.child) {
      return Status::InvalidArgument(
          "graph edge ", e, " must satisfy parent < child < ", n_sources,
          " (sources in topological order, root first)");
    }
    if (edge.kind == rel::JoinKind::kFullOuterJoin) {
      return Status::InvalidArgument(
          "graph edges are left/inner joins or unions, got ",
          rel::JoinKindToString(edge.kind), " on edge ", e);
    }
    if (!seen_pairs.insert({edge.parent, edge.child}).second) {
      return Status::InvalidArgument("duplicate graph edge ", edge.parent,
                                     " -> ", edge.child);
    }
    parent_edges_of[edge.child].push_back(e);
  }
  for (size_t k = 1; k < n_sources; ++k) {
    if (parent_edges_of[k].empty()) {
      return Status::InvalidArgument(
          "source ", k,
          " has no parent edge; integration graphs must be connected");
    }
  }

  // ---- Fact/shard assignment in edge order (identical to the historical
  // tree derivation). Facts are the root and every node reached through
  // union edges; a shard is one fact plus its dimension subgraph, stacked
  // into the target in ascending fact order.
  std::vector<uint8_t> is_fact(n_sources, 0);
  std::vector<size_t> shard_of(n_sources, 0);
  is_fact[0] = 1;
  std::vector<size_t> fact_of_shard{0};
  bool any_union = false;
  bool any_inner = false;
  for (size_t e = 0; e < edges.size(); ++e) {
    const MetadataEdge& edge = edges[e];
    if (edge.kind == rel::JoinKind::kUnion) {
      if (parent_edges_of[edge.child].size() > 1) {
        return Status::InvalidArgument(
            "source ", edge.child,
            " is a fact shard (a union-edge child) with several parent "
            "edges; only dimensions may be conformed");
      }
      if (!is_fact[edge.parent]) {
        return Status::InvalidArgument(
            "union edge ", e, " hangs off dimension source ", edge.parent,
            "; union edges stack fact shards only");
      }
      if (!matchings[e].matched.empty()) {
        return Status::InvalidArgument(
            "union edge ", e, " carries a row matching; unions match no rows");
      }
      any_union = true;
      is_fact[edge.child] = 1;
      shard_of[edge.child] = fact_of_shard.size();
      fact_of_shard.push_back(edge.child);
    } else if (edge.kind == rel::JoinKind::kInnerJoin) {
      any_inner = true;
    }
  }

  // ---- Depth, reachable-shard sets and the conformed-dimension count, in
  // child order (every parent's values are complete by then).
  std::vector<size_t> depth(n_sources, 0);
  std::vector<std::set<size_t>> shards_reaching(n_sources);
  shards_reaching[0] = {0};
  size_t max_depth = 0;
  size_t shared_dimensions = 0;
  for (size_t c = 1; c < n_sources; ++c) {
    const std::vector<size_t>& parents = parent_edges_of[c];
    if (is_fact[c]) {
      shards_reaching[c] = {shard_of[c]};
      continue;  // depth 0: a fresh shard root
    }
    for (size_t e : parents) {
      const size_t p = edges[e].parent;
      depth[c] = std::max(depth[c], depth[p] + 1);
      shards_reaching[c].insert(shards_reaching[p].begin(),
                                shards_reaching[p].end());
    }
    shard_of[c] = shard_of[edges[parents[0]].parent];
    max_depth = std::max(max_depth, depth[c]);
    if (parents.size() > 1) ++shared_dimensions;
  }

  DiMetadata metadata;
  metadata.kind_ = mapping.kind();
  metadata.target_schema_ = mapping.target_schema();
  metadata.target_cols_ = metadata.target_schema_.num_fields();
  metadata.shape_ = any_union            ? IntegrationShape::kUnionOfStars
                    : shared_dimensions > 0
                        ? IntegrationShape::kConformedSnowflake
                    : max_depth > 1 ? IntegrationShape::kSnowflake
                                    : IntegrationShape::kStar;
  metadata.num_shards_ = fact_of_shard.size();
  metadata.join_depth_ = max_depth;
  metadata.num_shared_dimensions_ = shared_dimensions;
  const rel::JoinKind expected_kind =
      any_union ? rel::JoinKind::kUnion : rel::JoinKind::kLeftJoin;
  if (mapping.kind() != expected_kind) {
    return Status::InvalidArgument(
        "graph derivation expects a ", rel::JoinKindToString(expected_kind),
        " mapping for this edge set, got ",
        rel::JoinKindToString(mapping.kind()));
  }

  // ---- Shard blocks: target rows are the fact shards stacked in order
  // (inner-join edges may drop rows below).
  std::vector<size_t> shard_offset(fact_of_shard.size() + 1, 0);
  for (size_t s = 0; s < fact_of_shard.size(); ++s) {
    shard_offset[s + 1] = shard_offset[s] + tables[fact_of_shard[s]]->NumRows();
  }
  const size_t full_rows = shard_offset.back();

  // ---- Global CI per node. Facts are identities inside their block; a
  // join child *composes* each parent's CI with the edge's functional
  // matching, so a chained dimension still resolves in one indirection —
  // the snowflake derivation. A conformed dimension merges the
  // compositions of all its parent chains into ONE indicator: chains that
  // resolve the same target row to different dimension rows contradict the
  // conformed contract and fail.
  std::vector<std::vector<int64_t>> ci(n_sources);
  for (size_t k = 0; k < n_sources; ++k) ci[k].assign(full_rows, -1);
  for (size_t k = 0; k < n_sources; ++k) {
    if (!is_fact[k]) continue;
    const size_t offset = shard_offset[shard_of[k]];
    for (size_t i = 0; i < tables[k]->NumRows(); ++i) {
      ci[k][offset + i] = static_cast<int64_t>(i);
    }
  }
  // Inner-join restriction mask, filled during composition: an inner edge
  // drops every target row of a shard that references its parent but where
  // *this edge's own chain* does not resolve the child — the relational
  // inner join's row restriction applied through the metadata. The check
  // is per edge, NOT against the merged indicator: a conformed dimension
  // reached through another parent's chain must not launder a row past an
  // inner edge whose own reference dangles.
  std::vector<uint8_t> keep;
  if (any_inner) keep.assign(full_rows, 1);
  // Conformed-chain disagreements are *recorded*, not raised inline: a row
  // an inner-join edge drops never reaches the target, so chains that only
  // disagree on dropped rows are fine. First conflict per row, by row.
  struct ChainConflict {
    size_t child = 0;
    size_t edge = 0;
    int64_t first_row = 0;
    int64_t second_row = 0;
  };
  std::map<size_t, ChainConflict> conflicts;
  for (size_t c = 1; c < n_sources; ++c) {
    for (size_t e : parent_edges_of[c]) {
      const MetadataEdge& edge = edges[e];
      if (edge.kind == rel::JoinKind::kUnion) continue;
      const size_t parent_rows = tables[edge.parent]->NumRows();
      std::vector<int64_t> parent_to_child(parent_rows, -1);
      for (const auto& [parent_row, child_row] : matchings[e].matched) {
        if (parent_row >= parent_rows ||
            child_row >= tables[edge.child]->NumRows()) {
          return Status::OutOfRange("row match out of range on graph edge ", e);
        }
        if (parent_to_child[parent_row] != -1) {
          return Status::FailedPrecondition(
              "row ", parent_row, " of source ", edge.parent,
              " matches several rows of source ", edge.child,
              "; graph derivation requires functional join matchings");
        }
        parent_to_child[parent_row] = static_cast<int64_t>(child_row);
      }
      // The parent's CI is -1 outside its reachable shards' blocks, so
      // composition only ever visits those blocks — a 50-shard union pays
      // for its own shard, not the whole target.
      const bool inner = edge.kind == rel::JoinKind::kInnerJoin;
      const std::vector<int64_t>& up = ci[edge.parent];
      for (size_t s : shards_reaching[edge.parent]) {
        for (size_t i = shard_offset[s]; i < shard_offset[s + 1]; ++i) {
          const int64_t cand =
              up[i] < 0 ? -1 : parent_to_child[static_cast<size_t>(up[i])];
          if (cand < 0) {
            if (inner) keep[i] = 0;  // this edge's chain dangles: drop
            continue;
          }
          if (ci[c][i] >= 0 && ci[c][i] != cand) {
            conflicts.emplace(i, ChainConflict{c, e, ci[c][i], cand});
            continue;  // keep the first chain's value; judged below
          }
          ci[c][i] = cand;
        }
      }
    }
  }

  // ---- Judge recorded chain conflicts now that the keep mask is final:
  // only a conflict on a row that actually reaches the target violates the
  // conformed contract.
  for (const auto& [row, conflict] : conflicts) {
    if (!keep.empty() && !keep[row]) continue;  // row dropped: harmless
    return Status::FailedPrecondition(
        "target row ", row, ": conformed dimension source ", conflict.child,
        " resolves to row ", conflict.first_row,
        " through one parent chain and row ", conflict.second_row,
        " through graph edge ", conflict.edge,
        "; conformed-dimension chains must agree");
  }

  // ---- Apply the inner restriction: compact rows, offsets and every CI.
  // Graphs without inner edges skip this entirely (bitwise-stable tree
  // fast path).
  if (any_inner) {
    size_t kept = 0;
    std::vector<size_t> new_offsets(shard_offset.size(), 0);
    std::vector<int64_t> new_index(full_rows, -1);
    for (size_t s = 0; s + 1 < shard_offset.size(); ++s) {
      for (size_t i = shard_offset[s]; i < shard_offset[s + 1]; ++i) {
        if (keep[i]) new_index[i] = static_cast<int64_t>(kept++);
      }
      new_offsets[s + 1] = kept;
    }
    if (kept != full_rows) {
      for (size_t k = 0; k < n_sources; ++k) {
        std::vector<int64_t> compacted(kept, -1);
        for (size_t i = 0; i < full_rows; ++i) {
          if (new_index[i] >= 0) {
            compacted[static_cast<size_t>(new_index[i])] = ci[k][i];
          }
        }
        ci[k] = std::move(compacted);
      }
      shard_offset = std::move(new_offsets);
    }
  }
  metadata.target_rows_ = shard_offset.back();
  metadata.source_shard_ = shard_of;
  metadata.source_shards_.reserve(n_sources);
  for (size_t k = 0; k < n_sources; ++k) {
    metadata.source_shards_.emplace_back(shards_reaching[k].begin(),
                                         shards_reaching[k].end());
  }
  metadata.shard_offsets_ = shard_offset;

  AMALUR_RETURN_NOT_OK(FillSources(mapping, tables, ci, &metadata.sources_));
  return metadata;
}

la::DenseMatrix DiMetadata::SourceContribution(size_t k) const {
  const SourceMetadata& s = source(k);
  // I_k (D_k M_kᵀ): expand columns to target layout, then route rows.
  return s.indicator.ExpandRows(s.mapping.ExpandColumns(s.data));
}

la::DenseMatrix DiMetadata::MaterializeTargetMatrix() const {
  la::DenseMatrix target(target_rows_, target_cols_);
  for (size_t k = 0; k < sources_.size(); ++k) {
    la::DenseMatrix contribution = SourceContribution(k);
    sources_[k].redundancy.ApplyInPlace(&contribution);
    target.AddInPlace(contribution);
  }
  return target;
}

double DiMetadata::TupleRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.rows() == 0
             ? 0.0
             : static_cast<double>(target_rows_) /
                   static_cast<double>(s.data.rows());
}

double DiMetadata::FeatureRatio(size_t k) const {
  const SourceMetadata& s = source(k);
  return s.data.cols() == 0
             ? 0.0
             : static_cast<double>(target_cols_) /
                   static_cast<double>(s.data.cols());
}

std::string DiMetadata::ToString() const {
  std::ostringstream out;
  out << "DiMetadata[" << rel::JoinKindToString(kind_) << ", "
      << IntegrationShapeToString(shape_) << ", T " << target_rows_ << "x"
      << target_cols_ << "]\n";
  for (size_t k = 0; k < sources_.size(); ++k) {
    const SourceMetadata& s = sources_[k];
    out << "  " << s.name << ": D " << s.data.rows() << "x" << s.data.cols()
        << ", " << s.mapping.ToString() << ", TR=" << TupleRatio(k)
        << ", FR=" << FeatureRatio(k) << ", null=" << s.null_ratio
        << ", dup=" << s.duplicate_ratio << "\n";
  }
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
