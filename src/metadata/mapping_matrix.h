#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"

/// \file mapping_matrix.h
/// The paper's mapping matrix (Definition III.1) and its compressed form
/// (Definition III.2). `M_k` is a binary cT × cS_k matrix with
/// M_k[i, j] = 1 iff column j of source k maps to target column i. The
/// compressed form `CM_k` is a row vector of size cT with CM_k[i] = j (or -1).
///
/// The class stores only the compressed form; the full sparse `M_k` is
/// materialized on demand. Column indices refer to the *processed* source
/// matrix `D_k`, which holds only the mapped columns (§III.B).

namespace amalur {
namespace metadata {

/// Compressed mapping matrix `CM_k` with gather/scatter kernels.
class CompressedMapping {
 public:
  /// `target_to_source[i]` = D_k column mapped to target column i, or -1.
  /// `source_cols` = number of columns of D_k (cS_k).
  CompressedMapping(std::vector<int64_t> target_to_source, size_t source_cols);

  /// Identity mapping: target column i ← source column i (cS = cT).
  static CompressedMapping Identity(size_t cols);

  size_t target_cols() const { return target_to_source_.size(); }
  size_t source_cols() const { return source_cols_; }

  /// CM_k[i]: the D_k column mapped to target column i, or -1.
  int64_t At(size_t i) const {
    AMALUR_CHECK_LT(i, target_to_source_.size()) << "CM index";
    return target_to_source_[i];
  }
  const std::vector<int64_t>& values() const { return target_to_source_; }

  /// Target columns this source maps (ascending).
  std::vector<size_t> MappedTargetColumns() const;

  /// The full binary mapping matrix `M_k` (cT × cS_k), Definition III.1.
  la::SparseMatrix ToMatrix() const;

  /// `D_k · M_kᵀ` (r × cT): places D_k's columns at their target positions,
  /// zero elsewhere. O(r · cS) — never materializes M_k.
  la::DenseMatrix ExpandColumns(const la::DenseMatrix& dk) const;

  /// `M_kᵀ · X` for X (cT × n): selects the X rows of mapped target columns
  /// into D_k column order (cS × n). The gather at the heart of rewrite (2).
  la::DenseMatrix GatherTargetRows(const la::DenseMatrix& x) const;

  std::string ToString() const;

 private:
  std::vector<int64_t> target_to_source_;
  size_t source_cols_;
};

}  // namespace metadata
}  // namespace amalur
