#include "metadata/redundancy_matrix.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace amalur {
namespace metadata {

RedundancyMask RedundancyMask::AllOnes(size_t target_rows, size_t target_cols) {
  return RedundancyMask(target_cols,
                        std::vector<int32_t>(target_rows, -1), {});
}

RedundancyMask RedundancyMask::Derive(
    size_t k, const std::vector<CompressedIndicator>& indicators,
    const std::vector<CompressedMapping>& mappings) {
  AMALUR_CHECK_EQ(indicators.size(), mappings.size()) << "metadata size mismatch";
  AMALUR_CHECK_LT(k, indicators.size()) << "source index";
  const size_t target_rows = indicators[k].target_rows();
  const size_t target_cols = mappings[k].target_cols();
  if (k == 0) return AllOnes(target_rows, target_cols);

  // This source's mapped target columns, as a membership bitmap.
  std::vector<uint8_t> mine(target_cols, 0);
  for (size_t col : mappings[k].MappedTargetColumns()) mine[col] = 1;

  // Per earlier source: its mapped target columns intersected with ours.
  std::vector<std::vector<size_t>> earlier_overlap(k);
  for (size_t e = 0; e < k; ++e) {
    for (size_t col : mappings[e].MappedTargetColumns()) {
      if (mine[col]) earlier_overlap[e].push_back(col);
    }
  }

  // Per target row: union of overlapping columns over the earlier sources
  // that contribute to the row; interned.
  std::map<std::vector<size_t>, int32_t> intern;
  std::vector<std::vector<size_t>> column_sets;
  std::vector<int32_t> row_set_id(target_rows, -1);
  for (size_t i = 0; i < target_rows; ++i) {
    if (indicators[k].At(i) < 0) continue;  // no contribution -> all ones
    std::set<size_t> covered;
    for (size_t e = 0; e < k; ++e) {
      if (indicators[e].At(i) < 0) continue;
      covered.insert(earlier_overlap[e].begin(), earlier_overlap[e].end());
    }
    if (covered.empty()) continue;
    std::vector<size_t> key(covered.begin(), covered.end());
    auto [it, inserted] =
        intern.try_emplace(key, static_cast<int32_t>(column_sets.size()));
    if (inserted) column_sets.push_back(key);
    row_set_id[i] = it->second;
  }
  return RedundancyMask(target_cols, std::move(row_set_id),
                        std::move(column_sets));
}

bool RedundancyMask::IsRedundant(size_t i, size_t j) const {
  AMALUR_CHECK(i < row_set_id_.size() && j < target_cols_) << "R index";
  const int32_t set_id = row_set_id_[i];
  if (set_id < 0) return false;
  const auto& cols = column_sets_[static_cast<size_t>(set_id)];
  return std::binary_search(cols.begin(), cols.end(), j);
}

bool RedundancyMask::HasRedundancy() const {
  for (int32_t id : row_set_id_) {
    if (id >= 0) return true;
  }
  return false;
}

size_t RedundancyMask::RedundantCellCount() const {
  size_t count = 0;
  for (int32_t id : row_set_id_) {
    if (id >= 0) count += column_sets_[static_cast<size_t>(id)].size();
  }
  return count;
}

la::DenseMatrix RedundancyMask::ToDense() const {
  la::DenseMatrix out = la::DenseMatrix::Constant(target_rows(), target_cols_, 1.0);
  for (size_t i = 0; i < row_set_id_.size(); ++i) {
    if (row_set_id_[i] < 0) continue;
    for (size_t j : column_sets_[static_cast<size_t>(row_set_id_[i])]) {
      out.At(i, j) = 0.0;
    }
  }
  return out;
}

void RedundancyMask::ApplyInPlace(la::DenseMatrix* tk) const {
  AMALUR_CHECK(tk->rows() == target_rows() && tk->cols() == target_cols_)
      << "T_k shape mismatch";
  for (size_t i = 0; i < row_set_id_.size(); ++i) {
    if (row_set_id_[i] < 0) continue;
    for (size_t j : column_sets_[static_cast<size_t>(row_set_id_[i])]) {
      tk->At(i, j) = 0.0;
    }
  }
}

std::string RedundancyMask::ToString() const {
  std::ostringstream out;
  out << "R[" << target_rows() << "x" << target_cols_ << ", "
      << RedundantCellCount() << " redundant cells]";
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
