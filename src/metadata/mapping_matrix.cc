#include "metadata/mapping_matrix.h"

#include <sstream>

namespace amalur {
namespace metadata {

CompressedMapping::CompressedMapping(std::vector<int64_t> target_to_source,
                                     size_t source_cols)
    : target_to_source_(std::move(target_to_source)), source_cols_(source_cols) {
  std::vector<uint8_t> used(source_cols_, 0);
  for (int64_t j : target_to_source_) {
    if (j < 0) continue;
    AMALUR_CHECK_LT(static_cast<size_t>(j), source_cols_)
        << "CM entry out of source range";
    AMALUR_CHECK(!used[static_cast<size_t>(j)])
        << "source column " << j << " mapped to two target columns";
    used[static_cast<size_t>(j)] = 1;
  }
}

CompressedMapping CompressedMapping::Identity(size_t cols) {
  std::vector<int64_t> map(cols);
  for (size_t i = 0; i < cols; ++i) map[i] = static_cast<int64_t>(i);
  return CompressedMapping(std::move(map), cols);
}

std::vector<size_t> CompressedMapping::MappedTargetColumns() const {
  std::vector<size_t> cols;
  for (size_t i = 0; i < target_to_source_.size(); ++i) {
    if (target_to_source_[i] >= 0) cols.push_back(i);
  }
  return cols;
}

la::SparseMatrix CompressedMapping::ToMatrix() const {
  std::vector<la::Triplet> triplets;
  for (size_t i = 0; i < target_to_source_.size(); ++i) {
    if (target_to_source_[i] >= 0) {
      triplets.push_back({i, static_cast<size_t>(target_to_source_[i]), 1.0});
    }
  }
  return la::SparseMatrix::FromTriplets(target_cols(), source_cols_,
                                        std::move(triplets));
}

la::DenseMatrix CompressedMapping::ExpandColumns(const la::DenseMatrix& dk) const {
  AMALUR_CHECK_EQ(dk.cols(), source_cols_) << "D_k column count mismatch";
  la::DenseMatrix out(dk.rows(), target_cols());
  for (size_t i = 0; i < target_cols(); ++i) {
    const int64_t j = target_to_source_[i];
    if (j < 0) continue;
    for (size_t r = 0; r < dk.rows(); ++r) {
      out.At(r, i) = dk.At(r, static_cast<size_t>(j));
    }
  }
  return out;
}

la::DenseMatrix CompressedMapping::GatherTargetRows(
    const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), target_cols()) << "X row count must be cT";
  la::DenseMatrix out(source_cols_, x.cols());
  for (size_t i = 0; i < target_cols(); ++i) {
    const int64_t j = target_to_source_[i];
    if (j < 0) continue;
    for (size_t c = 0; c < x.cols(); ++c) {
      out.At(static_cast<size_t>(j), c) = x.At(i, c);
    }
  }
  return out;
}

std::string CompressedMapping::ToString() const {
  std::ostringstream out;
  out << "CM[";
  for (size_t i = 0; i < target_to_source_.size(); ++i) {
    if (i > 0) out << ", ";
    out << target_to_source_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
