#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "metadata/indicator_matrix.h"
#include "metadata/mapping_matrix.h"

/// \file redundancy_matrix.h
/// The paper's redundancy matrix (Definition III.4): a binary rT × cT matrix
/// `R_k` with R_k[i, j] = 0 iff T_k[i, j] = (I_k D_k M_kᵀ)[i, j] is redundant
/// — i.e. an earlier source (the base table chain) already contributes the
/// target cell (i, j) *and* source k contributes it too. The base table's R
/// is all ones.
///
/// The matrix is never stored densely: per target row we keep an id into a
/// small interned family of "masked target column" sets (the overlap between
/// this source's mapped columns and the union of earlier covering sources).
/// The factorized rewrites group rows by this id to apply the Hadamard step
/// without materializing T_k.

namespace amalur {
namespace metadata {

/// Compressed redundancy matrix `R_k`.
class RedundancyMask {
 public:
  /// All-ones mask (the base table's R).
  static RedundancyMask AllOnes(size_t target_rows, size_t target_cols);

  /// Derives R_k for source `k` given all sources' indicators and mappings
  /// (earlier sources = indices < k form the non-redundant chain).
  static RedundancyMask Derive(size_t k,
                               const std::vector<CompressedIndicator>& indicators,
                               const std::vector<CompressedMapping>& mappings);

  size_t target_rows() const { return row_set_id_.size(); }
  size_t target_cols() const { return target_cols_; }

  /// True iff R_k[i, j] == 0.
  bool IsRedundant(size_t i, size_t j) const;

  /// Whether any cell of the mask is 0.
  bool HasRedundancy() const;

  /// Number of zero cells (redundant target cells).
  size_t RedundantCellCount() const;

  /// Id of the masked-column set of target row i, or -1 when row i is all
  /// ones (nothing redundant in it).
  int32_t row_set(size_t i) const {
    AMALUR_CHECK_LT(i, row_set_id_.size()) << "row index";
    return row_set_id_[i];
  }

  /// The interned masked-column sets (sorted target column indices). A row
  /// with `row_set(i) == s` has zeros exactly at `column_sets()[s]`.
  const std::vector<std::vector<size_t>>& column_sets() const {
    return column_sets_;
  }

  /// The full dense `R_k` per Definition III.4 (tests / small inputs only).
  la::DenseMatrix ToDense() const;

  /// The Hadamard product T_k ∘ R_k, in place (`tk` is rT × cT).
  void ApplyInPlace(la::DenseMatrix* tk) const;

  std::string ToString() const;

 private:
  RedundancyMask(size_t target_cols, std::vector<int32_t> row_set_id,
                 std::vector<std::vector<size_t>> column_sets)
      : target_cols_(target_cols),
        row_set_id_(std::move(row_set_id)),
        column_sets_(std::move(column_sets)) {}

  size_t target_cols_ = 0;
  /// Per target row: index into column_sets_, or -1 for an all-ones row.
  std::vector<int32_t> row_set_id_;
  /// Interned masked-column sets (sorted target column indices, non-empty).
  std::vector<std::vector<size_t>> column_sets_;
};

}  // namespace metadata
}  // namespace amalur
