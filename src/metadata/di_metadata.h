#ifndef AMALUR_METADATA_DI_METADATA_H_
#define AMALUR_METADATA_DI_METADATA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "integration/schema_mapping.h"
#include "metadata/indicator_matrix.h"
#include "metadata/mapping_matrix.h"
#include "metadata/redundancy_matrix.h"
#include "relational/join.h"
#include "relational/table.h"

/// \file di_metadata.h
/// The "tale of three matrices" (§III): for one integration scenario, the
/// per-source processed data matrix `D_k`, compressed mapping `CM_k`,
/// compressed indicator `CI_k` and redundancy mask `R_k`, derived from a
/// schema mapping and a row matching (entity-resolution output).
///
/// Target row ordering follows Figure 4: matched rows first (in match order),
/// then base-only rows, then other-only rows (when the dataset relationship
/// keeps them). This is also the ordering the relational materializer emits,
/// so matrix-level and table-level materialization agree row by row.

namespace amalur {
namespace metadata {

/// Everything the factorized runtime needs to know about one source.
struct SourceMetadata {
  std::string name;
  /// D_k: the source's mapped numeric columns (NULL -> 0), rS_k × cS_k.
  la::DenseMatrix data;
  /// Column names of D_k, in order.
  std::vector<std::string> column_names;
  CompressedMapping mapping;
  CompressedIndicator indicator;
  RedundancyMask redundancy;
  /// NULL fraction over the mapped columns (cost-model feature).
  double null_ratio = 0.0;
  /// Within-source exact-duplicate fraction over mapped columns
  /// (cost-model feature: "redundancy in source tables").
  double duplicate_ratio = 0.0;
};

/// Derived DI metadata for a full integration scenario.
class DiMetadata {
 public:
  /// Empty metadata (no sources); fill via `Derive`.
  DiMetadata() = default;

  /// Derives metadata for a two-source scenario. `matching` is the row
  /// matching between `tables[0]` (base) and `tables[1]` — from entity
  /// resolution or key equality. For `kUnion` the matching is ignored.
  static Result<DiMetadata> Derive(const integration::SchemaMapping& mapping,
                                   const std::vector<const rel::Table*>& tables,
                                   const rel::RowMatching& matching);

  /// Derives metadata for an n-source *star* scenario (left joins from one
  /// base/fact table to n−1 dimension tables — the generalization of
  /// Table I's definitions the factorized-learning literature targets).
  /// `tables[0]` is the base; `matchings[k-1]` relates base rows to
  /// `tables[k]` rows and must be functional (each base row matches at most
  /// one row per dimension; dimension rows may serve many base rows).
  /// Target rows are the base rows in order.
  static Result<DiMetadata> DeriveStar(
      const integration::SchemaMapping& mapping,
      const std::vector<const rel::Table*>& tables,
      const std::vector<rel::RowMatching>& matchings);

  size_t num_sources() const { return sources_.size(); }
  const SourceMetadata& source(size_t k) const {
    AMALUR_CHECK_LT(k, sources_.size()) << "source index";
    return sources_[k];
  }
  size_t target_rows() const { return target_rows_; }
  size_t target_cols() const { return target_cols_; }
  const rel::Schema& target_schema() const { return target_schema_; }
  rel::JoinKind kind() const { return kind_; }

  /// T_k = I_k D_k M_kᵀ — the source's (unmasked) contribution (Figure 4c).
  la::DenseMatrix SourceContribution(size_t k) const;

  /// T = Σ_k (T_k ∘ R_k): the materialized target in matrix form, absent
  /// cells as 0 (the paper's convention).
  la::DenseMatrix MaterializeTargetMatrix() const;

  /// Tuple ratio rT / rS_k and feature ratio cT / cS_k of source k — the
  /// Morpheus heuristic features (§IV.B).
  double TupleRatio(size_t k) const;
  double FeatureRatio(size_t k) const;

  std::string ToString() const;

 private:
  std::vector<SourceMetadata> sources_;
  size_t target_rows_ = 0;
  size_t target_cols_ = 0;
  rel::Schema target_schema_;
  rel::JoinKind kind_ = rel::JoinKind::kInnerJoin;
};

}  // namespace metadata
}  // namespace amalur

#endif  // AMALUR_METADATA_DI_METADATA_H_
