#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "integration/schema_mapping.h"
#include "metadata/indicator_matrix.h"
#include "metadata/mapping_matrix.h"
#include "metadata/redundancy_matrix.h"
#include "relational/join.h"
#include "relational/table.h"

/// \file di_metadata.h
/// The "tale of three matrices" (§III): for one integration scenario, the
/// per-source processed data matrix `D_k`, compressed mapping `CM_k`,
/// compressed indicator `CI_k` and redundancy mask `R_k`, derived from a
/// schema mapping and a row matching (entity-resolution output).
///
/// Target row ordering follows Figure 4: matched rows first (in match order),
/// then base-only rows, then other-only rows (when the dataset relationship
/// keeps them). This is also the ordering the relational materializer emits,
/// so matrix-level and table-level materialization agree row by row.

namespace amalur {
namespace metadata {

/// Structural shape of an integration scenario's source graph. Pairwise is
/// the two-source form of §III; star/snowflake/union-of-stars are the n-ary
/// generalizations the edge-list `IntegrationSpec` describes: a star joins
/// one fact table to depth-1 dimensions, a snowflake chains dimensions of
/// dimensions, and a union-of-stars stacks horizontally partitioned fact
/// shards (each with its own dimension subtree) into one target. A
/// *conformed snowflake* is a snowflake whose join edges form a DAG rather
/// than a tree: at least one dimension (a warehouse "conformed dimension" —
/// think one `date` or `customer` table) is referenced by several parents,
/// yet appears exactly once in the target schema. Union-of-stars graphs may
/// also share a dimension between shards; they keep the union-of-stars
/// shape and report the shared count via `num_shared_dimensions()`.
enum class IntegrationShape : int8_t {
  kPairwise = 0,
  kStar = 1,
  kSnowflake = 2,
  kUnionOfStars = 3,
  kConformedSnowflake = 4,
};

const char* IntegrationShapeToString(IntegrationShape shape);

/// One edge of an integration graph over the `tables` of `DeriveGraph`,
/// by source index. `kLeftJoin` edges join a retained parent to a child
/// dimension; `kInnerJoin` edges do the same but additionally *restrict*
/// the target row set to rows where the child is present; `kUnion` edges
/// stack a sibling fact shard under the root. Several join edges may share
/// one child — a conformed dimension.
struct MetadataEdge {
  size_t parent = 0;
  size_t child = 0;
  rel::JoinKind kind = rel::JoinKind::kLeftJoin;
};

/// Everything the factorized runtime needs to know about one source.
struct SourceMetadata {
  std::string name;
  /// D_k: the source's mapped numeric columns (NULL -> 0), rS_k × cS_k.
  la::DenseMatrix data;
  /// Column names of D_k, in order.
  std::vector<std::string> column_names;
  CompressedMapping mapping;
  CompressedIndicator indicator;
  RedundancyMask redundancy;
  /// NULL fraction over the mapped columns (cost-model feature).
  double null_ratio = 0.0;
  /// Within-source exact-duplicate fraction over mapped columns
  /// (cost-model feature: "redundancy in source tables").
  double duplicate_ratio = 0.0;
};

/// Derived DI metadata for a full integration scenario.
class DiMetadata {
 public:
  /// Empty metadata (no sources); fill via `Derive`.
  DiMetadata() = default;

  /// Derives metadata for a two-source scenario. `matching` is the row
  /// matching between `tables[0]` (base) and `tables[1]` — from entity
  /// resolution or key equality. For `kUnion` the matching is ignored.
  static Result<DiMetadata> Derive(const integration::SchemaMapping& mapping,
                                   const std::vector<const rel::Table*>& tables,
                                   const rel::RowMatching& matching);

  /// Derives metadata for an n-source *star* scenario (left joins from one
  /// base/fact table to n−1 dimension tables — the generalization of
  /// Table I's definitions the factorized-learning literature targets).
  /// `tables[0]` is the base; `matchings[k-1]` relates base rows to
  /// `tables[k]` rows and must be functional (each base row matches at most
  /// one row per dimension; dimension rows may serve many base rows).
  /// Target rows are the base rows in order.
  static Result<DiMetadata> DeriveStar(
      const integration::SchemaMapping& mapping,
      const std::vector<const rel::Table*>& tables,
      const std::vector<rel::RowMatching>& matchings);

  /// Derives metadata for a general integration *graph*: a DAG of sources
  /// rooted at `tables[0]` whose edges are joins (parent retained, child
  /// dimension; `kLeftJoin` keeps unmatched parent rows, `kInnerJoin` drops
  /// them) or unions (sibling fact shards). Generalizes `DeriveStar` — a
  /// pure depth-1 left-join tree produces bitwise-identical metadata — with
  /// these derivations:
  ///
  ///  * **Snowflake** (dimension-of-dimension chains): a sub-dimension's
  ///    indicator is the *composition* of the matchings along its chain —
  ///    CI_sub[i] = m_dim→sub[ CI_dim[i] ] — so the factorized runtime sees
  ///    one fan-out per silo, however deep the chain.
  ///  * **Conformed dimensions** (a dimension with several join-edge
  ///    parents): each parent chain composes independently and the results
  ///    merge into ONE indicator — the dimension's columns appear once in
  ///    the target schema and its redundancy is counted once. Chains that
  ///    resolve a target row to *different* dimension rows contradict the
  ///    conformed contract and fail with `kFailedPrecondition`.
  ///  * **Inner-join edges**: every target row of a shard that references
  ///    the edge's parent but where *that edge's own* composed chain does
  ///    not resolve the child is dropped from the target — the relational
  ///    inner join's row restriction, applied through the metadata. The
  ///    check is per edge: a conformed dimension resolved through a
  ///    different parent's chain does not rescue a row whose inner-edge
  ///    reference dangles.
  ///  * **Union-of-stars** (`kUnion` edges between fact shards): target rows
  ///    are the shard blocks stacked in source order; each shard's sources
  ///    get block-local indicators (-1 outside their shard), which makes
  ///    cross-shard redundancy vanish structurally. A dimension may be
  ///    shared between shards (its indicator is then defined in several
  ///    blocks).
  ///
  /// Requirements: every edge satisfies `parent < child` (sources in
  /// topological order, root first), every non-root source has >= 1 parent
  /// edge, fact shards (the root, union-edge children) have at most one,
  /// `matchings[e]` relates `tables[edges[e].parent]` rows to
  /// `tables[edges[e].child]` rows and must be functional for join edges
  /// and empty for union edges, and `mapping.kind()` is `kUnion` when any
  /// union edge exists, `kLeftJoin` otherwise.
  static Result<DiMetadata> DeriveGraph(
      const integration::SchemaMapping& mapping,
      const std::vector<const rel::Table*>& tables,
      const std::vector<MetadataEdge>& edges,
      const std::vector<rel::RowMatching>& matchings);

  size_t num_sources() const { return sources_.size(); }
  const SourceMetadata& source(size_t k) const {
    AMALUR_CHECK_LT(k, sources_.size()) << "source index";
    return sources_[k];
  }
  size_t target_rows() const { return target_rows_; }
  size_t target_cols() const { return target_cols_; }
  const rel::Schema& target_schema() const { return target_schema_; }
  rel::JoinKind kind() const { return kind_; }
  /// Structural shape of the scenario's source graph (cost-model input and
  /// `Explain` payload).
  IntegrationShape shape() const { return shape_; }
  /// Number of horizontally stacked fact shards (1 unless union-of-stars).
  size_t num_shards() const { return num_shards_; }
  /// Shards with a non-empty target-row block — the ones that can actually
  /// participate in per-shard execution (an empty fact silo, or a shard
  /// fully dropped by an inner-join edge, contributes no rows). The single
  /// source of truth behind `AlignForHfl`'s participant set and the
  /// optimizer's FedAvg explanation.
  size_t num_active_shards() const {
    size_t active = 0;
    for (size_t s = 0; s + 1 < shard_offsets_.size(); ++s) {
      if (shard_offsets_[s] < shard_offsets_[s + 1]) ++active;
    }
    return active;
  }
  /// Longest key-join chain from a fact to a leaf dimension (1 for stars
  /// and pairwise joins, >= 2 for snowflakes, 0 for pure unions).
  size_t join_depth() const { return join_depth_; }
  /// Number of conformed (shared) dimensions: sources referenced by several
  /// join-edge parents (0 for trees).
  size_t num_shared_dimensions() const { return num_shared_dimensions_; }

  /// Whether the scenario is horizontally partitioned (a pairwise union or
  /// a union-of-stars). The single source of truth for the federated
  /// protocol choice: horizontal scenarios split by fact shard (FedAvg),
  /// vertical ones by silo (n-ary vertical FLR) — optimizer explanations
  /// and executor dispatch must agree through this predicate.
  bool IsHorizontallyPartitioned() const {
    return shape_ == IntegrationShape::kUnionOfStars ||
           kind_ == rel::JoinKind::kUnion;
  }

  /// Shard source k belongs to (a shard = one fact plus its dimension
  /// subtree; always 0 for join-only scenarios). A conformed dimension
  /// referenced from several shards reports the *first* referencing shard;
  /// consumers that assemble per-shard data (e.g. `AlignForHfl`) must scan
  /// each shard's row block through the indicator instead of trusting this
  /// single id. The horizontal federated runtime groups silos into FedAvg
  /// participants with this.
  size_t shard_of(size_t k) const {
    AMALUR_CHECK_LT(k, source_shard_.size()) << "source index";
    return source_shard_[k];
  }
  /// Every shard whose row block source k's indicator can reach, ascending.
  /// `{shard_of(k)}` for all tree-shaped graphs; a conformed dimension
  /// referenced from several shards lists each. Consumers assembling
  /// per-shard data iterate exactly these blocks (CI_k is -1 everywhere
  /// else).
  const std::vector<size_t>& shards_reaching(size_t k) const {
    AMALUR_CHECK_LT(k, source_shards_.size()) << "source index";
    return source_shards_[k];
  }
  /// Target-row block of shard s: rows [ShardRowBegin(s), ShardRowEnd(s)).
  /// Shard blocks are contiguous and stacked in shard order.
  size_t ShardRowBegin(size_t s) const {
    AMALUR_CHECK_LT(s + 1, shard_offsets_.size()) << "shard index";
    return shard_offsets_[s];
  }
  size_t ShardRowEnd(size_t s) const {
    AMALUR_CHECK_LT(s + 1, shard_offsets_.size()) << "shard index";
    return shard_offsets_[s + 1];
  }

  /// T_k = I_k D_k M_kᵀ — the source's (unmasked) contribution (Figure 4c).
  la::DenseMatrix SourceContribution(size_t k) const;

  /// T = Σ_k (T_k ∘ R_k): the materialized target in matrix form, absent
  /// cells as 0 (the paper's convention).
  la::DenseMatrix MaterializeTargetMatrix() const;

  /// Tuple ratio rT / rS_k and feature ratio cT / cS_k of source k — the
  /// Morpheus heuristic features (§IV.B).
  double TupleRatio(size_t k) const;
  double FeatureRatio(size_t k) const;

  std::string ToString() const;

 private:
  std::vector<SourceMetadata> sources_;
  size_t target_rows_ = 0;
  size_t target_cols_ = 0;
  rel::Schema target_schema_;
  rel::JoinKind kind_ = rel::JoinKind::kInnerJoin;
  IntegrationShape shape_ = IntegrationShape::kPairwise;
  size_t num_shards_ = 1;
  size_t join_depth_ = 1;
  size_t num_shared_dimensions_ = 0;
  /// Per-source shard id (parallel to `sources_`).
  std::vector<size_t> source_shard_;
  /// Per-source reachable shards, ascending (parallel to `sources_`;
  /// singleton except for cross-shard conformed dimensions).
  std::vector<std::vector<size_t>> source_shards_;
  /// Shard target-row block boundaries (size num_shards_ + 1).
  std::vector<size_t> shard_offsets_;
};

}  // namespace metadata
}  // namespace amalur
