#include "metadata/indicator_matrix.h"

#include <sstream>

namespace amalur {
namespace metadata {

CompressedIndicator::CompressedIndicator(std::vector<int64_t> target_to_source,
                                         size_t source_rows)
    : target_to_source_(std::move(target_to_source)), source_rows_(source_rows) {
  for (int64_t j : target_to_source_) {
    AMALUR_CHECK(j >= -1 && j < static_cast<int64_t>(source_rows_))
        << "CI entry " << j << " out of range";
  }
}

CompressedIndicator CompressedIndicator::Identity(size_t rows) {
  std::vector<int64_t> map(rows);
  for (size_t i = 0; i < rows; ++i) map[i] = static_cast<int64_t>(i);
  return CompressedIndicator(std::move(map), rows);
}

size_t CompressedIndicator::ContributedRows() const {
  size_t count = 0;
  for (int64_t j : target_to_source_) count += (j >= 0);
  return count;
}

la::SparseMatrix CompressedIndicator::ToMatrix() const {
  std::vector<la::Triplet> triplets;
  for (size_t i = 0; i < target_to_source_.size(); ++i) {
    if (target_to_source_[i] >= 0) {
      triplets.push_back({i, static_cast<size_t>(target_to_source_[i]), 1.0});
    }
  }
  return la::SparseMatrix::FromTriplets(target_rows(), source_rows_,
                                        std::move(triplets));
}

la::DenseMatrix CompressedIndicator::ExpandRows(const la::DenseMatrix& y) const {
  AMALUR_CHECK_EQ(y.rows(), source_rows_) << "Y row count must be rS";
  la::DenseMatrix out(target_rows(), y.cols());
  for (size_t i = 0; i < target_rows(); ++i) {
    const int64_t j = target_to_source_[i];
    if (j < 0) continue;
    const double* src = y.RowPtr(static_cast<size_t>(j));
    double* dst = out.RowPtr(i);
    for (size_t c = 0; c < y.cols(); ++c) dst[c] = src[c];
  }
  return out;
}

la::DenseMatrix CompressedIndicator::ReduceRows(const la::DenseMatrix& x) const {
  AMALUR_CHECK_EQ(x.rows(), target_rows()) << "X row count must be rT";
  la::DenseMatrix out(source_rows_, x.cols());
  for (size_t i = 0; i < target_rows(); ++i) {
    const int64_t j = target_to_source_[i];
    if (j < 0) continue;
    const double* src = x.RowPtr(i);
    double* dst = out.RowPtr(static_cast<size_t>(j));
    for (size_t c = 0; c < x.cols(); ++c) dst[c] += src[c];
  }
  return out;
}

std::string CompressedIndicator::ToString() const {
  std::ostringstream out;
  out << "CI[";
  for (size_t i = 0; i < target_to_source_.size(); ++i) {
    if (i > 0) out << ", ";
    out << target_to_source_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace metadata
}  // namespace amalur
