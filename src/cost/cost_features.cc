#include "cost/cost_features.h"

#include <map>
#include <set>
#include <sstream>

namespace amalur {
namespace cost {

const char* StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kFactorize:
      return "factorize";
    case Strategy::kMaterialize:
      return "materialize";
  }
  return "?";
}

CostFeatures CostFeatures::FromMetadata(const metadata::DiMetadata& metadata) {
  CostFeatures features;
  features.kind = metadata.kind();
  features.shape = metadata.shape();
  features.num_shards = metadata.num_shards();
  features.join_depth = metadata.join_depth();
  features.shared_dimensions = metadata.num_shared_dimensions();
  features.target_rows = metadata.target_rows();
  features.target_cols = metadata.target_cols();
  for (size_t k = 0; k < metadata.num_sources(); ++k) {
    const metadata::SourceMetadata& s = metadata.source(k);
    SourceFeatures sf;
    sf.rows = s.data.rows();
    sf.cols = s.data.cols();
    sf.contributed_rows = s.indicator.ContributedRows();
    sf.redundant_cells = s.redundancy.RedundantCellCount();
    sf.null_ratio = s.null_ratio;
    sf.duplicate_ratio = s.duplicate_ratio;
    // Replay the factorized planner's class construction to count the
    // fan-out-deduplicated compute cells.
    const size_t mapped_cols = s.mapping.MappedTargetColumns().size();
    std::map<int32_t, std::set<size_t>> unique_rows_per_class;
    for (size_t i = 0; i < metadata.target_rows(); ++i) {
      const int64_t row = s.indicator.At(i);
      if (row < 0) continue;
      unique_rows_per_class[s.redundancy.row_set(i)].insert(
          static_cast<size_t>(row));
    }
    for (const auto& [set_id, unique_rows] : unique_rows_per_class) {
      const size_t masked =
          set_id < 0
              ? 0
              : s.redundancy.column_sets()[static_cast<size_t>(set_id)].size();
      sf.compute_cells += unique_rows.size() * (mapped_cols - masked);
    }
    features.sources.push_back(sf);
  }
  // Full tgds: the joint tgd of an inner join is full; union tgds are full
  // when each source maps every target column. Left/full-outer have
  // existential variables by construction.
  switch (metadata.kind()) {
    case rel::JoinKind::kInnerJoin:
      features.all_tgds_full = true;
      break;
    case rel::JoinKind::kUnion: {
      features.all_tgds_full = true;
      for (size_t k = 0; k < metadata.num_sources(); ++k) {
        const size_t mapped =
            metadata.source(k).mapping.MappedTargetColumns().size();
        features.all_tgds_full &= mapped == metadata.target_cols();
      }
      break;
    }
    case rel::JoinKind::kLeftJoin:
    case rel::JoinKind::kFullOuterJoin:
      features.all_tgds_full = false;
      break;
  }
  return features;
}

double CostFeatures::TupleRatio(size_t k) const {
  AMALUR_CHECK_LT(k, sources.size()) << "source index";
  return sources[k].rows == 0 ? 0.0
                              : static_cast<double>(target_rows) /
                                    static_cast<double>(sources[k].rows);
}

double CostFeatures::FeatureRatio(size_t k) const {
  AMALUR_CHECK_LT(k, sources.size()) << "source index";
  if (sources.empty() || sources[0].cols == 0) return 0.0;
  return static_cast<double>(sources[k].cols) /
         static_cast<double>(sources[0].cols);
}

size_t CostFeatures::TotalSourceCells() const {
  size_t total = 0;
  for (const SourceFeatures& s : sources) total += s.rows * s.cols;
  return total;
}

std::string CostFeatures::ToString() const {
  std::ostringstream out;
  out << "CostFeatures[" << rel::JoinKindToString(kind) << ", "
      << metadata::IntegrationShapeToString(shape) << ", shards=" << num_shards
      << ", depth=" << join_depth << ", shared_dims=" << shared_dimensions
      << ", T " << target_rows << "x" << target_cols
      << ", full_tgds=" << (all_tgds_full ? "yes" : "no");
  for (size_t k = 0; k < sources.size(); ++k) {
    const SourceFeatures& s = sources[k];
    out << "; S" << k + 1 << " " << s.rows << "x" << s.cols << " contrib="
        << s.contributed_rows << " redundant=" << s.redundant_cells
        << " null=" << s.null_ratio << " dup=" << s.duplicate_ratio;
  }
  out << "]";
  return out.str();
}

}  // namespace cost
}  // namespace amalur
