#include "cost/calibrator.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/status.h"
#include "cost/json_lite.h"

namespace amalur {
namespace cost {

namespace {

using json_lite::FindNumber;
using json_lite::FindString;
using json_lite::FormatDouble;

/// Unknown count of the linear system: (flop, flop·fact_cell, mat_cell,
/// row_overhead).
constexpr size_t kUnknowns = 4;

/// Pivot threshold on the column-scaled normal matrix. Scaled pivots of a
/// well-posed fit sit near 1; duplicated or insufficiently varied
/// observations collapse them to rounding noise (~1e-16), so anything this
/// small is rank deficiency, not conditioning jitter.
constexpr double kPivotEpsilon = 1e-9;

/// An observation is usable when every regressor and both measurements are
/// strictly meaningful: a zero or negative wall-clock cannot be weighted
/// (and indicates a broken measurement), a zero iteration count prices
/// nothing.
bool Usable(const Observation& o) {
  return o.training_iterations > 0 && o.rhs_cols > 0 && o.target_cells > 0 &&
         o.compute_cells >= 0 && o.expansion_rows >= 0 &&
         o.factorized_seconds > 0 && o.materialized_seconds > 0;
}

}  // namespace

Result<AmalurCostModelOptions> Calibrator::Fit(
    const std::vector<Observation>& observations) const {
  std::vector<const Observation*> usable;
  for (const Observation& o : observations) {
    if (Usable(o)) usable.push_back(&o);
  }
  if (usable.size() < 2) {
    return Status::InvalidArgument(
        "calibration needs >= 2 usable observations (4 unknowns, 2 equations "
        "each); got ", usable.size(), " of ", observations.size());
  }

  // Accumulate the weighted normal equations N x = b directly (2 equations
  // per observation, weight 1/seconds so the fit minimizes relative error
  // and every scenario counts equally regardless of its absolute runtime).
  double normal[kUnknowns][kUnknowns] = {};
  double rhs[kUnknowns] = {};
  const auto add_equation = [&](const double (&row)[kUnknowns], double y) {
    const double w = 1.0 / (y * y);
    for (size_t i = 0; i < kUnknowns; ++i) {
      for (size_t j = 0; j < kUnknowns; ++j) {
        normal[i][j] += w * row[i] * row[j];
      }
      rhs[i] += w * row[i] * y;
    }
  };
  for (const Observation* o : usable) {
    const double i = o->training_iterations;
    const double r = o->rhs_cols;
    const double factorized_row[kUnknowns] = {
        2.0 * i * r * o->expansion_rows,  // flop (indicator expand/reduce)
        2.0 * i * r * o->compute_cells,   // flop·fact_cell (pushed-down MMs)
        0.0,                              // mat_cell
        i * o->expansion_rows,            // row_overhead
    };
    add_equation(factorized_row, o->factorized_seconds);
    const double materialized_row[kUnknowns] = {
        2.0 * i * r * o->target_cells,  // flop (dense GEMM per iteration)
        0.0,                            // flop·fact_cell
        o->target_cells,                // mat_cell (one-time join + export)
        0.0,                            // row_overhead
    };
    add_equation(materialized_row, o->materialized_seconds);
  }

  // Column-scale to a correlation-like matrix so the pivot test is
  // dimensionless (raw columns differ by many orders of magnitude).
  double scale[kUnknowns];
  for (size_t j = 0; j < kUnknowns; ++j) {
    scale[j] = std::sqrt(normal[j][j]);
    if (!(scale[j] > 0.0)) {
      return Status::FailedPrecondition(
          "rank-deficient calibration: regressor column ", j,
          " is identically zero across the log (observations do not exercise "
          "this constant)");
    }
  }
  double m[kUnknowns][kUnknowns];
  double v[kUnknowns];
  for (size_t i = 0; i < kUnknowns; ++i) {
    for (size_t j = 0; j < kUnknowns; ++j) {
      m[i][j] = normal[i][j] / (scale[i] * scale[j]);
    }
    v[i] = rhs[i] / scale[i];
  }

  // Gaussian elimination with partial pivoting on the 4x4 scaled system.
  size_t order[kUnknowns] = {0, 1, 2, 3};
  for (size_t col = 0; col < kUnknowns; ++col) {
    size_t best = col;
    for (size_t row = col + 1; row < kUnknowns; ++row) {
      if (std::fabs(m[order[row]][col]) > std::fabs(m[order[best]][col])) {
        best = row;
      }
    }
    std::swap(order[col], order[best]);
    const double pivot = m[order[col]][col];
    if (std::fabs(pivot) < kPivotEpsilon) {
      return Status::FailedPrecondition(
          "rank-deficient calibration: the log's observations do not vary "
          "enough to separate the four constants (scaled pivot ",
          std::fabs(pivot), " < ", kPivotEpsilon,
          "); vary scenario sizes/shapes or iterations and re-measure");
    }
    for (size_t row = col + 1; row < kUnknowns; ++row) {
      const double factor = m[order[row]][col] / pivot;
      for (size_t j = col; j < kUnknowns; ++j) {
        m[order[row]][j] -= factor * m[order[col]][j];
      }
      v[order[row]] -= factor * v[order[col]];
    }
  }
  double z[kUnknowns];
  for (size_t col = kUnknowns; col-- > 0;) {
    double sum = v[order[col]];
    for (size_t j = col + 1; j < kUnknowns; ++j) {
      sum -= m[order[col]][j] * z[j];
    }
    z[col] = sum / m[order[col]][col];
  }
  const double flop = z[0] / scale[0];
  const double flop_times_fact_cell = z[1] / scale[1];
  const double mat_cell = z[2] / scale[2];
  double row_overhead = z[3] / scale[3];

  if (!(flop > 0.0) || !(flop_times_fact_cell > 0.0) || !(mat_cell > 0.0)) {
    return Status::FailedPrecondition(
        "degenerate calibration: fitted a non-positive constant (flop=", flop,
        ", flop*fact_cell=", flop_times_fact_cell, ", mat_cell=", mat_cell,
        "); the linear work model cannot explain these measurements");
  }
  // The per-row overhead behaves like an intercept: measurement noise can
  // push its estimate slightly below zero without invalidating the fit.
  if (row_overhead < 0.0) row_overhead = 0.0;

  AmalurCostModelOptions fitted = defaults_;
  fitted.flop_cost = flop;
  fitted.factorized_cell_cost = flop_times_fact_cell / flop;
  fitted.materialize_cell_cost = mat_cell;
  fitted.factorized_row_overhead = row_overhead;
  fitted.calibrated = true;
  std::ostringstream source;
  source << "least-squares fit over " << usable.size() << " observations";
  fitted.constants_source = source.str();
  return fitted;
}

Calibration Calibrator::CalibrateFromLog(const std::string& log_path) const {
  Calibration calibration;
  calibration.options = defaults_;
  Result<ObservationLogContents> contents = ObservationLog::Read(log_path);
  if (!contents.ok()) {
    calibration.source =
        "analytic defaults (" + contents.status().ToString() + ")";
    calibration.options.constants_source = calibration.source;
    return calibration;
  }
  calibration.observations_skipped = contents->skipped_lines;
  Result<AmalurCostModelOptions> fitted = Fit(contents->observations);
  if (!fitted.ok()) {
    calibration.source =
        "analytic defaults (" + fitted.status().ToString() + ")";
    calibration.options.constants_source = calibration.source;
    return calibration;
  }
  calibration.options = *fitted;
  calibration.calibrated = true;
  calibration.observations_used = contents->observations.size();
  std::ostringstream source;
  source << "fitted from " << calibration.observations_used
         << " observations in '" << log_path << "'";
  if (calibration.observations_skipped > 0) {
    source << " (" << calibration.observations_skipped
           << " corrupt lines skipped)";
  }
  calibration.source = source.str();
  calibration.options.constants_source = calibration.source;
  return calibration;
}

Status WriteCalibrationFile(const std::string& path,
                            const Calibration& calibration) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot write calibration file '", path, "'");
  }
  out << "{\"flop_cost\": " << FormatDouble(calibration.options.flop_cost)
      << ", \"factorized_cell_cost\": "
      << FormatDouble(calibration.options.factorized_cell_cost)
      << ", \"materialize_cell_cost\": "
      << FormatDouble(calibration.options.materialize_cell_cost)
      << ", \"factorized_row_overhead\": "
      << FormatDouble(calibration.options.factorized_row_overhead)
      << ", \"observations_used\": " << calibration.observations_used
      << ", \"source\": \"" << calibration.source << "\"}\n";
  out.flush();
  if (!out.good()) {
    return Status::IOError("short write to calibration file '", path, "'");
  }
  return Status::OK();
}

Result<Calibration> LoadCalibrationFile(const std::string& path,
                                        const AmalurCostModelOptions& defaults) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("calibration file '", path, "' does not exist");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Calibration calibration;
  calibration.options = defaults;
  struct Field {
    const char* key;
    double* slot;
  };
  const Field fields[] = {
      {"flop_cost", &calibration.options.flop_cost},
      {"factorized_cell_cost", &calibration.options.factorized_cell_cost},
      {"materialize_cell_cost", &calibration.options.materialize_cell_cost},
      {"factorized_row_overhead",
       &calibration.options.factorized_row_overhead},
  };
  for (const Field& field : fields) {
    if (!FindNumber(text, field.key, field.slot)) {
      return Status::InvalidArgument("calibration file '", path,
                                     "': missing or non-finite '", field.key,
                                     "'");
    }
  }
  if (calibration.options.flop_cost <= 0 ||
      calibration.options.factorized_cell_cost <= 0 ||
      calibration.options.materialize_cell_cost <= 0 ||
      calibration.options.factorized_row_overhead < 0) {
    return Status::InvalidArgument(
        "calibration file '", path,
        "': constants must be positive (row overhead >= 0)");
  }
  double used = 0.0;
  if (FindNumber(text, "observations_used", &used) && used >= 0) {
    calibration.observations_used = static_cast<size_t>(used);
  }
  std::string file_source;
  if (FindString(text, "source", &file_source) && !file_source.empty()) {
    calibration.source = file_source;
  } else {
    calibration.source = "calibration file '" + path + "'";
  }
  calibration.calibrated = true;
  calibration.options.calibrated = true;
  calibration.options.constants_source = calibration.source;
  return calibration;
}

Calibration ResolveCalibration(const AmalurCostModelOptions& defaults,
                               const std::string& explicit_path) {
  std::string path = explicit_path;
  if (path.empty()) {
    const char* env = std::getenv(kCalibrationFileEnvVar);
    if (env != nullptr) path = env;
  }
  if (path.empty()) {
    Calibration calibration;
    calibration.options = defaults;
    return calibration;  // analytic defaults, calibrated=false
  }
  Result<Calibration> loaded = LoadCalibrationFile(path, defaults);
  if (!loaded.ok()) {
    // Planning never breaks on a bad calibration file: fall back to the
    // defaults and carry the reason into every plan explanation.
    Calibration calibration;
    calibration.options = defaults;
    calibration.source =
        "analytic defaults (" + loaded.status().ToString() + ")";
    calibration.options.calibrated = false;
    calibration.options.constants_source = calibration.source;
    return calibration;
  }
  return *std::move(loaded);
}

}  // namespace cost
}  // namespace amalur
