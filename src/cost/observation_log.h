#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "cost/cost_features.h"

/// \file observation_log.h
/// The measurement side of the cost-model calibration loop: every bench (or
/// any run that executes *both* strategies over the same scenario) appends a
/// `(cost features, measured factorized/materialized seconds)` record to an
/// append-only JSONL log. `cost::Calibrator` later fits the analytical
/// model's per-op constants from these records, closing the loop between
/// estimated and observed cost on the hardware the system actually runs on.
///
/// Log format: one JSON object per line, flat numeric/string fields only —
/// greppable, diffable, and mergeable across runs by plain concatenation.
/// Readers are tolerant by design: a corrupt or truncated line (a crashed
/// writer, a partial NFS flush) is skipped and *counted*, never fatal.

namespace amalur {
namespace cost {

/// One calibration data point: the regressor aggregates of the analytical
/// model plus the measured wall-clock of both strategies. The aggregates are
/// stored (rather than the full `CostFeatures`) because they are exactly the
/// quantities the model's cost expressions are linear in — the calibrator
/// rebuilds its design matrix from them without re-deriving metadata.
struct Observation {
  /// Free-form scenario label ("inner_join", "fig5_tr8_fr5", ...).
  std::string scenario;
  /// Gradient-descent iterations the measured runs performed.
  double training_iterations = 0.0;
  /// Columns of the LMM right-hand side (1 for single-model GD).
  double rhs_cols = 1.0;
  /// Σ_k compute_cells_k · (1 − null_ratio_k): the null-discounted
  /// fan-out-deduplicated multiply-add cells of one factorized pass.
  double compute_cells = 0.0;
  /// Σ_k contributed_rows_k: indicator expansion rows per factorized pass.
  double expansion_rows = 0.0;
  /// rT · cT: the dense working set (and the materialization write set).
  double target_cells = 0.0;
  /// Measured end-to-end training seconds of each strategy.
  double factorized_seconds = 0.0;
  double materialized_seconds = 0.0;

  /// Builds the record from extracted features and a measurement.
  static Observation FromFeatures(const CostFeatures& features,
                                  double training_iterations,
                                  double factorized_seconds,
                                  double materialized_seconds,
                                  std::string scenario = "",
                                  double rhs_cols = 1.0);

  /// One JSON object, no trailing newline. Doubles are printed with %.17g so
  /// an append → parse round trip is bit-lossless.
  std::string ToJsonLine() const;

  /// Parses one log line. `kInvalidArgument` on malformed JSON or a missing
  /// required field (readers skip and count such lines).
  static Result<Observation> FromJsonLine(const std::string& line);
};

/// Everything a read recovered from a log file.
struct ObservationLogContents {
  std::vector<Observation> observations;
  /// Corrupt/truncated lines skipped (blank lines are not counted).
  size_t skipped_lines = 0;
};

/// Append-only JSONL observation log. `Append` is serialized under an
/// internal `common::Mutex`, so concurrent writers — e.g.
/// `ParallelForChunks` workers measuring grid cells — interleave whole
/// lines, never bytes. Each append opens, writes and closes the file, so a
/// crash between observations loses at most the line being written (which
/// readers then skip).
class ObservationLog {
 public:
  explicit ObservationLog(std::string path) : path_(std::move(path)) {}
  ObservationLog(const ObservationLog&) = delete;
  ObservationLog& operator=(const ObservationLog&) = delete;

  const std::string& path() const { return path_; }

  /// Appends one record (creating the file on first use). `kIOError` when
  /// the file cannot be opened or written.
  Status Append(const Observation& observation) EXCLUDES(mu_);

  /// Reads a log file: every parseable record in file order plus the count
  /// of skipped lines. `kNotFound` when the file does not exist.
  static Result<ObservationLogContents> Read(const std::string& path);

  /// The log path benches write to when the user did not pick one
  /// explicitly: `$AMALUR_OBSERVATION_LOG`, else "observations.jsonl" in the
  /// working directory.
  static std::string DefaultPath();

 private:
  const std::string path_;
  common::Mutex mu_;
};

/// Environment variable naming the observation log benches append to.
inline constexpr char kObservationLogEnvVar[] = "AMALUR_OBSERVATION_LOG";

}  // namespace cost
}  // namespace amalur
