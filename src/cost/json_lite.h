#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

/// \file json_lite.h
/// The few JSON primitives the calibration loop needs: round-trippable
/// double formatting and key lookup in *flat* one-object documents (the
/// observation-log lines and the fitted-constants file). Deliberately not a
/// general JSON parser — the formats are fixed, flat and written by this
/// repo, and a tolerant scanner keeps corrupt-input handling trivial.

namespace amalur {
namespace cost {
namespace json_lite {

/// Shortest round-trippable formatting of an IEEE binary64 (%.17g): a value
/// written with this and re-parsed with `strtod` recovers the exact bits.
inline std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Extracts the numeric value of `"key": <number>` from a flat JSON object.
/// Returns false when the key is absent or its value is not a finite number.
inline bool FindNumber(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\"";
  size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + 1;
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Extracts the string value of `"key": "<text>"`. Escapes are not
/// interpreted (the values are plain labels); a backslash fails the lookup
/// rather than silently mangling the value.
inline bool FindString(const std::string& text, const char* key,
                       std::string* out) {
  const std::string needle = std::string("\"") + key + "\"";
  size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  const size_t open = text.find('"', at + 1);
  if (open == std::string::npos) return false;
  const size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return false;
  const std::string value = text.substr(open + 1, close - open - 1);
  if (value.find('\\') != std::string::npos) return false;
  *out = value;
  return true;
}

}  // namespace json_lite
}  // namespace cost
}  // namespace amalur
