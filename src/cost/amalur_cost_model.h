#pragma once

#include <optional>
#include <string>

#include "cost/cost_features.h"
#include "integration/schema_mapping.h"

/// \file amalur_cost_model.h
/// Amalur's cost estimation (§IV.B): an analytical work model over the DI
/// metadata that prices both strategies for a gradient-descent training run
/// and picks the cheaper one, with a logic-rule prescreen over the tgds
/// (Example IV.1) that resolves the easy cases without estimation.
///
/// Per iteration, factorized training touches Σ_k (effective contribution
/// cells of source k), while materialized training touches rT·cT cells but
/// must first pay the join + export to build the target table. The model
/// prices both in abstract "cell-op" units with calibratable constants; what
/// matters for the decision is their ratio, not absolute wall-clock.

namespace amalur {
namespace cost {

/// Calibration knobs of the analytical model.
struct AmalurCostModelOptions {
  /// Gradient-descent iterations the training run will perform (the horizon
  /// the one-time materialization cost is amortized over).
  double training_iterations = 20.0;
  /// Columns of the LMM right-hand side (1 for GD on a single model).
  double rhs_cols = 1.0;
  /// Cost of one dense multiply-add on a cell (the work unit).
  double flop_cost = 1.0;
  /// Relative cost of one factorized multiply-add (gathers and indirection
  /// make the pushed-down kernels slower per cell than a straight-line
  /// dense GEMM; calibrated at ~1.3 on this implementation).
  double factorized_cell_cost = 1.3;
  /// One-time per-cell cost of materializing the target (join probe, copy,
  /// allocation). Calibrated against the materializer: 13–34 flop units
  /// depending on size; 20 is the mid-range default.
  double materialize_cell_cost = 20.0;
  /// Per-target-row-per-source bookkeeping of the factorized path
  /// (gather/scatter through CI/CM).
  double factorized_row_overhead = 2.0;
  /// The tgd prescreen (Example IV.1) only applies when the one-time
  /// materialization cost is amortized: join cost ≤ this fraction of the
  /// horizon's per-iteration work. Near the boundary the analytical model
  /// decides instead.
  double prescreen_amortization_limit = 0.5;
  /// Provenance of the four per-op constants above, surfaced through
  /// `Explain` (and therefore every optimizer `Plan.explanation`): false
  /// means the analytic defaults decided; true means the constants were
  /// fitted from measured observations (see cost/calibrator.h).
  bool calibrated = false;
  /// Human-readable provenance, e.g. "analytic defaults" or "fitted from 7
  /// observations in 'observations.jsonl'".
  std::string constants_source = "analytic defaults";
};

/// A priced pair of strategies.
struct CostEstimate {
  double factorized_cost = 0.0;
  double materialized_cost = 0.0;
  /// True when the tgd prescreen decided without the analytical model.
  bool decided_by_logic_rule = false;

  /// The cheaper strategy. The tie-break is explicit and deliberate: an
  /// exact price tie materializes, because equal estimates mean
  /// factorization has no predicted advantage and the materialized plan is
  /// the structurally simpler one (straight dense kernels, no
  /// gather/scatter bookkeeping, and every downstream consumer — serving,
  /// export — can reuse the built target).
  Strategy Decision() const {
    if (factorized_cost == materialized_cost) return Strategy::kMaterialize;
    return factorized_cost < materialized_cost ? Strategy::kFactorize
                                               : Strategy::kMaterialize;
  }
};

/// The Amalur estimator.
class AmalurCostModel {
 public:
  explicit AmalurCostModel(AmalurCostModelOptions options = {})
      : options_(options) {}

  /// Logic-rule prescreen (Example IV.1): when every tgd is full and the
  /// target has no more rows than the sources combined, the materialized
  /// target cannot contain more redundancy than the sources — materialize.
  /// Returns nullopt when logic alone cannot decide (Figure 5's Area III).
  std::optional<Strategy> PruneWithTgds(const CostFeatures& features) const;

  /// Prices both strategies (after the prescreen; a prescreen hit is
  /// reflected by `decided_by_logic_rule` and a forced-materialize price).
  CostEstimate Estimate(const CostFeatures& features) const;

  /// Convenience: estimate + decide.
  Strategy Decide(const CostFeatures& features) const {
    return Estimate(features).Decision();
  }

  /// Human-readable cost breakdown.
  std::string Explain(const CostFeatures& features) const;

 private:
  /// Work units of one factorized GD iteration.
  double FactorizedIterationCost(const CostFeatures& features) const;
  /// Work units of one materialized GD iteration.
  double MaterializedIterationCost(const CostFeatures& features) const;
  /// One-time cost of building the target table.
  double MaterializationCost(const CostFeatures& features) const;

  AmalurCostModelOptions options_;
};

}  // namespace cost
}  // namespace amalur
