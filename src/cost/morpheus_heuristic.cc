#include "cost/morpheus_heuristic.h"

#include <sstream>

namespace amalur {
namespace cost {

Strategy MorpheusHeuristic::Decide(const CostFeatures& features) const {
  // [27] frames the rule per joined (dimension) table: redundancy appears
  // when many fact rows share one dimension row (tuple ratio) and the
  // dimension brings enough columns to matter (feature ratio).
  for (size_t k = 1; k < features.sources.size(); ++k) {
    if (features.TupleRatio(k) >= options_.tuple_ratio_threshold &&
        features.FeatureRatio(k) >= options_.feature_ratio_threshold) {
      return Strategy::kFactorize;
    }
  }
  return Strategy::kMaterialize;
}

std::string MorpheusHeuristic::Explain(const CostFeatures& features) const {
  std::ostringstream out;
  out << "morpheus-heuristic:";
  for (size_t k = 1; k < features.sources.size(); ++k) {
    out << " S" << k + 1 << "(TR=" << features.TupleRatio(k)
        << (features.TupleRatio(k) >= options_.tuple_ratio_threshold ? "≥" : "<")
        << options_.tuple_ratio_threshold << ", FR=" << features.FeatureRatio(k)
        << (features.FeatureRatio(k) >= options_.feature_ratio_threshold ? "≥"
                                                                         : "<")
        << options_.feature_ratio_threshold << ")";
  }
  out << " -> " << StrategyToString(Decide(features));
  return out.str();
}

}  // namespace cost
}  // namespace amalur
