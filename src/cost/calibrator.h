#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "cost/amalur_cost_model.h"
#include "cost/observation_log.h"

/// \file calibrator.h
/// The fitting side of the cost-model calibration loop. The analytical
/// model's total costs are *linear* in a reparameterization of its per-op
/// constants, so fitting them from an observation log is a closed-form
/// weighted least squares — no solver dependency, no iteration:
///
///   factorized(I)   = 2·I·R·cells · (flop·fact_cell)
///                   + 2·I·R·rows  ·  flop
///                   +   I·rows    ·  row_overhead
///   materialized(I) =     cells_T ·  mat_cell
///                   + 2·I·R·cells_T · flop
///
/// with unknowns x = (flop, flop·fact_cell, mat_cell, row_overhead); every
/// observation contributes both equations. Equations are weighted by the
/// inverse of their measured seconds so each scenario counts equally and
/// the fit minimizes *relative* error — the decision compares strategy
/// ratios, not absolute wall-clock, so relative accuracy is what buys
/// correct decisions.
///
/// The analytic defaults remain the fallback: a missing, empty, too-small,
/// rank-deficient or sign-degenerate log never breaks planning — it yields
/// the defaults plus a `Status`/`source` string saying exactly why.

namespace amalur {
namespace cost {

/// The calibration the optimizer runs with: constants plus provenance.
struct Calibration {
  /// The constants to build an `AmalurCostModel` from. Workload knobs
  /// (training_iterations, rhs_cols, prescreen_amortization_limit) are
  /// never fitted — they keep the caller's values.
  AmalurCostModelOptions options;
  /// True when the constants came from a fit; false = analytic defaults.
  bool calibrated = false;
  /// Observations the fit consumed (0 when falling back).
  size_t observations_used = 0;
  /// Corrupt log lines skipped while reading (diagnostics only).
  size_t observations_skipped = 0;
  /// Human-readable provenance: "fitted from N observations in '<path>'" or
  /// "analytic defaults (<why the fit fell back>)".
  std::string source = "analytic defaults";
};

/// Closed-form least-squares fitter for `AmalurCostModelOptions` constants.
class Calibrator {
 public:
  /// `defaults` supplies the workload knobs and the fallback constants.
  explicit Calibrator(AmalurCostModelOptions defaults = {})
      : defaults_(defaults) {}

  /// Fits the four per-op constants from observations. Errors (the caller
  /// falls back to defaults) are precise:
  ///  * `kInvalidArgument`  — fewer than 2 usable observations (each yields
  ///    2 equations; 4 unknowns need at least 4),
  ///  * `kFailedPrecondition` — rank-deficient design (the observations do
  ///    not vary enough to separate the constants) or a sign-degenerate fit
  ///    (a non-positive flop/cell constant, i.e. the linear model cannot
  ///    explain the measurements).
  /// A small negative row-overhead estimate is clamped to zero instead of
  /// failing: it is an intercept-like term that noise can push below zero
  /// without invalidating the rest of the fit.
  Result<AmalurCostModelOptions> Fit(
      const std::vector<Observation>& observations) const;

  /// Fit from a log file with the fallback built in: never fails. On any
  /// read or fit error the result carries the defaults, `calibrated=false`
  /// and the reason in `source`.
  Calibration CalibrateFromLog(const std::string& log_path) const;

 private:
  AmalurCostModelOptions defaults_;
};

/// Writes a fitted-constants file (flat JSON, one object) so later runs —
/// and other processes — can plan with the calibrated model.
Status WriteCalibrationFile(const std::string& path,
                            const Calibration& calibration);

/// Reads a fitted-constants file. Constants come from the file; workload
/// knobs come from `defaults`. `kNotFound` / `kInvalidArgument` on a
/// missing or malformed file.
Result<Calibration> LoadCalibrationFile(const std::string& path,
                                        const AmalurCostModelOptions& defaults = {});

/// Resolution order for the constants a planner should use:
///  1. `explicit_path` (the `TrainRequest::calibration_file` knob),
///  2. the `$AMALUR_CALIBRATION_FILE` environment variable,
///  3. the analytic defaults.
/// A path that fails to load falls back to the defaults with the failure
/// recorded in `source` — planning never breaks on a bad calibration file.
Calibration ResolveCalibration(const AmalurCostModelOptions& defaults = {},
                               const std::string& explicit_path = "");

/// Environment variable naming the fitted-constants file planners consume.
inline constexpr char kCalibrationFileEnvVar[] = "AMALUR_CALIBRATION_FILE";

}  // namespace cost
}  // namespace amalur
