#include "cost/observation_log.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "cost/json_lite.h"

namespace amalur {
namespace cost {

using json_lite::FindNumber;
using json_lite::FindString;
using json_lite::FormatDouble;

Observation Observation::FromFeatures(const CostFeatures& features,
                                      double training_iterations,
                                      double factorized_seconds,
                                      double materialized_seconds,
                                      std::string scenario, double rhs_cols) {
  Observation observation;
  observation.scenario = std::move(scenario);
  observation.training_iterations = training_iterations;
  observation.rhs_cols = rhs_cols;
  for (const SourceFeatures& s : features.sources) {
    observation.compute_cells +=
        static_cast<double>(s.compute_cells) * (1.0 - s.null_ratio);
    observation.expansion_rows += static_cast<double>(s.contributed_rows);
  }
  observation.target_cells = static_cast<double>(features.TargetCells());
  observation.factorized_seconds = factorized_seconds;
  observation.materialized_seconds = materialized_seconds;
  return observation;
}

std::string Observation::ToJsonLine() const {
  std::ostringstream out;
  out << "{\"scenario\": \"" << scenario << "\""
      << ", \"training_iterations\": " << FormatDouble(training_iterations)
      << ", \"rhs_cols\": " << FormatDouble(rhs_cols)
      << ", \"compute_cells\": " << FormatDouble(compute_cells)
      << ", \"expansion_rows\": " << FormatDouble(expansion_rows)
      << ", \"target_cells\": " << FormatDouble(target_cells)
      << ", \"factorized_seconds\": " << FormatDouble(factorized_seconds)
      << ", \"materialized_seconds\": " << FormatDouble(materialized_seconds)
      << "}";
  return out.str();
}

Result<Observation> Observation::FromJsonLine(const std::string& line) {
  const size_t first = line.find_first_not_of(" \t\r");
  const size_t last = line.find_last_not_of(" \t\r");
  if (first == std::string::npos || line[first] != '{' || line[last] != '}') {
    return Status::InvalidArgument(
        "observation line is not a complete JSON object (truncated write?)");
  }
  Observation observation;
  if (!FindString(line, "scenario", &observation.scenario)) {
    return Status::InvalidArgument("observation line: bad 'scenario' field");
  }
  struct Field {
    const char* key;
    double* slot;
  };
  const Field fields[] = {
      {"training_iterations", &observation.training_iterations},
      {"rhs_cols", &observation.rhs_cols},
      {"compute_cells", &observation.compute_cells},
      {"expansion_rows", &observation.expansion_rows},
      {"target_cells", &observation.target_cells},
      {"factorized_seconds", &observation.factorized_seconds},
      {"materialized_seconds", &observation.materialized_seconds},
  };
  for (const Field& field : fields) {
    if (!FindNumber(line, field.key, field.slot)) {
      return Status::InvalidArgument("observation line: missing or non-finite '",
                                     field.key, "' field");
    }
  }
  return observation;
}

Status ObservationLog::Append(const Observation& observation) {
  const std::string line = observation.ToJsonLine();
  common::MutexLock lock(mu_);
  std::FILE* file = std::fopen(path_.c_str(), "a");
  if (file == nullptr) {
    return Status::IOError("cannot open observation log '", path_,
                           "' for append");
  }
  const bool wrote =
      std::fputs(line.c_str(), file) >= 0 && std::fputc('\n', file) != EOF;
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    return Status::IOError("short write to observation log '", path_, "'");
  }
  return Status::OK();
}

Result<ObservationLogContents> ObservationLog::Read(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("observation log '", path, "' does not exist");
  }
  ObservationLogContents contents;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Observation> parsed = Observation::FromJsonLine(line);
    if (parsed.ok()) {
      contents.observations.push_back(*std::move(parsed));
    } else {
      // A corrupt or truncated line (killed writer, partial flush) must not
      // poison the rest of the log: skip it, count it, keep reading.
      contents.skipped_lines += 1;
    }
  }
  return contents;
}

std::string ObservationLog::DefaultPath() {
  const char* env = std::getenv(kObservationLogEnvVar);
  if (env != nullptr && env[0] != '\0') return env;
  return "observations.jsonl";
}

}  // namespace cost
}  // namespace amalur
