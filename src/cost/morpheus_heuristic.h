#pragma once

#include <string>

#include "cost/cost_features.h"

/// \file morpheus_heuristic.h
/// The state-of-the-art baseline decision rule of [27] (§IV.B): factorize
/// when the tuple ratio and the feature ratio both clear fixed thresholds.
/// It sees only table shapes — no overlap, no within-source duplication, no
/// null structure — which is exactly why it misses the Area III cases of
/// Figure 5 that the Amalur model recovers (Table III).

namespace amalur {
namespace cost {

/// Thresholds of the rule of thumb in [27].
struct MorpheusHeuristicOptions {
  double tuple_ratio_threshold = 5.0;
  double feature_ratio_threshold = 1.0;
};

/// The baseline estimator.
class MorpheusHeuristic {
 public:
  explicit MorpheusHeuristic(MorpheusHeuristicOptions options = {})
      : options_(options) {}

  /// Decides per the rule: factorize iff some non-base source has
  /// TR >= tuple threshold and FR >= feature threshold.
  Strategy Decide(const CostFeatures& features) const;

  /// Human-readable justification of the last decision inputs.
  std::string Explain(const CostFeatures& features) const;

 private:
  MorpheusHeuristicOptions options_;
};

}  // namespace cost
}  // namespace amalur
