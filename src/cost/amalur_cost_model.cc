#include "cost/amalur_cost_model.h"

#include <sstream>

namespace amalur {
namespace cost {

std::optional<Strategy> AmalurCostModel::PruneWithTgds(
    const CostFeatures& features) const {
  // Example IV.1: full tgds mean every target attribute is copied from some
  // source. If additionally the target does not multiply rows (rT ≤ Σ rS_k),
  // materialization cannot introduce more redundancy than the sources
  // already carry, so factorization cannot win — Area II, materialize.
  if (!features.all_tgds_full) return std::nullopt;
  size_t total_source_rows = 0;
  for (const SourceFeatures& s : features.sources) total_source_rows += s.rows;
  if (features.target_rows > total_source_rows ||
      features.TargetCells() > features.TotalSourceCells()) {
    return std::nullopt;
  }
  // The structural argument bounds per-iteration work only; the one-time
  // materialization cost must be amortized for the conclusion to hold.
  const double join_cost = MaterializationCost(features);
  const double horizon_work =
      options_.training_iterations * MaterializedIterationCost(features);
  if (join_cost > options_.prescreen_amortization_limit * horizon_work) {
    return std::nullopt;
  }
  return Strategy::kMaterialize;
}

double AmalurCostModel::FactorizedIterationCost(
    const CostFeatures& features) const {
  // One GD iteration = LMM (forward) + transpose-LMM (gradient). Each pass
  // touches every fan-out-deduplicated compute cell once (nulls are stored
  // as zeros and skipped, so they are discounted) and then expands/reduces
  // through the indicator: one add per contributed target row per rhs
  // column, plus constant per-row bookkeeping.
  double cells = 0.0;
  double expansion_rows = 0.0;
  for (const SourceFeatures& s : features.sources) {
    cells += static_cast<double>(s.compute_cells) * (1.0 - s.null_ratio);
    expansion_rows += static_cast<double>(s.contributed_rows);
  }
  return 2.0 * cells * options_.rhs_cols * options_.flop_cost *
             options_.factorized_cell_cost +
         2.0 * expansion_rows * options_.rhs_cols * options_.flop_cost +
         expansion_rows * options_.factorized_row_overhead;
}

double AmalurCostModel::MaterializedIterationCost(
    const CostFeatures& features) const {
  // Dense LMM + transpose-LMM over the full rT × cT target. The dense
  // kernel is a BLAS-style GEMM: it multiplies through materialized zeros
  // (NULL padding included), so the full target extent is paid every
  // iteration.
  return 2.0 * static_cast<double>(features.TargetCells()) *
         options_.rhs_cols * options_.flop_cost;
}

double AmalurCostModel::MaterializationCost(const CostFeatures& features) const {
  // Hash join probe + coalesce + export: every target cell is written once;
  // every source row is hashed/probed once (folded into the cell constant).
  return static_cast<double>(features.TargetCells()) *
         options_.materialize_cell_cost;
}

CostEstimate AmalurCostModel::Estimate(const CostFeatures& features) const {
  CostEstimate estimate;
  const std::optional<Strategy> pruned = PruneWithTgds(features);
  if (pruned.has_value()) {
    estimate.decided_by_logic_rule = true;
    // Encode the verdict as prices so Decision() honours it.
    estimate.factorized_cost = *pruned == Strategy::kFactorize ? 0.0 : 1.0;
    estimate.materialized_cost = *pruned == Strategy::kMaterialize ? 0.0 : 1.0;
    return estimate;
  }
  const double iterations = options_.training_iterations;
  estimate.factorized_cost = iterations * FactorizedIterationCost(features);
  estimate.materialized_cost =
      MaterializationCost(features) +
      iterations * MaterializedIterationCost(features);
  return estimate;
}

std::string AmalurCostModel::Explain(const CostFeatures& features) const {
  const CostEstimate estimate = Estimate(features);
  std::ostringstream out;
  out << "amalur-cost-model: ";
  if (estimate.decided_by_logic_rule) {
    out << "tgd prescreen (full tgds, rT=" << features.target_rows
        << " ≤ Σ rS, target cells ≤ source cells) -> "
        << StrategyToString(estimate.Decision());
  } else {
    out << "factorized=" << estimate.factorized_cost
        << " vs materialized=" << estimate.materialized_cost << " ("
        << MaterializationCost(features) << " one-time + "
        << options_.training_iterations << " x "
        << MaterializedIterationCost(features) << ") -> "
        << StrategyToString(estimate.Decision());
  }
  // Every explanation names the constants' provenance so plans answer
  // "did calibrated or default constants decide this?" directly.
  out << "; constants: "
      << (options_.calibrated ? "calibrated (" + options_.constants_source + ")"
                              : options_.constants_source);
  return out.str();
}

}  // namespace cost
}  // namespace amalur
