#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/di_metadata.h"
#include "relational/join.h"

/// \file cost_features.h
/// The cost-model feature vector extracted from DI metadata (§IV.B: "among
/// silos there are parameters relevant for the redundancy, source
/// description, source correspondences"). Everything both estimators need is
/// here, so heuristics and the full model compare apples to apples.

namespace amalur {
namespace cost {

/// Which execution strategy to use for model training over silos.
enum class Strategy : int8_t {
  kFactorize = 0,
  kMaterialize = 1,
};

const char* StrategyToString(Strategy strategy);

/// Per-source statistics.
struct SourceFeatures {
  size_t rows = 0;            // rS_k (of D_k)
  size_t cols = 0;            // cS_k (mapped columns)
  size_t contributed_rows = 0;  // target rows with CI_k != -1
  size_t redundant_cells = 0;   // zeros of R_k
  /// Multiply-add cells of one factorized pass over this source:
  /// Σ over redundancy row classes of (unique source rows × allowed
  /// columns). Join fan-out is deduplicated — the quantity the factorized
  /// kernels actually touch.
  size_t compute_cells = 0;
  double null_ratio = 0.0;
  double duplicate_ratio = 0.0;

  /// Cells this source actually contributes to the target after masking
  /// (target-level, fan-out NOT deduplicated — the materialized view).
  size_t EffectiveCells() const {
    return contributed_rows * cols - redundant_cells;
  }
};

/// The full feature vector for one integration scenario.
struct CostFeatures {
  rel::JoinKind kind = rel::JoinKind::kInnerJoin;
  /// Graph shape of the scenario (pairwise / star / snowflake /
  /// union-of-stars) — the structural input behind the per-shape estimates.
  metadata::IntegrationShape shape = metadata::IntegrationShape::kPairwise;
  /// Horizontally stacked fact shards (1 unless union-of-stars).
  size_t num_shards = 1;
  /// Longest fact-to-leaf key-join chain (>= 2 for snowflakes).
  size_t join_depth = 1;
  /// Conformed (shared) dimensions: sources referenced by several join
  /// parents. Non-zero for conformed snowflakes and for union-of-stars
  /// graphs whose shards share a dimension silo.
  size_t shared_dimensions = 0;
  size_t target_rows = 0;
  size_t target_cols = 0;
  std::vector<SourceFeatures> sources;
  /// Every tgd of the scenario's mapping is full (Example IV.1 precondition);
  /// false when unknown.
  bool all_tgds_full = false;

  /// Extracts features from derived metadata. `all_tgds_full` is taken from
  /// the scenario kind when no mapping is supplied (inner join and union of
  /// fully mapped sources are the full-tgd relationships).
  static CostFeatures FromMetadata(const metadata::DiMetadata& metadata);

  /// Morpheus's tuple ratio for source k: rT / rS_k.
  double TupleRatio(size_t k) const;
  /// Morpheus's feature ratio for source k relative to the base:
  /// cS_k / cS_0.
  double FeatureRatio(size_t k) const;

  /// Total source cells Σ_k rS_k·cS_k (the factorized working set).
  size_t TotalSourceCells() const;
  /// Target cells rT·cT (the materialized working set).
  size_t TargetCells() const { return target_rows * target_cols; }

  std::string ToString() const;
};

}  // namespace cost
}  // namespace amalur
