#include "common/logging.h"

#include <atomic>

namespace amalur {
namespace internal {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_threshold.load() ||
               level == LogLevel::kFatal) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << basename << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace amalur
