#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the CSV reader, schema matcher and entity
/// resolver. All functions are pure and allocation-conscious.

namespace amalur {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Levenshtein edit distance (unit costs). O(|a|*|b|) time, O(min) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Edit-distance similarity in [0,1]: 1 - dist / max(|a|,|b|); 1.0 for two
/// empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the character-trigram sets of `a` and `b`.
/// Used by instance-based schema matching; 1.0 when both have no trigrams.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Canonical attribute-name form for matching: lower-cased alphanumerics only
/// ("resting HR" and "restingHR" both canonicalize to "restinghr").
std::string CanonicalizeIdentifier(std::string_view name);

/// Formats `value` with `digits` significant decimal digits (for table output).
std::string FormatDouble(double value, int digits);

}  // namespace amalur
