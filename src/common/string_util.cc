#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <unordered_set>

namespace amalur {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // ensure |b| <= |a|: O(|b|) space
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
      diagonal = above;
    }
  }
  return row[b.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) / static_cast<double>(longest);
}

namespace {
std::unordered_set<uint32_t> Trigrams(std::string_view text) {
  std::unordered_set<uint32_t> grams;
  if (text.size() < 3) {
    if (!text.empty()) {
      uint32_t packed = 0;
      for (char c : text) packed = (packed << 8) | static_cast<unsigned char>(c);
      grams.insert(packed);
    }
    return grams;
  }
  for (size_t i = 0; i + 3 <= text.size(); ++i) {
    uint32_t packed = (static_cast<uint32_t>(static_cast<unsigned char>(text[i]))
                       << 16) |
                      (static_cast<uint32_t>(static_cast<unsigned char>(text[i + 1]))
                       << 8) |
                      static_cast<uint32_t>(static_cast<unsigned char>(text[i + 2]));
    grams.insert(packed);
  }
  return grams;
}
}  // namespace

double TrigramJaccard(std::string_view a, std::string_view b) {
  const auto grams_a = Trigrams(a);
  const auto grams_b = Trigrams(b);
  if (grams_a.empty() && grams_b.empty()) return 1.0;
  size_t intersection = 0;
  for (uint32_t gram : grams_a) {
    if (grams_b.count(gram) > 0) ++intersection;
  }
  const size_t unioned = grams_a.size() + grams_b.size() - intersection;
  return unioned == 0 ? 0.0
                      : static_cast<double>(intersection) /
                            static_cast<double>(unioned);
}

std::string CanonicalizeIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

}  // namespace amalur
