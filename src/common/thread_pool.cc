#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "common/thread_annotations.h"

namespace amalur {
namespace common {

namespace {

/// Per-thread override so concurrent training runs (each scoping its own
/// `TrainRequest.num_threads`) cannot stomp each other's count or restore a
/// stale one; chunk geometry is always computed on the submitting thread, so
/// worker threads never need to see it. Process-wide configuration belongs
/// in the AMALUR_NUM_THREADS environment variable.
thread_local size_t t_num_threads_override = 0;

/// True while the current thread is executing a ParallelFor chunk; nested
/// parallel regions run serially instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

size_t HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

}  // namespace

size_t DefaultNumThreads() {
  static const size_t resolved = [] {
    // Read exactly once, under static-local init (thread-safe since C++11).
    const char* env = std::getenv("AMALUR_NUM_THREADS");  // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && parsed >= 1) {
        // Clamped: the global pool spawns this many workers, and a stray
        // value (say, a misplaced row count) must not exhaust the system.
        constexpr long kMaxThreads = 256;
        return static_cast<size_t>(std::min(parsed, kMaxThreads));
      }
    }
    return HardwareThreads();
  }();
  return resolved;
}

size_t NumThreads() {
  return t_num_threads_override != 0 ? t_num_threads_override
                                     : DefaultNumThreads();
}

void SetNumThreads(size_t n) { t_num_threads_override = n; }

ScopedNumThreads::ScopedNumThreads(size_t n)
    : previous_(t_num_threads_override), engaged_(n != 0) {
  if (engaged_) SetNumThreads(n);
}

ScopedNumThreads::~ScopedNumThreads() {
  if (engaged_) SetNumThreads(previous_);
}

/// Shared state of one RunChunks call; lives on the caller's stack. The
/// caller may only return (and destroy the batch) once every worker that
/// entered it has left: `done == num_chunks && active == 0`.
struct ThreadPool::Batch {
  const std::function<void(size_t)>* task = nullptr;
  size_t num_chunks = 0;
  std::atomic<size_t> next{0};    // next chunk index to claim
  std::atomic<size_t> done{0};    // chunks finished (or skipped after failure)
  std::atomic<size_t> active{0};  // workers currently inside the batch
  std::atomic<bool> failed{false};
  Mutex mu;
  std::exception_ptr error GUARDED_BY(mu);
  CondVar finished;
};

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool* ThreadPool::Global() {
  // Leaked on purpose: the pool must survive until the last kernel call,
  // which static destruction order cannot guarantee. Sized so that raising
  // the thread count at runtime (SetNumThreads above the env default) still
  // finds enough workers.
  static ThreadPool* pool = new ThreadPool(
      std::max(DefaultNumThreads(), HardwareThreads()) - 1);
  return pool;
}

void ThreadPool::WorkChunks(Batch* batch) {
  const std::function<void(size_t)>& task = *batch->task;
  for (;;) {
    const size_t chunk = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch->num_chunks) return;
    if (!batch->failed.load(std::memory_order_relaxed)) {
      try {
        task(chunk);
      } catch (...) {
        MutexLock lock(batch->mu);
        if (!batch->error) batch->error = std::current_exception();
        batch->failed.store(true, std::memory_order_relaxed);
      }
    }
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->num_chunks) {
      MutexLock lock(batch->mu);
      batch->finished.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (house idiom): the analysis sees the guarded
      // reads under mu_, which a predicate lambda would hide from it.
      while (!stop_ && generation_ == seen_generation) wake_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;
      if (batch != nullptr) batch->active.fetch_add(1, std::memory_order_acq_rel);
    }
    if (batch == nullptr) continue;  // batch already drained and retired
    t_in_parallel_region = true;
    WorkChunks(batch);
    t_in_parallel_region = false;
    {
      MutexLock lock(batch->mu);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
      batch->finished.NotifyAll();
    }
  }
}

void ThreadPool::RunChunks(size_t num_chunks,
                           const std::function<void(size_t)>& task) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || t_in_parallel_region) {
    // Serial fallback; chunk order preserved, first failure propagates.
    // Chunks still count as a parallel region (nested calls must not
    // re-chunk: a chunk is the unit of determinism, worker or not).
    struct RegionGuard {
      bool was = t_in_parallel_region;
      RegionGuard() { t_in_parallel_region = true; }
      ~RegionGuard() { t_in_parallel_region = was; }
    } guard;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) task(chunk);
    return;
  }

  Batch batch;
  batch.task = &task;
  batch.num_chunks = num_chunks;

  MutexLock submit(submit_mu_);
  {
    MutexLock lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  wake_.NotifyAll();

  const bool was_nested = t_in_parallel_region;
  t_in_parallel_region = true;
  WorkChunks(&batch);
  t_in_parallel_region = was_nested;

  // Retire the batch before waiting so late-waking workers skip it, then
  // wait for the chunks in flight on other workers.
  {
    MutexLock lock(mu_);
    batch_ = nullptr;
  }
  std::exception_ptr error;
  {
    MutexLock lock(batch.mu);
    while (batch.done.load(std::memory_order_acquire) != batch.num_chunks ||
           batch.active.load(std::memory_order_acquire) != 0) {
      batch.finished.Wait(batch.mu);
    }
    error = batch.error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

struct ChunkGeometry {
  size_t chunk_size = 0;
  size_t num_chunks = 0;
};

/// Single source of truth for the partition of [0, range): both the count
/// callers pre-size accumulators with and the spans ParallelForChunks hands
/// out derive from one (range, grain, threads) snapshot, so they can never
/// disagree within a thread.
ChunkGeometry ComputeChunks(size_t range, size_t grain, size_t threads) {
  if (range == 0) return {0, 0};
  if (grain == 0) grain = 1;
  if (threads <= 1 || range <= grain) return {range, 1};
  const size_t chunk_size = std::max(grain, (range + threads - 1) / threads);
  return {chunk_size, (range + chunk_size - 1) / chunk_size};
}

}  // namespace

size_t ParallelChunkCount(size_t range, size_t grain) {
  return ComputeChunks(range, grain, NumThreads()).num_chunks;
}

void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  const ChunkGeometry geometry = ComputeChunks(end - begin, grain, NumThreads());
  if (geometry.num_chunks <= 1 || t_in_parallel_region) {
    fn(0, begin, end);
    return;
  }
  ThreadPool::Global()->RunChunks(geometry.num_chunks, [&](size_t chunk) {
    const size_t chunk_begin = begin + chunk * geometry.chunk_size;
    const size_t chunk_end = std::min(end, chunk_begin + geometry.chunk_size);
    fn(chunk, chunk_begin, chunk_end);
  });
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](size_t /*chunk*/, size_t chunk_begin,
                          size_t chunk_end) { fn(chunk_begin, chunk_end); });
}

}  // namespace common
}  // namespace amalur
