#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

/// \file rng.h
/// Deterministic pseudo-random numbers. Every randomized component in the
/// library takes an explicit seed so that experiments, tests and benchmarks
/// are reproducible bit-for-bit across runs and platforms. The core generator
/// is xoshiro256**, seeded via SplitMix64 (public-domain algorithms by
/// Blackman & Vigna), so results do not depend on the standard library's
/// unspecified distribution implementations.

namespace amalur {

/// Deterministic 64-bit PRNG with convenience samplers.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256**).
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound) {
    // Debiased modulo via rejection sampling.
    const uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    if (have_cached_gaussian_) {
      have_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(theta);
    have_cached_gaussian_ = true;
    return radius * std::cos(theta);
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// `k` distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher–Yates: only the first k positions need to be settled.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextUint64(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  /// Derives an independent generator (for per-worker streams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace amalur
