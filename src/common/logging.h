#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/status.h"

/// \file logging.h
/// Minimal leveled logging plus fatal-check macros, modelled on Arrow's
/// `DCHECK`/`ARROW_LOG` surface. Logging is synchronous to stderr; the
/// library itself only logs at WARNING and above, so hot paths stay silent.

namespace amalur {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

/// One log statement: accumulates a message and emits it on destruction.
/// A `kFatal` message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Sets the process-wide minimum log level (default: kWarning).
inline void SetLogLevel(LogLevel level) { internal::SetLogThreshold(level); }

}  // namespace amalur

#define AMALUR_LOG(level)                                                       \
  ::amalur::internal::LogMessage(::amalur::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal unless `condition` holds. Active in all build types: these guard
/// internal invariants whose violation would corrupt results silently.
#define AMALUR_CHECK(condition)                                       \
  if (!(condition))                                                   \
  AMALUR_LOG(Fatal) << "Check failed: " #condition " "

#define AMALUR_CHECK_OK(expr)                                         \
  do {                                                                \
    ::amalur::Status _s = (expr);                                     \
    AMALUR_CHECK(_s.ok()) << _s.ToString();                           \
  } while (false)

#define AMALUR_CHECK_EQ(a, b) AMALUR_CHECK((a) == (b))
#define AMALUR_CHECK_NE(a, b) AMALUR_CHECK((a) != (b))
#define AMALUR_CHECK_LT(a, b) AMALUR_CHECK((a) < (b))
#define AMALUR_CHECK_LE(a, b) AMALUR_CHECK((a) <= (b))
#define AMALUR_CHECK_GT(a, b) AMALUR_CHECK((a) > (b))
#define AMALUR_CHECK_GE(a, b) AMALUR_CHECK((a) >= (b))
