#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file thread_annotations.h
/// Clang thread-safety annotations (Abseil style) plus the capability-
/// annotated lock wrappers every concurrent subsystem in the library uses.
///
/// The macros expand to Clang `thread_safety` attributes when the compiler
/// supports them and to nothing otherwise (GCC builds see plain mutexes), so
/// annotating costs nothing at runtime and nothing on non-Clang toolchains.
/// A dedicated CI job compiles the library with Clang and
/// `-Werror=thread-safety`, turning the locking discipline — "this field is
/// only touched under that mutex", "this helper requires the lock held" —
/// into a compile-time proof instead of a property TSan hopes to catch
/// dynamically. A negative "canary" target (tools/annotation_canary.cc)
/// asserts that the gate actually rejects an unlocked access, so the job
/// cannot rot into a green no-op.
///
/// House rule (enforced by tools/amalur_lint.py): code under src/ must not
/// use `std::mutex` / `std::shared_mutex` / their lock guards directly —
/// only the wrappers below, because only the wrappers carry capability
/// annotations the analysis can see. Tests and tools are free to use the
/// standard primitives.

// ---------------------------------------------------------------- macros

#if defined(__clang__) && (!defined(SWIG))
#define AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAPABILITY(x) AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a field may only be accessed while holding `x`.
#define GUARDED_BY(x) AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Declares that the data *pointed to* by a pointer field is guarded by `x`
/// (the pointer itself may be read without the lock).
#define PT_GUARDED_BY(x) AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares lock-ordering edges: this mutex must be acquired before / after
/// the listed ones.
#define ACQUIRED_BEFORE(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function may only be called with the listed capabilities held
/// (exclusively / shared).
#define REQUIRES(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define ACQUIRE(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (generic form: works for both
/// exclusive and shared holds, which is what scoped-lock destructors need).
#define RELEASE(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; `b` is the success value.
#define TRY_ACQUIRE(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// The function may only be called while the listed capabilities are NOT
/// held (anti-deadlock: documents "takes the lock itself").
#define EXCLUDES(...) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (for code the analysis
/// cannot follow), teaching the analysis it is held from here on.
#define ASSERT_CAPABILITY(x) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function is deliberately outside the analysis.
#define NO_THREAD_SAFETY_ANALYSIS \
  AMALUR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

// --------------------------------------------------------------- wrappers

namespace amalur {
namespace common {

class CondVar;

/// A plain mutex carrying the `capability` annotation, so fields can be
/// declared `GUARDED_BY(mu_)` and helpers `REQUIRES(mu_)`. Same cost as the
/// `std::mutex` it wraps.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// A reader/writer mutex carrying the `capability` annotation. Exclusive
/// holds satisfy `REQUIRES`, shared holds satisfy `REQUIRES_SHARED` (and the
/// analysis rejects writes to `GUARDED_BY` state under a shared hold).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a `Mutex` or a `SharedMutex` (writer side).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu.Lock(); }
  explicit MutexLock(SharedMutex& mu) ACQUIRE(mu) : shared_(&mu) { mu.Lock(); }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) {
      mu_->Unlock();
    } else {
      shared_->Unlock();
    }
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_ = nullptr;
  SharedMutex* shared_ = nullptr;
};

/// RAII shared (reader) lock over a `SharedMutex`.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu.LockShared();
  }
  ~SharedLock() RELEASE() { mu_->UnlockShared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex* mu_ = nullptr;
};

/// Condition variable paired with `Mutex`. `Wait` atomically releases the
/// mutex and reacquires it before returning, so from the analysis's point of
/// view the capability is held across the call — which is exactly the
/// guarantee guarded reads in a wait loop need. House idiom: wait in an
/// explicit `while (!predicate) cv.Wait(mu);` loop rather than a predicate
/// lambda (the analysis cannot see lock state inside a lambda body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (enforced): blocks until notified.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the re-acquired mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace amalur
