#pragma once

#include <chrono>
#include <cstdint>

/// \file stopwatch.h
/// Wall-clock timing for the cost model's calibration and the bench harness.

namespace amalur {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace amalur
