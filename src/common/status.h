#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// Error propagation primitives in the Arrow/RocksDB idiom: functions that can
/// fail return `Status` (or `Result<T>` for value-producing calls) instead of
/// throwing. Exceptions are never thrown across public API boundaries.

namespace amalur {

/// Machine-readable category of a `Status`.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kIOError = 7,
  kInternal = 8,
  /// A required participant (e.g. a federated silo) is unreachable. Unlike
  /// `kFailedPrecondition` the condition is environmental and may clear on
  /// its own — callers may retry the whole operation later.
  kUnavailable = 9,
};

/// Returns the canonical lower-case name of a status code, e.g. "invalid argument".
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus a human-readable message.
///
/// `Status` is cheap to copy in the OK case (no allocation). Builder helpers
/// accept any streamable arguments:
///
///     return Status::InvalidArgument("row ", i, " out of range [0, ", n, ")");
///
/// `Status` (and `Result<T>`) are `[[nodiscard]]`: the compiler rejects a
/// silently dropped error under `-Werror`. Call sites that genuinely do not
/// care must say so with a `(void)` cast and a comment explaining why the
/// failure is ignorable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the success value.
  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Prepends context to the message of a non-OK status; no-op on OK.
  Status WithContext(const std::string& context) const;

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream out;
    (out << ... << std::forward<Args>(args));
    return Status(code, out.str());
  }

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

/// A value or an error. `Result<T>` is how fallible value-producing functions
/// return: check `ok()` (or propagate with `AMALUR_ASSIGN_OR_RETURN`) before
/// dereferencing.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return some_t;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: `return Status::NotFound(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (this->status().ok()) {
      repr_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; must only be called when `ok()`.
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace amalur

/// Propagates a non-OK `Status` to the caller.
#define AMALUR_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::amalur::Status _status = (expr);              \
    if (!_status.ok()) return _status;              \
  } while (false)

#define AMALUR_CONCAT_IMPL(a, b) a##b
#define AMALUR_CONCAT(a, b) AMALUR_CONCAT_IMPL(a, b)

/// Evaluates a `Result<T>` expression; on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define AMALUR_ASSIGN_OR_RETURN(lhs, expr)                          \
  AMALUR_ASSIGN_OR_RETURN_IMPL(AMALUR_CONCAT(_result_, __LINE__), lhs, expr)

// `lhs` may be a declaration (`auto x`), so it cannot be parenthesized.
#define AMALUR_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                 \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()  // NOLINT(bugprone-macro-parentheses)
