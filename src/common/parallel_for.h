#pragma once

#include <cstddef>
#include <functional>

/// \file parallel_for.h
/// The lightweight face of the parallel execution runtime: thread-count
/// resolution and the `ParallelFor` primitives every kernel fans out with.
/// Headers that only need to *dispatch* parallel loops (e.g. the matrix
/// templates) include this; the pool itself — and its <thread>/<mutex>
/// baggage — lives in thread_pool.h.
///
/// Thread count resolution, in priority order:
///   1. `SetNumThreads(n)` / `ScopedNumThreads` (the facade's
///      `TrainRequest.num_threads` knob lands here),
///   2. the `AMALUR_NUM_THREADS` environment variable,
///   3. `std::thread::hardware_concurrency()`.
/// A count of 1 disables parallelism cleanly: every `ParallelFor` degenerates
/// to the caller running the whole range serially, recovering the exact
/// pre-runtime semantics.
///
/// Determinism contract: chunk boundaries are a pure function of
/// (range, grain, thread count), chunks are merged by callers in fixed chunk
/// order, and kernels that partition *output* rows write disjoint memory —
/// results are bitwise-stable across runs at a given thread count (and for
/// disjoint-write kernels, bitwise-equal to the serial result at any count).

namespace amalur {
namespace common {

/// Worker threads this process may use, before any override: the
/// `AMALUR_NUM_THREADS` environment variable when set to a positive integer
/// (clamped to 256 so a stray value cannot exhaust the system with thread
/// spawns), otherwise `std::thread::hardware_concurrency()` (at least 1).
size_t DefaultNumThreads();

/// The currently effective thread count (override if set, else the default).
size_t NumThreads();

/// Overrides the effective thread count; 0 restores the default. The
/// override is per *calling thread* (kernels compute their chunk geometry on
/// the submitting thread), so concurrent training runs with different knobs
/// cannot interfere; process-wide configuration belongs in the
/// `AMALUR_NUM_THREADS` environment variable.
void SetNumThreads(size_t n);

/// RAII thread-count override: sets `n` (0 = leave unchanged) for the scope's
/// lifetime and restores the previous override on destruction.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  size_t previous_;
  bool engaged_;
};

/// Number of chunks `ParallelFor`/`ParallelForChunks` will split
/// [0, range) into at the current thread count — callers allocating
/// per-chunk accumulators size them with this. Always >= 1 for a non-empty
/// range; chunk `c` covers [begin + c*size, min(end, begin + (c+1)*size))
/// with size = max(grain, ceil(range / NumThreads())).
size_t ParallelChunkCount(size_t range, size_t grain);

/// Runs `fn(chunk_index, chunk_begin, chunk_end)` over a static partition of
/// [begin, end) into `ParallelChunkCount(end - begin, grain)` chunks. Runs
/// entirely on the caller when the effective thread count is 1, the range
/// fits in one grain, or the call is nested inside another parallel region
/// (then fn(0, begin, end) is the single chunk). Empty ranges are a no-op.
void ParallelForChunks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// `ParallelForChunks` without the chunk index: `fn(chunk_begin, chunk_end)`.
/// The workhorse for kernels whose chunks write disjoint output ranges.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace common
}  // namespace amalur
