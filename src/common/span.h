#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.h"

/// \file span.h
/// A minimal read-only `std::span` stand-in (the project is C++17). Serving
/// batch APIs take `Span<RowRef>` so callers can pass a vector, an array, or
/// a sub-range of either without copying. Non-owning: the caller guarantees
/// the underlying storage outlives the span.

namespace amalur {
namespace common {

/// Non-owning constant view over a contiguous array of `T`.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit from a vector — the common call shape.
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    AMALUR_CHECK_LT(i, size_) << "span index";
    return data_[i];
  }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// The sub-view [offset, offset + count); clamped to the span's end.
  Span<T> subspan(size_t offset, size_t count) const {
    AMALUR_CHECK_LE(offset, size_) << "span offset";
    const size_t n = count < size_ - offset ? count : size_ - offset;
    return Span<T>(data_ + offset, n);
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace common
}  // namespace amalur
