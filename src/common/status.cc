#include "common/status.h"

namespace amalur {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

}  // namespace amalur
