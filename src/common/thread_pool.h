#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_annotations.h"

/// \file thread_pool.h
/// The worker pool behind `ParallelFor` (see parallel_for.h for the
/// dispatch primitives and the determinism contract). Every hot kernel
/// (dense GEMM, CSR SpMM, the factorized rewrites, gradient descent through
/// them) fans its work out over one lazily-initialized global pool.

namespace amalur {
namespace common {

/// A fixed set of worker threads executing chunk batches. Use the global
/// instance through `ParallelFor`; direct construction is for tests.
class ThreadPool {
 public:
  /// Pool with `num_workers` background threads (the submitting thread also
  /// executes chunks, so total parallelism is `num_workers + 1`).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Upper bound on concurrently executing chunks: the workers plus the
  /// submitting thread. A `NumThreads()` request above this still *chunks*
  /// for the requested count (determinism follows the request) but executes
  /// at this parallelism.
  size_t parallelism() const { return workers_.size() + 1; }

  /// Executes `task(c)` for every c in [0, num_chunks) across the workers
  /// and the calling thread; returns when all chunks finished. The first
  /// exception thrown by any chunk is rethrown on the caller (remaining
  /// chunks are skipped once a chunk has failed). Concurrent calls are
  /// serialized; a call from inside a running chunk executes inline.
  void RunChunks(size_t num_chunks, const std::function<void(size_t)>& task);

  /// The process-wide pool, created on first use with
  /// `DefaultNumThreads() - 1` workers (never destroyed: workers must not
  /// outlive-race static destruction).
  static ThreadPool* Global();

 private:
  struct Batch;

  void WorkerLoop();
  static void WorkChunks(Batch* batch);

  Mutex mu_;
  CondVar wake_;
  Batch* batch_ GUARDED_BY(mu_) = nullptr;
  /// Bumped per submitted batch.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  Mutex submit_mu_;  // serializes RunChunks callers
  std::vector<std::thread> workers_;
};

}  // namespace common
}  // namespace amalur
